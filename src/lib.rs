//! # netsession
//!
//! Umbrella crate for the NetSession peer-assisted CDN reproduction
//! (Zhao et al., *Peer-Assisted Content Distribution in Akamai NetSession*,
//! IMC 2013). Re-exports every subsystem; see the workspace README for the
//! architecture map and DESIGN.md for the paper-to-code index.
//!
//! Quick start (the simulator):
//!
//! ```no_run
//! use netsession::hybrid::{HybridSim, ScenarioConfig};
//! let out = HybridSim::run_config(ScenarioConfig::tiny());
//! println!("peer efficiency: {:.1}%",
//!     netsession::analytics::overview::headline(&out.dataset).mean_peer_efficiency * 100.0);
//! ```

pub use netsession_analytics as analytics;
pub use netsession_baseline as baseline;
pub use netsession_control as control;
pub use netsession_core as core;
pub use netsession_edge as edge;
pub use netsession_hybrid as hybrid;
pub use netsession_logs as logs;
pub use netsession_nat as nat;
pub use netsession_net as net;
pub use netsession_peer as peer;
pub use netsession_sim as sim;
pub use netsession_world as world;
