//! Protocol-level integration: edge tier + control plane + swarm engines
//! wired together synchronously (no sockets, no fluid model) — the §3.3
//! flow at message granularity, including failure injection.

use netsession::control::directory::PeerRecord;
use netsession::control::plane::{ControlPlane, PlaneConfig};
use netsession::control::selection::Querier;
use netsession::core::id::{CpCode, Guid, ObjectId};
use netsession::core::msg::{NatType, PeerAddr, SwarmMsg};
use netsession::core::piece::PieceMap;
use netsession::core::policy::DownloadPolicy;
use netsession::core::rng::DetRng;
use netsession::core::time::SimTime;
use netsession::core::units::ByteCount;
use netsession::edge::accounting::AccountingLedger;
use netsession::edge::auth::EdgeAuth;
use netsession::edge::server::EdgeServer;
use netsession::edge::store::ContentStore;
use netsession::peer::swarm::{SwarmEvent, SwarmSession};
use std::sync::Arc;

struct Fixture {
    edge: EdgeServer,
    plane: ControlPlane,
    auth: EdgeAuth,
}

fn fixture() -> Fixture {
    let auth = EdgeAuth::from_seed(9);
    let store = Arc::new(ContentStore::new());
    store.publish_synthetic(
        ObjectId(1),
        CpCode(1),
        ByteCount::from_mib(8),
        DownloadPolicy::peer_assisted(),
    );
    let ledger = Arc::new(AccountingLedger::new());
    let edge = EdgeServer::new(0, store, auth.clone(), ledger);
    let plane = ControlPlane::new(
        &PlaneConfig {
            regions: 1,
            ..PlaneConfig::default()
        },
        auth.clone(),
    );
    Fixture { edge, plane, auth }
}

fn record(guid: u64, nat: NatType) -> PeerRecord {
    PeerRecord {
        guid: Guid(guid as u128),
        addr: PeerAddr {
            ip: guid as u32,
            port: 1,
        },
        asn: netsession::core::id::AsNumber(100),
        area: 1,
        zone: 0,
        nat,
    }
}

#[test]
fn authorize_query_swarm_complete() {
    let mut f = fixture();
    let mut rng = DetRng::seeded(1);

    // A seeder registers with the control plane.
    f.plane.register_content(
        0,
        record(9, NatType::FullCone),
        netsession::core::id::VersionId {
            object: ObjectId(1),
            version: 1,
        },
    );

    // The downloader authorizes with the edge, then queries.
    let authz = f.edge.authorize(Guid(1), ObjectId(1), SimTime(0)).unwrap();
    let querier = Querier {
        guid: Guid(1),
        asn: netsession::core::id::AsNumber(100),
        area: 1,
        zone: 0,
        nat: NatType::PortRestricted,
    };
    let peers = f
        .plane
        .query_peers(0, &querier, &authz.token, SimTime(0), &mut rng)
        .unwrap();
    assert_eq!(peers.len(), 1);

    // Swarm from the seeder, edge as backstop: alternate sources.
    let manifest = authz.manifest;
    let n = manifest.piece_count();
    let mut session = SwarmSession::new(manifest.clone(), PieceMap::empty(n));
    let seeder = peers[0].guid;
    let mut events = session.on_peer_joined(seeder, PieceMap::full(n), &mut rng);
    let mut from_peer = 0u32;
    let mut from_edge = 0u32;
    while !session.is_complete() {
        // Serve any outstanding peer request.
        let mut next = Vec::new();
        for e in events.drain(..) {
            if let SwarmEvent::Send(to, SwarmMsg::Request { piece }) = e {
                assert_eq!(to, seeder);
                let reply = SwarmMsg::Piece {
                    piece,
                    data: vec![],
                    digest: manifest.piece_hashes[piece as usize],
                };
                from_peer += 1;
                next.extend(session.on_message(seeder, reply, &mut rng));
            }
        }
        events = next;
        // Edge fills one piece per round in parallel.
        if !session.is_complete() {
            if let Some(piece) = session.next_edge_piece() {
                let (digest, _len) = f
                    .edge
                    .serve_piece_digest(&authz.token, piece, SimTime(1))
                    .unwrap();
                from_edge += 1;
                events.extend(session.on_edge_piece(piece, &[], digest));
            }
        }
    }
    assert!(from_peer > 0 && from_edge > 0, "both sources contributed");
    assert_eq!(from_peer + from_edge, n);
    assert!(f.edge.total_served().bytes() > 0);
}

#[test]
fn nat_incompatible_seeder_is_filtered_out() {
    let mut f = fixture();
    let mut rng = DetRng::seeded(2);
    f.plane.register_content(
        0,
        record(9, NatType::Symmetric),
        netsession::core::id::VersionId {
            object: ObjectId(1),
            version: 1,
        },
    );
    let authz = f.edge.authorize(Guid(1), ObjectId(1), SimTime(0)).unwrap();
    // Symmetric querier + symmetric seeder: unpairable.
    let querier = Querier {
        guid: Guid(1),
        asn: netsession::core::id::AsNumber(100),
        area: 1,
        zone: 0,
        nat: NatType::Symmetric,
    };
    let peers = f
        .plane
        .query_peers(0, &querier, &authz.token, SimTime(0), &mut rng)
        .unwrap();
    assert!(peers.is_empty());
}

#[test]
fn corrupt_seeder_cannot_poison_the_download() {
    let f = fixture();
    let mut rng = DetRng::seeded(3);
    let authz = f.edge.authorize(Guid(1), ObjectId(1), SimTime(0)).unwrap();
    let manifest = authz.manifest;
    let n = manifest.piece_count();
    let mut session = SwarmSession::new(manifest.clone(), PieceMap::empty(n));
    let evil = Guid(66);
    let events = session.on_peer_joined(evil, PieceMap::full(n), &mut rng);
    // The evil seeder answers every request with garbage.
    let mut corrupt_seen = 0;
    let mut queue = events;
    for _ in 0..3 * n {
        let mut next = Vec::new();
        for e in queue.drain(..) {
            if let SwarmEvent::Send(_, SwarmMsg::Request { piece }) = e {
                let reply = SwarmMsg::Piece {
                    piece,
                    data: vec![],
                    digest: netsession::core::hash::sha256(b"poison"),
                };
                let evs = session.on_message(evil, reply, &mut rng);
                corrupt_seen += evs
                    .iter()
                    .filter(|e| matches!(e, SwarmEvent::CorruptPiece(..)))
                    .count();
                next.extend(evs);
            }
        }
        queue = next;
        if queue.is_empty() {
            break;
        }
    }
    assert!(corrupt_seen > 0);
    assert_eq!(
        session.mine().have_count(),
        0,
        "no poisoned piece may be accepted"
    );
    // The client drops the consistently corrupt peer (freeing any piece
    // still in flight to it); the edge then completes the download.
    session.on_peer_left(evil);
    let mut done = 0;
    while let Some(piece) = session.next_edge_piece() {
        let (digest, _) = f
            .edge
            .serve_piece_digest(&authz.token, piece, SimTime(1))
            .unwrap();
        session.on_edge_piece(piece, &[], digest);
        done += 1;
    }
    assert_eq!(done, n);
    assert!(session.is_complete());
}

#[test]
fn dn_failure_recovery_via_readd_preserves_service() {
    let mut f = fixture();
    let mut rng = DetRng::seeded(4);
    let ver = netsession::core::id::VersionId {
        object: ObjectId(1),
        version: 1,
    };
    f.plane.login(
        0,
        Guid(9),
        PeerAddr { ip: 9, port: 1 },
        NatType::FullCone,
        true,
        1,
        vec![],
        SimTime(0),
    );
    f.plane
        .register_content(0, record(9, NatType::FullCone), ver);

    // DN dies; the CN asks connected peers to RE-ADD (§3.8).
    let to_ask = f.plane.fail_dn(0);
    assert_eq!(to_ask, vec![Guid(9)]);
    let token = f.auth.issue(Guid(1), ver, SimTime(0));
    let querier = Querier {
        guid: Guid(1),
        asn: netsession::core::id::AsNumber(100),
        area: 1,
        zone: 0,
        nat: NatType::Open,
    };
    assert!(f
        .plane
        .query_peers(0, &querier, &token, SimTime(0), &mut rng)
        .unwrap()
        .is_empty());
    // The peer answers with its cached content: service restored.
    f.plane
        .handle_readd(0, record(9, NatType::FullCone), &[ver]);
    assert_eq!(
        f.plane
            .query_peers(0, &querier, &token, SimTime(0), &mut rng)
            .unwrap()
            .len(),
        1
    );
}
