//! Cross-crate integration tests: one simulated month exercised end to end
//! and checked against the paper's qualitative claims plus internal
//! consistency invariants (accounting, registration, conservation).

use netsession::analytics::{efficiency, guidgraph, mobility, outcomes, overview, settings};
use netsession::core::id::VersionId;
use netsession::core::units::ByteCount;
use netsession::hybrid::{HybridSim, ScenarioConfig, SimOutput};
use netsession::logs::records::DownloadOutcome;
use std::sync::OnceLock;

/// One shared run for all assertions (the simulation is deterministic).
fn run() -> &'static SimOutput {
    static OUT: OnceLock<SimOutput> = OnceLock::new();
    OUT.get_or_init(|| {
        let mut cfg = ScenarioConfig::tiny();
        cfg.population.peers = 4_000;
        cfg.workload.downloads = 6_000;
        cfg.objects = 400;
        HybridSim::run_config(cfg)
    })
}

#[test]
fn headline_shape_holds() {
    let out = run();
    let h = overview::headline(&out.dataset);
    assert!(
        (0.25..0.40).contains(&h.enabled_fraction),
        "enabled {}",
        h.enabled_fraction
    );
    assert!(
        h.p2p_file_fraction < 0.08,
        "p2p files {}",
        h.p2p_file_fraction
    );
    assert!(
        h.p2p_byte_share > 0.25,
        "p2p-enabled files dominate bytes: {}",
        h.p2p_byte_share
    );
    assert!(
        h.mean_peer_efficiency > 0.2,
        "peer efficiency {}",
        h.mean_peer_efficiency
    );
}

#[test]
fn completed_downloads_conserve_bytes() {
    let out = run();
    let mut checked = 0;
    for d in &out.dataset.downloads {
        if d.outcome == DownloadOutcome::Completed {
            let got = d.total_bytes().bytes() as f64;
            let want = d.size.bytes() as f64;
            assert!(
                (got - want).abs() / want.max(1.0) < 0.02,
                "completed download got {got}, size {want}"
            );
            checked += 1;
        }
    }
    assert!(checked > 1000, "checked {checked}");
}

#[test]
fn transfers_match_download_peer_bytes() {
    let out = run();
    let transfer_total: u64 = out.dataset.transfers.iter().map(|t| t.bytes.bytes()).sum();
    let download_peer_total: u64 = out
        .dataset
        .downloads
        .iter()
        .map(|d| d.bytes_peers.bytes())
        .sum();
    let diff = (transfer_total as f64 - download_peer_total as f64).abs();
    assert!(
        diff / (download_peer_total.max(1) as f64) < 0.02,
        "transfer records {transfer_total} vs download records {download_peer_total}"
    );
}

#[test]
fn uploaders_had_uploads_enabled() {
    let out = run();
    // Every transfer source must be a peer whose installation had uploads
    // enabled at some point (setting changes are rare).
    let pop = &out.scenario.population;
    let mut by_guid = std::collections::HashMap::new();
    for p in &pop.peers {
        by_guid.insert(p.guid, p);
    }
    let mut violations = 0;
    for t in out.dataset.transfers.iter().take(5000) {
        if let Some(p) = by_guid.get(&t.from_guid) {
            if !p.uploads_enabled {
                violations += 1;
            }
        }
    }
    // Allowed: rare setting-changers (Table 3 says ~0.04%-1.9%).
    assert!(
        violations < 50,
        "{violations} transfers from disabled uploaders"
    );
}

#[test]
fn accounting_ledger_reconciles_the_usage_reports() {
    let out = run();
    // Rebuild usage records from the download log and reconcile against
    // the edge receipts — the §3.5 anti-accounting-attack pipeline. All
    // honest records must survive.
    let records: Vec<netsession::core::msg::UsageRecord> = out
        .dataset
        .downloads
        .iter()
        .map(|d| netsession::core::msg::UsageRecord {
            guid: d.guid,
            version: VersionId {
                object: d.object,
                version: 1,
            },
            started: d.started,
            ended: d.ended,
            bytes_from_infrastructure: d.bytes_infra,
            bytes_from_peers: d.bytes_peers,
        })
        .collect();
    let sizes: std::collections::HashMap<u64, ByteCount> = out
        .scenario
        .catalog
        .objects()
        .iter()
        .map(|o| (o.id.0, o.size))
        .collect();
    let completed: std::collections::HashSet<(u128, u64)> = out
        .dataset
        .downloads
        .iter()
        .filter(|d| d.outcome == DownloadOutcome::Completed)
        .map(|d| (d.guid.0, d.object.0))
        .collect();
    let (accepted, flagged) = out.scenario.ledger.reconcile(&records, |r| {
        completed
            .contains(&(r.guid.0, r.version.object.0))
            .then(|| sizes[&r.version.object.0])
    });
    assert!(
        flagged.len() * 100 < records.len(),
        "honest records flagged: {} of {} ({:?}…)",
        flagged.len(),
        records.len(),
        flagged.first()
    );
    assert!(accepted.len() > records.len() * 9 / 10);
}

#[test]
fn forged_usage_reports_are_flagged() {
    let out = run();
    let d = out
        .dataset
        .downloads
        .iter()
        .find(|d| d.outcome == DownloadOutcome::Completed)
        .unwrap();
    // A compromised peer inflates its infrastructure byte claim 100×.
    let forged = netsession::core::msg::UsageRecord {
        guid: d.guid,
        version: VersionId {
            object: d.object,
            version: 1,
        },
        started: d.started,
        ended: d.ended,
        bytes_from_infrastructure: ByteCount(d.bytes_infra.bytes() * 100 + 10_000_000),
        bytes_from_peers: d.bytes_peers,
    };
    let (accepted, flagged) = out.scenario.ledger.reconcile(&[forged], |_| None);
    assert!(accepted.is_empty());
    assert_eq!(flagged.len(), 1);
}

#[test]
fn efficiency_grows_with_copies_and_peers() {
    let out = run();
    let (lo_copies, hi_copies, few_peers, many_peers) = efficiency::growth_summary(&out.dataset);
    assert!(
        hi_copies > lo_copies,
        "Fig 5 trend: {lo_copies} → {hi_copies}"
    );
    assert!(
        many_peers > few_peers,
        "Fig 6 trend: {few_peers} → {many_peers}"
    );
}

#[test]
fn outcome_split_matches_the_papers_story() {
    let out = run();
    let (infra, p2p) = outcomes::outcome_split(&out.dataset);
    assert!(infra.completed > 0.85 && p2p.completed > 0.75);
    assert!(p2p.abandoned > infra.abandoned, "bigger files pause more");
    assert!(infra.failed_system < 0.01 && p2p.failed_system < 0.01);
    // Fig 7: pause rate grows with size.
    let buckets = outcomes::fig7(&out.dataset);
    assert!(buckets.last().unwrap().all >= buckets.first().unwrap().all);
}

#[test]
fn mobility_mix_is_calibrated() {
    let out = run();
    let m = mobility::summarize(&out.dataset);
    assert!(
        (0.72..0.90).contains(&m.single_as),
        "single-AS {}",
        m.single_as
    );
    assert!(
        (0.60..0.92).contains(&m.within_10km),
        "10km {}",
        m.within_10km
    );
}

#[test]
fn table3_stickiness_reproduced() {
    let out = run();
    let (disabled, enabled) = settings::table3(&out.dataset);
    let (dz, _, _) = disabled.fractions();
    let (ez, _, _) = enabled.fractions();
    assert!(dz > 0.995, "disabled zero-change {dz}");
    assert!(ez > 0.95, "enabled zero-change {ez}");
}

#[test]
fn guid_graphs_mostly_linear_with_rare_trees() {
    let out = run();
    let census = guidgraph::fig12(&out.dataset);
    let nl = guidgraph::nonlinear_fraction(&census);
    assert!(nl < 0.05, "nonlinear fraction {nl}");
    assert!(
        nl > 0.0,
        "the clone/anomaly machinery must produce some trees"
    );
}

#[test]
fn control_plane_restart_does_not_hurt_service() {
    // §3.8: "when a new CN/DN software version is released, all CNs and
    // DNs are restarted in a short timeframe, and this does not negatively
    // affect the service."
    let baseline = run();
    let mut cfg = ScenarioConfig::tiny();
    cfg.population.peers = 4_000;
    cfg.workload.downloads = 6_000;
    cfg.objects = 400;
    cfg.control_restart_day = Some(15);
    let restarted = HybridSim::run_config(cfg);

    let completion = |o: &SimOutput| {
        o.dataset
            .downloads
            .iter()
            .filter(|d| d.outcome == DownloadOutcome::Completed)
            .count() as f64
            / o.dataset.downloads.len().max(1) as f64
    };
    assert!(
        (completion(&restarted) - completion(baseline)).abs() < 0.03,
        "restart changed completion: {} vs {}",
        completion(&restarted),
        completion(baseline)
    );
    // Peer-assisted delivery keeps working after day 15.
    let restart_at =
        netsession::core::time::SimTime::ZERO + netsession::core::time::SimDuration::from_days(16);
    let p2p_after: u64 = restarted
        .dataset
        .downloads
        .iter()
        .filter(|d| d.started > restart_at)
        .map(|d| d.bytes_peers.bytes())
        .sum();
    assert!(p2p_after > 0, "swarming must survive the restart");
    let eff = |o: &SimOutput| overview::headline(&o.dataset).mean_peer_efficiency;
    assert!(
        (eff(&restarted) - eff(baseline)).abs() < 0.12,
        "efficiency moved too much: {} vs {}",
        eff(&restarted),
        eff(baseline)
    );
}
