//! The §2 design-space claims, tested: the hybrid keeps the strengths of
//! both pure architectures and avoids their weaknesses.

use netsession::baseline::bittorrent::{Swarm, SwarmConfig};
use netsession::baseline::infra::InfraCdn;
use netsession::core::rng::DetRng;
use netsession::core::units::{Bandwidth, ByteCount};
use netsession::hybrid::{HybridSim, ScenarioConfig};
use netsession::logs::records::DownloadOutcome;

fn hybrid(edge_backstop: bool) -> netsession::hybrid::SimOutput {
    let mut cfg = ScenarioConfig::tiny();
    cfg.edge_backstop = edge_backstop;
    HybridSim::run_config(cfg)
}

#[test]
fn hybrid_offloads_infrastructure_unlike_pure_cdn() {
    let out = hybrid(true);
    let infra_cdn = InfraCdn::default();
    // In the pure CDN every byte is origin traffic.
    let total: u64 = out
        .dataset
        .downloads
        .iter()
        .map(|d| d.total_bytes().bytes())
        .sum();
    let pure_cdn_bytes = infra_cdn.infrastructure_bytes(ByteCount(total));
    let hybrid_infra: u64 = out
        .dataset
        .downloads
        .iter()
        .map(|d| d.bytes_infra.bytes())
        .sum();
    assert!(
        (hybrid_infra as f64) < pure_cdn_bytes.bytes() as f64 * 0.9,
        "the hybrid must save ≥10% origin traffic (saved {:.0}%)",
        (1.0 - hybrid_infra as f64 / pure_cdn_bytes.bytes() as f64) * 100.0
    );
}

#[test]
fn hybrid_keeps_reliability_unlike_pure_p2p() {
    let with = hybrid(true);
    let without = hybrid(false);
    let rate = |o: &netsession::hybrid::SimOutput| {
        o.dataset
            .downloads
            .iter()
            .filter(|d| d.outcome == DownloadOutcome::Completed)
            .count() as f64
            / o.dataset.downloads.len().max(1) as f64
    };
    assert!(rate(&with) > 0.85, "hybrid completion {}", rate(&with));
    assert!(
        rate(&with) > rate(&without),
        "backstop must beat pure p2p ({} vs {})",
        rate(&with),
        rate(&without)
    );
}

#[test]
fn freeloading_is_harmless_in_the_hybrid_but_punished_in_bittorrent() {
    // Hybrid: force everyone to disable uploads — downloads still complete
    // (the infrastructure absorbs the cost, §3.4).
    let mut cfg = ScenarioConfig::tiny();
    cfg.enable_fraction_override = Some(0.0);
    let out = HybridSim::run_config(cfg);
    let completed = out
        .dataset
        .downloads
        .iter()
        .filter(|d| d.outcome == DownloadOutcome::Completed)
        .count() as f64
        / out.dataset.downloads.len().max(1) as f64;
    assert!(
        completed > 0.85,
        "all-freeloader hybrid still completes: {completed}"
    );
    assert_eq!(
        out.stats.p2p_bytes, 0,
        "nobody uploads, nobody swarm-serves"
    );

    // BitTorrent: free-riders in a seed-scarce swarm fall behind or starve.
    let mut rng = DetRng::seeded(11);
    let swarm = Swarm::new(
        SwarmConfig {
            freerider_fraction: 0.3,
            leechers: 80,
            seeds: 1,
            pieces: 96,
            max_rounds: 1500,
            ..SwarmConfig::default()
        },
        &mut rng,
    );
    let result = swarm.run(&mut rng);
    let contributors = result
        .mean_finish_round(false)
        .expect("contributors finish");
    // None means fully starved — the strongest form of punishment.
    if let Some(freeriders) = result.mean_finish_round(true) {
        assert!(freeriders > contributors);
    }
}

#[test]
fn infra_cdn_speed_is_the_downlink_hybrid_peers_add_capacity_not_speed() {
    // Fig 4's story: peer-assisted downloads are somewhat slower per
    // download, but the system serves the same demand with a fraction of
    // the infrastructure.
    let out = hybrid(true);
    let infra = InfraCdn::default();
    let downlink = Bandwidth::from_mbps(16.0);
    let t = infra
        .download_time(ByteCount::from_gib(1), downlink)
        .unwrap();
    assert!(t.as_secs_f64() > 0.0);
    let offload =
        out.stats.p2p_bytes as f64 / (out.stats.p2p_bytes + out.stats.edge_bytes).max(1) as f64;
    assert!(offload > 0.15, "offload {offload}");
}
