//! Live swarm over real sockets: a control plane, an edge server, and five
//! peer daemons on loopback TCP. The first daemon seeds from the edge;
//! the rest pull most bytes from each other — §3.3's Download Manager
//! flow, verbatim, on a real network stack.
//!
//! Run with: `cargo run --release --example live_swarm`

use netsession::core::hash::sha256;
use netsession::core::id::{CpCode, Guid, ObjectId};
use netsession::core::policy::DownloadPolicy;
use netsession::edge::accounting::AccountingLedger;
use netsession::edge::auth::EdgeAuth;
use netsession::edge::store::ContentStore;
use netsession::net::control_server::ControlServer;
use netsession::net::edge_server::EdgeHttpServer;
use netsession::net::monitor_server::{default_rules, MonitorServer, MonitorTarget};
use netsession::net::peer_daemon::PeerDaemon;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    // Publish a 2 MB "installer" on the edge.
    let auth = EdgeAuth::from_seed(2012);
    let store = Arc::new(ContentStore::new());
    let content: Vec<u8> = (0..2_000_000u32).map(|i| (i * 2654435761) as u8).collect();
    let expected = sha256(&content);
    store.publish_content(
        ObjectId(1),
        CpCode(1),
        content.clone(),
        64 * 1024,
        DownloadPolicy::peer_assisted(),
    );
    let ledger = Arc::new(AccountingLedger::new());
    let edge = EdgeHttpServer::start("127.0.0.1:0", store, auth.clone(), ledger).expect("edge");
    let control = ControlServer::start("127.0.0.1:0", auth).expect("control");
    println!(
        "edge at {}, control plane at {}",
        edge.local_addr(),
        control.local_addr()
    );
    println!(
        "admin endpoints (curl /metrics, /healthz, /varz): edge {}, control {}",
        edge.admin_addr(),
        control.admin_addr()
    );

    // A monitoring node scrapes both servers twice a second and evaluates
    // the stock alert rules over the merged fleet snapshot.
    let targets = vec![
        MonitorTarget::new("control", control.admin_addr()),
        MonitorTarget::new("edge", edge.admin_addr()),
    ];
    let rules = default_rules(&targets);
    let monitor = MonitorServer::start("127.0.0.1:0", targets, Duration::from_millis(500), rules)
        .expect("monitor");
    println!(
        "monitor scraping the fleet; aggregated view at {}",
        monitor.admin_addr()
    );

    let mut totals = (0u64, 0u64);
    for i in 1..=5u64 {
        let daemon = PeerDaemon::start(
            control.local_addr(),
            edge.local_addr(),
            Guid(i as u128),
            true,
        )
        .expect("daemon");
        daemon.set_monitor_addr(monitor.local_addr());
        let report = daemon.download(ObjectId(1)).expect("download");
        assert_eq!(report.content_hash, expected, "content verified");
        println!(
            "peer {} downloaded: {:>8} B from edge, {:>8} B from {} peer(s) — hash OK",
            i, report.bytes_from_edge, report.bytes_from_peers, report.peer_sources
        );
        totals.0 += report.bytes_from_edge;
        totals.1 += report.bytes_from_peers;
        // Leave the daemon running so it can seed the next one.
        std::mem::forget(daemon);
        std::thread::sleep(std::time::Duration::from_millis(200));
    }

    println!();
    println!(
        "fleet totals: {} B from the edge, {} B peer-to-peer ({:.0}% offloaded)",
        totals.0,
        totals.1,
        totals.1 as f64 / (totals.0 + totals.1) as f64 * 100.0
    );
    let usage = control.drain_usage();
    println!(
        "usage records collected by the control plane: {}",
        usage.len()
    );
    println!(
        "monitor: {} scrape rounds, active alerts: {:?}",
        monitor.scrapes(),
        monitor.active_alerts()
    );
    monitor.shutdown();
    control.shutdown();
    edge.shutdown();
}
