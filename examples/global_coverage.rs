//! Global coverage (§5.3): do peers extend the CDN's reach in under-served
//! regions?
//!
//! Runs the standard month, then compares the peer-served byte share per
//! continent for a p2p-enabled provider — the Fig 8 question.
//!
//! Run with: `cargo run --release --example global_coverage`

use netsession::analytics::regions;
use netsession::hybrid::{HybridSim, ScenarioConfig};
use netsession::world::customers::customer_by_name;
use netsession::world::geo::{continent_of, Continent, WORLD_COUNTRIES};
use netsession::world::population::PopulationConfig;
use std::collections::HashMap;

fn main() {
    let config = ScenarioConfig {
        population: PopulationConfig {
            peers: 10_000,
            ases: 350,
            ..PopulationConfig::default()
        },
        objects: 1_500,
        ..ScenarioConfig::default()
    };
    println!(
        "simulating {} peers for the coverage question…",
        config.population.peers
    );
    let out = HybridSim::run_config(config);

    let cp = customer_by_name("G").expect("customer G").cp;
    let classes = regions::fig8_country_classes(&out.dataset, cp);

    let mut per_continent: HashMap<Continent, (u64, u64)> = HashMap::new();
    for (country, infra, peers, _) in &classes {
        let cont = continent_of(WORLD_COUNTRIES[*country as usize].iso);
        let e = per_continent.entry(cont).or_insert((0, 0));
        e.0 += infra;
        e.1 += peers;
    }

    println!();
    println!("peer-served byte share for customer G, by continent:");
    let mut rows: Vec<(Continent, f64, u64)> = per_continent
        .into_iter()
        .map(|(c, (infra, peers))| {
            (
                c,
                peers as f64 / (infra + peers).max(1) as f64,
                infra + peers,
            )
        })
        .collect();
    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    for (cont, share, total) in &rows {
        println!(
            "  {:<14?} {:>5.0}% from peers   ({:.1} GB)",
            cont,
            share * 100.0,
            *total as f64 / 1e9
        );
    }
    println!();
    println!(
        "the paper's verdict (§5.3): \"the picture is mixed … the contributions do not \
         vary much overall\", because the edge already covers the globe — the spread \
         above should be broad but not extreme"
    );
}
