//! Flash-crowd game-patch release — the Download Manager's home turf
//! (§3.3: "a typical use case is to distribute large objects that are
//! several GBs in size, such as software installation images").
//!
//! We build a standard world, then replace the workload with a release
//! day: everyone wants the same multi-GB patch within 48 hours. The swarm
//! bootstraps from the edge, then takes over — watch peer efficiency climb
//! hour by hour as copies spread (the Fig 5 dynamic, compressed).
//!
//! Run with: `cargo run --release --example software_release`

use netsession::core::rng::DetRng;
use netsession::core::time::{SimDuration, SimTime};
use netsession::hybrid::{HybridSim, Scenario, ScenarioConfig};
use netsession::world::population::PopulationConfig;
use netsession::world::workload::Request;

fn main() {
    let mut config = ScenarioConfig {
        population: PopulationConfig {
            peers: 6_000,
            ases: 250,
            ..PopulationConfig::default()
        },
        objects: 600,
        ..ScenarioConfig::default()
    };
    // A launch spike means hundreds of concurrent swarms on one object;
    // keep per-download connection counts moderate so the fluid model
    // stays fast at this concurrency.
    config.transfer.max_download_connections = 12;
    config.workload.downloads = 3_000;
    let mut scenario = Scenario::build(config);

    // The patch: the largest p2p-enabled object in the catalog.
    let patch = scenario
        .catalog
        .objects()
        .iter()
        .filter(|o| o.policy.p2p_enabled)
        .max_by_key(|o| o.size.bytes())
        .expect("a p2p flagship exists")
        .clone();
    println!(
        "release day: patch {} ({}), {} peers grabbing it over 48h",
        patch.id, patch.size, 3_000
    );

    // Replace the workload: 6000 requests for the patch, arrival density
    // doubling into the evening of day one.
    let mut rng = DetRng::seeded(7);
    let mut requests = Vec::new();
    for _ in 0..3_000 {
        let peer = netsession::core::id::PeerIndex(rng.index(scenario.population.len()) as u32);
        // Release at day 2, 10:00 GMT; arrivals exponential-ish after it.
        let offset_h = rng.exp(14.0).min(48.0);
        let at = SimTime::ZERO
            + SimDuration::from_days(2)
            + SimDuration::from_hours(10)
            + SimDuration::from_secs_f64(offset_h * 3600.0);
        requests.push(Request {
            at,
            peer,
            object: patch.id,
        });
    }
    requests.sort_by_key(|r| r.at);
    scenario.workload.requests = requests;

    let out = HybridSim::new(scenario).run();

    // Efficiency by hour since release.
    let release = SimTime::ZERO + SimDuration::from_days(2) + SimDuration::from_hours(10);
    let mut buckets: Vec<(f64, f64)> = vec![(0.0, 0.0); 49];
    for d in out
        .dataset
        .downloads
        .iter()
        .filter(|d| d.object == patch.id)
    {
        let h = (d.started.since(release).as_hours_f64() as usize).min(48);
        buckets[h].0 += d.peer_efficiency();
        buckets[h].1 += 1.0;
    }
    println!();
    println!("{:>6} {:>10} {:>12}", "hour", "downloads", "efficiency");
    for (h, (sum, n)) in buckets.iter().enumerate() {
        if *n < 5.0 {
            continue;
        }
        if h % 3 == 0 {
            println!("{:>6} {:>10} {:>11.0}%", h, n, sum / n * 100.0);
        }
    }
    let total_eff: f64 = out
        .dataset
        .downloads
        .iter()
        .filter(|d| d.object == patch.id)
        .map(|d| d.peer_efficiency())
        .sum::<f64>()
        / out.dataset.downloads.len().max(1) as f64;
    println!();
    println!(
        "release served: {:.2} TB total, {:.0}% from peers — the edge absorbed the launch spike, the swarm the tail",
        (out.stats.p2p_bytes + out.stats.edge_bytes) as f64 / 1e12,
        total_eff * 100.0,
    );
}
