//! Quickstart: simulate a small NetSession deployment for one month and
//! print the headline measurements the paper reports in §5.1.
//!
//! Run with: `cargo run --release --example quickstart`

use netsession::analytics::overview;
use netsession::hybrid::{HybridSim, ScenarioConfig};
use netsession::world::population::PopulationConfig;
use netsession::world::workload::WorkloadConfig;

fn main() {
    let config = ScenarioConfig {
        population: PopulationConfig {
            peers: 8_000,
            ases: 300,
            ..PopulationConfig::default()
        },
        objects: 1_000,
        workload: WorkloadConfig {
            downloads: 10_000,
            ..WorkloadConfig::default()
        },
        ..ScenarioConfig::default()
    };
    println!(
        "simulating one month: {} peers, {} downloads…",
        config.population.peers, config.workload.downloads
    );
    let out = HybridSim::run_config(config);
    let h = overview::headline(&out.dataset);

    println!();
    println!(
        "downloads logged ............. {}",
        out.dataset.downloads.len()
    );
    println!("logins ....................... {}", out.stats.logins);
    println!(
        "uploads enabled .............. {:.1}% of peers (paper: ~31%)",
        h.enabled_fraction * 100.0
    );
    println!(
        "p2p-enabled files ............ {:.1}% (paper: 1.7%)",
        h.p2p_file_fraction * 100.0
    );
    println!(
        "bytes on p2p-enabled files ... {:.1}% (paper: 57.4%)",
        h.p2p_byte_share * 100.0
    );
    println!(
        "mean peer efficiency ......... {:.1}% (paper: 71.4%)",
        h.mean_peer_efficiency * 100.0
    );
    println!(
        "offloaded to peers ........... {:.1}% (paper: 70-80%)",
        h.offload_fraction * 100.0
    );
    println!(
        "completed .................... {:.1}%",
        out.stats.completed as f64 / out.dataset.downloads.len().max(1) as f64 * 100.0
    );
}
