//! Do ISPs suffer from NetSession? (§6.1)
//!
//! Runs the month, builds the AS-level traffic matrix, and prints the
//! paper's three balance findings: the intra-AS share, the heavy/light
//! uploader split, and the balance of the heavy uploaders.
//!
//! Run with: `cargo run --release --example isp_traffic`

use netsession::analytics::astraffic;
use netsession::hybrid::{HybridSim, ScenarioConfig};
use netsession::world::population::PopulationConfig;

fn main() {
    let config = ScenarioConfig {
        population: PopulationConfig {
            peers: 10_000,
            ases: 350,
            ..PopulationConfig::default()
        },
        objects: 1_500,
        ..ScenarioConfig::default()
    };
    println!(
        "simulating {} peers for the ISP question…",
        config.population.peers
    );
    let out = HybridSim::run_config(config);
    let t = astraffic::build(&out.dataset);

    println!();
    println!(
        "p2p bytes total: {:.2} TB; intra-AS: {:.0}% (paper: 18%)",
        t.total_bytes as f64 / 1e12,
        t.intra_as_share() * 100.0
    );

    let heavy = t.heavy_uploaders(0.02);
    println!(
        "top 2% of uploading ASes ({}) carry {:.0}% of inter-AS bytes (paper: ~90%)",
        heavy.len(),
        t.heavy_share(&heavy) * 100.0
    );

    let ratios = t.heavy_balance_ratios(&heavy);
    let balanced = ratios.iter().filter(|r| **r > 0.5 && **r < 2.0).count();
    println!(
        "heavy uploaders within 2x of send/receive balance: {}/{} (paper: heavy traffic is well balanced)",
        balanced,
        ratios.len()
    );

    let as_model = &out.scenario.population.as_model;
    let direct = t.direct_link_share(&heavy, |a, b| {
        match (as_model.index_of(a), as_model.index_of(b)) {
            (Some(x), Some(y)) => as_model.direct_link(x, y),
            _ => false,
        }
    });
    println!(
        "heavy-pair bytes on direct AS links: {:.0}% (paper estimate: ~35%)",
        direct * 100.0
    );
    println!();
    println!(
        "conclusion (§6.1): the locality-aware selection keeps the traffic pattern \
         balanced — no AS is systematically drained"
    );
}
