//! Provider policies and transfer configuration.
//!
//! "A policy defined by the content provider is used to decide whether a
//! particular file may be downloaded and uploaded; in addition, various
//! configurable options apply to each download and upload. These policies
//! and options are securely communicated to the peers through the trusted
//! edge-server infrastructure" (§3.5). Also captured here: the NetSession
//! best practices of §3.9 (upload rate limits, per-object upload caps,
//! idle-link backoff) and the global upload-connection limit of §3.4.

use crate::units::Bandwidth;

/// Per-object policy, set by the content provider.
#[derive(Clone, Debug, PartialEq)]
pub struct DownloadPolicy {
    /// Whether the object may be downloaded at all.
    pub download_allowed: bool,
    /// Whether peer-assisted (p2p) delivery is enabled for this object.
    /// In the paper's trace only 1.7% of files had this on, but they
    /// accounted for 57.4% of bytes (§5.1).
    pub p2p_enabled: bool,
    /// Whether peers may re-upload this object to other peers.
    pub upload_allowed: bool,
    /// Maximum number of times one peer uploads this object before the
    /// control plane stops selecting it ("peers upload each object at most a
    /// limited number of times", §3.9). `None` = unlimited.
    pub per_peer_upload_cap: Option<u32>,
}

impl DownloadPolicy {
    /// The common infrastructure-only policy.
    pub fn infrastructure_only() -> Self {
        DownloadPolicy {
            download_allowed: true,
            p2p_enabled: false,
            upload_allowed: false,
            per_peer_upload_cap: None,
        }
    }

    /// The common peer-assisted policy with the default upload cap.
    pub fn peer_assisted() -> Self {
        DownloadPolicy {
            download_allowed: true,
            p2p_enabled: true,
            upload_allowed: true,
            per_peer_upload_cap: Some(DEFAULT_PER_OBJECT_UPLOAD_CAP),
        }
    }
}

/// Default per-object upload cap (uploads of one object by one peer).
/// §6.1: "NetSession avoids such biases in part by limiting the number of
/// times a peer will upload a file it has locally cached."
pub const DEFAULT_PER_OBJECT_UPLOAD_CAP: u32 = 30;

/// Default number of peers the control plane returns per query (§3.7:
/// "By default, up to 40 peers are returned").
pub const DEFAULT_PEERS_RETURNED: usize = 40;

/// Client-side transfer configuration — the §3.9 best practices plus the
/// §3.4 global connection limit. Communicated from the control plane via
/// configuration updates.
#[derive(Clone, Debug, PartialEq)]
pub struct TransferConfig {
    /// Global limit on simultaneous upload connections a peer allows
    /// ("only a globally configurable limit on the total number of upload
    /// connections", §3.4).
    pub max_upload_connections: usize,
    /// Maximum simultaneous p2p download connections per transfer.
    pub max_download_connections: usize,
    /// Hard cap on aggregate upload rate, as a fraction of the peer's
    /// upstream link (uploads are "intentionally limited", §3.9).
    pub upload_rate_fraction: f64,
    /// When the user's own applications are using the link, throttle uploads
    /// to this fraction (idle-link backoff, §3.9). Zero pauses uploads.
    pub busy_upload_fraction: f64,
    /// How long a completed object stays in the local cache and is announced
    /// to the control plane, in hours (§5.2: "keeps it in a local cache for a
    /// certain amount of time").
    pub cache_ttl_hours: u32,
    /// How many additional peer-list queries to issue when connections fail
    /// ("additional queries are issued until a sufficient number of peer
    /// connections succeed", §3.7).
    pub max_requery_rounds: u32,
    /// Minimum number of established peer connections considered
    /// "sufficient" before requerying stops.
    pub sufficient_peer_connections: usize,
}

impl Default for TransferConfig {
    fn default() -> Self {
        TransferConfig {
            max_upload_connections: 8,
            max_download_connections: 40,
            upload_rate_fraction: 0.8,
            busy_upload_fraction: 0.1,
            cache_ttl_hours: 14 * 24,
            max_requery_rounds: 3,
            sufficient_peer_connections: 10,
        }
    }
}

impl TransferConfig {
    /// Effective upload-rate cap for a peer with the given upstream link,
    /// considering whether the link is currently busy with user traffic.
    pub fn upload_cap(&self, upstream: Bandwidth, link_busy: bool) -> Bandwidth {
        let frac = if link_busy {
            self.busy_upload_fraction
        } else {
            self.upload_rate_fraction
        };
        Bandwidth::from_bytes_per_sec(upstream.bytes_per_sec() * frac.clamp(0.0, 1.0))
    }
}

/// Which binary variant a content provider bundles: uploads initially
/// enabled or initially disabled (§5.1: "the NetSession binary is available
/// in two versions").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UploadDefault {
    /// Peer-assist on by default.
    Enabled,
    /// Download-manager-only by default.
    Disabled,
}

impl UploadDefault {
    /// Boolean view: `true` iff uploads start enabled.
    pub fn as_bool(self) -> bool {
        matches!(self, UploadDefault::Enabled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canned_policies() {
        let infra = DownloadPolicy::infrastructure_only();
        assert!(infra.download_allowed && !infra.p2p_enabled && !infra.upload_allowed);
        let p2p = DownloadPolicy::peer_assisted();
        assert!(p2p.p2p_enabled && p2p.upload_allowed);
        assert_eq!(p2p.per_peer_upload_cap, Some(DEFAULT_PER_OBJECT_UPLOAD_CAP));
    }

    #[test]
    fn upload_cap_respects_busy_link() {
        let cfg = TransferConfig::default();
        let up = Bandwidth::from_mbps(1.0);
        let idle = cfg.upload_cap(up, false);
        let busy = cfg.upload_cap(up, true);
        assert!(idle.as_mbps() > busy.as_mbps());
        assert!((idle.as_mbps() - 0.8).abs() < 1e-9);
        assert!((busy.as_mbps() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn upload_cap_clamps_fractions() {
        let cfg = TransferConfig {
            upload_rate_fraction: 2.0,
            ..TransferConfig::default()
        };
        let up = Bandwidth::from_mbps(1.0);
        assert!(cfg.upload_cap(up, false).as_mbps() <= 1.0 + 1e-9);
    }

    #[test]
    fn upload_default_bool() {
        assert!(UploadDefault::Enabled.as_bool());
        assert!(!UploadDefault::Disabled.as_bool());
    }
}
