//! Piece bookkeeping for the swarming protocol.
//!
//! "As in BitTorrent, objects are broken into fixed-size pieces that can be
//! downloaded and their content hashes verified separately, and peers
//! exchange information about which pieces of the file they have locally
//! available" (§3.4). [`Manifest`] is the edge-generated description of a
//! versioned object (piece size + per-piece hashes, §3.5); [`PieceMap`] is
//! the have-bitmap peers exchange.

use crate::hash::{sha256, Digest, Sha256};
use crate::id::VersionId;
use crate::units::ByteCount;

/// Index of one fixed-size piece within an object.
pub type PieceIndex = u32;

/// Default piece size: 1 MiB, a typical choice for multi-GB installers.
pub const DEFAULT_PIECE_SIZE: u64 = 1 << 20;

/// Edge-generated description of one object *version*: secure content ID,
/// total size, piece size, and the secure hash of every piece. Distributed
/// to peers over the trusted HTTP(S) edge connection so they can validate
/// pieces received from untrusted peers (§3.5).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Manifest {
    /// Versioned secure content ID.
    pub version: VersionId,
    /// Total object size in bytes.
    pub size: ByteCount,
    /// Fixed piece size in bytes (last piece may be short).
    pub piece_size: u64,
    /// SHA-256 of each piece, in piece order.
    pub piece_hashes: Vec<Digest>,
    /// Secure ID of the whole version: hash over the piece-hash list, so two
    /// manifests with identical content have identical IDs.
    pub content_id: Digest,
}

impl Manifest {
    /// Build a manifest from actual content bytes (used by the live edge
    /// server and by tests).
    pub fn from_content(version: VersionId, content: &[u8], piece_size: u64) -> Self {
        assert!(piece_size > 0, "piece size must be positive");
        let piece_hashes: Vec<Digest> = content.chunks(piece_size as usize).map(sha256).collect();
        let piece_hashes = if piece_hashes.is_empty() {
            // Zero-byte object still has one (empty) piece for bookkeeping.
            vec![sha256(b"")]
        } else {
            piece_hashes
        };
        let content_id = Self::id_over(&piece_hashes, version);
        Manifest {
            version,
            size: ByteCount::from_bytes(content.len() as u64),
            piece_size,
            piece_hashes,
            content_id,
        }
    }

    /// Build a *synthetic* manifest for simulation: piece hashes are derived
    /// deterministically from the version ID, so no gigabytes of content
    /// need to exist in memory, yet verification logic still has real hashes
    /// to compare.
    pub fn synthetic(version: VersionId, size: ByteCount, piece_size: u64) -> Self {
        assert!(piece_size > 0, "piece size must be positive");
        let n = Self::piece_count_for(size, piece_size);
        let piece_hashes: Vec<Digest> = (0..n)
            .map(|i| Self::synthetic_piece_hash(version, i))
            .collect();
        let content_id = Self::id_over(&piece_hashes, version);
        Manifest {
            version,
            size,
            piece_size,
            piece_hashes,
            content_id,
        }
    }

    /// The deterministic hash a correct synthetic piece carries. A corrupted
    /// transfer is modeled by substituting any other digest.
    pub fn synthetic_piece_hash(version: VersionId, piece: PieceIndex) -> Digest {
        let mut h = Sha256::new();
        h.update(&version.object.0.to_be_bytes());
        h.update(&version.version.to_be_bytes());
        h.update(&piece.to_be_bytes());
        h.finalize()
    }

    fn id_over(piece_hashes: &[Digest], version: VersionId) -> Digest {
        let mut h = Sha256::new();
        h.update(&version.object.0.to_be_bytes());
        h.update(&version.version.to_be_bytes());
        for d in piece_hashes {
            h.update(&d.0);
        }
        h.finalize()
    }

    /// Number of pieces for a given size/piece-size pair (≥ 1).
    pub fn piece_count_for(size: ByteCount, piece_size: u64) -> u32 {
        let n = size.bytes().div_ceil(piece_size);
        n.max(1) as u32
    }

    /// Number of pieces in this manifest.
    pub fn piece_count(&self) -> u32 {
        self.piece_hashes.len() as u32
    }

    /// Byte length of a specific piece (the last one may be short).
    pub fn piece_len(&self, piece: PieceIndex) -> u64 {
        let n = self.piece_count();
        assert!(piece < n, "piece {piece} out of range ({n} pieces)");
        if self.size.bytes() == 0 {
            return 0;
        }
        if piece + 1 == n {
            let rem = self.size.bytes() - (n as u64 - 1) * self.piece_size;
            if rem == 0 {
                self.piece_size
            } else {
                rem
            }
        } else {
            self.piece_size
        }
    }

    /// Verify a piece of real content against the manifest.
    pub fn verify_piece(&self, piece: PieceIndex, data: &[u8]) -> bool {
        (piece as usize) < self.piece_hashes.len()
            && data.len() as u64 == self.piece_len(piece)
            && sha256(data) == self.piece_hashes[piece as usize]
    }

    /// Verify a piece by digest (simulation path: transfers carry digests
    /// instead of content bytes).
    pub fn verify_digest(&self, piece: PieceIndex, digest: Digest) -> bool {
        (piece as usize) < self.piece_hashes.len() && self.piece_hashes[piece as usize] == digest
    }
}

/// The have-bitmap: which pieces of an object a peer holds.
#[derive(Clone, PartialEq, Eq)]
pub struct PieceMap {
    bits: Vec<u64>,
    len: u32,
    have: u32,
}

impl PieceMap {
    /// Empty map over `len` pieces.
    pub fn empty(len: u32) -> Self {
        PieceMap {
            bits: vec![0u64; (len as usize).div_ceil(64)],
            len,
            have: 0,
        }
    }

    /// Full map over `len` pieces (a seeder).
    pub fn full(len: u32) -> Self {
        let mut m = Self::empty(len);
        for i in 0..len {
            m.set(i);
        }
        m
    }

    /// Number of pieces the map covers.
    pub fn len(&self) -> u32 {
        self.len
    }

    /// `true` if the map covers zero pieces.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of pieces currently held.
    pub fn have_count(&self) -> u32 {
        self.have
    }

    /// `true` once every piece is held.
    pub fn is_complete(&self) -> bool {
        self.have == self.len
    }

    /// Completion in `[0, 1]`.
    pub fn fraction(&self) -> f64 {
        if self.len == 0 {
            1.0
        } else {
            self.have as f64 / self.len as f64
        }
    }

    /// Whether piece `i` is held.
    pub fn has(&self, i: PieceIndex) -> bool {
        assert!(i < self.len, "piece {i} out of range ({})", self.len);
        self.bits[(i / 64) as usize] & (1u64 << (i % 64)) != 0
    }

    /// Mark piece `i` held. Returns `true` if it was newly set.
    pub fn set(&mut self, i: PieceIndex) -> bool {
        assert!(i < self.len, "piece {i} out of range ({})", self.len);
        let w = &mut self.bits[(i / 64) as usize];
        let mask = 1u64 << (i % 64);
        if *w & mask == 0 {
            *w |= mask;
            self.have += 1;
            true
        } else {
            false
        }
    }

    /// Clear piece `i` (used when a piece fails verification and is
    /// discarded, §3.5). Returns `true` if it was previously set.
    pub fn clear(&mut self, i: PieceIndex) -> bool {
        assert!(i < self.len, "piece {i} out of range ({})", self.len);
        let w = &mut self.bits[(i / 64) as usize];
        let mask = 1u64 << (i % 64);
        if *w & mask != 0 {
            *w &= !mask;
            self.have -= 1;
            true
        } else {
            false
        }
    }

    /// Iterate over the indices of missing pieces.
    pub fn missing(&self) -> impl Iterator<Item = PieceIndex> + '_ {
        (0..self.len).filter(move |i| !self.has(*i))
    }

    /// Iterate over the indices of held pieces.
    pub fn held(&self) -> impl Iterator<Item = PieceIndex> + '_ {
        (0..self.len).filter(move |i| self.has(*i))
    }

    /// Pieces that `other` holds and `self` is missing — the candidate set
    /// when deciding what to request from a remote peer.
    pub fn wanted_from(&self, other: &PieceMap) -> Vec<PieceIndex> {
        assert_eq!(self.len, other.len, "piece maps over different objects");
        (0..self.len)
            .filter(|i| !self.has(*i) && other.has(*i))
            .collect()
    }

    /// First missing piece at or after `from`, wrapping around; `None` when
    /// complete. Used by the in-order edge download cursor.
    pub fn next_missing_from(&self, from: PieceIndex) -> Option<PieceIndex> {
        if self.is_complete() {
            return None;
        }
        let n = self.len;
        (0..n).map(|k| (from + k) % n).find(|i| !self.has(*i))
    }
}

impl std::fmt::Debug for PieceMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PieceMap({}/{})", self.have, self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::ObjectId;

    fn ver() -> VersionId {
        VersionId {
            object: ObjectId(42),
            version: 1,
        }
    }

    #[test]
    fn manifest_from_content_counts_pieces() {
        let content = vec![7u8; 2500];
        let m = Manifest::from_content(ver(), &content, 1000);
        assert_eq!(m.piece_count(), 3);
        assert_eq!(m.piece_len(0), 1000);
        assert_eq!(m.piece_len(2), 500);
        assert!(m.verify_piece(0, &content[..1000]));
        assert!(m.verify_piece(2, &content[2000..]));
        // A wrong-content piece fails (content differs only by position here,
        // so corrupt one byte to make it genuinely different).
        let mut bad = content[..1000].to_vec();
        bad[0] ^= 0xff;
        assert!(!m.verify_piece(0, &bad));
    }

    #[test]
    fn manifest_rejects_wrong_length_piece() {
        let content = vec![1u8; 1500];
        let m = Manifest::from_content(ver(), &content, 1000);
        assert!(!m.verify_piece(1, &content[1000..1400]));
    }

    #[test]
    fn exact_multiple_has_full_last_piece() {
        let m = Manifest::synthetic(ver(), ByteCount::from_bytes(4000), 1000);
        assert_eq!(m.piece_count(), 4);
        assert_eq!(m.piece_len(3), 1000);
    }

    #[test]
    fn zero_byte_object_has_one_piece() {
        let m = Manifest::from_content(ver(), &[], 1000);
        assert_eq!(m.piece_count(), 1);
        let s = Manifest::synthetic(ver(), ByteCount::ZERO, 1000);
        assert_eq!(s.piece_count(), 1);
        assert_eq!(s.piece_len(0), 0);
    }

    #[test]
    fn synthetic_digests_verify() {
        let m = Manifest::synthetic(ver(), ByteCount::from_mib(5), DEFAULT_PIECE_SIZE);
        for i in 0..m.piece_count() {
            assert!(m.verify_digest(i, Manifest::synthetic_piece_hash(ver(), i)));
        }
        // A digest for the wrong piece index fails.
        assert!(!m.verify_digest(0, Manifest::synthetic_piece_hash(ver(), 1)));
        // A digest for a different version fails.
        let other = VersionId {
            object: ObjectId(42),
            version: 2,
        };
        assert!(!m.verify_digest(0, Manifest::synthetic_piece_hash(other, 0)));
    }

    #[test]
    fn content_id_is_version_sensitive() {
        let a = Manifest::synthetic(ver(), ByteCount::from_mib(1), DEFAULT_PIECE_SIZE);
        let b = Manifest::synthetic(
            VersionId {
                object: ObjectId(42),
                version: 2,
            },
            ByteCount::from_mib(1),
            DEFAULT_PIECE_SIZE,
        );
        assert_ne!(a.content_id, b.content_id);
    }

    #[test]
    fn piecemap_set_clear_count() {
        let mut m = PieceMap::empty(130);
        assert_eq!(m.have_count(), 0);
        assert!(m.set(0));
        assert!(m.set(129));
        assert!(!m.set(0), "double set reports false");
        assert_eq!(m.have_count(), 2);
        assert!(m.has(0) && m.has(129) && !m.has(64));
        assert!(m.clear(0));
        assert!(!m.clear(0));
        assert_eq!(m.have_count(), 1);
    }

    #[test]
    fn piecemap_full_and_fraction() {
        let m = PieceMap::full(10);
        assert!(m.is_complete());
        assert_eq!(m.fraction(), 1.0);
        let mut half = PieceMap::empty(10);
        for i in 0..5 {
            half.set(i);
        }
        assert_eq!(half.fraction(), 0.5);
    }

    #[test]
    fn wanted_from_is_set_difference() {
        let mut mine = PieceMap::empty(8);
        mine.set(0);
        mine.set(1);
        let mut theirs = PieceMap::empty(8);
        theirs.set(1);
        theirs.set(2);
        theirs.set(5);
        assert_eq!(mine.wanted_from(&theirs), vec![2, 5]);
    }

    #[test]
    fn next_missing_wraps() {
        let mut m = PieceMap::empty(5);
        m.set(3);
        m.set(4);
        assert_eq!(m.next_missing_from(3), Some(0));
        assert_eq!(m.next_missing_from(1), Some(1));
        let full = PieceMap::full(5);
        assert_eq!(full.next_missing_from(0), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn piecemap_bounds_checked() {
        let m = PieceMap::empty(4);
        m.has(4);
    }
}
