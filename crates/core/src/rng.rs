//! Deterministic, splittable pseudo-randomness.
//!
//! Every experiment binary in the workspace must be exactly reproducible from
//! a single seed, independent of any external crate's internal algorithm
//! choices. [`DetRng`] is a small, fast SplitMix64/xoshiro256++ generator
//! implemented entirely here, so the workspace builds offline with no
//! dependency on the `rand` ecosystem.

/// Deterministic RNG: xoshiro256++ seeded via SplitMix64.
#[derive(Clone, Debug)]
pub struct DetRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

impl DetRng {
    /// Seed from a single 64-bit value.
    pub fn seeded(seed: u64) -> Self {
        let mut sm = seed;
        DetRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Derive an independent child stream, keyed by a label. Lets subsystems
    /// (population, workload, churn, …) consume randomness without perturbing
    /// each other — adding draws in one subsystem never changes another's.
    pub fn split(&mut self, label: u64) -> DetRng {
        let a = self.next_u64();
        DetRng::seeded(a ^ label.wrapping_mul(0x9e3779b97f4a7c15))
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next raw 32-bit output.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform float in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        // Lemire's multiply-shift rejection method: unbiased.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform usize in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Uniform float in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.f64() * (hi - lo)
    }

    /// Exponentially distributed value with the given mean.
    pub fn exp(&mut self, mean: f64) -> f64 {
        let u = 1.0 - self.f64(); // in (0, 1]
        -mean * u.ln()
    }

    /// Standard-normal draw (Box–Muller; one value per call for simplicity).
    pub fn normal(&mut self) -> f64 {
        let u1 = 1.0 - self.f64();
        let u2 = self.f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Log-normal draw parameterized by the underlying normal's `mu`/`sigma`.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.normal()).exp()
    }

    /// Pareto draw with scale `x_min` and shape `alpha` (heavy tail).
    pub fn pareto(&mut self, x_min: f64, alpha: f64) -> f64 {
        let u = 1.0 - self.f64();
        x_min / u.powf(1.0 / alpha)
    }

    /// Pick an index according to the given non-negative weights.
    /// Panics if the weights sum to zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weighted_index: zero total weight");
        let mut target = self.f64() * total;
        for (i, w) in weights.iter().enumerate() {
            if target < *w {
                return i;
            }
            target -= w;
        }
        weights.len() - 1
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Fill a byte slice with pseudo-random bytes.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = DetRng::seeded(123);
        let mut b = DetRng::seeded(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn split_streams_are_independent_of_parent_consumption() {
        let mut parent1 = DetRng::seeded(9);
        let child1 = parent1.split(1);
        let mut parent2 = DetRng::seeded(9);
        let child2 = parent2.split(1);
        let mut c1 = child1;
        let mut c2 = child2;
        for _ in 0..16 {
            assert_eq!(c1.next_u64(), c2.next_u64());
        }
    }

    #[test]
    fn below_is_in_range_and_covers_values() {
        let mut rng = DetRng::seeded(5);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.below(7) as usize;
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn f64_in_unit_interval_with_reasonable_mean() {
        let mut rng = DetRng::seeded(11);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = rng.f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn exp_has_requested_mean() {
        let mut rng = DetRng::seeded(13);
        let mean: f64 = (0..20_000).map(|_| rng.exp(4.0)).sum::<f64>() / 20_000.0;
        assert!((mean - 4.0).abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn pareto_respects_minimum() {
        let mut rng = DetRng::seeded(17);
        for _ in 0..1000 {
            assert!(rng.pareto(2.0, 1.5) >= 2.0);
        }
    }

    #[test]
    fn weighted_index_matches_weights_roughly() {
        let mut rng = DetRng::seeded(19);
        let w = [1.0, 3.0];
        let mut counts = [0usize; 2];
        for _ in 0..8000 {
            counts[rng.weighted_index(&w)] += 1;
        }
        let frac = counts[1] as f64 / 8000.0;
        assert!((frac - 0.75).abs() < 0.03, "frac {frac}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = DetRng::seeded(23);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "astronomically unlikely");
    }

    #[test]
    fn fill_bytes_handles_non_multiple_lengths() {
        let mut rng = DetRng::seeded(29);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|b| *b != 0));
    }
}
