//! Identifiers used throughout the NetSession reproduction.
//!
//! The paper's vocabulary (§3.4–§3.6, §4.1): every installation has a random
//! primary **GUID** chosen at install time; the cloning study (§6.2) added a
//! random 160-bit **secondary GUID** chosen at every start; files are
//! identified by object IDs and versioned **secure content IDs**; content
//! providers are identified by **CP codes**; peers are located in
//! **autonomous systems**.

use crate::rng::DetRng;
use std::fmt;

/// A peer installation's primary GUID — 128 random bits chosen when the
/// NetSession Interface is first installed (§3.4). Two installations cloned
/// from the same disk image share a GUID, which is exactly the anomaly the
/// paper's §6.2 investigates.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Guid(pub u128);

impl Guid {
    /// Draw a fresh random GUID, as the installer does.
    pub fn random(rng: &mut DetRng) -> Self {
        Guid(((rng.next_u64() as u128) << 64) | rng.next_u64() as u128)
    }

    /// Build from a raw value (tests, fixtures).
    pub const fn from_raw(v: u128) -> Self {
        Guid(v)
    }
}

impl fmt::Debug for Guid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Guid({:032x})", self.0)
    }
}

impl fmt::Display for Guid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// The 160-bit secondary GUID chosen freshly at every client start (§6.2).
/// Clients report the last five secondary GUIDs at login; the control plane
/// reconstructs chains from these reports to detect rollback/cloning.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SecondaryGuid(pub [u32; 5]);

impl SecondaryGuid {
    /// Draw a fresh random secondary GUID.
    pub fn random(rng: &mut DetRng) -> Self {
        SecondaryGuid([
            rng.next_u32(),
            rng.next_u32(),
            rng.next_u32(),
            rng.next_u32(),
            rng.next_u32(),
        ])
    }
}

impl fmt::Debug for SecondaryGuid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SGuid({:08x}{:08x}..)", self.0[0], self.0[1])
    }
}

/// A distributable object (one URL in the paper's trace). The trace had
/// 4,038,894 distinct URLs (Table 1).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId(pub u64);

impl ObjectId {
    /// Build from a raw value.
    pub const fn from_raw(v: u64) -> Self {
        ObjectId(v)
    }
}

impl fmt::Debug for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Obj({})", self.0)
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A *versioned* secure content ID. "Content can change over time, so it is
/// important that different versions are not mixed up in the same download.
/// Edge servers generate and maintain secure IDs of content, which are unique
/// to each version" (§3.5).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VersionId {
    /// The object this version belongs to.
    pub object: ObjectId,
    /// Monotonic version number assigned by the edge tier.
    pub version: u32,
}

impl fmt::Debug for VersionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Obj({})v{}", self.object.0, self.version)
    }
}

/// A content-provider account ("CP code" in Akamai terms, §4.1): "a number
/// identifying a specific account of a content provider that is offering the
/// file".
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CpCode(pub u32);

impl fmt::Debug for CpCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Cp({})", self.0)
    }
}

impl fmt::Display for CpCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// An autonomous-system number. The trace observed 31,190 distinct ASes
/// (Table 1).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AsNumber(pub u32);

impl fmt::Debug for AsNumber {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

impl fmt::Display for AsNumber {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

/// Dense index of a peer inside a simulation run. GUIDs are sparse 128-bit
/// values; the simulator keeps peers in contiguous arrays and refers to them
/// by this index.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PeerIndex(pub u32);

impl PeerIndex {
    /// Array-index view.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for PeerIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Identifier of one persistent control connection (peer ↔ CN), unique per
/// CN. Used to route asynchronous "connect to each other" instructions.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConnectionId(pub u64);

impl fmt::Debug for ConnectionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Conn({})", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guids_are_distinct_and_deterministic() {
        let mut rng = DetRng::seeded(42);
        let a = Guid::random(&mut rng);
        let b = Guid::random(&mut rng);
        assert_ne!(a, b);
        let mut rng2 = DetRng::seeded(42);
        assert_eq!(a, Guid::random(&mut rng2));
    }

    #[test]
    fn secondary_guids_are_160_bits_of_entropy() {
        let mut rng = DetRng::seeded(7);
        let a = SecondaryGuid::random(&mut rng);
        let b = SecondaryGuid::random(&mut rng);
        assert_ne!(a, b);
    }

    #[test]
    fn version_ids_order_by_object_then_version() {
        let a = VersionId {
            object: ObjectId(1),
            version: 9,
        };
        let b = VersionId {
            object: ObjectId(2),
            version: 0,
        };
        assert!(a < b);
    }

    #[test]
    fn display_forms() {
        assert_eq!(AsNumber(701).to_string(), "AS701");
        assert_eq!(ObjectId(5).to_string(), "5");
        assert_eq!(format!("{:?}", PeerIndex(3)), "P3");
    }
}
