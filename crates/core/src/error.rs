//! Workspace-wide error type.
//!
//! Every crate in the workspace funnels fallible operations through
//! [`Error`]; the variants mirror the failure modes the paper's log format
//! distinguishes (system-related causes such as "too many corrupted content
//! blocks" vs. other causes such as "the user's disk is full", §5.2).

use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T, E = Error> = std::result::Result<T, E>;

/// Unified error type for the NetSession reproduction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A wire frame or field failed to decode.
    Codec(String),
    /// A piece hash did not match the manifest entry (content corruption).
    IntegrityViolation {
        /// Object whose piece failed verification.
        object: crate::id::ObjectId,
        /// Index of the offending piece.
        piece: u32,
    },
    /// An authorization token was missing, expired, or forged.
    Unauthorized(String),
    /// The provider policy forbids the requested operation.
    PolicyDenied(String),
    /// The referenced entity (peer, object, version, …) is unknown.
    NotFound(String),
    /// The peer or server is in the wrong state for the operation.
    InvalidState(String),
    /// Download aborted by the user and never resumed (paper §5.2 outcome).
    Aborted,
    /// The local disk filled up — the paper's canonical "other cause".
    DiskFull,
    /// Network-level failure (connection refused, reset, NAT punch failed).
    Network(String),
    /// A configurable limit (connection count, rate, upload cap) was hit.
    LimitExceeded(String),
    /// An accounting report failed cross-validation against edge logs (§3.5).
    AccountingMismatch(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Codec(m) => write!(f, "codec error: {m}"),
            Error::IntegrityViolation { object, piece } => {
                write!(f, "integrity violation: object {object} piece {piece}")
            }
            Error::Unauthorized(m) => write!(f, "unauthorized: {m}"),
            Error::PolicyDenied(m) => write!(f, "policy denied: {m}"),
            Error::NotFound(m) => write!(f, "not found: {m}"),
            Error::InvalidState(m) => write!(f, "invalid state: {m}"),
            Error::Aborted => write!(f, "download aborted by user"),
            Error::DiskFull => write!(f, "disk full"),
            Error::Network(m) => write!(f, "network error: {m}"),
            Error::LimitExceeded(m) => write!(f, "limit exceeded: {m}"),
            Error::AccountingMismatch(m) => write!(f, "accounting mismatch: {m}"),
        }
    }
}

impl std::error::Error for Error {}

impl Error {
    /// Whether the paper's log format would classify this failure as a
    /// *system-related* cause (§5.2) rather than a user/environment cause.
    pub fn is_system_related(&self) -> bool {
        matches!(
            self,
            Error::Codec(_)
                | Error::IntegrityViolation { .. }
                | Error::Network(_)
                | Error::AccountingMismatch(_)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::ObjectId;

    #[test]
    fn display_is_human_readable() {
        let e = Error::IntegrityViolation {
            object: ObjectId::from_raw(7),
            piece: 3,
        };
        let s = e.to_string();
        assert!(s.contains("integrity"), "{s}");
        assert!(s.contains("piece 3"), "{s}");
    }

    #[test]
    fn system_related_classification_matches_paper_split() {
        assert!(Error::Network("reset".into()).is_system_related());
        assert!(Error::IntegrityViolation {
            object: ObjectId::from_raw(1),
            piece: 0
        }
        .is_system_related());
        assert!(!Error::DiskFull.is_system_related());
        assert!(!Error::Aborted.is_system_related());
        assert!(!Error::PolicyDenied("no p2p".into()).is_system_related());
    }
}
