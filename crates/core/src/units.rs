//! Traffic units: byte counts and link bandwidths.
//!
//! The paper reports sizes from kilobytes to multi-gigabyte installers
//! (Fig 3a) and speeds in Mbps (Fig 4). These newtypes keep the two scales
//! from being confused and provide the conversions the analytics need.

use crate::time::SimDuration;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

/// A number of content bytes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct ByteCount(pub u64);

impl ByteCount {
    /// Zero bytes.
    pub const ZERO: ByteCount = ByteCount(0);

    /// From raw bytes.
    pub const fn from_bytes(b: u64) -> Self {
        ByteCount(b)
    }
    /// From kibibytes.
    pub const fn from_kib(k: u64) -> Self {
        ByteCount(k * 1024)
    }
    /// From mebibytes.
    pub const fn from_mib(m: u64) -> Self {
        ByteCount(m * 1024 * 1024)
    }
    /// From gibibytes.
    pub const fn from_gib(g: u64) -> Self {
        ByteCount(g * 1024 * 1024 * 1024)
    }

    /// Raw byte count.
    pub const fn bytes(self) -> u64 {
        self.0
    }
    /// As fractional mebibytes.
    pub fn as_mib_f64(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0)
    }
    /// As fractional gibibytes.
    pub fn as_gib_f64(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0 * 1024.0)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: ByteCount) -> ByteCount {
        ByteCount(self.0.saturating_sub(rhs.0))
    }

    /// The average transfer rate needed to move this many bytes in `d`.
    pub fn rate_over(self, d: SimDuration) -> Bandwidth {
        if d.as_micros() == 0 {
            return Bandwidth::ZERO;
        }
        Bandwidth::from_bytes_per_sec(self.0 as f64 / d.as_secs_f64())
    }
}

impl Add for ByteCount {
    type Output = ByteCount;
    fn add(self, rhs: ByteCount) -> ByteCount {
        ByteCount(self.0 + rhs.0)
    }
}

impl AddAssign for ByteCount {
    fn add_assign(&mut self, rhs: ByteCount) {
        self.0 += rhs.0;
    }
}

impl Sub for ByteCount {
    type Output = ByteCount;
    fn sub(self, rhs: ByteCount) -> ByteCount {
        ByteCount(self.0.saturating_sub(rhs.0))
    }
}

impl Sum for ByteCount {
    fn sum<I: Iterator<Item = ByteCount>>(iter: I) -> ByteCount {
        ByteCount(iter.map(|b| b.0).sum())
    }
}

impl fmt::Debug for ByteCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for ByteCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0 as f64;
        if b >= 1e12 {
            write!(f, "{:.2}TB", b / 1e12)
        } else if b >= 1e9 {
            write!(f, "{:.2}GB", b / 1e9)
        } else if b >= 1e6 {
            write!(f, "{:.2}MB", b / 1e6)
        } else if b >= 1e3 {
            write!(f, "{:.2}kB", b / 1e3)
        } else {
            write!(f, "{}B", self.0)
        }
    }
}

/// A transfer rate. Stored as bytes/second (f64) for flow-model arithmetic;
/// displayed in Mbps to match the paper's figures.
#[derive(Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Bandwidth(pub f64);

impl Bandwidth {
    /// Zero rate.
    pub const ZERO: Bandwidth = Bandwidth(0.0);

    /// From bytes per second.
    pub fn from_bytes_per_sec(bps: f64) -> Self {
        Bandwidth(bps.max(0.0))
    }
    /// From megabits per second (the paper's unit).
    pub fn from_mbps(mbps: f64) -> Self {
        Bandwidth(mbps.max(0.0) * 1e6 / 8.0)
    }
    /// From kilobits per second.
    pub fn from_kbps(kbps: f64) -> Self {
        Bandwidth(kbps.max(0.0) * 1e3 / 8.0)
    }

    /// Bytes per second.
    pub fn bytes_per_sec(self) -> f64 {
        self.0
    }
    /// Megabits per second.
    pub fn as_mbps(self) -> f64 {
        self.0 * 8.0 / 1e6
    }

    /// Bytes moved at this rate during `d`.
    pub fn bytes_in(self, d: SimDuration) -> ByteCount {
        ByteCount((self.0 * d.as_secs_f64()) as u64)
    }

    /// Time needed to move `b` bytes at this rate; `None` if the rate is 0.
    pub fn time_for(self, b: ByteCount) -> Option<SimDuration> {
        if self.0 <= 0.0 {
            return None;
        }
        Some(SimDuration::from_secs_f64(b.bytes() as f64 / self.0))
    }

    /// Element-wise minimum.
    pub fn min(self, other: Bandwidth) -> Bandwidth {
        Bandwidth(self.0.min(other.0))
    }
}

impl Add for Bandwidth {
    type Output = Bandwidth;
    fn add(self, rhs: Bandwidth) -> Bandwidth {
        Bandwidth(self.0 + rhs.0)
    }
}

impl AddAssign for Bandwidth {
    fn add_assign(&mut self, rhs: Bandwidth) {
        self.0 += rhs.0;
    }
}

impl Sub for Bandwidth {
    type Output = Bandwidth;
    fn sub(self, rhs: Bandwidth) -> Bandwidth {
        Bandwidth((self.0 - rhs.0).max(0.0))
    }
}

impl Sum for Bandwidth {
    fn sum<I: Iterator<Item = Bandwidth>>(iter: I) -> Bandwidth {
        Bandwidth(iter.map(|b| b.0).sum())
    }
}

impl fmt::Debug for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}Mbps", self.as_mbps())
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}Mbps", self.as_mbps())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_constructors() {
        assert_eq!(ByteCount::from_kib(2).bytes(), 2048);
        assert_eq!(ByteCount::from_mib(1).bytes(), 1 << 20);
        assert_eq!(ByteCount::from_gib(1).bytes(), 1 << 30);
    }

    #[test]
    fn mbps_roundtrip() {
        let b = Bandwidth::from_mbps(10.0);
        assert!((b.as_mbps() - 10.0).abs() < 1e-9);
        assert!((b.bytes_per_sec() - 1_250_000.0).abs() < 1e-6);
    }

    #[test]
    fn bytes_in_duration() {
        let b = Bandwidth::from_bytes_per_sec(1000.0);
        assert_eq!(b.bytes_in(SimDuration::from_secs(5)).bytes(), 5000);
    }

    #[test]
    fn time_for_transfer() {
        let b = Bandwidth::from_bytes_per_sec(2000.0);
        let t = b.time_for(ByteCount::from_bytes(10_000)).unwrap();
        assert_eq!(t, SimDuration::from_secs(5));
        assert!(Bandwidth::ZERO.time_for(ByteCount::from_bytes(1)).is_none());
    }

    #[test]
    fn rate_over_duration() {
        let r = ByteCount::from_bytes(1_000_000).rate_over(SimDuration::from_secs(8));
        assert!((r.as_mbps() - 1.0).abs() < 1e-9);
        assert_eq!(
            ByteCount::from_bytes(5).rate_over(SimDuration::ZERO),
            Bandwidth::ZERO
        );
    }

    #[test]
    fn display_scales() {
        assert_eq!(ByteCount::from_bytes(999).to_string(), "999B");
        assert_eq!(ByteCount::from_bytes(2_000_000).to_string(), "2.00MB");
        assert_eq!(ByteCount::from_bytes(3_400_000_000).to_string(), "3.40GB");
    }

    #[test]
    fn subtraction_saturates() {
        let a = ByteCount::from_bytes(3);
        let b = ByteCount::from_bytes(10);
        assert_eq!((a - b).bytes(), 0);
        assert_eq!(a.saturating_sub(b).bytes(), 0);
        let x = Bandwidth::from_bytes_per_sec(1.0) - Bandwidth::from_bytes_per_sec(5.0);
        assert_eq!(x.bytes_per_sec(), 0.0);
    }
}
