//! Simulated time.
//!
//! The discrete-event simulator and all logs use [`SimTime`], microseconds
//! since the start of the simulated trace month. The paper's trace covers
//! October 2012; our synthetic month is likewise 31 days, and helpers convert
//! to (day, hour) for the diurnal analyses (Fig 3c).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A span of simulated time, in microseconds.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Debug)]
pub struct SimDuration(pub u64);

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// From microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }
    /// From milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }
    /// From whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }
    /// From fractional seconds (saturating at zero).
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s.max(0.0) * 1e6) as u64)
    }
    /// From whole minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * 60_000_000)
    }
    /// From whole hours.
    pub const fn from_hours(h: u64) -> Self {
        SimDuration(h * 3_600_000_000)
    }
    /// From whole days.
    pub const fn from_days(d: u64) -> Self {
        SimDuration(d * 86_400_000_000)
    }

    /// As microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }
    /// As fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }
    /// As fractional hours.
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / 3.6e9
    }

    /// Scale by a non-negative factor.
    pub fn mul_f64(self, k: f64) -> Self {
        SimDuration((self.0 as f64 * k.max(0.0)) as u64)
    }
}

/// An instant of simulated time: microseconds since trace start.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The start of the trace.
    pub const ZERO: SimTime = SimTime(0);

    /// From fractional seconds since trace start.
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime((s.max(0.0) * 1e6) as u64)
    }

    /// Microseconds since trace start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }
    /// Fractional seconds since trace start.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Zero-based day index within the trace month.
    pub fn day(self) -> u64 {
        self.0 / 86_400_000_000
    }

    /// Hour of day in GMT, 0–23.
    pub fn hour_of_day_gmt(self) -> u64 {
        (self.0 / 3_600_000_000) % 24
    }

    /// Hour of day in a local timezone expressed as a GMT offset in hours
    /// (may be negative, e.g. `-5` for US East).
    pub fn hour_of_day_local(self, tz_offset_hours: i32) -> u64 {
        let h = (self.0 / 3_600_000_000) as i64 + tz_offset_hours as i64;
        h.rem_euclid(24) as u64
    }

    /// Whole hours since trace start (bucket index for Fig 3c).
    pub fn hour_index(self) -> u64 {
        self.0 / 3_600_000_000
    }

    /// Saturating difference `self - earlier`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let day = self.day();
        let hr = self.hour_of_day_gmt();
        let min = (self.0 / 60_000_000) % 60;
        let sec = (self.0 / 1_000_000) % 60;
        write!(f, "d{day:02} {hr:02}:{min:02}:{sec:02}")
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

/// Length of the synthetic trace: 31 days, like the paper's October 2012.
pub const TRACE_MONTH: SimDuration = SimDuration::from_days(31);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::ZERO + SimDuration::from_secs(90);
        assert_eq!(t.as_secs_f64(), 90.0);
        assert_eq!((t - SimTime::ZERO).as_micros(), 90_000_000);
    }

    #[test]
    fn day_and_hour_extraction() {
        let t = SimTime::ZERO + SimDuration::from_days(3) + SimDuration::from_hours(7);
        assert_eq!(t.day(), 3);
        assert_eq!(t.hour_of_day_gmt(), 7);
        assert_eq!(t.hour_index(), 3 * 24 + 7);
    }

    #[test]
    fn local_time_wraps_correctly() {
        let t = SimTime::ZERO + SimDuration::from_hours(2);
        assert_eq!(t.hour_of_day_local(-5), 21);
        assert_eq!(t.hour_of_day_local(3), 5);
        assert_eq!(t.hour_of_day_local(0), 2);
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_secs_f64(5.0);
        let b = SimTime::from_secs_f64(9.0);
        assert_eq!(a.since(b), SimDuration::ZERO);
        assert_eq!(b.since(a), SimDuration::from_secs(4));
    }

    #[test]
    fn trace_month_is_31_days() {
        assert_eq!(TRACE_MONTH.as_hours_f64(), 744.0);
    }

    #[test]
    fn display_formats() {
        let t = SimTime::ZERO + SimDuration::from_days(2) + SimDuration::from_secs(3661);
        assert_eq!(t.to_string(), "d02 01:01:01");
    }
}
