//! NetSession protocol messages.
//!
//! Three conversations exist in the system (§3.4–§3.6):
//!
//! 1. **peer ↔ control plane** over the persistent TCP control connection
//!    ([`ControlMsg`]): login, peer queries, connect instructions, content
//!    registration, RE-ADD recovery, usage reports, configuration updates.
//! 2. **peer ↔ peer** over swarming connections ([`SwarmMsg`]): handshake,
//!    have-maps, piece requests and data.
//! 3. **peer ↔ edge server** over HTTP(S) ([`EdgeMsg`]): authorization,
//!    manifests, piece downloads, accounting cross-checks.
//!
//! All messages implement [`Wire`] so the live tokio runtime can frame them
//! directly; the simulator passes them as values.

use crate::codec::{Reader, Wire, Writer};
use crate::error::{Error, Result as CodecResult};
use crate::hash::Digest;
use crate::id::{AsNumber, ConnectionId, Guid, SecondaryGuid, VersionId};
use crate::piece::{Manifest, PieceIndex, PieceMap};
use crate::policy::{DownloadPolicy, TransferConfig};
use crate::time::SimTime;
use crate::units::ByteCount;

/// NAT/firewall classification of an endpoint, as determined by the STUN
/// components (§3.6). The taxonomy follows classic STUN (RFC 3489 vintage),
/// which is what a custom traversal implementation must reason about.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum NatType {
    /// Publicly reachable, no NAT.
    Open,
    /// Full-cone NAT: any external host may send once a mapping exists.
    FullCone,
    /// Address-restricted cone.
    RestrictedCone,
    /// Port-restricted cone.
    PortRestricted,
    /// Symmetric NAT: per-destination mappings; hardest to traverse.
    Symmetric,
    /// UDP blocked / strict firewall: only outbound TCP works.
    Blocked,
}

impl NatType {
    /// All variants, for iteration in tests and population generation.
    pub const ALL: [NatType; 6] = [
        NatType::Open,
        NatType::FullCone,
        NatType::RestrictedCone,
        NatType::PortRestricted,
        NatType::Symmetric,
        NatType::Blocked,
    ];

    fn code(self) -> u8 {
        match self {
            NatType::Open => 0,
            NatType::FullCone => 1,
            NatType::RestrictedCone => 2,
            NatType::PortRestricted => 3,
            NatType::Symmetric => 4,
            NatType::Blocked => 5,
        }
    }

    fn from_code(c: u8) -> CodecResult<Self> {
        Ok(match c {
            0 => NatType::Open,
            1 => NatType::FullCone,
            2 => NatType::RestrictedCone,
            3 => NatType::PortRestricted,
            4 => NatType::Symmetric,
            5 => NatType::Blocked,
            x => return Err(Error::Codec(format!("invalid NAT type {x}"))),
        })
    }
}

impl Wire for NatType {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(self.code());
    }
    fn decode(r: &mut Reader<'_>) -> CodecResult<Self> {
        NatType::from_code(r.get_u8()?)
    }
}

/// Transport address of a peer (synthetic IPv4 in the simulator, real
/// localhost addresses in the live runtime).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PeerAddr {
    /// IPv4 address as a big-endian integer.
    pub ip: u32,
    /// TCP/UDP port.
    pub port: u16,
}

impl PeerAddr {
    /// Dotted-quad rendering.
    pub fn ip_string(&self) -> String {
        let [a, b, c, d] = self.ip.to_be_bytes();
        format!("{a}.{b}.{c}.{d}")
    }
}

impl Wire for PeerAddr {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(self.ip as u64);
        w.put_varint(self.port as u64);
    }
    fn decode(r: &mut Reader<'_>) -> CodecResult<Self> {
        let ip = u32::decode(r)?;
        let port = r.get_varint()?;
        Ok(PeerAddr {
            ip,
            port: u16::try_from(port).map_err(|_| Error::Codec("port overflow".into()))?,
        })
    }
}

/// Everything a downloading peer needs to contact a selected peer: returned
/// by the CN in response to a query (§3.7).
#[derive(Clone, Debug, PartialEq)]
pub struct PeerContact {
    /// The remote peer's GUID.
    pub guid: Guid,
    /// Its current transport address.
    pub addr: PeerAddr,
    /// Its AS, used for locality bookkeeping.
    pub asn: AsNumber,
    /// Its NAT classification, so the caller knows how to punch.
    pub nat: NatType,
}

impl Wire for PeerContact {
    fn encode(&self, w: &mut Writer) {
        self.guid.encode(w);
        self.addr.encode(w);
        self.asn.encode(w);
        self.nat.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> CodecResult<Self> {
        Ok(PeerContact {
            guid: Guid::decode(r)?,
            addr: PeerAddr::decode(r)?,
            asn: AsNumber::decode(r)?,
            nat: NatType::decode(r)?,
        })
    }
}

/// An encrypted authorization token issued by an edge server after a peer
/// authenticates (§3.5): "this yields an encrypted token that can be used to
/// search for peers." The token binds (guid, object version, expiry) under
/// the edge tier's secret; the control plane verifies the binding before
/// answering queries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AuthToken {
    /// GUID the token was issued to.
    pub guid: Guid,
    /// Version the peer is authorized to obtain.
    pub version: VersionId,
    /// Expiry time.
    pub expires: SimTime,
    /// MAC over the fields above, keyed by the edge secret.
    pub mac: Digest,
}

impl Wire for AuthToken {
    fn encode(&self, w: &mut Writer) {
        self.guid.encode(w);
        self.version.encode(w);
        self.expires.encode(w);
        self.mac.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> CodecResult<Self> {
        Ok(AuthToken {
            guid: Guid::decode(r)?,
            version: VersionId::decode(r)?,
            expires: SimTime::decode(r)?,
            mac: Digest::decode(r)?,
        })
    }
}

/// One download record inside a usage report (§4.1): the CN logs the GUID,
/// object, start/end, and the split of bytes between infrastructure and
/// peers. This is the billing-relevant unit the accounting pipeline
/// cross-checks.
#[derive(Clone, Debug, PartialEq)]
pub struct UsageRecord {
    /// Downloading peer.
    pub guid: Guid,
    /// What was downloaded.
    pub version: VersionId,
    /// When the download started.
    pub started: SimTime,
    /// When it ended (completed, failed, or abandoned).
    pub ended: SimTime,
    /// Bytes received from edge servers.
    pub bytes_from_infrastructure: ByteCount,
    /// Bytes received from peers.
    pub bytes_from_peers: ByteCount,
}

impl Wire for UsageRecord {
    fn encode(&self, w: &mut Writer) {
        self.guid.encode(w);
        self.version.encode(w);
        self.started.encode(w);
        self.ended.encode(w);
        self.bytes_from_infrastructure.encode(w);
        self.bytes_from_peers.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> CodecResult<Self> {
        Ok(UsageRecord {
            guid: Guid::decode(r)?,
            version: VersionId::decode(r)?,
            started: SimTime::decode(r)?,
            ended: SimTime::decode(r)?,
            bytes_from_infrastructure: ByteCount::decode(r)?,
            bytes_from_peers: ByteCount::decode(r)?,
        })
    }
}

/// Messages on the persistent peer ↔ control-plane connection.
#[derive(Clone, Debug, PartialEq)]
pub enum ControlMsg {
    /// Peer logs in when it comes online.
    Login {
        /// Installation GUID.
        guid: Guid,
        /// Last five secondary GUIDs, newest first (§6.2).
        secondary_guids: Vec<SecondaryGuid>,
        /// Whether the user has uploads enabled.
        uploads_enabled: bool,
        /// Client software version.
        software_version: u32,
        /// STUN-determined NAT classification.
        nat: NatType,
        /// Current transport address.
        addr: PeerAddr,
    },
    /// CN accepts the login and assigns a connection ID.
    LoginAck {
        /// Connection ID for subsequent routing.
        conn: ConnectionId,
        /// Current client configuration.
        config: TransferConfig,
    },
    /// Peer asks for peers that hold a version (requires an edge token).
    QueryPeers {
        /// Authorization token from an edge server.
        token: AuthToken,
        /// How many peers the client wants at most.
        max_peers: u32,
    },
    /// CN answers a query.
    PeerList {
        /// The version queried.
        version: VersionId,
        /// Selected peers (up to the default 40, §3.7).
        peers: Vec<PeerContact>,
    },
    /// CN instructs a peer to open a connection to another peer — sent to
    /// *both* endpoints to coordinate NAT hole punching (§3.4, §3.6).
    ConnectTo {
        /// Who to connect to.
        contact: PeerContact,
        /// For which object version.
        version: VersionId,
        /// Whether this endpoint should take the active (dialing) role.
        active_role: bool,
    },
    /// Peer announces a locally cached, shareable copy (creates DN entries).
    RegisterContent {
        /// Announced version.
        version: VersionId,
        /// How complete the local copy is (seeders register 1.0).
        fraction: f64,
    },
    /// Peer withdraws a copy (cache eviction, uploads disabled, shutdown).
    UnregisterContent {
        /// Withdrawn version.
        version: VersionId,
    },
    /// CN asks the peer to re-list all cached content after a DN failure
    /// ("the CNs connected to that DN send a RE-ADD message to their peers,
    /// asking them to list the files that they are storing", §3.8).
    ReAdd,
    /// Peer's answer to [`ControlMsg::ReAdd`].
    ReAddResponse {
        /// All locally cached versions.
        versions: Vec<VersionId>,
    },
    /// Peer uploads usage statistics for billing/monitoring (§3.4).
    UsageReport {
        /// The download records being reported.
        records: Vec<UsageRecord>,
    },
    /// CN pushes a configuration update (§3.4).
    ConfigUpdate {
        /// The new configuration.
        config: TransferConfig,
    },
    /// Peer asks to close the session gracefully.
    Logout,
}

impl ControlMsg {
    fn tag(&self) -> u8 {
        match self {
            ControlMsg::Login { .. } => 0,
            ControlMsg::LoginAck { .. } => 1,
            ControlMsg::QueryPeers { .. } => 2,
            ControlMsg::PeerList { .. } => 3,
            ControlMsg::ConnectTo { .. } => 4,
            ControlMsg::RegisterContent { .. } => 5,
            ControlMsg::UnregisterContent { .. } => 6,
            ControlMsg::ReAdd => 7,
            ControlMsg::ReAddResponse { .. } => 8,
            ControlMsg::UsageReport { .. } => 9,
            ControlMsg::ConfigUpdate { .. } => 10,
            ControlMsg::Logout => 11,
        }
    }
}

impl Wire for TransferConfig {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(self.max_upload_connections as u64);
        w.put_varint(self.max_download_connections as u64);
        w.put_f64(self.upload_rate_fraction);
        w.put_f64(self.busy_upload_fraction);
        w.put_varint(self.cache_ttl_hours as u64);
        w.put_varint(self.max_requery_rounds as u64);
        w.put_varint(self.sufficient_peer_connections as u64);
    }
    fn decode(r: &mut Reader<'_>) -> CodecResult<Self> {
        Ok(TransferConfig {
            max_upload_connections: r.get_varint()? as usize,
            max_download_connections: r.get_varint()? as usize,
            upload_rate_fraction: r.get_f64()?,
            busy_upload_fraction: r.get_f64()?,
            cache_ttl_hours: u32::decode(r)?,
            max_requery_rounds: u32::decode(r)?,
            sufficient_peer_connections: r.get_varint()? as usize,
        })
    }
}

impl Wire for ControlMsg {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(self.tag());
        match self {
            ControlMsg::Login {
                guid,
                secondary_guids,
                uploads_enabled,
                software_version,
                nat,
                addr,
            } => {
                guid.encode(w);
                secondary_guids.encode(w);
                uploads_enabled.encode(w);
                software_version.encode(w);
                nat.encode(w);
                addr.encode(w);
            }
            ControlMsg::LoginAck { conn, config } => {
                conn.encode(w);
                config.encode(w);
            }
            ControlMsg::QueryPeers { token, max_peers } => {
                token.encode(w);
                max_peers.encode(w);
            }
            ControlMsg::PeerList { version, peers } => {
                version.encode(w);
                peers.encode(w);
            }
            ControlMsg::ConnectTo {
                contact,
                version,
                active_role,
            } => {
                contact.encode(w);
                version.encode(w);
                active_role.encode(w);
            }
            ControlMsg::RegisterContent { version, fraction } => {
                version.encode(w);
                fraction.encode(w);
            }
            ControlMsg::UnregisterContent { version } => {
                version.encode(w);
            }
            ControlMsg::ReAdd => {}
            ControlMsg::ReAddResponse { versions } => {
                versions.encode(w);
            }
            ControlMsg::UsageReport { records } => {
                records.encode(w);
            }
            ControlMsg::ConfigUpdate { config } => {
                config.encode(w);
            }
            ControlMsg::Logout => {}
        }
    }

    fn decode(r: &mut Reader<'_>) -> CodecResult<Self> {
        let tag = r.get_u8()?;
        Ok(match tag {
            0 => ControlMsg::Login {
                guid: Guid::decode(r)?,
                secondary_guids: Vec::decode(r)?,
                uploads_enabled: bool::decode(r)?,
                software_version: u32::decode(r)?,
                nat: NatType::decode(r)?,
                addr: PeerAddr::decode(r)?,
            },
            1 => ControlMsg::LoginAck {
                conn: ConnectionId::decode(r)?,
                config: TransferConfig::decode(r)?,
            },
            2 => ControlMsg::QueryPeers {
                token: AuthToken::decode(r)?,
                max_peers: u32::decode(r)?,
            },
            3 => ControlMsg::PeerList {
                version: VersionId::decode(r)?,
                peers: Vec::decode(r)?,
            },
            4 => ControlMsg::ConnectTo {
                contact: PeerContact::decode(r)?,
                version: VersionId::decode(r)?,
                active_role: bool::decode(r)?,
            },
            5 => ControlMsg::RegisterContent {
                version: VersionId::decode(r)?,
                fraction: f64::decode(r)?,
            },
            6 => ControlMsg::UnregisterContent {
                version: VersionId::decode(r)?,
            },
            7 => ControlMsg::ReAdd,
            8 => ControlMsg::ReAddResponse {
                versions: Vec::decode(r)?,
            },
            9 => ControlMsg::UsageReport {
                records: Vec::decode(r)?,
            },
            10 => ControlMsg::ConfigUpdate {
                config: TransferConfig::decode(r)?,
            },
            11 => ControlMsg::Logout,
            x => return Err(Error::Codec(format!("invalid control tag {x}"))),
        })
    }
}

/// Messages on peer ↔ peer swarming connections (§3.4). Deliberately close
/// to BitTorrent's wire protocol, minus choke/unchoke: NetSession has no
/// tit-for-tat.
#[derive(Clone, Debug, PartialEq)]
pub enum SwarmMsg {
    /// First message on a connection; both sides send one.
    Handshake {
        /// Sender's GUID.
        guid: Guid,
        /// Authorization token proving the sender may receive this content.
        token: AuthToken,
        /// The version this connection is about.
        version: VersionId,
    },
    /// Full have-bitmap, sent after handshake.
    HaveMap {
        /// Piece count (so the receiver can size the map).
        pieces: u32,
        /// Packed bitmap words.
        words: Vec<u64>,
    },
    /// Incremental announcement of a newly verified piece.
    Have {
        /// The piece now available.
        piece: PieceIndex,
    },
    /// Request one piece.
    Request {
        /// The wanted piece.
        piece: PieceIndex,
    },
    /// Piece content. In the live runtime this carries real bytes; in the
    /// simulator the digest stands in for the data.
    Piece {
        /// Which piece.
        piece: PieceIndex,
        /// Raw content bytes (empty in simulation).
        data: Vec<u8>,
        /// Digest of the content (used directly in simulation).
        digest: Digest,
    },
    /// Withdraw an outstanding request.
    Cancel {
        /// The request being cancelled.
        piece: PieceIndex,
    },
    /// Sender is at its upload-connection limit; try later (§3.4's global
    /// connection limit — the polite replacement for BitTorrent's choke).
    Busy,
    /// Graceful close.
    Goodbye,
}

impl SwarmMsg {
    fn tag(&self) -> u8 {
        match self {
            SwarmMsg::Handshake { .. } => 0,
            SwarmMsg::HaveMap { .. } => 1,
            SwarmMsg::Have { .. } => 2,
            SwarmMsg::Request { .. } => 3,
            SwarmMsg::Piece { .. } => 4,
            SwarmMsg::Cancel { .. } => 5,
            SwarmMsg::Busy => 6,
            SwarmMsg::Goodbye => 7,
        }
    }

    /// Build a [`SwarmMsg::HaveMap`] from a piece map.
    pub fn have_map(map: &PieceMap) -> SwarmMsg {
        let words: Vec<u64> = map.held().fold(
            vec![0u64; (map.len() as usize).div_ceil(64)],
            |mut acc, i| {
                acc[(i / 64) as usize] |= 1 << (i % 64);
                acc
            },
        );
        SwarmMsg::HaveMap {
            pieces: map.len(),
            words,
        }
    }

    /// Reconstruct a [`PieceMap`] from a received [`SwarmMsg::HaveMap`].
    pub fn decode_have_map(pieces: u32, words: &[u64]) -> CodecResult<PieceMap> {
        if words.len() != (pieces as usize).div_ceil(64) {
            return Err(Error::Codec("have-map word count mismatch".into()));
        }
        let mut map = PieceMap::empty(pieces);
        for i in 0..pieces {
            if words[(i / 64) as usize] & (1 << (i % 64)) != 0 {
                map.set(i);
            }
        }
        Ok(map)
    }
}

impl Wire for SwarmMsg {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(self.tag());
        match self {
            SwarmMsg::Handshake {
                guid,
                token,
                version,
            } => {
                guid.encode(w);
                token.encode(w);
                version.encode(w);
            }
            SwarmMsg::HaveMap { pieces, words } => {
                pieces.encode(w);
                words.encode(w);
            }
            SwarmMsg::Have { piece } => piece.encode(w),
            SwarmMsg::Request { piece } => piece.encode(w),
            SwarmMsg::Piece {
                piece,
                data,
                digest,
            } => {
                piece.encode(w);
                w.put_bytes(data);
                digest.encode(w);
            }
            SwarmMsg::Cancel { piece } => piece.encode(w),
            SwarmMsg::Busy | SwarmMsg::Goodbye => {}
        }
    }

    fn decode(r: &mut Reader<'_>) -> CodecResult<Self> {
        let tag = r.get_u8()?;
        Ok(match tag {
            0 => SwarmMsg::Handshake {
                guid: Guid::decode(r)?,
                token: AuthToken::decode(r)?,
                version: VersionId::decode(r)?,
            },
            1 => SwarmMsg::HaveMap {
                pieces: u32::decode(r)?,
                words: Vec::decode(r)?,
            },
            2 => SwarmMsg::Have {
                piece: PieceIndex::decode(r)?,
            },
            3 => SwarmMsg::Request {
                piece: PieceIndex::decode(r)?,
            },
            4 => SwarmMsg::Piece {
                piece: PieceIndex::decode(r)?,
                data: r.get_bytes()?,
                digest: Digest::decode(r)?,
            },
            5 => SwarmMsg::Cancel {
                piece: PieceIndex::decode(r)?,
            },
            6 => SwarmMsg::Busy,
            7 => SwarmMsg::Goodbye,
            x => return Err(Error::Codec(format!("invalid swarm tag {x}"))),
        })
    }
}

/// Messages on peer ↔ edge-server HTTP(S) connections (§3.5).
#[derive(Clone, Debug, PartialEq)]
pub enum EdgeMsg {
    /// Peer authenticates and asks for authorization to fetch a version.
    Authorize {
        /// Requesting peer.
        guid: Guid,
        /// Requested version.
        version: VersionId,
    },
    /// Edge grants authorization: token + policy + manifest.
    Authorized {
        /// Token for control-plane queries and peer handshakes.
        token: AuthToken,
        /// Provider policy for this object.
        policy: DownloadPolicy,
        /// Content manifest with piece hashes.
        manifest: Manifest,
    },
    /// Edge refuses (unknown object, policy denies download).
    Denied {
        /// Human-readable reason.
        reason: String,
    },
    /// Peer requests one piece from the edge.
    GetPiece {
        /// Proof of authorization.
        token: AuthToken,
        /// Wanted piece.
        piece: PieceIndex,
    },
    /// Edge serves a piece.
    PieceData {
        /// Which piece.
        piece: PieceIndex,
        /// Raw bytes (empty in simulation).
        data: Vec<u8>,
        /// Digest (used in simulation).
        digest: Digest,
    },
    /// Edge-side record that it served bytes to a GUID — the trusted side of
    /// accounting cross-checks (§3.5, anti accounting-attack).
    ServedReceipt {
        /// Peer that was served.
        guid: Guid,
        /// Version served.
        version: VersionId,
        /// Bytes served.
        bytes: ByteCount,
    },
}

impl Wire for Manifest {
    fn encode(&self, w: &mut Writer) {
        self.version.encode(w);
        self.size.encode(w);
        w.put_varint(self.piece_size);
        self.piece_hashes.encode(w);
        self.content_id.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> CodecResult<Self> {
        Ok(Manifest {
            version: VersionId::decode(r)?,
            size: ByteCount::decode(r)?,
            piece_size: r.get_varint()?,
            piece_hashes: Vec::decode(r)?,
            content_id: Digest::decode(r)?,
        })
    }
}

impl Wire for DownloadPolicy {
    fn encode(&self, w: &mut Writer) {
        self.download_allowed.encode(w);
        self.p2p_enabled.encode(w);
        self.upload_allowed.encode(w);
        self.per_peer_upload_cap.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> CodecResult<Self> {
        Ok(DownloadPolicy {
            download_allowed: bool::decode(r)?,
            p2p_enabled: bool::decode(r)?,
            upload_allowed: bool::decode(r)?,
            per_peer_upload_cap: Option::decode(r)?,
        })
    }
}

impl EdgeMsg {
    fn tag(&self) -> u8 {
        match self {
            EdgeMsg::Authorize { .. } => 0,
            EdgeMsg::Authorized { .. } => 1,
            EdgeMsg::Denied { .. } => 2,
            EdgeMsg::GetPiece { .. } => 3,
            EdgeMsg::PieceData { .. } => 4,
            EdgeMsg::ServedReceipt { .. } => 5,
        }
    }
}

impl Wire for EdgeMsg {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(self.tag());
        match self {
            EdgeMsg::Authorize { guid, version } => {
                guid.encode(w);
                version.encode(w);
            }
            EdgeMsg::Authorized {
                token,
                policy,
                manifest,
            } => {
                token.encode(w);
                policy.encode(w);
                manifest.encode(w);
            }
            EdgeMsg::Denied { reason } => reason.encode(w),
            EdgeMsg::GetPiece { token, piece } => {
                token.encode(w);
                piece.encode(w);
            }
            EdgeMsg::PieceData {
                piece,
                data,
                digest,
            } => {
                piece.encode(w);
                w.put_bytes(data);
                digest.encode(w);
            }
            EdgeMsg::ServedReceipt {
                guid,
                version,
                bytes,
            } => {
                guid.encode(w);
                version.encode(w);
                bytes.encode(w);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> CodecResult<Self> {
        let tag = r.get_u8()?;
        Ok(match tag {
            0 => EdgeMsg::Authorize {
                guid: Guid::decode(r)?,
                version: VersionId::decode(r)?,
            },
            1 => EdgeMsg::Authorized {
                token: AuthToken::decode(r)?,
                policy: DownloadPolicy::decode(r)?,
                manifest: Manifest::decode(r)?,
            },
            2 => EdgeMsg::Denied {
                reason: String::decode(r)?,
            },
            3 => EdgeMsg::GetPiece {
                token: AuthToken::decode(r)?,
                piece: PieceIndex::decode(r)?,
            },
            4 => EdgeMsg::PieceData {
                piece: PieceIndex::decode(r)?,
                data: r.get_bytes()?,
                digest: Digest::decode(r)?,
            },
            5 => EdgeMsg::ServedReceipt {
                guid: Guid::decode(r)?,
                version: VersionId::decode(r)?,
                bytes: ByteCount::decode(r)?,
            },
            x => return Err(Error::Codec(format!("invalid edge tag {x}"))),
        })
    }
}

/// Category of a §3.6 problem report: "peers upload information about
/// their operation and about problems" to the monitoring nodes. The
/// taxonomy mirrors what a client can self-diagnose.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProblemKind {
    /// Client crashed (detected on next start).
    Crash,
    /// A download failed outright.
    DownloadFailure,
    /// Downloaded content failed hash verification.
    VerificationFailure,
    /// NAT traversal to a peer failed.
    TraversalFailure,
}

impl ProblemKind {
    /// All variants, for iteration in tests and metric registration.
    pub const ALL: [ProblemKind; 4] = [
        ProblemKind::Crash,
        ProblemKind::DownloadFailure,
        ProblemKind::VerificationFailure,
        ProblemKind::TraversalFailure,
    ];

    /// Stable lowercase label used in metric names and logs.
    pub fn label(self) -> &'static str {
        match self {
            ProblemKind::Crash => "crash",
            ProblemKind::DownloadFailure => "download_failure",
            ProblemKind::VerificationFailure => "verification_failure",
            ProblemKind::TraversalFailure => "traversal_failure",
        }
    }

    fn code(self) -> u8 {
        match self {
            ProblemKind::Crash => 0,
            ProblemKind::DownloadFailure => 1,
            ProblemKind::VerificationFailure => 2,
            ProblemKind::TraversalFailure => 3,
        }
    }

    fn from_code(c: u8) -> CodecResult<Self> {
        Ok(match c {
            0 => ProblemKind::Crash,
            1 => ProblemKind::DownloadFailure,
            2 => ProblemKind::VerificationFailure,
            3 => ProblemKind::TraversalFailure,
            x => return Err(Error::Codec(format!("invalid problem kind {x}"))),
        })
    }
}

impl Wire for ProblemKind {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(self.code());
    }
    fn decode(r: &mut Reader<'_>) -> CodecResult<Self> {
        ProblemKind::from_code(r.get_u8()?)
    }
}

/// Messages on peer → monitoring-node connections (§3.6). A separate
/// conversation from [`ControlMsg`]: problem reports must survive when
/// the control link itself is the problem, so peers push them to the
/// monitor server over a short-lived dedicated connection.
#[derive(Clone, Debug, PartialEq)]
pub enum MonitorMsg {
    /// One self-diagnosed problem report.
    Problem {
        /// Reporting peer.
        guid: Guid,
        /// What went wrong.
        kind: ProblemKind,
        /// Free-form context (object id, remote peer, error string).
        detail: String,
    },
}

impl MonitorMsg {
    fn tag(&self) -> u8 {
        match self {
            MonitorMsg::Problem { .. } => 0,
        }
    }
}

impl Wire for MonitorMsg {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(self.tag());
        match self {
            MonitorMsg::Problem { guid, kind, detail } => {
                guid.encode(w);
                kind.encode(w);
                detail.encode(w);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> CodecResult<Self> {
        let tag = r.get_u8()?;
        Ok(match tag {
            0 => MonitorMsg::Problem {
                guid: Guid::decode(r)?,
                kind: ProblemKind::decode(r)?,
                detail: String::decode(r)?,
            },
            x => return Err(Error::Codec(format!("invalid monitor tag {x}"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::sha256;
    use crate::id::ObjectId;

    fn ver() -> VersionId {
        VersionId {
            object: ObjectId(5),
            version: 2,
        }
    }

    fn token() -> AuthToken {
        AuthToken {
            guid: Guid(99),
            version: ver(),
            expires: SimTime(1000),
            mac: sha256(b"mac"),
        }
    }

    fn contact() -> PeerContact {
        PeerContact {
            guid: Guid(7),
            addr: PeerAddr {
                ip: 0x0a000001,
                port: 8443,
            },
            asn: AsNumber(7018),
            nat: NatType::PortRestricted,
        }
    }

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let payload = v.to_payload();
        assert_eq!(T::from_payload(&payload).unwrap(), v);
    }

    #[test]
    fn control_messages_roundtrip() {
        let msgs = vec![
            ControlMsg::Login {
                guid: Guid(1),
                secondary_guids: vec![SecondaryGuid([1, 2, 3, 4, 5]); 5],
                uploads_enabled: true,
                software_version: 40100,
                nat: NatType::Symmetric,
                addr: PeerAddr { ip: 1, port: 2 },
            },
            ControlMsg::LoginAck {
                conn: ConnectionId(8),
                config: TransferConfig::default(),
            },
            ControlMsg::QueryPeers {
                token: token(),
                max_peers: 40,
            },
            ControlMsg::PeerList {
                version: ver(),
                peers: vec![contact(); 3],
            },
            ControlMsg::ConnectTo {
                contact: contact(),
                version: ver(),
                active_role: true,
            },
            ControlMsg::RegisterContent {
                version: ver(),
                fraction: 1.0,
            },
            ControlMsg::UnregisterContent { version: ver() },
            ControlMsg::ReAdd,
            ControlMsg::ReAddResponse {
                versions: vec![ver()],
            },
            ControlMsg::UsageReport {
                records: vec![UsageRecord {
                    guid: Guid(1),
                    version: ver(),
                    started: SimTime(10),
                    ended: SimTime(20),
                    bytes_from_infrastructure: ByteCount(100),
                    bytes_from_peers: ByteCount(300),
                }],
            },
            ControlMsg::ConfigUpdate {
                config: TransferConfig::default(),
            },
            ControlMsg::Logout,
        ];
        for m in msgs {
            roundtrip(m);
        }
    }

    #[test]
    fn swarm_messages_roundtrip() {
        let msgs = vec![
            SwarmMsg::Handshake {
                guid: Guid(3),
                token: token(),
                version: ver(),
            },
            SwarmMsg::HaveMap {
                pieces: 100,
                words: vec![u64::MAX, 0b1111],
            },
            SwarmMsg::Have { piece: 7 },
            SwarmMsg::Request { piece: 9 },
            SwarmMsg::Piece {
                piece: 9,
                data: vec![1, 2, 3],
                digest: sha256(&[1, 2, 3]),
            },
            SwarmMsg::Cancel { piece: 9 },
            SwarmMsg::Busy,
            SwarmMsg::Goodbye,
        ];
        for m in msgs {
            roundtrip(m);
        }
    }

    #[test]
    fn edge_messages_roundtrip() {
        let manifest = Manifest::synthetic(ver(), ByteCount::from_mib(3), 1 << 20);
        let msgs = vec![
            EdgeMsg::Authorize {
                guid: Guid(3),
                version: ver(),
            },
            EdgeMsg::Authorized {
                token: token(),
                policy: DownloadPolicy::peer_assisted(),
                manifest,
            },
            EdgeMsg::Denied {
                reason: "policy".into(),
            },
            EdgeMsg::GetPiece {
                token: token(),
                piece: 1,
            },
            EdgeMsg::PieceData {
                piece: 1,
                data: vec![],
                digest: sha256(b"p"),
            },
            EdgeMsg::ServedReceipt {
                guid: Guid(3),
                version: ver(),
                bytes: ByteCount(500),
            },
        ];
        for m in msgs {
            roundtrip(m);
        }
    }

    #[test]
    fn have_map_conversion_roundtrips() {
        let mut map = PieceMap::empty(130);
        for i in [0u32, 1, 63, 64, 65, 128, 129] {
            map.set(i);
        }
        let msg = SwarmMsg::have_map(&map);
        if let SwarmMsg::HaveMap { pieces, words } = &msg {
            let back = SwarmMsg::decode_have_map(*pieces, words).unwrap();
            assert_eq!(back, map);
        } else {
            panic!("wrong variant");
        }
    }

    #[test]
    fn have_map_word_count_validated() {
        assert!(SwarmMsg::decode_have_map(100, &[0u64; 1]).is_err());
        assert!(SwarmMsg::decode_have_map(100, &[0u64; 2]).is_ok());
    }

    #[test]
    fn monitor_messages_roundtrip() {
        for kind in ProblemKind::ALL {
            roundtrip(MonitorMsg::Problem {
                guid: Guid(42),
                kind,
                detail: format!("context for {}", kind.label()),
            });
        }
    }

    #[test]
    fn invalid_tags_rejected() {
        assert!(ControlMsg::from_payload(&[99]).is_err());
        assert!(SwarmMsg::from_payload(&[99]).is_err());
        assert!(EdgeMsg::from_payload(&[99]).is_err());
        assert!(NatType::from_payload(&[7]).is_err());
        assert!(MonitorMsg::from_payload(&[9]).is_err());
        assert!(ProblemKind::from_payload(&[9]).is_err());
    }

    #[test]
    fn peer_addr_ip_string() {
        let a = PeerAddr {
            ip: 0xC0A80102,
            port: 80,
        };
        assert_eq!(a.ip_string(), "192.168.1.2");
    }
}
