//! Hand-rolled binary wire codec.
//!
//! The live runtime (`netsession-net`) frames protocol messages as
//! length-prefixed binary records. Rather than pulling in a serialization
//! crate, this module defines a tiny, explicit [`Wire`] trait with
//! varint-compressed integers, with every field written and read in a
//! fixed documented order over plain `Vec<u8>` buffers.
//!
//! Framing: a frame is `u32-le length` followed by `length` payload bytes.
//! [`FrameReader`] incrementally consumes a byte stream into frames.

use crate::error::{Error, Result};
use crate::hash::Digest;
use crate::id::{
    AsNumber, ConnectionId, CpCode, Guid, ObjectId, PeerIndex, SecondaryGuid, VersionId,
};
use crate::time::{SimDuration, SimTime};
use crate::units::{Bandwidth, ByteCount};

/// Maximum accepted frame payload; larger frames are rejected as corrupt.
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// Serialization writer over a growable buffer.
pub struct Writer {
    buf: Vec<u8>,
}

impl Default for Writer {
    fn default() -> Self {
        Self::new()
    }
}

impl Writer {
    /// Fresh writer.
    pub fn new() -> Self {
        Writer {
            buf: Vec::with_capacity(256),
        }
    }

    /// LEB128 varint.
    pub fn put_varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Zig-zag signed varint.
    pub fn put_varint_i64(&mut self, v: i64) {
        self.put_varint(((v << 1) ^ (v >> 63)) as u64);
    }

    /// Raw byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Fixed 64-bit float (little endian).
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_varint(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Finish, returning the payload.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Deserialization reader over a byte slice.
pub struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    /// Read from the given payload.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// LEB128 varint.
    pub fn get_varint(&mut self) -> Result<u64> {
        let mut v = 0u64;
        let mut shift = 0;
        loop {
            let byte = self.get_u8()?;
            if shift >= 64 {
                return Err(Error::Codec("varint overflow".into()));
            }
            v |= ((byte & 0x7f) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// Zig-zag signed varint.
    pub fn get_varint_i64(&mut self) -> Result<i64> {
        let v = self.get_varint()?;
        Ok((v >> 1) as i64 ^ -((v & 1) as i64))
    }

    /// Raw byte.
    pub fn get_u8(&mut self) -> Result<u8> {
        if self.buf.is_empty() {
            return Err(Error::Codec("unexpected end of frame".into()));
        }
        let v = self.buf[0];
        self.buf = &self.buf[1..];
        Ok(v)
    }

    /// Fixed 64-bit float.
    pub fn get_f64(&mut self) -> Result<f64> {
        if self.buf.len() < 8 {
            return Err(Error::Codec("unexpected end of frame (f64)".into()));
        }
        let v = f64::from_le_bytes(self.buf[..8].try_into().unwrap());
        self.buf = &self.buf[8..];
        Ok(v)
    }

    /// Length-prefixed byte string.
    pub fn get_bytes(&mut self) -> Result<Vec<u8>> {
        let len = self.get_varint()? as usize;
        if len > self.buf.len() {
            return Err(Error::Codec(format!(
                "byte string length {len} exceeds remaining {}",
                self.buf.len()
            )));
        }
        let (head, tail) = self.buf.split_at(len);
        self.buf = tail;
        Ok(head.to_vec())
    }

    /// Length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String> {
        String::from_utf8(self.get_bytes()?).map_err(|_| Error::Codec("invalid utf-8".into()))
    }

    /// Fixed-size array.
    pub fn get_array<const N: usize>(&mut self) -> Result<[u8; N]> {
        if self.buf.len() < N {
            return Err(Error::Codec("unexpected end of frame (array)".into()));
        }
        let (head, tail) = self.buf.split_at(N);
        self.buf = tail;
        Ok(head.try_into().unwrap())
    }

    /// Error unless the payload is fully consumed.
    pub fn expect_end(&self) -> Result<()> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(Error::Codec(format!("{} trailing bytes", self.buf.len())))
        }
    }
}

/// A type with a defined wire representation.
pub trait Wire: Sized {
    /// Append this value to the writer.
    fn encode(&self, w: &mut Writer);
    /// Parse one value from the reader.
    fn decode(r: &mut Reader<'_>) -> Result<Self>;

    /// Encode into a standalone payload.
    fn to_payload(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.encode(&mut w);
        w.finish()
    }

    /// Decode from a payload, requiring full consumption.
    fn from_payload(payload: &[u8]) -> Result<Self> {
        let mut r = Reader::new(payload);
        let v = Self::decode(&mut r)?;
        r.expect_end()?;
        Ok(v)
    }
}

impl Wire for u8 {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        r.get_u8()
    }
}

impl Wire for u32 {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(*self as u64);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let v = r.get_varint()?;
        u32::try_from(v).map_err(|_| Error::Codec("u32 overflow".into()))
    }
}

impl Wire for u64 {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        r.get_varint()
    }
}

impl Wire for bool {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(u8::from(*self));
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        match r.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            x => Err(Error::Codec(format!("invalid bool {x}"))),
        }
    }
}

impl Wire for f64 {
    fn encode(&self, w: &mut Writer) {
        w.put_f64(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        r.get_f64()
    }
}

impl Wire for String {
    fn encode(&self, w: &mut Writer) {
        w.put_str(self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        r.get_str()
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(self.len() as u64);
        for item in self {
            item.encode(w);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let len = r.get_varint()? as usize;
        // Guard against absurd lengths from corrupt frames.
        if len > MAX_FRAME {
            return Err(Error::Codec(format!("vector length {len} too large")));
        }
        let mut v = Vec::with_capacity(len.min(4096));
        for _ in 0..len {
            v.push(T::decode(r)?);
        }
        Ok(v)
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, w: &mut Writer) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.encode(w);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        match r.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            x => Err(Error::Codec(format!("invalid option tag {x}"))),
        }
    }
}

impl Wire for Guid {
    fn encode(&self, w: &mut Writer) {
        w.put_varint((self.0 >> 64) as u64);
        w.put_varint(self.0 as u64);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let hi = r.get_varint()?;
        let lo = r.get_varint()?;
        Ok(Guid(((hi as u128) << 64) | lo as u128))
    }
}

impl Wire for SecondaryGuid {
    fn encode(&self, w: &mut Writer) {
        for part in self.0 {
            w.put_varint(part as u64);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let mut parts = [0u32; 5];
        for p in &mut parts {
            *p = u32::decode(r)?;
        }
        Ok(SecondaryGuid(parts))
    }
}

impl Wire for ObjectId {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(self.0);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(ObjectId(r.get_varint()?))
    }
}

impl Wire for VersionId {
    fn encode(&self, w: &mut Writer) {
        self.object.encode(w);
        w.put_varint(self.version as u64);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(VersionId {
            object: ObjectId::decode(r)?,
            version: u32::decode(r)?,
        })
    }
}

impl Wire for CpCode {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(self.0 as u64);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(CpCode(u32::decode(r)?))
    }
}

impl Wire for AsNumber {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(self.0 as u64);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(AsNumber(u32::decode(r)?))
    }
}

impl Wire for PeerIndex {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(self.0 as u64);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(PeerIndex(u32::decode(r)?))
    }
}

impl Wire for ConnectionId {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(self.0);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(ConnectionId(r.get_varint()?))
    }
}

impl Wire for Digest {
    fn encode(&self, w: &mut Writer) {
        w.buf.extend_from_slice(&self.0);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(Digest(r.get_array::<32>()?))
    }
}

impl Wire for SimTime {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(self.0);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(SimTime(r.get_varint()?))
    }
}

impl Wire for SimDuration {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(self.0);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(SimDuration(r.get_varint()?))
    }
}

impl Wire for ByteCount {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(self.0);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(ByteCount(r.get_varint()?))
    }
}

impl Wire for Bandwidth {
    fn encode(&self, w: &mut Writer) {
        w.put_f64(self.0);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(Bandwidth(r.get_f64()?))
    }
}

/// Wrap a payload in a length-prefixed frame.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    assert!(payload.len() <= MAX_FRAME, "frame too large");
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Incremental frame extractor over a byte stream.
#[derive(Default)]
pub struct FrameReader {
    buf: Vec<u8>,
}

impl FrameReader {
    /// Fresh reader.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feed newly received bytes.
    pub fn extend(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Try to extract the next complete frame payload.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(self.buf[..4].try_into().unwrap()) as usize;
        if len > MAX_FRAME {
            return Err(Error::Codec(format!("frame length {len} exceeds maximum")));
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        let payload = self.buf[4..4 + len].to_vec();
        self.buf.drain(..4 + len);
        Ok(Some(payload))
    }

    /// Bytes currently buffered but not yet consumed.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let payload = v.to_payload();
        let back = T::from_payload(&payload).expect("decode");
        assert_eq!(back, v);
    }

    #[test]
    fn primitive_roundtrips() {
        roundtrip(0u64);
        roundtrip(u64::MAX);
        roundtrip(300u32);
        roundtrip(true);
        roundtrip(false);
        roundtrip(3.5f64);
        roundtrip("héllo".to_string());
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(Option::<u32>::None);
        roundtrip(Some(9u32));
    }

    #[test]
    fn id_roundtrips() {
        roundtrip(Guid(0x0123456789abcdef_fedcba9876543210u128));
        roundtrip(SecondaryGuid([1, 2, 3, 4, 5]));
        roundtrip(ObjectId(77));
        roundtrip(VersionId {
            object: ObjectId(77),
            version: 3,
        });
        roundtrip(CpCode(12));
        roundtrip(AsNumber(7018));
        roundtrip(PeerIndex(9));
        roundtrip(ConnectionId(1234567));
        roundtrip(crate::hash::sha256(b"x"));
        roundtrip(SimTime(42));
        roundtrip(SimDuration(43));
        roundtrip(ByteCount(1 << 40));
        roundtrip(Bandwidth(1250000.0));
    }

    #[test]
    fn varint_edge_values() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u32::MAX as u64, u64::MAX] {
            roundtrip(v);
        }
    }

    #[test]
    fn signed_varint_roundtrip() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            let mut w = Writer::new();
            w.put_varint_i64(v);
            let payload = w.finish();
            let mut r = Reader::new(&payload);
            assert_eq!(r.get_varint_i64().unwrap(), v);
        }
    }

    #[test]
    fn truncated_input_errors() {
        let payload = Guid(u128::MAX).to_payload();
        for cut in 0..payload.len() {
            assert!(Guid::from_payload(&payload[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut payload = 5u64.to_payload().to_vec();
        payload.push(0);
        assert!(u64::from_payload(&payload).is_err());
    }

    #[test]
    fn invalid_bool_rejected() {
        assert!(bool::from_payload(&[2]).is_err());
    }

    #[test]
    fn frame_reader_reassembles_split_stream() {
        let a = frame(b"hello");
        let b = frame(b"world!");
        let mut stream = Vec::new();
        stream.extend_from_slice(&a);
        stream.extend_from_slice(&b);
        let mut fr = FrameReader::new();
        // Feed one byte at a time.
        let mut got = Vec::new();
        for byte in stream {
            fr.extend(&[byte]);
            while let Some(frame) = fr.next_frame().unwrap() {
                got.push(frame);
            }
        }
        assert_eq!(got.len(), 2);
        assert_eq!(&got[0][..], b"hello");
        assert_eq!(&got[1][..], b"world!");
        assert_eq!(fr.buffered(), 0);
    }

    #[test]
    fn frame_reader_rejects_oversized_header() {
        let mut fr = FrameReader::new();
        fr.extend(&(u32::MAX).to_le_bytes());
        assert!(fr.next_frame().is_err());
    }

    #[test]
    fn varint_overflow_rejected() {
        // 11 continuation bytes exceed 64 bits of varint.
        let bad = [0xffu8; 11];
        let mut r = Reader::new(&bad);
        assert!(r.get_varint().is_err());
    }
}
