//! A dependency-free FxHash-style hasher for hot-path maps.
//!
//! `std::collections::HashMap` defaults to SipHash-1-3, which is keyed and
//! DoS-resistant but costs tens of nanoseconds per small key. Simulation
//! hot paths hash millions of small integer keys (GUIDs, object ids,
//! connection ids) where that cost dominates the probe itself, and none of
//! those maps are fed attacker-controlled keys. This module provides the
//! multiply-rotate hash popularized by Firefox and the Rust compiler
//! ("FxHash"): one rotate, one xor, and one multiply per 8-byte word.
//!
//! **Determinism note.** FxHasher is unseeded, so iteration order of an
//! `FxHashMap` is stable for a fixed insertion sequence — but it is still
//! *arbitrary*, exactly like SipHash order. The repo rule is unchanged:
//! hash-map iteration order must never reach any output; every emission
//! point sorts first (see `docs/DETERMINISM.md`). Swapping the hasher on an
//! audited map therefore cannot change any result byte.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The multiplier from the FxHash algorithm (as used by rustc): a 64-bit
/// constant derived from the golden ratio, chosen to spread entropy across
/// the high bits that hashbrown's control bytes use.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Rotate-xor-multiply hasher over 8-byte words.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut rest = bytes;
        while rest.len() >= 8 {
            let (word, tail) = rest.split_at(8);
            self.add_word(u64::from_le_bytes(word.try_into().unwrap()));
            rest = tail;
        }
        if rest.len() >= 4 {
            let (word, tail) = rest.split_at(4);
            self.add_word(u32::from_le_bytes(word.try_into().unwrap()) as u64);
            rest = tail;
        }
        if rest.len() >= 2 {
            let (word, tail) = rest.split_at(2);
            self.add_word(u16::from_le_bytes(word.try_into().unwrap()) as u64);
            rest = tail;
        }
        if let [b] = rest {
            self.add_word(*b as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_word(n as u64);
    }
    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_word(n as u64);
    }
    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_word(n as u64);
    }
    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_word(n);
    }
    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.add_word(n as u64);
        self.add_word((n >> 64) as u64);
    }
    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_word(n as u64);
    }
    #[inline]
    fn write_i8(&mut self, n: i8) {
        self.add_word(n as u8 as u64);
    }
    #[inline]
    fn write_i16(&mut self, n: i16) {
        self.add_word(n as u16 as u64);
    }
    #[inline]
    fn write_i32(&mut self, n: i32) {
        self.add_word(n as u32 as u64);
    }
    #[inline]
    fn write_i64(&mut self, n: i64) {
        self.add_word(n as u64);
    }
    #[inline]
    fn write_isize(&mut self, n: isize) {
        self.add_word(n as u64);
    }
}

/// Builds [`FxHasher`]s; zero-sized, unseeded.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`]. Drop-in for `std::HashMap` on
/// audited hot paths (see module docs for the audit rule).
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` hashed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(v: T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn distinct_small_keys_hash_differently() {
        let hashes: Vec<u64> = (0u64..1000).map(hash_of).collect();
        let mut dedup = hashes.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), hashes.len(), "collision among tiny keys");
    }

    #[test]
    fn byte_stream_and_word_paths_are_consistent_per_input() {
        // Same input always hashes the same (unseeded, process-independent).
        assert_eq!(hash_of(0xdead_beefu64), hash_of(0xdead_beefu64));
        assert_eq!(hash_of("guid"), hash_of("guid"));
        assert_ne!(hash_of(1u64), hash_of(2u64));
        assert_ne!(hash_of("a"), hash_of("b"));
    }

    #[test]
    fn write_handles_all_tail_lengths() {
        // 1..=16 byte values exercise the 8/4/2/1 tail ladder. (Bytes start
        // at 1: FxHash maps an all-zero word onto an unchanged zero state,
        // so a single 0x00 byte would collide with the empty input — an
        // inherent property of rotate-xor-multiply, harmless for maps.)
        let data: Vec<u8> = (1u8..=16).collect();
        let mut seen = Vec::new();
        for len in 0..=data.len() {
            let mut h = FxHasher::default();
            h.write(&data[..len]);
            seen.push(h.finish());
        }
        let mut dedup = seen.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seen.len());
    }

    #[test]
    fn map_and_set_work_as_drop_ins() {
        let mut m: FxHashMap<u128, u32> = FxHashMap::default();
        for i in 0..500u128 {
            m.insert(i * 7, i as u32);
        }
        assert_eq!(m.len(), 500);
        assert_eq!(m.get(&(7 * 499)), Some(&499));
        let mut s: FxHashSet<(u64, u32)> = FxHashSet::default();
        assert!(s.insert((1, 2)));
        assert!(!s.insert((1, 2)));
    }

    #[test]
    fn iteration_order_is_stable_for_fixed_insertions() {
        let build = || {
            let mut m: FxHashMap<u64, u64> = FxHashMap::default();
            for i in 0..100 {
                m.insert(i * 31, i);
            }
            m.into_iter().collect::<Vec<_>>()
        };
        // Stable across instances — but still arbitrary: callers must sort
        // before emitting, never rely on this order.
        assert_eq!(build(), build());
    }
}
