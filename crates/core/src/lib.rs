//! # netsession-core
//!
//! Core vocabulary types for the NetSession peer-assisted CDN reproduction
//! (Zhao et al., *Peer-Assisted Content Distribution in Akamai NetSession*,
//! IMC 2013).
//!
//! This crate is dependency-light and shared by every other crate in the
//! workspace. It provides:
//!
//! * identifiers ([`Guid`], [`SecondaryGuid`], [`ObjectId`], [`CpCode`],
//!   [`AsNumber`], …) — §3.4 of the paper,
//! * an in-repo SHA-256 implementation ([`hash`]) used for content-integrity
//!   piece hashes and for log anonymization — §3.5, §4.1,
//! * piece bookkeeping ([`piece::PieceMap`], [`piece::Manifest`]) for the
//!   BitTorrent-like swarming protocol — §3.4,
//! * a compact, hand-rolled binary wire codec ([`codec`]) and the NetSession
//!   control/swarm protocol messages ([`msg`]) — §3.4–3.6,
//! * provider policies and per-download configuration ([`policy`]) — §3.5,
//! * simulated time ([`time::SimTime`]) and traffic units ([`units`]),
//! * a deterministic, splittable PRNG ([`rng::DetRng`]) so that every
//!   experiment in the workspace is exactly reproducible from a seed.

pub mod codec;
pub mod error;
pub mod fxhash;
pub mod hash;
pub mod id;
pub mod msg;
pub mod piece;
pub mod policy;
pub mod rng;
pub mod time;
pub mod units;

pub use error::{Error, Result};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use hash::Digest;
pub use id::{AsNumber, ConnectionId, CpCode, Guid, ObjectId, PeerIndex, SecondaryGuid, VersionId};
pub use piece::{Manifest, PieceIndex, PieceMap};
pub use policy::{DownloadPolicy, TransferConfig};
pub use rng::DetRng;
pub use time::{SimDuration, SimTime};
pub use units::{Bandwidth, ByteCount};
