//! Property-based tests for the core vocabulary types.

use netsession_core::codec::{FrameReader, Wire};
use netsession_core::hash::{sha256, Sha256};
use netsession_core::id::{Guid, ObjectId, SecondaryGuid, VersionId};
use netsession_core::msg::{ControlMsg, NatType, PeerAddr, SwarmMsg};
use netsession_core::piece::{Manifest, PieceMap};
use netsession_core::time::{SimDuration, SimTime};
use netsession_core::units::{Bandwidth, ByteCount};
use proptest::prelude::*;

proptest! {
    #[test]
    fn varint_roundtrip(v in any::<u64>()) {
        prop_assert_eq!(u64::from_payload(&v.to_payload()).unwrap(), v);
    }

    #[test]
    fn guid_roundtrip(hi in any::<u64>(), lo in any::<u64>()) {
        let g = Guid(((hi as u128) << 64) | lo as u128);
        prop_assert_eq!(Guid::from_payload(&g.to_payload()).unwrap(), g);
    }

    #[test]
    fn string_roundtrip(s in ".{0,200}") {
        prop_assert_eq!(String::from_payload(&s.clone().to_payload()).unwrap(), s);
    }

    #[test]
    fn truncated_payloads_never_panic(v in any::<u64>(), cut in 0usize..16) {
        let payload = v.to_payload();
        let cut = cut.min(payload.len());
        // Must return an error or a value, never panic.
        let _ = u64::from_payload(&payload[..cut]);
    }

    #[test]
    fn garbage_never_panics_control(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = ControlMsg::from_payload(&bytes);
        let _ = SwarmMsg::from_payload(&bytes);
    }

    #[test]
    fn frame_reader_reassembles_any_chunking(
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 1..8),
        chunk in 1usize..17,
    ) {
        let mut stream = Vec::new();
        for p in &payloads {
            stream.extend_from_slice(&netsession_core::codec::frame(p));
        }
        let mut reader = FrameReader::new();
        let mut got = Vec::new();
        for c in stream.chunks(chunk) {
            reader.extend(c);
            while let Some(frame) = reader.next_frame().unwrap() {
                got.push(frame.to_vec());
            }
        }
        prop_assert_eq!(got, payloads);
    }

    #[test]
    fn sha256_incremental_equals_oneshot(
        data in proptest::collection::vec(any::<u8>(), 0..512),
        split in 0usize..512,
    ) {
        let split = split.min(data.len());
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), sha256(&data));
    }

    #[test]
    fn piecemap_set_clear_is_involutive(len in 1u32..512, ops in proptest::collection::vec((any::<u32>(), any::<bool>()), 0..100)) {
        let mut map = PieceMap::empty(len);
        let mut model = std::collections::HashSet::new();
        for (p, set) in ops {
            let p = p % len;
            if set {
                map.set(p);
                model.insert(p);
            } else {
                map.clear(p);
                model.remove(&p);
            }
            prop_assert_eq!(map.have_count() as usize, model.len());
            prop_assert_eq!(map.has(p), model.contains(&p));
        }
        prop_assert_eq!(map.is_complete(), model.len() == len as usize);
    }

    #[test]
    fn have_map_wire_roundtrip(len in 1u32..300, held in proptest::collection::vec(any::<u32>(), 0..80)) {
        let mut map = PieceMap::empty(len);
        for p in held {
            map.set(p % len);
        }
        if let SwarmMsg::HaveMap { pieces, words } = SwarmMsg::have_map(&map) {
            let back = SwarmMsg::decode_have_map(pieces, &words).unwrap();
            prop_assert_eq!(back, map);
        } else {
            prop_assert!(false, "wrong variant");
        }
    }

    #[test]
    fn manifest_piece_lens_sum_to_size(size in 0u64..10_000_000, piece_size in 1u64..2_000_000) {
        let m = Manifest::synthetic(
            VersionId { object: ObjectId(1), version: 1 },
            ByteCount(size),
            piece_size,
        );
        let total: u64 = (0..m.piece_count()).map(|p| m.piece_len(p)).sum();
        prop_assert_eq!(total, size);
        // Every piece except possibly the last is exactly piece_size.
        for p in 0..m.piece_count().saturating_sub(1) {
            prop_assert_eq!(m.piece_len(p), piece_size);
        }
    }

    #[test]
    fn bandwidth_time_for_inverts_bytes_in(bps in 1.0f64..1e9, secs in 0u64..100_000) {
        let bw = Bandwidth::from_bytes_per_sec(bps);
        let moved = bw.bytes_in(SimDuration::from_secs(secs));
        if let Some(t) = bw.time_for(moved) {
            // Round-trip within a second of quantization error.
            prop_assert!((t.as_secs_f64() - secs as f64).abs() <= 1.0 + secs as f64 * 1e-9);
        }
    }

    #[test]
    fn simtime_ordering_consistent_with_micros(a in any::<u64>(), b in any::<u64>()) {
        prop_assert_eq!(SimTime(a) < SimTime(b), a < b);
        prop_assert_eq!(SimTime(a).since(SimTime(b)).as_micros(), a.saturating_sub(b));
    }

    #[test]
    fn peer_contact_roundtrip(
        guid in any::<u64>(),
        ip in any::<u32>(),
        port in any::<u16>(),
        asn in any::<u32>(),
        nat_idx in 0usize..6,
    ) {
        let contact = netsession_core::msg::PeerContact {
            guid: Guid(guid as u128),
            addr: PeerAddr { ip, port },
            asn: netsession_core::id::AsNumber(asn),
            nat: NatType::ALL[nat_idx],
        };
        let back = netsession_core::msg::PeerContact::from_payload(&contact.to_payload()).unwrap();
        prop_assert_eq!(back, contact);
    }

    #[test]
    fn secondary_guid_roundtrip(parts in any::<[u32; 5]>()) {
        let s = SecondaryGuid(parts);
        prop_assert_eq!(SecondaryGuid::from_payload(&s.to_payload()).unwrap(), s);
    }
}

/// The hasher-swap invariant behind `netsession_core::fxhash`: because every
/// emission point in the repo sorts before emitting, replacing SipHash with
/// FxHash on a map cannot change any output byte. This pins the invariant
/// directly — across 200 seeded insert/remove workloads, the *sorted*
/// key-value emission of an `FxHashMap` and a SipHash `HashMap` fed the same
/// operations is identical, even though their iteration orders differ.
#[test]
fn fxhash_sorted_emission_matches_siphash_across_200_seeds() {
    use netsession_core::fxhash::FxHashMap;
    use netsession_core::rng::DetRng;
    use std::collections::HashMap;

    for seed in 0..200u64 {
        let mut rng = DetRng::seeded(0xf0 ^ seed);
        let mut fx: FxHashMap<u64, u64> = FxHashMap::default();
        let mut sip: HashMap<u64, u64> = HashMap::new();
        for op in 0..300 {
            // Small key space forces overwrites and removals to collide.
            let key = rng.next_u64() % 64;
            if rng.next_u64().is_multiple_of(4) {
                fx.remove(&key);
                sip.remove(&key);
            } else {
                fx.insert(key, op);
                sip.insert(key, op);
            }
        }
        // The repo rule: sort, then emit.
        let mut fx_emit: Vec<(u64, u64)> = fx.iter().map(|(k, v)| (*k, *v)).collect();
        let mut sip_emit: Vec<(u64, u64)> = sip.iter().map(|(k, v)| (*k, *v)).collect();
        fx_emit.sort_unstable();
        sip_emit.sort_unstable();
        assert_eq!(fx_emit, sip_emit, "seed {seed}: sorted emissions diverged");
    }
}
