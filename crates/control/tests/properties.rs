//! Property-based tests for the control plane.

use netsession_control::directory::{DirectoryNode, PeerRecord};
use netsession_control::selection::{Querier, SelectionPolicy, Selector};
use netsession_core::id::{AsNumber, Guid, ObjectId, VersionId};
use netsession_core::msg::{NatType, PeerAddr};
use netsession_core::rng::DetRng;
use netsession_nat::matrix::connectivity;
use proptest::prelude::*;

fn nat_type() -> impl Strategy<Value = NatType> {
    (0usize..6).prop_map(|i| NatType::ALL[i])
}

fn record(guid: u64, asn: u32, area: u16, zone: u8, nat: NatType) -> PeerRecord {
    PeerRecord {
        guid: Guid(guid as u128),
        addr: PeerAddr {
            ip: guid as u32,
            port: 1,
        },
        asn: AsNumber(asn),
        area,
        zone,
        nat,
    }
}

fn ver() -> VersionId {
    VersionId {
        object: ObjectId(1),
        version: 1,
    }
}

proptest! {
    /// Selection invariants under arbitrary directories: bounded size, no
    /// self-selection, no duplicates, NAT-compatible only, and every
    /// returned peer is a registered holder.
    #[test]
    fn selection_invariants(
        peers in proptest::collection::vec((1u64..500, 1u32..40, 0u16..12, 0u8..5, 0usize..6), 0..120),
        q_nat in nat_type(),
        max_peers in 1usize..50,
        seed in any::<u64>(),
    ) {
        let mut dn = DirectoryNode::new(0);
        let mut registered = std::collections::HashSet::new();
        for (g, asn, area, zone, nat_idx) in &peers {
            dn.register(record(*g, *asn, *area, *zone, NatType::ALL[*nat_idx]), ver());
            registered.insert(Guid(*g as u128));
        }
        let selector = Selector::new(SelectionPolicy {
            max_peers,
            ..SelectionPolicy::default()
        });
        let querier = Querier {
            guid: Guid(1),
            asn: AsNumber(5),
            area: 3,
            zone: 1,
            nat: q_nat,
        };
        let mut rng = DetRng::seeded(seed);
        let picked = selector.select(&mut dn, ver(), &querier, &mut rng);

        prop_assert!(picked.len() <= max_peers);
        let mut seen = std::collections::HashSet::new();
        for c in &picked {
            prop_assert!(c.guid != querier.guid, "self-selection");
            prop_assert!(seen.insert(c.guid), "duplicate selection");
            prop_assert!(registered.contains(&c.guid), "phantom peer");
            prop_assert!(connectivity(q_nat, c.nat).usable(), "incompatible NAT pairing");
        }
    }

    /// The fairness rotation preserves the holder set: selecting never
    /// loses or invents holders.
    #[test]
    fn rotation_preserves_holders(
        n in 1u64..60,
        rounds in 1usize..10,
        seed in any::<u64>(),
    ) {
        let mut dn = DirectoryNode::new(0);
        for g in 1..=n {
            dn.register(record(g, 1, 1, 1, NatType::Open), ver());
        }
        let selector = Selector::new(SelectionPolicy {
            max_peers: 7,
            ..SelectionPolicy::default()
        });
        let querier = Querier {
            guid: Guid(0),
            asn: AsNumber(1),
            area: 1,
            zone: 1,
            nat: NatType::Open,
        };
        let mut rng = DetRng::seeded(seed);
        for _ in 0..rounds {
            let _ = selector.select(&mut dn, ver(), &querier, &mut rng);
            prop_assert_eq!(dn.holder_count(ver()), n as usize);
        }
    }

    /// Over enough rounds, rotation serves every holder (no starvation).
    #[test]
    fn rotation_eventually_serves_everyone(n in 2u64..40, seed in any::<u64>()) {
        let mut dn = DirectoryNode::new(0);
        for g in 1..=n {
            dn.register(record(g, 1, 1, 1, NatType::Open), ver());
        }
        let selector = Selector::new(SelectionPolicy {
            max_peers: 3,
            diversity: 0.0,
            ..SelectionPolicy::default()
        });
        let querier = Querier {
            guid: Guid(0),
            asn: AsNumber(1),
            area: 1,
            zone: 1,
            nat: NatType::Open,
        };
        let mut rng = DetRng::seeded(seed);
        let mut served = std::collections::HashSet::new();
        for _ in 0..(n as usize) {
            for c in selector.select(&mut dn, ver(), &querier, &mut rng) {
                served.insert(c.guid);
            }
        }
        prop_assert_eq!(served.len(), n as usize, "someone was starved");
    }

    /// Register/unregister sequences keep the directory consistent with a
    /// model set.
    #[test]
    fn directory_matches_model(ops in proptest::collection::vec((1u64..40, any::<bool>()), 0..200)) {
        let mut dn = DirectoryNode::new(0);
        let mut model = std::collections::HashSet::new();
        for (g, add) in ops {
            if add {
                dn.register(record(g, 1, 1, 1, NatType::Open), ver());
                model.insert(g);
            } else {
                dn.unregister(Guid(g as u128), ver());
                model.remove(&g);
            }
            prop_assert_eq!(dn.holder_count(ver()), model.len());
        }
    }
}
