//! Monitoring nodes.
//!
//! "Peers upload information about their operation and about problems, such
//! as application crash reports, to these nodes. Processing their logs
//! helps to monitor the network in real-time, to identify problems, and to
//! troubleshoot specific user issues" (§3.6). "Download and upload
//! performance is constantly monitored, and automated alerts are in place
//! to notify network engineers in case of large-scale problems" (§3.8).

use netsession_core::id::Guid;
use netsession_core::time::SimTime;
use netsession_core::units::Bandwidth;
use std::collections::VecDeque;

/// Kinds of problem reports peers upload.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProblemKind {
    /// The client application crashed.
    Crash,
    /// A download failed for a system-related cause.
    DownloadFailure,
    /// Repeated piece-verification failures (possible corruption source).
    VerificationFailure,
    /// NAT traversal failed against a selected peer.
    TraversalFailure,
}

/// One problem report.
#[derive(Clone, Debug)]
pub struct ProblemReport {
    /// When it happened.
    pub at: SimTime,
    /// The reporting peer.
    pub guid: Guid,
    /// What happened.
    pub kind: ProblemKind,
}

/// A raised alert.
#[derive(Clone, Debug, PartialEq)]
pub struct Alert {
    /// When the alert fired.
    pub at: SimTime,
    /// Human-readable description.
    pub message: String,
}

/// Sliding-window monitoring with rate-based alerts.
pub struct MonitoringNode {
    /// Window size for rate alerts.
    pub window: netsession_core::time::SimDuration,
    /// Problem-count threshold within the window that triggers an alert.
    pub problem_threshold: usize,
    /// Mean download speed below which a sustained-speed alert fires.
    pub speed_floor: Bandwidth,
    reports: VecDeque<ProblemReport>,
    speed_samples: VecDeque<(SimTime, Bandwidth)>,
    alerts: Vec<Alert>,
    total_reports: u64,
}

impl MonitoringNode {
    /// Create with operational defaults: 10-minute window, 1000-problem
    /// threshold, 0.5 Mbps fleet-speed floor.
    pub fn new() -> Self {
        MonitoringNode {
            window: netsession_core::time::SimDuration::from_mins(10),
            problem_threshold: 1000,
            speed_floor: Bandwidth::from_mbps(0.5),
            reports: VecDeque::new(),
            speed_samples: VecDeque::new(),
            alerts: Vec::new(),
            total_reports: 0,
        }
    }

    fn evict(&mut self, now: SimTime) {
        let horizon = now
            .since(SimTime::ZERO)
            .as_micros()
            .saturating_sub(self.window.as_micros());
        while self
            .reports
            .front()
            .is_some_and(|r| r.at.as_micros() < horizon)
        {
            self.reports.pop_front();
        }
        while self
            .speed_samples
            .front()
            .is_some_and(|(t, _)| t.as_micros() < horizon)
        {
            self.speed_samples.pop_front();
        }
    }

    /// Ingest a problem report; may raise an alert.
    pub fn report_problem(&mut self, report: ProblemReport) {
        let now = report.at;
        self.total_reports += 1;
        self.reports.push_back(report);
        self.evict(now);
        if self.reports.len() >= self.problem_threshold {
            self.alerts.push(Alert {
                at: now,
                message: format!(
                    "{} problem reports within {}",
                    self.reports.len(),
                    self.window
                ),
            });
            self.reports.clear();
        }
    }

    /// Ingest a per-download mean-speed sample; may raise an alert when the
    /// fleet-wide mean in the window dips below the floor.
    pub fn report_speed(&mut self, at: SimTime, speed: Bandwidth) {
        self.speed_samples.push_back((at, speed));
        self.evict(at);
        if self.speed_samples.len() >= 100 {
            let mean: f64 = self
                .speed_samples
                .iter()
                .map(|(_, s)| s.bytes_per_sec())
                .sum::<f64>()
                / self.speed_samples.len() as f64;
            if mean < self.speed_floor.bytes_per_sec() {
                self.alerts.push(Alert {
                    at,
                    message: format!(
                        "fleet mean download speed {:.2} Mbps below floor",
                        Bandwidth::from_bytes_per_sec(mean).as_mbps()
                    ),
                });
                self.speed_samples.clear();
            }
        }
    }

    /// Alerts raised so far.
    pub fn alerts(&self) -> &[Alert] {
        &self.alerts
    }

    /// Total problem reports ever ingested.
    pub fn total_reports(&self) -> u64 {
        self.total_reports
    }
}

impl Default for MonitoringNode {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsession_core::time::SimDuration;

    #[test]
    fn problem_burst_raises_alert() {
        let mut m = MonitoringNode::new();
        m.problem_threshold = 10;
        for i in 0..10 {
            m.report_problem(ProblemReport {
                at: SimTime(i),
                guid: Guid(i as u128),
                kind: ProblemKind::Crash,
            });
        }
        assert_eq!(m.alerts().len(), 1);
        assert!(m.alerts()[0].message.contains("problem reports"));
    }

    #[test]
    fn slow_trickle_does_not_alert() {
        let mut m = MonitoringNode::new();
        m.problem_threshold = 10;
        // One report every 5 minutes: never 10 within a 10-minute window.
        for i in 0..50u64 {
            m.report_problem(ProblemReport {
                at: SimTime::ZERO + SimDuration::from_mins(5 * i),
                guid: Guid(1),
                kind: ProblemKind::DownloadFailure,
            });
        }
        assert!(m.alerts().is_empty());
        assert_eq!(m.total_reports(), 50);
    }

    #[test]
    fn sustained_slow_speeds_alert() {
        let mut m = MonitoringNode::new();
        for i in 0..100u64 {
            m.report_speed(SimTime(i), Bandwidth::from_mbps(0.1));
        }
        assert_eq!(m.alerts().len(), 1);
        assert!(m.alerts()[0].message.contains("below floor"));
    }

    #[test]
    fn healthy_speeds_do_not_alert() {
        let mut m = MonitoringNode::new();
        for i in 0..500u64 {
            m.report_speed(SimTime(i), Bandwidth::from_mbps(8.0));
        }
        assert!(m.alerts().is_empty());
    }
}
