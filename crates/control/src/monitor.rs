//! Monitoring nodes.
//!
//! "Peers upload information about their operation and about problems, such
//! as application crash reports, to these nodes. Processing their logs
//! helps to monitor the network in real-time, to identify problems, and to
//! troubleshoot specific user issues" (§3.6). "Download and upload
//! performance is constantly monitored, and automated alerts are in place
//! to notify network engineers in case of large-scale problems" (§3.8).
//!
//! The node itself is thin: problem reports and speed samples feed a
//! private [`MetricsRegistry`], and the alerting logic is the shared
//! [`AlertEngine`] from `netsession-obs` — the same rule machinery the
//! hybrid simulator runs over virtual time and the live monitor server
//! runs over wall-clock scrapes. Two rules:
//!
//! - **problem burst** (rate-of-change): total problem reports rise by at
//!   least `problem_threshold` within `window`;
//! - **fleet speed** (threshold): the mean download speed across the
//!   trailing window (once at least [`SPEED_MIN_SAMPLES`] samples are in
//!   it) sits below `speed_floor`.
//!
//! Alerts clear on their own when the window quiets down or speeds
//! recover; use [`MonitoringNode::poll`] to advance the clock when no
//! reports are arriving.

use netsession_core::id::Guid;
use netsession_core::time::{SimDuration, SimTime};
use netsession_core::units::Bandwidth;
use netsession_obs::{AlertEngine, AlertRule, MetricsRegistry, RuleKind};
use std::collections::VecDeque;

pub use netsession_core::msg::ProblemKind;

/// Minimum speed samples in the window before the fleet-speed rule is
/// allowed to judge the mean (avoids alerting on a handful of slow
/// outliers right after startup).
pub const SPEED_MIN_SAMPLES: usize = 100;

/// Counter fed by [`MonitoringNode::report_problem`] (all kinds).
pub const PROBLEMS_TOTAL: &str = "monitor.problems.total";
/// Gauge holding the windowed fleet mean download speed in bytes/sec
/// (only meaningful once [`SPEED_MIN_SAMPLES`] samples are present).
pub const SPEED_MEAN_GAUGE: &str = "monitor.speed.window_mean_bps";

/// Rule name for the problem-burst alert.
pub const RULE_PROBLEM_BURST: &str = "problem-burst";
/// Rule name for the fleet-speed alert.
pub const RULE_FLEET_SPEED: &str = "fleet-speed";

/// One problem report.
#[derive(Clone, Debug)]
pub struct ProblemReport {
    /// When it happened.
    pub at: SimTime,
    /// The reporting peer.
    pub guid: Guid,
    /// What happened.
    pub kind: ProblemKind,
}

/// A raised alert.
#[derive(Clone, Debug, PartialEq)]
pub struct Alert {
    /// When the alert fired.
    pub at: SimTime,
    /// Human-readable description.
    pub message: String,
}

/// Monitoring node: ingests reports, delegates alerting to an
/// [`AlertEngine`].
///
/// The tunables (`window`, `problem_threshold`, `speed_floor`) are public
/// fields and may be adjusted until the first report or poll; the engine
/// is built from them lazily on first use and fixed from then on.
pub struct MonitoringNode {
    /// Window size for rate alerts.
    pub window: SimDuration,
    /// Problem-count threshold within the window that triggers an alert.
    pub problem_threshold: usize,
    /// Mean download speed below which a sustained-speed alert fires.
    pub speed_floor: Bandwidth,
    registry: MetricsRegistry,
    engine: Option<AlertEngine>,
    speed_samples: VecDeque<(SimTime, Bandwidth)>,
    alerts: Vec<Alert>,
    total_reports: u64,
}

impl MonitoringNode {
    /// Create with operational defaults: 10-minute window, 1000-problem
    /// threshold, 0.5 Mbps fleet-speed floor.
    pub fn new() -> Self {
        MonitoringNode {
            window: SimDuration::from_mins(10),
            problem_threshold: 1000,
            speed_floor: Bandwidth::from_mbps(0.5),
            registry: MetricsRegistry::with_event_capacity(0),
            engine: None,
            speed_samples: VecDeque::new(),
            alerts: Vec::new(),
            total_reports: 0,
        }
    }

    /// Ingest a problem report; may raise (or clear) alerts.
    pub fn report_problem(&mut self, report: ProblemReport) {
        let now = report.at;
        self.prime(now);
        self.total_reports += 1;
        self.registry.counter(PROBLEMS_TOTAL).incr();
        self.registry
            .counter(&format!("monitor.problems.{}", report.kind.label()))
            .incr();
        self.evaluate(now);
    }

    /// Ingest a per-download mean-speed sample; may raise (or clear) the
    /// fleet-speed alert when the windowed mean dips below the floor.
    pub fn report_speed(&mut self, at: SimTime, speed: Bandwidth) {
        self.prime(at);
        self.speed_samples.push_back((at, speed));
        self.evaluate(at);
    }

    /// Advance the clock without new input, so alerts whose window has
    /// quieted down get a chance to clear.
    pub fn poll(&mut self, now: SimTime) {
        self.prime(now);
        self.evaluate(now);
    }

    /// Alerts raised so far (raise transitions only; clears are visible
    /// through [`MonitoringNode::active_alerts`]).
    pub fn alerts(&self) -> &[Alert] {
        &self.alerts
    }

    /// Names of currently firing rules.
    pub fn active_alerts(&self) -> Vec<&str> {
        self.engine.as_ref().map(|e| e.active()).unwrap_or_default()
    }

    /// Total problem reports ever ingested.
    pub fn total_reports(&self) -> u64 {
        self.total_reports
    }

    /// Problem reports of one kind ever ingested.
    pub fn problem_count(&self, kind: ProblemKind) -> u64 {
        self.registry
            .counter(&format!("monitor.problems.{}", kind.label()))
            .get()
    }

    /// Build the engine from the current tunables and feed it one
    /// baseline observation at `now` *before* the first ingest counts,
    /// so the engine's first real delta is measured against an empty
    /// window rather than swallowing the first report.
    fn prime(&mut self, now: SimTime) {
        if self.engine.is_some() {
            return;
        }
        self.refresh_speed_gauge(now);
        let mut engine = AlertEngine::new(vec![
            AlertRule::new(
                RULE_PROBLEM_BURST,
                PROBLEMS_TOTAL,
                RuleKind::RateAbove {
                    delta: self.problem_threshold as u64,
                },
                self.window.as_micros(),
            ),
            AlertRule::new(
                RULE_FLEET_SPEED,
                SPEED_MEAN_GAUGE,
                RuleKind::GaugeBelow {
                    limit: self.speed_floor.bytes_per_sec() as i64,
                },
                0,
            ),
        ]);
        engine.observe(
            now.since(SimTime::ZERO).as_micros(),
            &self.registry.scrape(),
        );
        self.engine = Some(engine);
    }

    fn refresh_speed_gauge(&mut self, now: SimTime) -> i64 {
        // The gauge starts (and idles) at i64::MAX: a missing gauge
        // would read 0 and instantly trip the below-floor rule.
        let horizon = now
            .since(SimTime::ZERO)
            .as_micros()
            .saturating_sub(self.window.as_micros());
        while self
            .speed_samples
            .front()
            .is_some_and(|(t, _)| t.as_micros() < horizon)
        {
            self.speed_samples.pop_front();
        }
        let mean_bps = if self.speed_samples.len() >= SPEED_MIN_SAMPLES {
            let mean = self
                .speed_samples
                .iter()
                .map(|(_, s)| s.bytes_per_sec())
                .sum::<f64>()
                / self.speed_samples.len() as f64;
            mean as i64
        } else {
            i64::MAX
        };
        self.registry.gauge(SPEED_MEAN_GAUGE).set(mean_bps);
        mean_bps
    }

    fn evaluate(&mut self, now: SimTime) {
        let mean_bps = self.refresh_speed_gauge(now);
        let engine = self.engine.as_mut().expect("primed before evaluate");
        for ev in engine.observe(
            now.since(SimTime::ZERO).as_micros(),
            &self.registry.scrape(),
        ) {
            if !ev.raised {
                continue;
            }
            let message = match ev.rule.as_str() {
                RULE_PROBLEM_BURST => {
                    format!("problem reports burst within {}", self.window)
                }
                RULE_FLEET_SPEED => format!(
                    "fleet mean download speed {:.2} Mbps below floor",
                    Bandwidth::from_bytes_per_sec(mean_bps as f64).as_mbps()
                ),
                _ => ev.message.clone(),
            };
            self.alerts.push(Alert { at: now, message });
        }
    }
}

impl Default for MonitoringNode {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(at: SimTime, kind: ProblemKind) -> ProblemReport {
        ProblemReport {
            at,
            guid: Guid(1),
            kind,
        }
    }

    #[test]
    fn problem_burst_raises_alert() {
        let mut m = MonitoringNode::new();
        m.problem_threshold = 10;
        for i in 0..10 {
            m.report_problem(report(SimTime(i), ProblemKind::Crash));
        }
        assert_eq!(m.alerts().len(), 1);
        assert!(m.alerts()[0].message.contains("problem reports"));
        assert_eq!(m.active_alerts(), vec![RULE_PROBLEM_BURST]);
    }

    #[test]
    fn quiet_period_clears_burst_alert() {
        let mut m = MonitoringNode::new();
        m.problem_threshold = 10;
        for i in 0..10 {
            m.report_problem(report(SimTime(i), ProblemKind::Crash));
        }
        assert_eq!(m.active_alerts(), vec![RULE_PROBLEM_BURST]);
        // A full quiet window later the burst has rolled out of the
        // window; the alert clears without new reports.
        m.poll(SimTime::ZERO + SimDuration::from_mins(11));
        assert!(m.active_alerts().is_empty());
        // The raise stays in the historical log.
        assert_eq!(m.alerts().len(), 1);
        // A second burst re-raises.
        let base = SimTime::ZERO + SimDuration::from_mins(20);
        for i in 0..10 {
            m.report_problem(report(SimTime(base.0 + i), ProblemKind::DownloadFailure));
        }
        assert_eq!(m.alerts().len(), 2);
        assert_eq!(m.total_reports(), 20);
        assert_eq!(m.problem_count(ProblemKind::Crash), 10);
        assert_eq!(m.problem_count(ProblemKind::DownloadFailure), 10);
    }

    #[test]
    fn slow_trickle_does_not_alert() {
        let mut m = MonitoringNode::new();
        m.problem_threshold = 10;
        // One report every 5 minutes: never 10 within a 10-minute window.
        for i in 0..50u64 {
            m.report_problem(report(
                SimTime::ZERO + SimDuration::from_mins(5 * i),
                ProblemKind::DownloadFailure,
            ));
        }
        assert!(m.alerts().is_empty());
        assert_eq!(m.total_reports(), 50);
    }

    #[test]
    fn sustained_slow_speeds_alert() {
        let mut m = MonitoringNode::new();
        for i in 0..100u64 {
            m.report_speed(SimTime(i), Bandwidth::from_mbps(0.1));
        }
        assert_eq!(m.alerts().len(), 1);
        assert!(m.alerts()[0].message.contains("below floor"));
        assert_eq!(m.active_alerts(), vec![RULE_FLEET_SPEED]);
    }

    #[test]
    fn recovered_speeds_clear_the_alert() {
        let mut m = MonitoringNode::new();
        for i in 0..100u64 {
            m.report_speed(SimTime(i), Bandwidth::from_mbps(0.1));
        }
        assert_eq!(m.active_alerts(), vec![RULE_FLEET_SPEED]);
        // Healthy samples push the windowed mean back above the floor.
        for i in 100..600u64 {
            m.report_speed(SimTime(i), Bandwidth::from_mbps(8.0));
        }
        assert!(m.active_alerts().is_empty());
        assert_eq!(m.alerts().len(), 1);
    }

    #[test]
    fn healthy_speeds_do_not_alert() {
        let mut m = MonitoringNode::new();
        for i in 0..500u64 {
            m.report_speed(SimTime(i), Bandwidth::from_mbps(8.0));
        }
        assert!(m.alerts().is_empty());
    }
}
