//! # netsession-control
//!
//! The NetSession control plane (§3.6–§3.8): globally distributed servers,
//! operated by the CDN, that *coordinate* peers but never serve content.
//!
//! * [`directory`] — the **database nodes (DNs)**: which objects are
//!   available on which peers, their connectivity details, per-object
//!   upload counts (for the §3.9 upload cap), and the soft-state RE-ADD
//!   recovery of §3.8.
//! * [`selection`] — the two-level **locality-aware peer selection** of
//!   §3.7: region-local DNs, then a specificity ladder (same AS → same
//!   country → same zone → world) with probabilistic diversity, a fairness
//!   rotation, and NAT-compatibility filtering.
//! * [`cn`] — the **connection nodes (CNs)**: endpoints of the peers'
//!   persistent TCP control connections; they accept logins, route queries
//!   to their local DN, issue `ConnectTo` instructions to both endpoints,
//!   and collect usage reports.
//! * [`monitor`] — the **monitoring nodes**: crash/problem reports and
//!   download/upload performance counters with automated alerts (§3.6,
//!   §3.8).
//! * [`plane`] — the assembled control plane: one CN + DN per network
//!   region, peer→closest-CN mapping, CN/DN failure injection and
//!   recovery, and rate-limited mass reconnection.

pub mod cn;
pub mod directory;
pub mod monitor;
pub mod plane;
pub mod selection;

pub use cn::ConnectionNode;
pub use directory::{DirectoryNode, PeerRecord};
pub use monitor::MonitoringNode;
pub use plane::{ControlPlane, PlaneConfig};
pub use selection::{SelectionPolicy, Selector};
