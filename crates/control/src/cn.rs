//! Connection nodes (CNs).
//!
//! "The CNs are the endpoints of the persistent TCP connections that the
//! peers open to the control plane when they are active. The CNs receive
//! and collect the usage statistics that are uploaded by the peers, and
//! they handle queries for objects the peers wish to download. These
//! persistent TCP connections are also used to tell peers to connect to
//! each other" (§3.6). "Over 150,000 might be connected to one
//! simultaneously" (§3.8) — the CN therefore keeps only per-connection
//! routing state, all of it disposable: peers simply reconnect elsewhere if
//! a CN dies.

use netsession_core::fxhash::FxHashMap;
use netsession_core::id::SecondaryGuid;
use netsession_core::id::{ConnectionId, Guid};
use netsession_core::msg::{NatType, PeerAddr, UsageRecord};
use netsession_core::time::SimTime;

/// One login's bookkeeping.
#[derive(Clone, Debug)]
pub struct Session {
    /// The connection ID assigned at login.
    pub conn: ConnectionId,
    /// The peer's GUID.
    pub guid: Guid,
    /// Login time.
    pub since: SimTime,
    /// Address at login.
    pub addr: PeerAddr,
    /// Whether uploads were enabled at login.
    pub uploads_enabled: bool,
    /// NAT classification at login.
    pub nat: NatType,
}

/// A login record as the control-plane logs keep it (§4.1: "when a peer
/// opens a connection to the control plane, the CN records the peer's
/// current IP address, its software version, and whether or not uploads are
/// enabled"), extended with the §6.2 secondary-GUID report.
#[derive(Clone, Debug)]
pub struct LoginLogEntry {
    /// Login time.
    pub at: SimTime,
    /// The peer.
    pub guid: Guid,
    /// Address it connected from.
    pub addr: PeerAddr,
    /// Software version.
    pub software_version: u32,
    /// Whether uploads are enabled.
    pub uploads_enabled: bool,
    /// Last five secondary GUIDs, newest first.
    pub secondary_guids: Vec<SecondaryGuid>,
}

/// A connection node.
pub struct ConnectionNode {
    /// The region this CN serves.
    pub region: u32,
    sessions: FxHashMap<ConnectionId, Session>,
    by_guid: FxHashMap<Guid, ConnectionId>,
    next_conn: u64,
    usage: Vec<UsageRecord>,
    logins: Vec<LoginLogEntry>,
}

impl ConnectionNode {
    /// Empty CN for a region.
    pub fn new(region: u32) -> Self {
        ConnectionNode {
            region,
            sessions: FxHashMap::default(),
            by_guid: FxHashMap::default(),
            next_conn: 1,
            usage: Vec::new(),
            logins: Vec::new(),
        }
    }

    /// Accept a login; returns the assigned connection ID. A re-login of
    /// the same GUID replaces the previous session (the old TCP connection
    /// is dead or duplicated — last writer wins).
    #[allow(clippy::too_many_arguments)]
    pub fn login(
        &mut self,
        guid: Guid,
        addr: PeerAddr,
        nat: NatType,
        uploads_enabled: bool,
        software_version: u32,
        secondary_guids: Vec<SecondaryGuid>,
        now: SimTime,
    ) -> ConnectionId {
        if let Some(old) = self.by_guid.remove(&guid) {
            self.sessions.remove(&old);
        }
        let conn = ConnectionId(self.next_conn);
        self.next_conn += 1;
        self.sessions.insert(
            conn,
            Session {
                conn,
                guid,
                since: now,
                addr,
                uploads_enabled,
                nat,
            },
        );
        self.by_guid.insert(guid, conn);
        self.logins.push(LoginLogEntry {
            at: now,
            guid,
            addr,
            software_version,
            uploads_enabled,
            secondary_guids,
        });
        conn
    }

    /// Close a session (logout, connection loss, CN-detected timeout).
    pub fn logout(&mut self, guid: Guid) {
        if let Some(conn) = self.by_guid.remove(&guid) {
            self.sessions.remove(&conn);
        }
    }

    /// Whether `guid` is currently connected here.
    pub fn is_connected(&self, guid: Guid) -> bool {
        self.by_guid.contains_key(&guid)
    }

    /// Current session of a peer.
    pub fn session(&self, guid: Guid) -> Option<&Session> {
        self.by_guid.get(&guid).and_then(|c| self.sessions.get(c))
    }

    /// All currently connected GUIDs (used for RE-ADD fan-out, §3.8).
    pub fn connected_guids(&self) -> impl Iterator<Item = Guid> + '_ {
        self.by_guid.keys().copied()
    }

    /// Number of live connections.
    pub fn connection_count(&self) -> usize {
        self.sessions.len()
    }

    /// Accept a usage report (billing/monitoring pipeline).
    pub fn accept_usage(&mut self, records: Vec<UsageRecord>) {
        self.usage.extend(records);
    }

    /// Drain collected usage records (the billing pipeline pulls these).
    pub fn drain_usage(&mut self) -> Vec<UsageRecord> {
        std::mem::take(&mut self.usage)
    }

    /// The login log (analytics input).
    pub fn login_log(&self) -> &[LoginLogEntry] {
        &self.logins
    }

    /// Simulate a CN crash: all connections drop; the login log is on the
    /// monitoring pipeline and survives. Peers reconnect to another CN.
    pub fn fail(&mut self) -> Vec<Guid> {
        let guids: Vec<Guid> = self.by_guid.keys().copied().collect();
        self.sessions.clear();
        self.by_guid.clear();
        guids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(ip: u32) -> PeerAddr {
        PeerAddr { ip, port: 8443 }
    }

    fn login(cn: &mut ConnectionNode, guid: u64, t: u64) -> ConnectionId {
        cn.login(
            Guid(guid as u128),
            addr(guid as u32),
            NatType::FullCone,
            true,
            40100,
            vec![],
            SimTime(t),
        )
    }

    #[test]
    fn login_assigns_unique_connections() {
        let mut cn = ConnectionNode::new(0);
        let a = login(&mut cn, 1, 10);
        let b = login(&mut cn, 2, 11);
        assert_ne!(a, b);
        assert_eq!(cn.connection_count(), 2);
        assert!(cn.is_connected(Guid(1)));
        assert_eq!(cn.session(Guid(1)).unwrap().since, SimTime(10));
    }

    #[test]
    fn relogin_replaces_previous_session() {
        let mut cn = ConnectionNode::new(0);
        let a = login(&mut cn, 1, 10);
        let b = login(&mut cn, 1, 20);
        assert_ne!(a, b);
        assert_eq!(cn.connection_count(), 1);
        assert_eq!(cn.session(Guid(1)).unwrap().since, SimTime(20));
    }

    #[test]
    fn logout_removes_session() {
        let mut cn = ConnectionNode::new(0);
        login(&mut cn, 1, 10);
        cn.logout(Guid(1));
        assert!(!cn.is_connected(Guid(1)));
        assert_eq!(cn.connection_count(), 0);
        // Idempotent.
        cn.logout(Guid(1));
    }

    #[test]
    fn usage_reports_collect_and_drain() {
        let mut cn = ConnectionNode::new(0);
        let rec = UsageRecord {
            guid: Guid(1),
            version: netsession_core::id::VersionId {
                object: netsession_core::id::ObjectId(1),
                version: 1,
            },
            started: SimTime(0),
            ended: SimTime(5),
            bytes_from_infrastructure: netsession_core::units::ByteCount(10),
            bytes_from_peers: netsession_core::units::ByteCount(20),
        };
        cn.accept_usage(vec![rec.clone(), rec.clone()]);
        let drained = cn.drain_usage();
        assert_eq!(drained.len(), 2);
        assert!(cn.drain_usage().is_empty());
    }

    #[test]
    fn failure_drops_connections_keeps_login_log() {
        let mut cn = ConnectionNode::new(0);
        login(&mut cn, 1, 10);
        login(&mut cn, 2, 11);
        let dropped = cn.fail();
        assert_eq!(dropped.len(), 2);
        assert_eq!(cn.connection_count(), 0);
        assert_eq!(cn.login_log().len(), 2, "log survives the crash");
    }

    #[test]
    fn login_log_records_upload_setting() {
        let mut cn = ConnectionNode::new(0);
        cn.login(
            Guid(1),
            addr(1),
            NatType::Open,
            false,
            40100,
            vec![],
            SimTime(5),
        );
        assert!(!cn.login_log()[0].uploads_enabled);
        assert_eq!(cn.login_log()[0].software_version, 40100);
    }
}
