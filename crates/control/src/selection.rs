//! Locality-aware peer selection (§3.7).
//!
//! "DN selection begins with peers from the most specific set that the
//! querying peer belongs to, and proceeds to less specific sets until
//! enough suitable peers are found. An additional mechanism adds diversity:
//! Occasionally, peers are selected from a less specific set, with
//! probability proportional to the specificity of the set. Also, when a
//! peer is selected, it is placed at the end of a peer selection list for
//! fairness. The selection process can be modified with a set of
//! configurable policies. In addition to locality and file availability,
//! the DN also takes the connectivity of the peers into account."

use crate::directory::{DirectoryNode, PeerRecord};
use netsession_core::id::{Guid, VersionId};
use netsession_core::msg::{NatType, PeerContact};
use netsession_core::policy::DEFAULT_PEERS_RETURNED;
use netsession_core::rng::DetRng;

/// Specificity levels of the locality ladder, most specific first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum LocalityTier {
    /// Same autonomous system.
    SameAs,
    /// Same country ("smaller region").
    SameArea,
    /// Same large geographic zone.
    SameZone,
    /// The universal World set.
    World,
}

impl LocalityTier {
    /// Ladder order.
    pub const LADDER: [LocalityTier; 4] = [
        LocalityTier::SameAs,
        LocalityTier::SameArea,
        LocalityTier::SameZone,
        LocalityTier::World,
    ];
}

/// Configurable selection policy ("the selection process can be modified
/// with a set of configurable policies").
#[derive(Clone, Debug)]
pub struct SelectionPolicy {
    /// Maximum peers returned per query (§3.7 default: 40).
    pub max_peers: usize,
    /// Probability of *diversity injection* per slot: take the candidate
    /// from one tier broader than the current one.
    pub diversity: f64,
    /// Whether to filter on NAT compatibility.
    pub connectivity_filter: bool,
    /// Whether locality tiers are used at all (ablation A1 turns this off).
    pub locality_aware: bool,
}

impl Default for SelectionPolicy {
    fn default() -> Self {
        SelectionPolicy {
            max_peers: DEFAULT_PEERS_RETURNED,
            diversity: 0.08,
            connectivity_filter: true,
            locality_aware: true,
        }
    }
}

/// Who is asking: the attributes the ladder compares against.
#[derive(Clone, Copy, Debug)]
pub struct Querier {
    /// The querying peer's GUID (never selected for itself).
    pub guid: Guid,
    /// Its AS number.
    pub asn: netsession_core::id::AsNumber,
    /// Its country identifier.
    pub area: u16,
    /// Its zone identifier.
    pub zone: u8,
    /// Its NAT classification.
    pub nat: NatType,
}

/// The selection engine, operating over a DN's records.
#[derive(Default)]
pub struct Selector {
    /// Active policy.
    pub policy: SelectionPolicy,
}

impl Selector {
    /// Build with a policy.
    pub fn new(policy: SelectionPolicy) -> Self {
        Selector { policy }
    }

    fn tier_of(querier: &Querier, candidate: &PeerRecord) -> LocalityTier {
        if candidate.asn == querier.asn {
            LocalityTier::SameAs
        } else if candidate.area == querier.area {
            LocalityTier::SameArea
        } else if candidate.zone == querier.zone {
            LocalityTier::SameZone
        } else {
            LocalityTier::World
        }
    }

    /// Select up to `policy.max_peers` holders of `version` for `querier`,
    /// applying the locality ladder, diversity, the connectivity filter,
    /// and the fairness rotation (mutates the DN's rotation queues).
    pub fn select(
        &self,
        dn: &mut DirectoryNode,
        version: VersionId,
        querier: &Querier,
        rng: &mut DetRng,
    ) -> Vec<PeerContact> {
        // Partition candidates by tier, preserving rotation order.
        let mut tiers: [Vec<PeerRecord>; 4] = [vec![], vec![], vec![], vec![]];
        for rec in dn.holders(version) {
            if rec.guid == querier.guid {
                continue;
            }
            if self.policy.connectivity_filter
                && !netsession_nat::connectivity(querier.nat, rec.nat).usable()
            {
                continue;
            }
            let tier = if self.policy.locality_aware {
                Self::tier_of(querier, rec)
            } else {
                LocalityTier::World
            };
            let ti = LocalityTier::LADDER
                .iter()
                .position(|t| *t == tier)
                .unwrap();
            tiers[ti].push(rec.clone());
        }

        if !self.policy.locality_aware {
            // Random selection ablation: shuffle the world set.
            rng.shuffle(&mut tiers[3]);
        }

        let mut selected: Vec<PeerContact> = Vec::with_capacity(self.policy.max_peers);
        let mut selected_guids: Vec<Guid> = Vec::new();
        let mut cursors = [0usize; 4];

        // Walk the ladder, most specific first; each slot may be diverted
        // one tier broader with probability `diversity` scaled by how
        // specific the current tier is.
        'outer: for (ti, _) in LocalityTier::LADDER.iter().enumerate() {
            loop {
                if selected.len() >= self.policy.max_peers {
                    break 'outer;
                }
                // Diversity injection: specificity factor 3/3, 2/3, 1/3, 0.
                let specificity = (3 - ti.min(3)) as f64 / 3.0;
                let divert = self.policy.diversity * specificity;
                let use_tier = if rng.chance(divert) {
                    // One tier broader that still has candidates.
                    ((ti + 1)..4).find(|t| cursors[*t] < tiers[*t].len())
                } else {
                    None
                }
                .unwrap_or(ti);

                if cursors[use_tier] >= tiers[use_tier].len() {
                    if use_tier == ti {
                        break; // this tier exhausted, go broader
                    } else {
                        continue;
                    }
                }
                let rec = &tiers[use_tier][cursors[use_tier]];
                cursors[use_tier] += 1;
                selected.push(rec.contact());
                selected_guids.push(rec.guid);
            }
        }

        dn.rotate_to_back(version, &selected_guids);
        selected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsession_core::id::{AsNumber, ObjectId};
    use netsession_core::msg::PeerAddr;

    fn ver() -> VersionId {
        VersionId {
            object: ObjectId(1),
            version: 1,
        }
    }

    fn record(guid: u64, asn: u32, area: u16, zone: u8, nat: NatType) -> PeerRecord {
        PeerRecord {
            guid: Guid(guid as u128),
            addr: PeerAddr {
                ip: guid as u32,
                port: 1,
            },
            asn: AsNumber(asn),
            area,
            zone,
            nat,
        }
    }

    fn querier() -> Querier {
        Querier {
            guid: Guid(1000),
            asn: AsNumber(100),
            area: 10,
            zone: 1,
            nat: NatType::PortRestricted,
        }
    }

    #[test]
    fn prefers_most_specific_tier() {
        let mut dn = DirectoryNode::new(0);
        // 2 same-AS, 2 same-area, 2 same-zone, 2 world.
        dn.register(record(1, 100, 10, 1, NatType::Open), ver());
        dn.register(record(2, 100, 10, 1, NatType::Open), ver());
        dn.register(record(3, 200, 10, 1, NatType::Open), ver());
        dn.register(record(4, 200, 10, 1, NatType::Open), ver());
        dn.register(record(5, 300, 20, 1, NatType::Open), ver());
        dn.register(record(6, 300, 20, 1, NatType::Open), ver());
        dn.register(record(7, 400, 30, 2, NatType::Open), ver());
        dn.register(record(8, 400, 30, 2, NatType::Open), ver());

        let selector = Selector::new(SelectionPolicy {
            max_peers: 4,
            diversity: 0.0,
            ..SelectionPolicy::default()
        });
        let mut rng = DetRng::seeded(1);
        let picked = selector.select(&mut dn, ver(), &querier(), &mut rng);
        let guids: Vec<u128> = picked.iter().map(|c| c.guid.0).collect();
        assert_eq!(guids, vec![1, 2, 3, 4], "same-AS then same-area");
    }

    #[test]
    fn connectivity_filter_excludes_unreachable() {
        let mut dn = DirectoryNode::new(0);
        // Querier is PortRestricted: symmetric and blocked peers unusable.
        dn.register(record(1, 100, 10, 1, NatType::Symmetric), ver());
        dn.register(record(2, 100, 10, 1, NatType::Blocked), ver());
        dn.register(record(3, 100, 10, 1, NatType::FullCone), ver());
        let selector = Selector::default();
        let mut rng = DetRng::seeded(2);
        let picked = selector.select(&mut dn, ver(), &querier(), &mut rng);
        let guids: Vec<u128> = picked.iter().map(|c| c.guid.0).collect();
        assert_eq!(guids, vec![3]);
    }

    #[test]
    fn never_selects_the_querier_itself() {
        let mut dn = DirectoryNode::new(0);
        dn.register(record(1000, 100, 10, 1, NatType::Open), ver());
        dn.register(record(2, 100, 10, 1, NatType::Open), ver());
        let selector = Selector::default();
        let mut rng = DetRng::seeded(3);
        let picked = selector.select(&mut dn, ver(), &querier(), &mut rng);
        assert!(picked.iter().all(|c| c.guid != Guid(1000)));
        assert_eq!(picked.len(), 1);
    }

    #[test]
    fn respects_max_peers() {
        let mut dn = DirectoryNode::new(0);
        for g in 0..100 {
            dn.register(record(g, 100, 10, 1, NatType::Open), ver());
        }
        let selector = Selector::new(SelectionPolicy {
            max_peers: 40,
            ..SelectionPolicy::default()
        });
        let mut rng = DetRng::seeded(4);
        let picked = selector.select(&mut dn, ver(), &querier(), &mut rng);
        assert_eq!(picked.len(), 40);
    }

    #[test]
    fn fairness_rotation_changes_subsequent_selections() {
        let mut dn = DirectoryNode::new(0);
        for g in 1..=6 {
            dn.register(record(g, 100, 10, 1, NatType::Open), ver());
        }
        let selector = Selector::new(SelectionPolicy {
            max_peers: 3,
            diversity: 0.0,
            ..SelectionPolicy::default()
        });
        let mut rng = DetRng::seeded(5);
        let first: Vec<u128> = selector
            .select(&mut dn, ver(), &querier(), &mut rng)
            .iter()
            .map(|c| c.guid.0)
            .collect();
        let second: Vec<u128> = selector
            .select(&mut dn, ver(), &querier(), &mut rng)
            .iter()
            .map(|c| c.guid.0)
            .collect();
        assert_eq!(first, vec![1, 2, 3]);
        assert_eq!(second, vec![4, 5, 6], "rotation must advance the queue");
    }

    #[test]
    fn diversity_injection_reaches_broader_tiers() {
        let mut dn = DirectoryNode::new(0);
        // Plenty of same-AS candidates plus distinct world candidates.
        for g in 1..=30 {
            dn.register(record(g, 100, 10, 1, NatType::Open), ver());
        }
        for g in 31..=40 {
            dn.register(record(g, 999, 99, 7, NatType::Open), ver());
        }
        let selector = Selector::new(SelectionPolicy {
            max_peers: 10,
            diversity: 0.5, // exaggerated for the test
            ..SelectionPolicy::default()
        });
        let mut rng = DetRng::seeded(6);
        let mut saw_world = false;
        for _ in 0..20 {
            let picked = selector.select(&mut dn, ver(), &querier(), &mut rng);
            if picked.iter().any(|c| c.asn == AsNumber(999)) {
                saw_world = true;
                break;
            }
        }
        assert!(saw_world, "diversity must occasionally pick broader tiers");
    }

    #[test]
    fn locality_off_ablation_selects_randomly() {
        let mut dn = DirectoryNode::new(0);
        for g in 1..=20 {
            dn.register(record(g, 100, 10, 1, NatType::Open), ver());
        }
        for g in 21..=40 {
            dn.register(record(g, 999, 99, 7, NatType::Open), ver());
        }
        let selector = Selector::new(SelectionPolicy {
            max_peers: 10,
            locality_aware: false,
            ..SelectionPolicy::default()
        });
        let mut rng = DetRng::seeded(7);
        let picked = selector.select(&mut dn, ver(), &querier(), &mut rng);
        let far = picked.iter().filter(|c| c.asn == AsNumber(999)).count();
        assert!(
            far >= 2,
            "random selection should mix tiers (got {far} far peers)"
        );
    }

    #[test]
    fn empty_directory_returns_nothing() {
        let mut dn = DirectoryNode::new(0);
        let selector = Selector::default();
        let mut rng = DetRng::seeded(8);
        assert!(selector
            .select(&mut dn, ver(), &querier(), &mut rng)
            .is_empty());
    }
}
