//! The assembled control plane.
//!
//! One [`ControlPlane`] holds a CN and a DN per network region ("the
//! current deployment has less than 20 network regions", §3.7), the shared
//! selection engine, the edge-auth verifier (tokens minted by the edge tier
//! are checked here before any peer query is answered, §3.5), a monitoring
//! node, and the §3.8 robustness machinery: CN/DN failure injection,
//! RE-ADD-based DN recovery, and rate-limited mass reconnection.

use crate::cn::ConnectionNode;
use crate::directory::{DirectoryNode, PeerRecord};
use crate::monitor::MonitoringNode;
use crate::selection::{Querier, SelectionPolicy, Selector};
use netsession_core::error::{Error, Result};
use netsession_core::id::SecondaryGuid;
use netsession_core::id::{ConnectionId, Guid, ObjectId, VersionId};
use netsession_core::msg::{AuthToken, NatType, PeerAddr, PeerContact, UsageRecord};
use netsession_core::rng::DetRng;
use netsession_core::time::{SimDuration, SimTime};
use netsession_edge::auth::EdgeAuth;
use netsession_obs::{Counter, Histogram, MetricsRegistry, SpanId, TraceCtx, TraceSink};

/// Control-plane parameters.
#[derive(Clone, Debug)]
pub struct PlaneConfig {
    /// Number of network regions (CN+DN pairs).
    pub regions: u32,
    /// Peer-selection policy.
    pub selection: SelectionPolicy,
    /// Rate limit applied to mass reconnections after failures (§3.8:
    /// "reconnections are rate-limited to ensure a smooth recovery").
    pub reconnect_per_sec: f64,
}

impl Default for PlaneConfig {
    fn default() -> Self {
        PlaneConfig {
            regions: 12,
            selection: SelectionPolicy::default(),
            reconnect_per_sec: 500.0,
        }
    }
}

/// Token-bucket pacing for mass reconnection.
#[derive(Clone, Debug)]
pub struct ReconnectLimiter {
    per_sec: f64,
    next_slot: SimTime,
}

impl ReconnectLimiter {
    /// New limiter at the given admission rate.
    pub fn new(per_sec: f64) -> Self {
        ReconnectLimiter {
            per_sec: per_sec.max(1e-6),
            next_slot: SimTime::ZERO,
        }
    }

    /// Admission time for the next reconnect attempted at `now`.
    pub fn admit(&mut self, now: SimTime) -> SimTime {
        let gap = SimDuration::from_secs_f64(1.0 / self.per_sec);
        let at = if self.next_slot > now {
            self.next_slot
        } else {
            now
        };
        self.next_slot = at + gap;
        at
    }
}

/// Pre-resolved instrument handles for the plane's hot paths. Looking an
/// instrument up by name takes a registry lock plus a map probe; logins
/// and queries happen hundreds of thousands of times per simulated month,
/// so the handles are resolved once per registry attachment instead.
struct PlaneInstruments {
    logins: Counter,
    logouts: Counter,
    peer_queries: Counter,
    peer_queries_rejected: Counter,
    peers_selected: Counter,
    empty_selections: Counter,
    usage_records: Counter,
    selection_size: Histogram,
}

impl PlaneInstruments {
    fn from(registry: &MetricsRegistry) -> Self {
        PlaneInstruments {
            logins: registry.counter("control.logins"),
            logouts: registry.counter("control.logouts"),
            peer_queries: registry.counter("control.peer_queries"),
            peer_queries_rejected: registry.counter("control.peer_queries_rejected"),
            peers_selected: registry.counter("control.peers_selected"),
            empty_selections: registry.counter("control.empty_selections"),
            usage_records: registry.counter("control.usage_records"),
            selection_size: registry.histogram("control.selection_size"),
        }
    }
}

/// The control plane.
pub struct ControlPlane {
    cns: Vec<ConnectionNode>,
    dns: Vec<DirectoryNode>,
    selector: Selector,
    auth: EdgeAuth,
    /// Fleet monitoring (public so drivers can feed speed samples).
    pub monitor: MonitoringNode,
    limiter: ReconnectLimiter,
    metrics: MetricsRegistry,
    instruments: PlaneInstruments,
}

impl ControlPlane {
    /// Build a plane with `cfg.regions` CN/DN pairs, verifying tokens with
    /// `auth` (the same secret the edge tier mints with).
    pub fn new(cfg: &PlaneConfig, auth: EdgeAuth) -> Self {
        let metrics = MetricsRegistry::new();
        ControlPlane {
            cns: (0..cfg.regions).map(ConnectionNode::new).collect(),
            dns: (0..cfg.regions).map(DirectoryNode::new).collect(),
            selector: Selector::new(cfg.selection.clone()),
            auth,
            monitor: MonitoringNode::new(),
            limiter: ReconnectLimiter::new(cfg.reconnect_per_sec),
            instruments: PlaneInstruments::from(&metrics),
            metrics,
        }
    }

    /// Attach this plane's instruments to a shared registry. Control
    /// counters are named `control.*`: `control.logins`,
    /// `control.logouts`, `control.peer_queries` /
    /// `control.peer_queries_rejected`, `control.peers_selected`,
    /// `control.empty_selections`, `control.usage_records`, plus the
    /// `control.selection_size` histogram.
    pub fn with_metrics(mut self, registry: &MetricsRegistry) -> Self {
        self.attach_metrics(registry);
        self
    }

    /// In-place variant of [`ControlPlane::with_metrics`].
    pub fn attach_metrics(&mut self, registry: &MetricsRegistry) {
        self.metrics = registry.clone();
        self.instruments = PlaneInstruments::from(registry);
    }

    /// The registry this plane records into.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Number of regions.
    pub fn regions(&self) -> u32 {
        self.cns.len() as u32
    }

    /// Peer login at its closest region (Akamai's DNS mapping decides the
    /// region; the simulation passes it in).
    #[allow(clippy::too_many_arguments)]
    pub fn login(
        &mut self,
        region: u32,
        guid: Guid,
        addr: PeerAddr,
        nat: NatType,
        uploads_enabled: bool,
        software_version: u32,
        secondary_guids: Vec<SecondaryGuid>,
        now: SimTime,
    ) -> ConnectionId {
        self.instruments.logins.incr();
        self.cns[region as usize].login(
            guid,
            addr,
            nat,
            uploads_enabled,
            software_version,
            secondary_guids,
            now,
        )
    }

    /// Logout / connection loss. Withdraws the peer's DN registrations
    /// (its copies are unreachable while offline).
    pub fn logout(&mut self, region: u32, guid: Guid) {
        self.instruments.logouts.incr();
        self.cns[region as usize].logout(guid);
        self.dns[region as usize].unregister_all(guid);
    }

    /// Register a shareable copy (peer must have uploads enabled — the
    /// caller enforces it, since the setting lives client-side).
    pub fn register_content(&mut self, region: u32, record: PeerRecord, version: VersionId) {
        self.dns[region as usize].register(record, version);
    }

    /// Withdraw one registration.
    pub fn unregister_content(&mut self, region: u32, guid: Guid, version: VersionId) {
        self.dns[region as usize].unregister(guid, version);
    }

    /// Handle a peer query: verify the edge token, then select from the
    /// *local* DN first (§3.7: "long-term experimentation has shown that
    /// using only local DNs in searches does not negatively impact
    /// performance" — at production scale every region is well seeded).
    /// When the local DN comes up short, the interconnected CN/DN system
    /// searches the other regions too ("it is possible in principle to
    /// search for peers from any region"), which matters at small
    /// deployments and for thin swarms.
    pub fn query_peers(
        &mut self,
        region: u32,
        querier: &Querier,
        token: &AuthToken,
        now: SimTime,
        rng: &mut DetRng,
    ) -> Result<Vec<PeerContact>> {
        if token.guid != querier.guid {
            self.instruments.peer_queries_rejected.incr();
            return Err(Error::Unauthorized("token bound to another GUID".into()));
        }
        if !self.auth.verify(token, now) {
            self.instruments.peer_queries_rejected.incr();
            return Err(Error::Unauthorized("invalid or expired token".into()));
        }
        self.instruments.peer_queries.incr();
        let want = self.selector.policy.max_peers;
        let mut picked =
            self.selector
                .select(&mut self.dns[region as usize], token.version, querier, rng);
        if picked.len() < want {
            let regions = self.dns.len() as u32;
            for offset in 1..regions {
                if picked.len() >= want {
                    break;
                }
                let r = (region + offset) % regions;
                let more =
                    self.selector
                        .select(&mut self.dns[r as usize], token.version, querier, rng);
                for contact in more {
                    if picked.len() >= want {
                        break;
                    }
                    if !picked.iter().any(|c| c.guid == contact.guid) {
                        picked.push(contact);
                    }
                }
            }
        }
        self.instruments.peers_selected.add(picked.len() as u64);
        self.instruments.selection_size.record(picked.len() as u64);
        if picked.is_empty() {
            self.instruments.empty_selections.incr();
        }
        Ok(picked)
    }

    /// Trace-aware [`ControlPlane::query_peers`]: same behaviour, plus a
    /// `"query_peers"` span in the control layer recording how many
    /// sources were offered (or why the query was rejected). Returns the
    /// span so the caller can attach context of its own (e.g. the
    /// re-query round).
    #[allow(clippy::too_many_arguments)]
    pub fn query_peers_traced(
        &mut self,
        region: u32,
        querier: &Querier,
        token: &AuthToken,
        now: SimTime,
        rng: &mut DetRng,
        trace: &TraceSink,
        ctx: TraceCtx,
    ) -> (Result<Vec<PeerContact>>, SpanId) {
        let span = trace.span(ctx, "query_peers", "control", now.as_micros());
        let result = self.query_peers(region, querier, token, now, rng);
        match &result {
            Ok(picked) => trace.add_attr(span, "offered", picked.len() as u64),
            Err(e) => trace.add_attr(span, "error", e.to_string()),
        }
        trace.end_span(span, now.as_micros());
        (result, span)
    }

    /// Record an upload and enforce the per-object cap: returns `true` if
    /// the uploader is still under the cap, `false` if this upload
    /// exhausted it (the DN then drops the registration so the peer is not
    /// selected again for this object, §3.9).
    pub fn count_upload(
        &mut self,
        region: u32,
        uploader: Guid,
        object: ObjectId,
        cap: Option<u32>,
    ) -> bool {
        let n = self.dns[region as usize].count_upload(uploader, object);
        match cap {
            Some(cap) if n >= cap => {
                // Withdraw every version of this object by the uploader.
                let versions: Vec<VersionId> = self.dns[region as usize]
                    .registration_log()
                    .map(|(v, _)| v)
                    .filter(|v| v.object == object)
                    .collect();
                for v in versions {
                    self.dns[region as usize].unregister(uploader, v);
                }
                false
            }
            _ => true,
        }
    }

    /// Accept a usage report at a region's CN.
    pub fn accept_usage(&mut self, region: u32, records: Vec<UsageRecord>) {
        self.instruments.usage_records.add(records.len() as u64);
        self.cns[region as usize].accept_usage(records);
    }

    /// Drain all usage records (billing pipeline).
    pub fn drain_usage(&mut self) -> Vec<UsageRecord> {
        self.cns
            .iter_mut()
            .flat_map(|cn| cn.drain_usage())
            .collect()
    }

    /// All login-log entries across CNs.
    pub fn login_logs(&self) -> impl Iterator<Item = &crate::cn::LoginLogEntry> + '_ {
        self.cns.iter().flat_map(|cn| cn.login_log().iter())
    }

    /// Holders of a version in one region's DN.
    pub fn holder_count(&self, region: u32, version: VersionId) -> usize {
        self.dns[region as usize].holder_count(version)
    }

    /// Registration count of a version summed over all DNs (Fig 5 x-axis).
    pub fn registrations_of(&self, version: VersionId) -> u64 {
        self.dns.iter().map(|dn| dn.registrations_of(version)).sum()
    }

    /// Total live control connections.
    pub fn total_connections(&self) -> usize {
        self.cns.iter().map(|cn| cn.connection_count()).sum()
    }

    /// Inject a CN failure. Returns `(guid, readmission_time)` pairs: every
    /// dropped peer reconnects (to another CN in practice; same region
    /// here), paced by the reconnect limiter. The dropped set is sorted by
    /// GUID before pacing so the admission schedule is deterministic (the
    /// CN's session table is a hash map).
    pub fn fail_cn(&mut self, region: u32, now: SimTime) -> Vec<(Guid, SimTime)> {
        let mut dropped = self.cns[region as usize].fail();
        dropped.sort_unstable();
        dropped
            .into_iter()
            .map(|g| (g, self.limiter.admit(now)))
            .collect()
    }

    /// Inject a DN failure (§3.8): the DN's soft state is wiped and the
    /// region's connected peers must be asked to RE-ADD. Returns the GUIDs
    /// to ask, sorted for determinism.
    pub fn fail_dn(&mut self, region: u32) -> Vec<Guid> {
        self.dns[region as usize].fail();
        let mut guids: Vec<Guid> = self.cns[region as usize].connected_guids().collect();
        guids.sort_unstable();
        guids
    }

    /// Admit one recovery action through the shared reconnect limiter
    /// (§3.8 smooth recovery). CN readmissions and post-DN-wipe RE-ADD
    /// responses draw from the same budget, mirroring the deployment where
    /// one rate limit protects the whole control plane.
    pub fn pace_recovery(&mut self, now: SimTime) -> SimTime {
        self.limiter.admit(now)
    }

    /// Apply one peer's RE-ADD response: re-register all its cached
    /// versions.
    pub fn handle_readd(&mut self, region: u32, record: PeerRecord, versions: &[VersionId]) {
        for v in versions {
            self.dns[region as usize].register(record.clone(), *v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsession_core::id::AsNumber;

    fn plane() -> ControlPlane {
        ControlPlane::new(&PlaneConfig::default(), EdgeAuth::from_seed(1))
    }

    fn record(guid: u64) -> PeerRecord {
        PeerRecord {
            guid: Guid(guid as u128),
            addr: PeerAddr {
                ip: guid as u32,
                port: 1,
            },
            asn: AsNumber(100),
            area: 1,
            zone: 0,
            nat: NatType::FullCone,
        }
    }

    fn querier(guid: u64) -> Querier {
        Querier {
            guid: Guid(guid as u128),
            asn: AsNumber(100),
            area: 1,
            zone: 0,
            nat: NatType::FullCone,
        }
    }

    fn ver(n: u64) -> VersionId {
        VersionId {
            object: ObjectId(n),
            version: 1,
        }
    }

    #[test]
    fn query_requires_valid_token() {
        let mut p = plane();
        p.register_content(0, record(1), ver(5));
        let mut rng = DetRng::seeded(1);
        let auth = EdgeAuth::from_seed(1);
        let good = auth.issue(Guid(2), ver(5), SimTime(0));
        let peers = p
            .query_peers(0, &querier(2), &good, SimTime(0), &mut rng)
            .unwrap();
        assert_eq!(peers.len(), 1);

        // Wrong secret.
        let forged = EdgeAuth::from_seed(9).issue(Guid(2), ver(5), SimTime(0));
        assert!(p
            .query_peers(0, &querier(2), &forged, SimTime(0), &mut rng)
            .is_err());
        // Token bound to a different GUID.
        assert!(p
            .query_peers(0, &querier(3), &good, SimTime(0), &mut rng)
            .is_err());
    }

    #[test]
    fn queries_prefer_local_and_fall_back_across_regions() {
        let mut p = plane();
        // One copy in region 0, one in region 3.
        p.register_content(0, record(1), ver(5));
        p.register_content(3, record(2), ver(5));
        let mut rng = DetRng::seeded(2);
        let auth = EdgeAuth::from_seed(1);
        let token = auth.issue(Guid(9), ver(5), SimTime(0));
        // A query in region 0 returns its local holder first, then tops up
        // from the interconnected regions (§3.7: cross-region search is
        // possible when the local DN comes up short).
        let peers = p
            .query_peers(0, &querier(9), &token, SimTime(0), &mut rng)
            .unwrap();
        assert_eq!(peers.len(), 2);
        assert_eq!(peers[0].guid, Guid(1), "local holder listed first");
        // A query in an empty region still finds both via fallback.
        let peers = p
            .query_peers(7, &querier(9), &token, SimTime(0), &mut rng)
            .unwrap();
        assert_eq!(peers.len(), 2);
    }

    #[test]
    fn logout_withdraws_registrations() {
        let mut p = plane();
        p.login(
            0,
            Guid(1),
            PeerAddr { ip: 1, port: 1 },
            NatType::FullCone,
            true,
            1,
            vec![],
            SimTime(0),
        );
        p.register_content(0, record(1), ver(5));
        assert_eq!(p.holder_count(0, ver(5)), 1);
        p.logout(0, Guid(1));
        assert_eq!(p.holder_count(0, ver(5)), 0);
        assert_eq!(p.total_connections(), 0);
    }

    #[test]
    fn upload_cap_withdraws_registration() {
        let mut p = plane();
        p.register_content(0, record(1), ver(5));
        assert!(p.count_upload(0, Guid(1), ObjectId(5), Some(3)));
        assert!(p.count_upload(0, Guid(1), ObjectId(5), Some(3)));
        // Third upload hits the cap.
        assert!(!p.count_upload(0, Guid(1), ObjectId(5), Some(3)));
        assert_eq!(p.holder_count(0, ver(5)), 0, "cap must deregister");
        // Uncapped never withdraws.
        p.register_content(0, record(2), ver(5));
        for _ in 0..100 {
            assert!(p.count_upload(0, Guid(2), ObjectId(5), None));
        }
    }

    #[test]
    fn dn_failure_and_readd_recovery() {
        let mut p = plane();
        p.login(
            0,
            Guid(1),
            PeerAddr { ip: 1, port: 1 },
            NatType::FullCone,
            true,
            1,
            vec![],
            SimTime(0),
        );
        p.register_content(0, record(1), ver(5));
        let to_ask = p.fail_dn(0);
        assert_eq!(to_ask, vec![Guid(1)]);
        assert_eq!(p.holder_count(0, ver(5)), 0);
        // The peer answers RE-ADD with its cached versions.
        p.handle_readd(0, record(1), &[ver(5)]);
        assert_eq!(p.holder_count(0, ver(5)), 1);
    }

    #[test]
    fn cn_failure_paces_reconnections() {
        let cfg = PlaneConfig {
            reconnect_per_sec: 2.0, // 0.5 s between admissions
            ..PlaneConfig::default()
        };
        let mut p = ControlPlane::new(&cfg, EdgeAuth::from_seed(1));
        for g in 1..=5u64 {
            p.login(
                0,
                Guid(g as u128),
                PeerAddr {
                    ip: g as u32,
                    port: 1,
                },
                NatType::FullCone,
                true,
                1,
                vec![],
                SimTime(0),
            );
        }
        let readmits = p.fail_cn(0, SimTime(0));
        assert_eq!(readmits.len(), 5);
        // Admissions are strictly spaced by 0.5 s.
        for (i, (_, at)) in readmits.iter().enumerate() {
            assert_eq!(at.as_micros(), i as u64 * 500_000);
        }
        assert_eq!(p.total_connections(), 0);
    }

    #[test]
    fn usage_pipeline_flows_through() {
        let mut p = plane();
        let rec = UsageRecord {
            guid: Guid(1),
            version: ver(5),
            started: SimTime(0),
            ended: SimTime(9),
            bytes_from_infrastructure: netsession_core::units::ByteCount(5),
            bytes_from_peers: netsession_core::units::ByteCount(6),
        };
        p.accept_usage(3, vec![rec.clone()]);
        p.accept_usage(7, vec![rec]);
        assert_eq!(p.drain_usage().len(), 2);
        assert!(p.drain_usage().is_empty());
    }
}
