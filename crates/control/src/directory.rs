//! Database nodes (DNs).
//!
//! "The DNs maintain a database of which objects are currently available on
//! which peers, as well as details about the connectivity of these peers.
//! Peers appear in the database only when a) uploads are explicitly enabled
//! on the peer, and b) the peer currently has objects to share" (§3.6).
//!
//! The DN's state is **soft** (§3.8): losing it is harmless because the
//! peers hold the ground truth and repopulate the DN through RE-ADD.

use netsession_core::fxhash::{FxHashMap, FxHashSet};
use netsession_core::id::AsNumber;
use netsession_core::id::{Guid, ObjectId, VersionId};
use netsession_core::msg::{NatType, PeerAddr, PeerContact};
use std::collections::VecDeque;

/// What the directory knows about one registered peer.
#[derive(Clone, Debug, PartialEq)]
pub struct PeerRecord {
    /// The peer's GUID.
    pub guid: Guid,
    /// Current transport address.
    pub addr: PeerAddr,
    /// Its autonomous system.
    pub asn: AsNumber,
    /// Country identifier (gazetteer index in the simulation).
    pub area: u16,
    /// Larger geographic zone (Table-2 region index in the simulation).
    pub zone: u8,
    /// STUN-determined NAT classification.
    pub nat: NatType,
}

impl PeerRecord {
    /// Contact info handed to other peers.
    pub fn contact(&self) -> PeerContact {
        PeerContact {
            guid: self.guid,
            addr: self.addr,
            asn: self.asn,
            nat: self.nat,
        }
    }
}

/// A regional database node.
pub struct DirectoryNode {
    /// Which network region this DN serves.
    pub region: u32,
    /// Peer connectivity records (peers with ≥1 registration).
    peers: FxHashMap<Guid, PeerRecord>,
    /// Per-version holder rotation: fairness queue, front = next to select
    /// ("when a peer is selected, it is placed at the end of a peer
    /// selection list", §3.7).
    holders: FxHashMap<VersionId, VecDeque<Guid>>,
    /// Reverse index: versions each peer registered (for deregistration).
    by_peer: FxHashMap<Guid, FxHashSet<VersionId>>,
    /// Uploads performed per (peer, object) — enforces the per-object
    /// upload cap of §3.9/§6.1.
    upload_counts: FxHashMap<(Guid, ObjectId), u32>,
    /// Cumulative registration events (Fig 5's "file copies registered").
    registrations: FxHashMap<VersionId, u64>,
}

impl DirectoryNode {
    /// Empty DN for a region.
    pub fn new(region: u32) -> Self {
        DirectoryNode {
            region,
            peers: FxHashMap::default(),
            holders: FxHashMap::default(),
            by_peer: FxHashMap::default(),
            upload_counts: FxHashMap::default(),
            registrations: FxHashMap::default(),
        }
    }

    /// Register a copy: the peer (with uploads enabled) announces it holds
    /// `version` and can share it.
    pub fn register(&mut self, record: PeerRecord, version: VersionId) {
        let guid = record.guid;
        self.peers.insert(guid, record);
        let queue = self.holders.entry(version).or_default();
        if !queue.contains(&guid) {
            queue.push_back(guid);
            *self.registrations.entry(version).or_insert(0) += 1;
        }
        self.by_peer.entry(guid).or_default().insert(version);
    }

    /// Withdraw one registration (cache eviction, upload cap reached,
    /// uploads disabled).
    pub fn unregister(&mut self, guid: Guid, version: VersionId) {
        if let Some(queue) = self.holders.get_mut(&version) {
            queue.retain(|g| *g != guid);
            if queue.is_empty() {
                self.holders.remove(&version);
            }
        }
        if let Some(set) = self.by_peer.get_mut(&guid) {
            set.remove(&version);
            if set.is_empty() {
                self.by_peer.remove(&guid);
                self.peers.remove(&guid);
            }
        }
    }

    /// Withdraw everything a peer registered (it went offline).
    pub fn unregister_all(&mut self, guid: Guid) {
        if let Some(versions) = self.by_peer.remove(&guid) {
            for v in versions {
                if let Some(queue) = self.holders.get_mut(&v) {
                    queue.retain(|g| *g != guid);
                    if queue.is_empty() {
                        self.holders.remove(&v);
                    }
                }
            }
        }
        self.peers.remove(&guid);
    }

    /// The current holders of `version`, in rotation order.
    pub fn holders(&self, version: VersionId) -> impl Iterator<Item = &PeerRecord> + '_ {
        self.holders
            .get(&version)
            .into_iter()
            .flatten()
            .filter_map(move |g| self.peers.get(g))
    }

    /// Number of current holders.
    pub fn holder_count(&self, version: VersionId) -> usize {
        self.holders.get(&version).map_or(0, |q| q.len())
    }

    /// Move the selected peers to the back of the rotation (fairness).
    pub fn rotate_to_back(&mut self, version: VersionId, selected: &[Guid]) {
        if let Some(queue) = self.holders.get_mut(&version) {
            for guid in selected {
                if let Some(pos) = queue.iter().position(|g| g == guid) {
                    queue.remove(pos);
                    queue.push_back(*guid);
                }
            }
        }
    }

    /// Count one upload of `object` by `guid`; returns the new count.
    pub fn count_upload(&mut self, guid: Guid, object: ObjectId) -> u32 {
        let c = self.upload_counts.entry((guid, object)).or_insert(0);
        *c += 1;
        *c
    }

    /// Uploads of `object` performed by `guid` so far.
    pub fn uploads_of(&self, guid: Guid, object: ObjectId) -> u32 {
        self.upload_counts
            .get(&(guid, object))
            .copied()
            .unwrap_or(0)
    }

    /// Total registration events seen for `version` (Fig 5's x-axis).
    pub fn registrations_of(&self, version: VersionId) -> u64 {
        self.registrations.get(&version).copied().unwrap_or(0)
    }

    /// All (version, registration-count) pairs — the DN log of Fig 5.
    pub fn registration_log(&self) -> impl Iterator<Item = (VersionId, u64)> + '_ {
        self.registrations.iter().map(|(v, c)| (*v, *c))
    }

    /// Number of peers currently known.
    pub fn peer_count(&self) -> usize {
        self.peers.len()
    }

    /// A peer's record, if registered.
    pub fn peer(&self, guid: Guid) -> Option<&PeerRecord> {
        self.peers.get(&guid)
    }

    /// Simulate a DN failure: all soft state vanishes (§3.8). Upload counts
    /// are also soft state and are lost — the system tolerates the slight
    /// over-uploading this allows.
    pub fn fail(&mut self) {
        self.peers.clear();
        self.holders.clear();
        self.by_peer.clear();
        self.upload_counts.clear();
        // `registrations` is the DN's append-only log; in production the
        // log survives on the monitoring pipeline, so we keep it for the
        // Fig 5 analysis while the queryable state is rebuilt via RE-ADD.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsession_core::id::ObjectId;

    fn record(guid: u64, asn: u32) -> PeerRecord {
        PeerRecord {
            guid: Guid(guid as u128),
            addr: PeerAddr {
                ip: guid as u32,
                port: 8443,
            },
            asn: AsNumber(asn),
            area: 1,
            zone: 0,
            nat: NatType::FullCone,
        }
    }

    fn ver(n: u64) -> VersionId {
        VersionId {
            object: ObjectId(n),
            version: 1,
        }
    }

    #[test]
    fn register_and_query_holders() {
        let mut dn = DirectoryNode::new(0);
        dn.register(record(1, 100), ver(5));
        dn.register(record(2, 100), ver(5));
        assert_eq!(dn.holder_count(ver(5)), 2);
        let guids: Vec<Guid> = dn.holders(ver(5)).map(|r| r.guid).collect();
        assert_eq!(guids, vec![Guid(1), Guid(2)]);
        assert_eq!(dn.peer_count(), 2);
    }

    #[test]
    fn duplicate_registration_counts_once_in_rotation() {
        let mut dn = DirectoryNode::new(0);
        dn.register(record(1, 100), ver(5));
        dn.register(record(1, 100), ver(5));
        assert_eq!(dn.holder_count(ver(5)), 1);
        assert_eq!(dn.registrations_of(ver(5)), 1);
    }

    #[test]
    fn unregister_removes_and_cleans_up() {
        let mut dn = DirectoryNode::new(0);
        dn.register(record(1, 100), ver(5));
        dn.register(record(1, 100), ver(6));
        dn.unregister(Guid(1), ver(5));
        assert_eq!(dn.holder_count(ver(5)), 0);
        assert_eq!(dn.holder_count(ver(6)), 1);
        assert!(dn.peer(Guid(1)).is_some(), "still holds ver 6");
        dn.unregister(Guid(1), ver(6));
        assert!(dn.peer(Guid(1)).is_none(), "fully degistered peers vanish");
    }

    #[test]
    fn unregister_all_on_offline() {
        let mut dn = DirectoryNode::new(0);
        dn.register(record(1, 100), ver(5));
        dn.register(record(1, 100), ver(6));
        dn.unregister_all(Guid(1));
        assert_eq!(dn.holder_count(ver(5)), 0);
        assert_eq!(dn.holder_count(ver(6)), 0);
        assert_eq!(dn.peer_count(), 0);
    }

    #[test]
    fn rotation_moves_selected_to_back() {
        let mut dn = DirectoryNode::new(0);
        for g in 1..=4 {
            dn.register(record(g, 100), ver(5));
        }
        dn.rotate_to_back(ver(5), &[Guid(1), Guid(2)]);
        let guids: Vec<Guid> = dn.holders(ver(5)).map(|r| r.guid).collect();
        assert_eq!(guids, vec![Guid(3), Guid(4), Guid(1), Guid(2)]);
    }

    #[test]
    fn upload_counting() {
        let mut dn = DirectoryNode::new(0);
        assert_eq!(dn.uploads_of(Guid(1), ObjectId(5)), 0);
        assert_eq!(dn.count_upload(Guid(1), ObjectId(5)), 1);
        assert_eq!(dn.count_upload(Guid(1), ObjectId(5)), 2);
        assert_eq!(dn.uploads_of(Guid(1), ObjectId(5)), 2);
        assert_eq!(dn.uploads_of(Guid(1), ObjectId(6)), 0);
    }

    #[test]
    fn failure_wipes_queryable_state_but_keeps_log() {
        let mut dn = DirectoryNode::new(0);
        dn.register(record(1, 100), ver(5));
        dn.count_upload(Guid(1), ObjectId(5));
        dn.fail();
        assert_eq!(dn.holder_count(ver(5)), 0);
        assert_eq!(dn.peer_count(), 0);
        assert_eq!(dn.uploads_of(Guid(1), ObjectId(5)), 0);
        assert_eq!(dn.registrations_of(ver(5)), 1, "append-only log survives");
        // RE-ADD repopulates.
        dn.register(record(1, 100), ver(5));
        assert_eq!(dn.holder_count(ver(5)), 1);
        assert_eq!(dn.registrations_of(ver(5)), 2);
    }
}
