//! # netsession-baseline
//!
//! The two architectures NetSession is compared against (§2.1):
//!
//! * [`infra`] — a pure **infrastructure CDN**: every byte comes from amply
//!   provisioned edge servers; download speed is the client's downlink.
//! * [`bittorrent`] — a pure **peer-to-peer CDN** in the BitTorrent mold:
//!   tracker-coordinated swarms, rarest-first piece exchange, and the
//!   tit-for-tat choking incentive NetSession deliberately omits (§3.4).
//!   A round-based swarm simulator demonstrates the classic behaviours the
//!   paper contrasts against: free-riders get choked, availability dies
//!   with the seeds, and short client sessions shrink upload opportunity.

pub mod bittorrent;
pub mod infra;

pub use bittorrent::{Swarm, SwarmConfig, SwarmResult};
pub use infra::InfraCdn;
