//! Pure infrastructure-CDN baseline.
//!
//! The paper's reference point for QoS: "infrastructure-based systems …
//! can provide predictable QoS and reliable accounting" (§1). Every byte
//! comes from an edge server, so a download's speed is simply the client's
//! downlink (the edge is amply provisioned) and its reliability is limited
//! only by the user and the client environment.

use netsession_core::time::SimDuration;
use netsession_core::units::{Bandwidth, ByteCount};

/// The infrastructure-only delivery model.
#[derive(Clone, Debug)]
pub struct InfraCdn {
    /// Efficiency factor of the edge path (protocol overhead, server
    /// pacing); 1.0 = the client's full downlink.
    pub edge_factor: f64,
}

impl Default for InfraCdn {
    fn default() -> Self {
        InfraCdn { edge_factor: 0.95 }
    }
}

impl InfraCdn {
    /// Effective download rate for a client with the given downlink.
    pub fn rate(&self, downlink: Bandwidth) -> Bandwidth {
        Bandwidth::from_bytes_per_sec(downlink.bytes_per_sec() * self.edge_factor)
    }

    /// Time to fetch `size` bytes.
    pub fn download_time(&self, size: ByteCount, downlink: Bandwidth) -> Option<SimDuration> {
        self.rate(downlink).time_for(size)
    }

    /// Origin (CDN-side) bytes needed per download — the cost the hybrid
    /// design reduces: the infrastructure serves every byte.
    pub fn infrastructure_bytes(&self, size: ByteCount) -> ByteCount {
        size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn download_time_is_size_over_downlink() {
        let cdn = InfraCdn { edge_factor: 1.0 };
        let t = cdn
            .download_time(ByteCount::from_mib(100), Bandwidth::from_mbps(80.0))
            .unwrap();
        // 100 MiB at 10 MiB/s-ish: ~10.5 s.
        assert!((t.as_secs_f64() - 10.49).abs() < 0.1, "{t}");
    }

    #[test]
    fn zero_downlink_never_finishes() {
        let cdn = InfraCdn::default();
        assert!(cdn
            .download_time(ByteCount::from_mib(1), Bandwidth::ZERO)
            .is_none());
    }

    #[test]
    fn serves_every_byte_from_origin() {
        let cdn = InfraCdn::default();
        assert_eq!(
            cdn.infrastructure_bytes(ByteCount::from_gib(2)),
            ByteCount::from_gib(2)
        );
    }
}
