//! BitTorrent-style pure-p2p baseline.
//!
//! A round-based swarm simulator implementing the mechanisms the paper
//! contrasts NetSession against (§2.1, §3.4, §7):
//!
//! * **tracker** bootstrap: each joiner learns a random subset of peers;
//! * **rarest-first** piece selection;
//! * **tit-for-tat choking**: each round a peer unchokes the neighbours
//!   that uploaded most to it in the previous round, plus one optimistic
//!   unchoke — so free-riders are mostly choked;
//! * **seed-dependent availability**: when the initial seed leaves before
//!   enough copies exist, the swarm stalls — there is no infrastructure
//!   backstop.
//!
//! The simulator is intentionally round-based (one round ≈ one choke
//! interval): it reproduces qualitative BitTorrent behaviour for the
//! ablation benches without duplicating the fluid machinery of the hybrid
//! simulator.

use netsession_core::piece::PieceMap;
use netsession_core::rng::DetRng;
use std::collections::HashMap;

/// Swarm parameters.
#[derive(Clone, Debug)]
pub struct SwarmConfig {
    /// Number of leechers joining at round 0.
    pub leechers: usize,
    /// Number of initial seeds.
    pub seeds: usize,
    /// Pieces in the object.
    pub pieces: u32,
    /// Pieces a peer can upload per round (its upstream capacity).
    pub upload_slots_capacity: u32,
    /// Unchoke slots per peer (BitTorrent default 4 + 1 optimistic).
    pub unchoke_slots: usize,
    /// Neighbours learned from the tracker per peer.
    pub tracker_peers: usize,
    /// Fraction of leechers that free-ride (never upload).
    pub freerider_fraction: f64,
    /// Round at which the initial seeds leave (`None` = they stay).
    pub seed_leaves_at: Option<u32>,
    /// Maximum rounds to simulate.
    pub max_rounds: u32,
}

impl Default for SwarmConfig {
    fn default() -> Self {
        SwarmConfig {
            leechers: 40,
            seeds: 2,
            pieces: 64,
            upload_slots_capacity: 4,
            unchoke_slots: 5,
            tracker_peers: 12,
            freerider_fraction: 0.0,
            seed_leaves_at: None,
            max_rounds: 400,
        }
    }
}

/// Per-peer outcome.
#[derive(Clone, Debug)]
pub struct PeerOutcome {
    /// Whether the peer finished.
    pub completed: bool,
    /// Round it finished (if it did).
    pub finish_round: Option<u32>,
    /// Whether it was a free-rider.
    pub freerider: bool,
}

/// Swarm-level outcome.
#[derive(Clone, Debug)]
pub struct SwarmResult {
    /// Per-leecher outcomes.
    pub peers: Vec<PeerOutcome>,
    /// Rounds simulated.
    pub rounds: u32,
}

impl SwarmResult {
    /// Completion fraction over leechers.
    pub fn completion_rate(&self) -> f64 {
        self.peers.iter().filter(|p| p.completed).count() as f64 / self.peers.len().max(1) as f64
    }

    /// Mean finish round of a class (contributors vs free-riders).
    pub fn mean_finish_round(&self, freeriders: bool) -> Option<f64> {
        let rounds: Vec<f64> = self
            .peers
            .iter()
            .filter(|p| p.freerider == freeriders)
            .filter_map(|p| p.finish_round.map(|r| r as f64))
            .collect();
        if rounds.is_empty() {
            None
        } else {
            Some(rounds.iter().sum::<f64>() / rounds.len() as f64)
        }
    }
}

struct Peer {
    have: PieceMap,
    neighbours: Vec<usize>,
    freerider: bool,
    seed: bool,
    alive: bool,
    /// Bytes (pieces) received from each neighbour in the previous round —
    /// the tit-for-tat ledger.
    received_from: HashMap<usize, u32>,
    finish_round: Option<u32>,
}

/// The swarm simulator.
pub struct Swarm {
    cfg: SwarmConfig,
    peers: Vec<Peer>,
}

impl Swarm {
    /// Build a swarm per the config.
    pub fn new(cfg: SwarmConfig, rng: &mut DetRng) -> Swarm {
        let n = cfg.leechers + cfg.seeds;
        let mut peers: Vec<Peer> = (0..n)
            .map(|i| {
                let seed = i >= cfg.leechers;
                Peer {
                    have: if seed {
                        PieceMap::full(cfg.pieces)
                    } else {
                        PieceMap::empty(cfg.pieces)
                    },
                    neighbours: Vec::new(),
                    freerider: !seed && rng.chance(cfg.freerider_fraction),
                    seed,
                    alive: true,
                    received_from: HashMap::new(),
                    finish_round: None,
                }
            })
            .collect();
        // Tracker bootstrap: random neighbour sets (symmetric).
        for i in 0..n {
            while peers[i].neighbours.len() < cfg.tracker_peers.min(n - 1) {
                let j = rng.index(n);
                if j != i && !peers[i].neighbours.contains(&j) {
                    peers[i].neighbours.push(j);
                    if !peers[j].neighbours.contains(&i) {
                        peers[j].neighbours.push(i);
                    }
                }
            }
        }
        Swarm { cfg, peers }
    }

    /// Run to completion or `max_rounds`.
    pub fn run(mut self, rng: &mut DetRng) -> SwarmResult {
        let mut round = 0;
        while round < self.cfg.max_rounds {
            if let Some(leave) = self.cfg.seed_leaves_at {
                if round == leave {
                    for p in self.peers.iter_mut().filter(|p| p.seed) {
                        p.alive = false;
                    }
                }
            }
            if self
                .peers
                .iter()
                .all(|p| p.seed || !p.alive || p.have.is_complete())
            {
                break;
            }
            self.step(round, rng);
            round += 1;
        }
        SwarmResult {
            peers: self
                .peers
                .iter()
                .take(self.cfg.leechers)
                .map(|p| PeerOutcome {
                    completed: p.have.is_complete(),
                    finish_round: p.finish_round,
                    freerider: p.freerider,
                })
                .collect(),
            rounds: round,
        }
    }

    /// One choke interval: every alive uploader picks its unchoke set by
    /// tit-for-tat, then pushes pieces (rarest-first from the receiver's
    /// perspective) into its unchoked neighbours.
    #[allow(clippy::needless_range_loop)] // peers are cross-indexed by id
    fn step(&mut self, round: u32, rng: &mut DetRng) {
        let n = self.peers.len();
        // Piece availability for rarest-first.
        let mut avail = vec![0u32; self.cfg.pieces as usize];
        for p in self.peers.iter().filter(|p| p.alive) {
            for piece in p.have.held() {
                avail[piece as usize] += 1;
            }
        }

        // Decide unchoke sets.
        let mut unchoked: Vec<Vec<usize>> = vec![Vec::new(); n];
        for i in 0..n {
            if !self.peers[i].alive || (self.peers[i].freerider && !self.peers[i].seed) {
                continue;
            }
            // Rank neighbours by what they gave us last round (seeds rank
            // by need, i.e. everyone equal → random).
            let mut ranked: Vec<usize> = self.peers[i]
                .neighbours
                .iter()
                .copied()
                .filter(|j| self.peers[*j].alive && !self.peers[*j].have.is_complete())
                .collect();
            let mut set: Vec<usize>;
            if self.peers[i].seed {
                rng.shuffle(&mut ranked);
                set = ranked
                    .iter()
                    .copied()
                    .take(self.cfg.unchoke_slots.saturating_sub(1))
                    .collect();
            } else {
                // Regular slots go only to *reciprocating* neighbours —
                // the essence of tit-for-tat; non-uploaders compete for
                // the single optimistic slot.
                rng.shuffle(&mut ranked);
                let mut reciprocating: Vec<usize> = ranked
                    .iter()
                    .copied()
                    .filter(|j| self.peers[i].received_from.get(j).copied().unwrap_or(0) > 0)
                    .collect();
                reciprocating.sort_by_key(|j| {
                    std::cmp::Reverse(self.peers[i].received_from.get(j).copied().unwrap_or(0))
                });
                set = reciprocating
                    .into_iter()
                    .take(self.cfg.unchoke_slots.saturating_sub(1))
                    .collect();
            }
            // Optimistic unchoke: one random interested neighbour.
            let rest: Vec<usize> = ranked.into_iter().filter(|j| !set.contains(j)).collect();
            if !rest.is_empty() && (self.peers[i].seed || round.is_multiple_of(3)) {
                set.push(rest[rng.index(rest.len())]);
            }
            unchoked[i] = set;
        }

        // Transfers.
        let mut received: Vec<Vec<(usize, u32)>> = vec![Vec::new(); n]; // (from, piece)
        for i in 0..n {
            let mut budget = self.cfg.upload_slots_capacity;
            for &j in &unchoked[i] {
                if budget == 0 {
                    break;
                }
                // Rarest piece i has and j lacks.
                let mut best: Option<(u32, u32)> = None;
                for piece in self.peers[i].have.held() {
                    if self.peers[j].have.has(piece) || received[j].iter().any(|(_, p)| *p == piece)
                    {
                        continue;
                    }
                    let a = avail[piece as usize];
                    if best.is_none() || a < best.unwrap().0 {
                        best = Some((a, piece));
                    }
                }
                if let Some((_, piece)) = best {
                    received[j].push((i, piece));
                    budget -= 1;
                }
            }
        }

        // Apply.
        for j in 0..n {
            for (from, piece) in received[j].drain(..) {
                self.peers[j].have.set(piece);
                *self.peers[j].received_from.entry(from).or_insert(0) += 1;
                if self.peers[j].have.is_complete() && self.peers[j].finish_round.is_none() {
                    self.peers[j].finish_round = Some(round);
                }
            }
        }
        // Age the tit-for-tat ledger slowly (3/4 decay every few rounds)
        // so reciprocating pairs stay locked in, as BitTorrent's
        // rate-based choker effectively does.
        if round % 4 == 3 {
            for p in &mut self.peers {
                for v in p.received_from.values_mut() {
                    *v = (*v * 3) / 4;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(cfg: SwarmConfig, seed: u64) -> SwarmResult {
        let mut rng = DetRng::seeded(seed);
        let swarm = Swarm::new(cfg, &mut rng);
        swarm.run(&mut rng)
    }

    #[test]
    fn healthy_swarm_completes() {
        let r = run(SwarmConfig::default(), 1);
        assert!(r.completion_rate() > 0.95, "rate {}", r.completion_rate());
        assert!(r.rounds < 400);
    }

    #[test]
    fn tit_for_tat_punishes_freeriders() {
        // A scarce-seed swarm: free-riders depend on the lone seed and on
        // optimistic unchokes, while contributors trade among themselves.
        let r = run(
            SwarmConfig {
                freerider_fraction: 0.3,
                leechers: 80,
                seeds: 1,
                pieces: 96,
                max_rounds: 1500,
                ..SwarmConfig::default()
            },
            2,
        );
        let contributors = r.mean_finish_round(false).expect("contributors finish");
        // None means starved entirely: even stronger punishment.
        if let Some(freeriders) = r.mean_finish_round(true) {
            assert!(
                freeriders > contributors * 1.3,
                "free-riders must be slower: {freeriders} vs {contributors}"
            );
        }
    }

    #[test]
    fn seed_departure_before_spread_stalls_swarm() {
        let r = run(
            SwarmConfig {
                seed_leaves_at: Some(2),
                leechers: 30,
                pieces: 128,
                ..SwarmConfig::default()
            },
            3,
        );
        assert!(
            r.completion_rate() < 0.5,
            "no backstop: early seed death should strand most peers (rate {})",
            r.completion_rate()
        );
    }

    #[test]
    fn seed_departure_after_spread_is_survivable() {
        let r = run(
            SwarmConfig {
                seed_leaves_at: Some(120),
                ..SwarmConfig::default()
            },
            4,
        );
        assert!(r.completion_rate() > 0.8, "rate {}", r.completion_rate());
    }

    #[test]
    fn more_seeds_finish_faster() {
        let slow = run(
            SwarmConfig {
                seeds: 1,
                ..SwarmConfig::default()
            },
            5,
        );
        let fast = run(
            SwarmConfig {
                seeds: 8,
                ..SwarmConfig::default()
            },
            5,
        );
        let s = slow.mean_finish_round(false).unwrap();
        let f = fast.mean_finish_round(false).unwrap();
        assert!(f < s, "more seeds must speed completion ({f} vs {s})");
    }

    #[test]
    fn determinism() {
        let a = run(SwarmConfig::default(), 7);
        let b = run(SwarmConfig::default(), 7);
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(
            a.peers.iter().map(|p| p.finish_round).collect::<Vec<_>>(),
            b.peers.iter().map(|p| p.finish_round).collect::<Vec<_>>()
        );
    }
}
