//! Cross-PR performance trajectory: fold every committed
//! `results/bench/BENCH_<issue>.json` snapshot into one table so a perf
//! regression shows up as a *trend break*, not a single-run blip. Used by
//! `perfbench --trend` and linted in `scripts/check.sh` (a missing or
//! stale snapshot for the current issue fails the gate).
//!
//! Families appear as they were introduced: the event-queue macro speedup
//! exists from the first snapshot, the scaled-runner family from issue 7,
//! the shard-profile family from issue 8, the time-series family from
//! issue 10 — absent cells print `-` rather than failing, because old
//! snapshots are immutable history.

use netsession_obs::json::{self, JsonValue};

/// One `BENCH_<issue>.json` snapshot, reduced to the headline trajectory
/// cells. `None` = the family did not exist yet in that snapshot.
#[derive(Clone, Debug, PartialEq)]
pub struct TrendRow {
    /// Issue (PR) number the snapshot was recorded for.
    pub issue: u64,
    /// `event_queue.macro_speedup` — wheel vs heap macro run.
    pub macro_speedup: Option<f64>,
    /// `scale.par_wall_ms` — the sharded runner's parallel wall time.
    pub scale_wall_ms: Option<f64>,
    /// `scale.peak_rss_kb`.
    pub scale_rss_kb: Option<f64>,
    /// `scale.parallel_speedup` (sequential wall / parallel wall).
    pub scale_speedup: Option<f64>,
    /// `shard_profile.skew` — max-over-mean per-shard event share.
    pub skew: Option<f64>,
    /// `shard_profile.speedup_ceiling` — critical-path bound.
    pub ceiling: Option<f64>,
    /// `timeseries.overhead_pct` — sampling cost vs sampling off.
    pub ts_overhead_pct: Option<f64>,
}

fn family_num(doc: &JsonValue, family: &str, key: &str) -> Option<f64> {
    doc.get("families")?.get(family)?.get(key)?.as_f64()
}

/// Parse one snapshot's text into its trend row.
pub fn parse_snapshot(text: &str) -> Result<TrendRow, String> {
    let doc = json::parse(text).map_err(|e| e.to_string())?;
    match doc.get("schema").and_then(|s| s.as_str()) {
        Some("netsession-perfbench/1") => {}
        other => return Err(format!("bad schema tag {other:?}")),
    }
    let issue = doc
        .get("issue")
        .and_then(|i| i.as_u64())
        .ok_or("missing issue number")?;
    Ok(TrendRow {
        issue,
        macro_speedup: family_num(&doc, "event_queue", "macro_speedup"),
        scale_wall_ms: family_num(&doc, "scale", "par_wall_ms"),
        scale_rss_kb: family_num(&doc, "scale", "peak_rss_kb"),
        scale_speedup: family_num(&doc, "scale", "parallel_speedup"),
        skew: family_num(&doc, "shard_profile", "skew"),
        ceiling: family_num(&doc, "shard_profile", "speedup_ceiling"),
        ts_overhead_pct: family_num(&doc, "timeseries", "overhead_pct"),
    })
}

/// Read every `BENCH_*.json` under `dir`, sorted by issue number.
pub fn collect(dir: &str) -> Result<Vec<TrendRow>, String> {
    let mut rows = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{dir}: {e}"))?;
    for entry in entries {
        let entry = entry.map_err(|e| e.to_string())?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if !name.starts_with("BENCH_") || !name.ends_with(".json") {
            continue;
        }
        let path = entry.path();
        let text = std::fs::read_to_string(&path).map_err(|e| format!("{name}: {e}"))?;
        let row = parse_snapshot(&text).map_err(|e| format!("{name}: {e}"))?;
        // The filename is part of the contract: BENCH_<issue>.json.
        let from_name: Option<u64> = name
            .trim_start_matches("BENCH_")
            .trim_end_matches(".json")
            .parse()
            .ok();
        if from_name != Some(row.issue) {
            return Err(format!(
                "{name}: filename does not match issue {} inside",
                row.issue
            ));
        }
        rows.push(row);
    }
    if rows.is_empty() {
        return Err(format!("no BENCH_*.json snapshots under {dir}"));
    }
    rows.sort_by_key(|r| r.issue);
    Ok(rows)
}

fn cell(v: Option<f64>, width: usize, decimals: usize) -> String {
    match v {
        Some(x) => format!("{x:>width$.decimals$}"),
        None => format!("{:>width$}", "-"),
    }
}

/// Render the trajectory table (deterministic given the snapshot set —
/// the cells are whatever the snapshots recorded).
pub fn render(rows: &[TrendRow]) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:>5} {:>9} {:>13} {:>12} {:>9} {:>6} {:>8} {:>8}",
        "issue",
        "queue_spd",
        "scale_wall_ms",
        "scale_rss_kb",
        "scale_spd",
        "skew",
        "ceiling",
        "ts_ov_%"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:>5} {} {} {} {} {} {} {}",
            r.issue,
            cell(r.macro_speedup, 9, 3),
            cell(r.scale_wall_ms, 13, 0),
            cell(r.scale_rss_kb, 12, 0),
            cell(r.scale_speedup, 9, 3),
            cell(r.skew, 6, 2),
            cell(r.ceiling, 8, 3),
            cell(r.ts_overhead_pct, 8, 2),
        );
    }
    s
}

/// Gate mode: collect, render (returned for printing), and require a
/// snapshot for `require_issue` — with the families that issue must carry.
pub fn check(dir: &str, require_issue: u64) -> Result<String, String> {
    let rows = collect(dir)?;
    let table = render(&rows);
    let Some(cur) = rows.iter().find(|r| r.issue == require_issue) else {
        return Err(format!(
            "no BENCH_{require_issue}.json snapshot: record one with `perfbench` before shipping"
        ));
    };
    // The current snapshot must not have dropped families older snapshots
    // carry: that is how staleness shows up after a schema change.
    if require_issue >= 7 && (cur.scale_wall_ms.is_none() || cur.scale_speedup.is_none()) {
        return Err(format!("BENCH_{require_issue}.json: scale family missing"));
    }
    if require_issue >= 8 && cur.skew.is_none() {
        return Err(format!(
            "BENCH_{require_issue}.json: shard_profile family missing"
        ));
    }
    if require_issue >= 10 && cur.ts_overhead_pct.is_none() {
        return Err(format!(
            "BENCH_{require_issue}.json: timeseries family missing"
        ));
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_minimal_snapshot_and_tolerates_missing_families() {
        let row = parse_snapshot(
            "{\"schema\": \"netsession-perfbench/1\", \"issue\": 6, \
             \"families\": {\"event_queue\": {\"macro_speedup\": 1.25}}}",
        )
        .unwrap();
        assert_eq!(row.issue, 6);
        assert_eq!(row.macro_speedup, Some(1.25));
        assert_eq!(row.scale_wall_ms, None);
        assert!(render(&[row]).contains("1.250"));
    }

    #[test]
    fn rejects_wrong_schema() {
        assert!(parse_snapshot("{\"schema\": \"x/1\", \"issue\": 6}").is_err());
    }

    #[test]
    fn trend_over_the_committed_snapshots_includes_every_issue() {
        // Runs against the repo's real results/bench directory.
        let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/bench");
        let rows = collect(dir).expect("committed snapshots parse");
        assert!(rows.len() >= 4, "expected the PR 6..=9+ snapshots");
        assert!(rows.windows(2).all(|w| w[0].issue < w[1].issue));
        let table = render(&rows);
        for r in &rows {
            assert!(table.contains(&format!("\n{:>5} ", r.issue)), "{table}");
        }
    }
}
