//! Shared experiment plumbing: argument parsing and the standard run.

use netsession_hybrid::{HybridSim, ScenarioConfig, SimOutput};
use netsession_obs::{MetricsRegistry, TraceSink};
use netsession_world::population::PopulationConfig;
use netsession_world::workload::WorkloadConfig;

/// Command-line knobs shared by every experiment binary.
#[derive(Clone, Debug)]
pub struct ExperimentArgs {
    /// Peer population size.
    pub peers: usize,
    /// Downloads over the month.
    pub downloads: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for ExperimentArgs {
    fn default() -> Self {
        ExperimentArgs {
            peers: 30_000,
            downloads: 40_000,
            seed: 20121001,
        }
    }
}

/// Parse `--scale <peers>`, `--downloads <n>`, `--seed <s>` from argv.
pub fn parse_args() -> ExperimentArgs {
    let mut args = ExperimentArgs::default();
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i + 1 < argv.len() {
        match argv[i].as_str() {
            "--scale" => args.peers = argv[i + 1].parse().expect("--scale <peers>"),
            "--downloads" => args.downloads = argv[i + 1].parse().expect("--downloads <n>"),
            "--seed" => args.seed = argv[i + 1].parse().expect("--seed <s>"),
            other => panic!("unknown flag {other} (expected --scale/--downloads/--seed)"),
        }
        i += 2;
    }
    args
}

/// Build the standard scenario config for experiment args.
pub fn config_for(args: &ExperimentArgs) -> ScenarioConfig {
    ScenarioConfig {
        seed: args.seed,
        population: PopulationConfig {
            peers: args.peers,
            ases: (args.peers / 50).clamp(120, 2_000),
            ..PopulationConfig::default()
        },
        objects: (args.downloads / 12).clamp(250, 20_000),
        workload: WorkloadConfig {
            downloads: args.downloads,
            ..WorkloadConfig::default()
        },
        ..ScenarioConfig::default()
    }
}

/// Run the standard scenario.
pub fn run_default(args: &ExperimentArgs) -> SimOutput {
    HybridSim::run_config(config_for(args))
}

/// Render a fraction as a percent string.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Write the run's metrics snapshot next to the experiment results as
/// `results/<name>.metrics.json`. The sidecar is a separate file, so the
/// experiment's stdout stays byte-identical run-to-run; the snapshot itself
/// includes the volatile (wall-clock) section for perf inspection.
pub fn write_metrics_sidecar(name: &str, metrics: &MetricsRegistry) {
    let dir = std::path::Path::new("results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("# metrics sidecar skipped: cannot create results/: {e}");
        return;
    }
    let path = dir.join(format!("{name}.metrics.json"));
    match std::fs::write(&path, metrics.full_snapshot_json()) {
        Ok(()) => eprintln!("# metrics sidecar: {}", path.display()),
        Err(e) => eprintln!("# metrics sidecar skipped: {e}"),
    }
}

/// Write the run's sampled download traces as Chrome trace-event JSON
/// (`results/<name>.trace.json`, loadable in Perfetto / `chrome://tracing`
/// and readable by the `trace_explain` binary). Like the metrics sidecar
/// this goes to a separate file so experiment stdout stays byte-identical;
/// unlike it, the export itself is fully deterministic — same seed, same
/// bytes.
pub fn write_trace_sidecar(name: &str, trace: &TraceSink) {
    let dir = std::path::Path::new("results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("# trace sidecar skipped: cannot create results/: {e}");
        return;
    }
    let path = dir.join(format!("{name}.trace.json"));
    match std::fs::write(&path, trace.export_chrome_json()) {
        Ok(()) => eprintln!("# trace sidecar: {}", path.display()),
        Err(e) => eprintln!("# trace sidecar skipped: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_args_are_standard_scale() {
        let a = ExperimentArgs::default();
        assert_eq!(a.peers, 30_000);
        assert_eq!(a.downloads, 40_000);
    }

    #[test]
    fn config_scales_dependents() {
        let a = ExperimentArgs {
            peers: 5_000,
            downloads: 2_000,
            seed: 1,
        };
        let c = config_for(&a);
        assert_eq!(c.population.peers, 5_000);
        assert_eq!(c.workload.downloads, 2_000);
        assert!(c.population.ases >= 100);
        assert!(c.objects >= 250);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.714), "71.4%");
    }
}
