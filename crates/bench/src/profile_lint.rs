//! Schema lint for `scale.profile.json` sidecars
//! (`netsession-shard-profile/1`), shared by `scale --lint-profile` and
//! the corrupted-sidecar tests.
//!
//! The lint is deliberately strict about the deterministic section's
//! shape: a missing or zero `shards` field is a **failure**, not a
//! vacuous pass. (An earlier version defaulted `shards` to 0 and then
//! accepted any sidecar whose `per_shard` array was empty — a corrupted
//! artifact would sail through the gate.)

use netsession_obs::json;

/// Validate a `scale.profile.json` sidecar: schema tag, a complete
/// deterministic section with at least one shard, and a volatile section
/// that stays in its lane.
pub fn lint_profile(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    lint_profile_text(&text).map_err(|e| format!("{path}: {e}"))
}

/// [`lint_profile`] over already-read JSON text (path-free messages).
pub fn lint_profile_text(text: &str) -> Result<(), String> {
    let v = json::parse(text).map_err(|e| e.to_string())?;
    match v.get("schema").and_then(|s| s.as_str()) {
        Some("netsession-shard-profile/1") => {}
        other => return Err(format!("bad schema tag {other:?}")),
    }
    let det = v
        .get("deterministic")
        .ok_or_else(|| "missing deterministic section".to_string())?;
    // Structural checks on the deterministic section, mirroring
    // `ImbalanceStats::parse_json`.
    for key in [
        "shards",
        "windows",
        "events",
        "critical_path_events",
        "speedup_ceiling",
        "split_busiest_ceiling",
        "skew",
    ] {
        if det.get(key).and_then(|x| x.as_f64()).is_none() {
            return Err(format!("deterministic.{key} missing"));
        }
    }
    // `shards` must be a positive integer: zero (or a non-integer) would
    // make the per_shard length check below vacuously true against an
    // empty array.
    let shards = match det.get("shards").and_then(|x| x.as_u64()) {
        Some(s) if s > 0 => s as usize,
        Some(0) => {
            return Err("deterministic.shards is 0: a profile without shards is corrupt".into())
        }
        _ => return Err("deterministic.shards missing or not a positive integer".into()),
    };
    match det.get("per_shard").and_then(|x| x.as_arr()) {
        Some(arr) if arr.len() == shards => {
            for (k, sh) in arr.iter().enumerate() {
                for key in ["shard", "regions", "peers", "events", "share_pct"] {
                    if sh.get(key).is_none() {
                        return Err(format!("per_shard[{k}].{key} missing"));
                    }
                }
            }
        }
        Some(arr) => {
            return Err(format!(
                "per_shard has {} entries, deterministic.shards says {shards}",
                arr.len()
            ))
        }
        None => return Err("per_shard missing or not an array".into()),
    }
    let vol = v
        .get("volatile")
        .ok_or_else(|| "missing volatile section".to_string())?;
    for key in [
        "mode",
        "cpus",
        "wall_critical_path_ms",
        "wall_speedup_ceiling",
    ] {
        if vol.get(key).is_none() {
            return Err(format!("volatile.{key} missing"));
        }
    }
    // The separation rule, checked from the artifact side: nothing
    // wall-clock may appear inside the deterministic object.
    for leaked in [
        "busy_ms",
        "wait_ms",
        "merge_ms",
        "wall_s",
        "wall_critical_path_ms",
        "wall_speedup_ceiling",
    ] {
        if det.get(leaked).is_some() {
            return Err(format!(
                "volatile field {leaked} leaked into deterministic section"
            ));
        }
    }
    Ok(())
}
