//! # netsession-bench
//!
//! The experiment harness: one binary per table/figure of the paper (see
//! DESIGN.md's per-experiment index), ablation binaries, and Criterion
//! micro-benchmarks in `benches/`.
//!
//! All experiment binaries accept `--scale <peers>` and `--downloads <n>`
//! to trade fidelity for runtime, and print the same rows/series the paper
//! reports.

pub mod explain;
pub mod profile_lint;
pub mod runner;
pub mod trend;
pub mod ts_lint;

pub use runner::{parse_args, run_default, ExperimentArgs};
