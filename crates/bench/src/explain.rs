//! Causal drill-down over exported download traces.
//!
//! The experiment binaries write `results/<bin>.trace.json` (Chrome
//! trace-event JSON, see `netsession_obs`'s trace exporter). This module
//! reads one of those files back and reconstructs the *story* of a
//! download: how many sources the control plane offered, which connect
//! attempts succeeded or why they were rejected, what the NAT penalty
//! was, when the first source engaged, and how the bytes split between
//! peers and the edge backstop. The `trace_explain` binary is a thin
//! CLI over [`parse_trace`], [`downloads`], and [`narrate`].

use netsession_obs::json::{parse, JsonValue};
use std::collections::BTreeMap;

/// One `"ph":"X"` event from an exported trace file.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Span name (`"download"`, `"connect_attempt"`, ...).
    pub name: String,
    /// Layer category (`"hybrid"`, `"control"`, `"peer"`, `"edge"`, `"sim"`).
    pub cat: String,
    /// Start timestamp, micros.
    pub ts: u64,
    /// Duration, micros (0 for instants and unfinished spans).
    pub dur: u64,
    /// Trace id (16 hex digits).
    pub trace: String,
    /// Span id (16 hex digits).
    pub span: String,
    /// Parent span id, if any.
    pub parent: Option<String>,
    /// Remaining args: span attributes.
    pub attrs: Vec<(String, JsonValue)>,
}

impl TraceEvent {
    /// Attribute lookup.
    pub fn attr(&self, key: &str) -> Option<&JsonValue> {
        self.attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    fn attr_u64(&self, key: &str) -> Option<u64> {
        self.attr(key).and_then(JsonValue::as_u64)
    }

    fn attr_str(&self, key: &str) -> Option<&str> {
        self.attr(key).and_then(JsonValue::as_str)
    }
}

/// A parsed trace file.
#[derive(Clone, Debug)]
pub struct TraceDoc {
    /// All span events, in file order (= recording order).
    pub events: Vec<TraceEvent>,
    /// Spans the sink dropped at its capacity bound.
    pub dropped: u64,
}

/// Parse an exported `.trace.json` document.
pub fn parse_trace(input: &str) -> Result<TraceDoc, String> {
    let doc = parse(input).map_err(|e| format!("invalid JSON at byte {}: {}", e.at, e.msg))?;
    let dropped = doc
        .get("droppedSpans")
        .and_then(JsonValue::as_u64)
        .unwrap_or(0);
    let Some(raw_events) = doc.get("traceEvents").and_then(JsonValue::as_arr) else {
        return Err("missing traceEvents array".into());
    };
    let mut events = Vec::new();
    for ev in raw_events {
        // Skip metadata ("M") and anything that isn't a complete event.
        if ev.get("ph").and_then(JsonValue::as_str) != Some("X") {
            continue;
        }
        let field = |k: &str| -> Result<String, String> {
            ev.get(k)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("event missing string field {k:?}"))
        };
        let num = |k: &str| -> Result<u64, String> {
            ev.get(k)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("event missing numeric field {k:?}"))
        };
        let args = ev.get("args").ok_or("event missing args")?;
        let arg_str = |k: &str| -> Result<String, String> {
            args.get(k)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("args missing {k:?}"))
        };
        let attrs = match args {
            JsonValue::Obj(members) => members
                .iter()
                .filter(|(k, _)| k != "trace" && k != "span" && k != "parent")
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
            _ => Vec::new(),
        };
        events.push(TraceEvent {
            name: field("name")?,
            cat: field("cat")?,
            ts: num("ts")?,
            dur: num("dur")?,
            trace: arg_str("trace")?,
            span: arg_str("span")?,
            parent: args
                .get("parent")
                .and_then(JsonValue::as_str)
                .map(str::to_string),
            attrs,
        });
    }
    Ok(TraceDoc { events, dropped })
}

/// One download's events: the root `download` span plus everything that
/// shares its trace id.
#[derive(Clone, Debug)]
pub struct DownloadTrace<'a> {
    /// The root span.
    pub root: &'a TraceEvent,
    /// Every event of the trace (root included), in recording order.
    pub events: Vec<&'a TraceEvent>,
}

/// Group a document into download traces, in recording order.
pub fn downloads(doc: &TraceDoc) -> Vec<DownloadTrace<'_>> {
    let mut by_trace: BTreeMap<&str, Vec<&TraceEvent>> = BTreeMap::new();
    let mut order: Vec<&str> = Vec::new();
    for ev in &doc.events {
        let entry = by_trace.entry(ev.trace.as_str()).or_default();
        if entry.is_empty() {
            order.push(ev.trace.as_str());
        }
        entry.push(ev);
    }
    let mut out = Vec::new();
    for trace in order {
        let events = by_trace.remove(trace).unwrap_or_default();
        if let Some(root) = events.iter().find(|e| e.name == "download") {
            out.push(DownloadTrace {
                root,
                events: events.clone(),
            });
        }
    }
    out
}

/// The distilled causal summary of one download.
#[derive(Clone, Debug, Default)]
pub struct ExplainSummary {
    /// Trace id (16 hex digits).
    pub trace: String,
    /// Root outcome attr (`"completed"`, `"abandoned"`, ...); empty if
    /// the trace is unfinished.
    pub outcome: String,
    /// Object id from the root span.
    pub object: Option<u64>,
    /// Root span start, micros.
    pub start_us: u64,
    /// Root span duration, micros.
    pub duration_us: u64,
    /// Bytes served by the edge (root attr).
    pub bytes_edge: u64,
    /// Bytes served by peers (root attr).
    pub bytes_peers: u64,
    /// Contacts the control plane offered across all queries.
    pub offered: u64,
    /// Control-plane query rounds observed.
    pub queries: u64,
    /// Connect attempts made.
    pub attempts: u64,
    /// Attempts that became transfer sources.
    pub connected: u64,
    /// GUIDs of the peers we successfully connected to (the
    /// `connect_attempt` span's `dst_guid` — the dialed peer).
    pub connected_guids: Vec<String>,
    /// Rejected attempts, by reason label, sorted by label.
    pub rejected: BTreeMap<String, u64>,
    /// Attempts lost to NAT: unreachable pairings plus failed punches.
    pub nat_blocked: u64,
    /// Micros from download start to the first engaged source (peer
    /// transfer or edge backstop/fallback), if any engaged.
    pub first_source_us: Option<u64>,
    /// Whether the edge backstop / fallback engaged.
    pub edge_engaged: bool,
}

/// Distill one download trace.
pub fn summarize(dl: &DownloadTrace<'_>) -> ExplainSummary {
    let root = dl.root;
    let mut s = ExplainSummary {
        trace: root.trace.clone(),
        outcome: root.attr_str("outcome").unwrap_or("").to_string(),
        object: root.attr_u64("object"),
        start_us: root.ts,
        duration_us: root.dur,
        bytes_edge: root.attr_u64("bytes_edge").unwrap_or(0),
        bytes_peers: root.attr_u64("bytes_peers").unwrap_or(0),
        ..ExplainSummary::default()
    };
    let mut first_source: Option<u64> = None;
    for ev in &dl.events {
        match ev.name.as_str() {
            "query_peers" => {
                s.queries += 1;
                s.offered += ev.attr_u64("offered").unwrap_or(0);
            }
            "connect_attempt" => {
                s.attempts += 1;
                match ev.attr_str("result") {
                    Some("connected") => {
                        s.connected += 1;
                        if let Some(guid) = ev.attr_str("dst_guid") {
                            s.connected_guids.push(guid.to_string());
                        }
                    }
                    Some(reason) => {
                        if reason == "blocked" || reason == "punch_failed" {
                            s.nat_blocked += 1;
                        }
                        *s.rejected.entry(reason.to_string()).or_insert(0) += 1;
                    }
                    None => {}
                }
            }
            "peer_transfer" | "edge_backstop" | "edge_fallback" => {
                if ev.name != "peer_transfer" {
                    s.edge_engaged = true;
                }
                let dt = ev.ts.saturating_sub(root.ts);
                first_source = Some(first_source.map_or(dt, |cur: u64| cur.min(dt)));
            }
            _ => {}
        }
    }
    s.first_source_us = first_source;
    s
}

fn fmt_bytes(b: u64) -> String {
    if b >= 1_000_000_000 {
        format!("{:.2} GB", b as f64 / 1e9)
    } else if b >= 1_000_000 {
        format!("{:.2} MB", b as f64 / 1e6)
    } else if b >= 1_000 {
        format!("{:.1} kB", b as f64 / 1e3)
    } else {
        format!("{b} B")
    }
}

fn fmt_secs(us: u64) -> String {
    format!("{:.1}s", us as f64 / 1e6)
}

/// Render the summary as a human-readable causal narrative.
pub fn narrate(s: &ExplainSummary) -> String {
    let mut out = String::new();
    let total = s.bytes_edge + s.bytes_peers;
    out.push_str(&format!(
        "download {} — {}{} in {}\n",
        s.trace,
        if s.outcome.is_empty() {
            "unfinished".to_string()
        } else {
            s.outcome.clone()
        },
        s.object
            .map(|o| format!(" (object {o})"))
            .unwrap_or_default(),
        fmt_secs(s.duration_us),
    ));
    out.push_str(&format!(
        "  control plane: {} round(s) offered {} contact(s)\n",
        s.queries, s.offered
    ));
    out.push_str(&format!(
        "  connections:   {} attempt(s), {} connected\n",
        s.attempts, s.connected
    ));
    if !s.connected_guids.is_empty() {
        out.push_str(&format!(
            "                 peers dialed: {}\n",
            s.connected_guids.join(", ")
        ));
    }
    for (reason, n) in &s.rejected {
        out.push_str(&format!("                 {n} rejected: {reason}\n"));
    }
    if s.nat_blocked > 0 {
        out.push_str(&format!(
            "  nat penalty:   {} attempt(s) lost to NAT (unreachable or failed punch)\n",
            s.nat_blocked
        ));
    }
    match s.first_source_us {
        Some(us) => out.push_str(&format!(
            "  first source:  engaged after {}{}\n",
            fmt_secs(us),
            if s.edge_engaged {
                " (edge backstop active)"
            } else {
                ""
            }
        )),
        None => out.push_str("  first source:  none engaged\n"),
    }
    if total > 0 {
        out.push_str(&format!(
            "  byte split:    {} from peers ({:.1}%), {} from edge ({:.1}%)\n",
            fmt_bytes(s.bytes_peers),
            s.bytes_peers as f64 / total as f64 * 100.0,
            fmt_bytes(s.bytes_edge),
            s.bytes_edge as f64 / total as f64 * 100.0,
        ));
    } else {
        out.push_str("  byte split:    no bytes delivered\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_doc() -> TraceDoc {
        let trace = netsession_obs::TraceSink::new(1);
        let ctx = trace.start_trace("download", "hybrid", 1_000_000);
        trace.add_attr(ctx.span, "object", 7u64);
        let q = trace.span(ctx, "query_peers", "control", 1_000_000);
        trace.add_attr(q, "offered", 3u64);
        trace.end_span(q, 1_000_500);
        for (i, result) in ["connected", "blocked", "punch_failed"].iter().enumerate() {
            let a = trace.instant(ctx, "connect_attempt", "peer", 1_001_000 + i as u64);
            trace.add_attr(a, "dst_guid", format!("{:016x}", 100 + i as u64));
            trace.add_attr(a, "result", *result);
        }
        let t = trace.span(ctx, "peer_transfer", "peer", 1_002_000);
        trace.add_attr(t, "bytes", 600u64);
        trace.end_span(t, 4_000_000);
        let e = trace.span(ctx, "edge_backstop", "edge", 1_500_000);
        trace.add_attr(e, "bytes", 400u64);
        trace.end_span(e, 4_000_000);
        trace.add_attr(ctx.span, "outcome", "completed");
        trace.add_attr(ctx.span, "bytes_edge", 400u64);
        trace.add_attr(ctx.span, "bytes_peers", 600u64);
        trace.end_span(ctx.span, 4_200_000);
        parse_trace(&trace.export_chrome_json()).expect("export parses")
    }

    #[test]
    fn summarize_reconstructs_the_story() {
        let doc = sample_doc();
        assert_eq!(doc.dropped, 0);
        let dls = downloads(&doc);
        assert_eq!(dls.len(), 1);
        let s = summarize(&dls[0]);
        assert_eq!(s.outcome, "completed");
        assert_eq!(s.object, Some(7));
        assert_eq!(s.queries, 1);
        assert_eq!(s.offered, 3);
        assert_eq!(s.attempts, 3);
        assert_eq!(s.connected, 1);
        assert_eq!(s.connected_guids, vec!["0000000000000064".to_string()]);
        assert_eq!(s.nat_blocked, 2);
        assert_eq!(s.bytes_peers, 600);
        assert_eq!(s.bytes_edge, 400);
        assert!(s.edge_engaged);
        assert_eq!(s.first_source_us, Some(2_000));
        assert_eq!(s.duration_us, 3_200_000);
    }

    #[test]
    fn narrate_mentions_the_key_facts() {
        let doc = sample_doc();
        let s = summarize(&downloads(&doc)[0]);
        let text = narrate(&s);
        assert!(text.contains("completed"));
        assert!(text.contains("offered 3 contact(s)"));
        assert!(text.contains("3 attempt(s), 1 connected"));
        assert!(text.contains("peers dialed: 0000000000000064"));
        assert!(text.contains("lost to NAT"));
        assert!(text.contains("600 B from peers (60.0%)"));
        assert!(text.contains("400 B from edge (40.0%)"));
    }
}
