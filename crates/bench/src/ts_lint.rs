//! Schema lint for `scale.timeseries.json` sidecars
//! (`netsession-timeseries/1`), shared by `scale --lint-timeseries` and
//! the corrupted-sidecar tests — the time-series sibling of
//! [`crate::profile_lint`].
//!
//! Beyond structure, the lint re-derives the series fingerprint from the
//! decoded values and compares it to the sidecar's `digest` field, so a
//! hand-edited or stale committed artifact fails the gate even when its
//! shape is plausible. It also replays the fault-class join: every fault
//! class that appears in the injected-alert log must have raised its
//! paired detection rule ([`netsession_hybrid::alerts::FAULT_CLASS_RULES`])
//! somewhere in the detections log — the artifact-side restatement of the
//! PR acceptance criterion.

use netsession_hybrid::alerts::FAULT_CLASS_RULES;
use netsession_logs::SeriesDigest;
use netsession_obs::{json, MergedSeries};

/// Validate a `scale.timeseries.json` sidecar.
pub fn lint_timeseries(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    lint_timeseries_text(&text).map_err(|e| format!("{path}: {e}"))
}

/// [`lint_timeseries`] over already-read JSON text (path-free messages).
pub fn lint_timeseries_text(text: &str) -> Result<(), String> {
    let v = json::parse(text).map_err(|e| e.to_string())?;
    match v.get("schema").and_then(|s| s.as_str()) {
        Some("netsession-timeseries/1") => {}
        other => return Err(format!("bad schema tag {other:?}")),
    }
    let series_val = v
        .get("series")
        .ok_or_else(|| "missing series section".to_string())?;
    let series = MergedSeries::from_value(series_val)?;
    if series.windows == 0 {
        return Err("series has zero windows: an empty run is corrupt".into());
    }
    if series.groups.is_empty() {
        return Err("series has no groups".into());
    }
    if series.metrics.is_empty() {
        return Err("series has no metrics".into());
    }
    // Alert rules join on the `hybrid.fault.*` names; a catalog that lost
    // them would make the detections log vacuous.
    for (_, _, metric) in FAULT_CLASS_RULES {
        if series.metric(metric).is_none() {
            return Err(format!("series catalog is missing {metric}"));
        }
    }
    // Staleness check: the digest is recomputed from the decoded values,
    // not read back, so a sidecar regenerated from different code or
    // edited by hand fails here.
    match v.get("digest").and_then(|d| d.as_str()) {
        Some(d) if d == SeriesDigest::fingerprint(&series) => {}
        Some(d) => {
            return Err(format!(
                "digest {d} does not match the decoded series: stale or corrupted sidecar"
            ))
        }
        None => return Err("missing digest".into()),
    }
    let alerts = v
        .get("alerts")
        .and_then(|a| a.as_arr())
        .ok_or_else(|| "alerts missing or not an array".to_string())?;
    let mut injected_classes: Vec<&str> = Vec::new();
    for (i, a) in alerts.iter().enumerate() {
        for key in ["class", "at_hours", "window", "region", "detail"] {
            if a.get(key).is_none() {
                return Err(format!("alerts[{i}].{key} missing"));
            }
        }
        let class = a
            .get("class")
            .and_then(|c| c.as_str())
            .ok_or_else(|| format!("alerts[{i}].class not a string"))?;
        if !FAULT_CLASS_RULES.iter().any(|(c, _, _)| *c == class) {
            return Err(format!("alerts[{i}]: unknown fault class {class}"));
        }
        if !injected_classes.contains(&class) {
            injected_classes.push(class);
        }
    }
    let detections = v
        .get("detections")
        .and_then(|d| d.as_arr())
        .ok_or_else(|| "detections missing or not an array".to_string())?;
    for (i, d) in detections.iter().enumerate() {
        for key in ["rule", "raised", "at_us", "message"] {
            if d.get(key).is_none() {
                return Err(format!("detections[{i}].{key} missing"));
            }
        }
    }
    // The fault-class join: every injected class must have raised its
    // paired rule. (A fault-free sidecar passes vacuously — the standard
    // rules are structurally incapable of false positives on it, and the
    // next check enforces that side.)
    for class in injected_classes {
        let (_, rule, _) = FAULT_CLASS_RULES
            .iter()
            .find(|(c, _, _)| *c == class)
            .expect("class validated above");
        let raised = detections.iter().any(|d| {
            d.get("rule").and_then(|r| r.as_str()) == Some(rule)
                && d.get("raised").and_then(|r| r.as_bool()) == Some(true)
        });
        if !raised {
            return Err(format!(
                "fault class {class} was injected but rule {rule} never raised"
            ));
        }
    }
    if alerts.is_empty() && !detections.is_empty() {
        return Err(format!(
            "{} detections on a fault-free run: false positives",
            detections.len()
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_wrong_schema_and_missing_sections() {
        assert!(lint_timeseries_text("{}").is_err());
        assert!(
            lint_timeseries_text("{\"schema\": \"netsession-timeseries/1\"}")
                .unwrap_err()
                .contains("series"),
        );
        assert!(lint_timeseries_text("{\"schema\": \"other/9\"}")
            .unwrap_err()
            .contains("schema"));
    }
}
