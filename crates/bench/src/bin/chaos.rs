//! chaos — the §3.8 robustness campaign.
//!
//! Runs the standard scenario twice with the same seed: once untouched
//! (baseline) and once under a deterministic fault-injection campaign —
//! CN crashes (paced readmission), DN soft-state wipes (RE-ADD
//! fate-sharing), a fleet-wide edge outage (backstop flows cut, then
//! re-attached), and a mass churn burst. Reports the service-level
//! damage (completion rate, peer-efficiency dip) and the recovery
//! machinery's work, plus per-fault-class recovery latency measured from
//! the always-sampled fault trace spans.

use netsession_bench::runner::{
    config_for, parse_args, pct, write_metrics_sidecar, write_trace_sidecar,
};
use netsession_hybrid::{FaultEvent, FaultKind, HybridSim, SimOutput};
use netsession_logs::records::DownloadOutcome;
use std::collections::BTreeMap;

/// The injected campaign: one fault class per week, every region.
fn campaign() -> Vec<FaultEvent> {
    let mut events = Vec::new();
    for region in 0..9 {
        events.push(FaultEvent {
            at_hours: 186, // day 8
            kind: FaultKind::CnCrash { region },
        });
        events.push(FaultEvent {
            at_hours: 330, // day 14
            kind: FaultKind::DnWipe { region },
        });
        events.push(FaultEvent {
            at_hours: 480, // day 20
            kind: FaultKind::EdgeOutage {
                region,
                secs: 7_200,
            },
        });
    }
    events.push(FaultEvent {
        at_hours: 600, // day 25
        kind: FaultKind::ChurnBurst { fraction: 0.3 },
    });
    events
}

fn completion_rate(out: &SimOutput) -> f64 {
    out.stats.completed as f64 / out.dataset.downloads.len().max(1) as f64
}

fn peer_efficiency(out: &SimOutput) -> f64 {
    let total = out.stats.p2p_bytes + out.stats.edge_bytes;
    if total == 0 {
        0.0
    } else {
        out.stats.p2p_bytes as f64 / total as f64
    }
}

/// Per-day peer byte share over completed downloads, keyed by the day the
/// download ended.
fn daily_efficiency(out: &SimOutput) -> BTreeMap<u64, f64> {
    let mut per_day: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
    for rec in &out.dataset.downloads {
        if rec.outcome != DownloadOutcome::Completed {
            continue;
        }
        let day = rec.ended.as_micros() / (24 * 3_600 * 1_000_000);
        let e = per_day.entry(day).or_insert((0, 0));
        e.0 += rec.bytes_peers.bytes();
        e.1 += rec.bytes_infra.bytes();
    }
    per_day
        .into_iter()
        .map(|(day, (peers, infra))| {
            let total = peers + infra;
            let eff = if total == 0 {
                0.0
            } else {
                peers as f64 / total as f64
            };
            (day, eff)
        })
        .collect()
}

fn main() {
    let args = parse_args();
    eprintln!("# chaos: peers={} downloads={}", args.peers, args.downloads);
    let cfg = config_for(&args);

    let baseline = HybridSim::run_config(cfg.clone());
    let mut chaos_cfg = cfg;
    chaos_cfg.faults.events = campaign();
    let out = HybridSim::run_config(chaos_cfg);
    write_metrics_sidecar("chaos", &out.metrics);
    write_trace_sidecar("chaos", &out.trace);

    println!("injected campaign (one fault class per week, all 9 regions):");
    println!(
        "  day  8  cn_crash     control connections drop; paced readmission + re-registration"
    );
    println!("  day 14  dn_wipe      directory soft state lost; paced RE-ADD repopulates it");
    println!(
        "  day 20  edge_outage  edge dark for 2h; backstop flows cut, re-attached on recovery"
    );
    println!("  day 25  churn_burst  30% of idle online peers drop offline at once");
    println!();

    println!("service level                   baseline     chaos");
    println!(
        "downloads completed             {:<12} {}",
        baseline.stats.completed, out.stats.completed
    );
    println!(
        "completion rate                 {:<12} {}",
        pct(completion_rate(&baseline)),
        pct(completion_rate(&out))
    );
    println!(
        "peer efficiency (byte share)    {:<12} {}",
        pct(peer_efficiency(&baseline)),
        pct(peer_efficiency(&out))
    );
    println!(
        "p2p bytes (TB)                  {:<12.2} {:.2}",
        baseline.stats.p2p_bytes as f64 / 1e12,
        out.stats.p2p_bytes as f64 / 1e12
    );
    println!(
        "edge bytes (TB)                 {:<12.2} {:.2}",
        baseline.stats.edge_bytes as f64 / 1e12,
        out.stats.edge_bytes as f64 / 1e12
    );
    println!();

    // The worst per-day peer-efficiency dip vs the baseline.
    let base_daily = daily_efficiency(&baseline);
    let chaos_daily = daily_efficiency(&out);
    let mut worst: Option<(u64, f64, f64)> = None;
    for (day, chaos_eff) in &chaos_daily {
        let Some(base_eff) = base_daily.get(day) else {
            continue;
        };
        let dip = base_eff - chaos_eff;
        if worst.is_none_or(|(_, b, c)| dip > b - c) {
            worst = Some((*day, *base_eff, *chaos_eff));
        }
    }
    match worst {
        Some((day, base_eff, chaos_eff)) => println!(
            "worst peer-efficiency dip: day {:>2}  {} -> {}  ({:+.1} pts)",
            day,
            pct(base_eff),
            pct(chaos_eff),
            (chaos_eff - base_eff) * 100.0
        ),
        None => println!("worst peer-efficiency dip: n/a"),
    }
    println!();

    let counter = |name: &str| out.metrics.counter(name).get();
    println!("recovery machinery (chaos run):");
    println!(
        "  cn crashes: {} dropped {} connections; {} paced readmissions re-registered {} cached versions",
        counter("hybrid.fault.cn_crashes"),
        counter("hybrid.fault.peers_disconnected"),
        counter("hybrid.fault.readmissions"),
        counter("hybrid.fault.reregistered_versions"),
    );
    println!(
        "  dn wipes:   {} triggered {} RE-ADDs covering {} versions",
        counter("hybrid.fault.dn_wipes"),
        counter("hybrid.fault.readds"),
        counter("hybrid.fault.readd_versions"),
    );
    println!(
        "  edge:       {} outages cut {} backstop flows, {} re-attached on recovery",
        counter("hybrid.fault.edge_outages"),
        counter("hybrid.fault.edge_flows_cut"),
        counter("hybrid.fault.edge_flows_restored"),
    );
    println!(
        "  churn:      {} burst(s) took {} peers offline",
        counter("hybrid.fault.churn_bursts"),
        counter("hybrid.fault.churn_offline"),
    );
    println!(
        "  degraded:   {} downloads started edge-only while control was unreachable",
        counter("hybrid.fault.edge_only_downloads"),
    );
    println!();

    // Recovery latency per fault class, from the always-sampled fault
    // spans (span end covers the paced recovery wave / outage window).
    let mut latency: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
    for span in out.trace.spans() {
        if span.cat != "fault" {
            continue;
        }
        let Some(end) = span.end_us else { continue };
        let dur = end.saturating_sub(span.start_us);
        let e = latency.entry(span.name).or_insert((0, 0));
        e.0 += 1;
        e.1 = e.1.max(dur);
    }
    println!("recovery latency (virtual time, per fault class):");
    for (name, (n, max_us)) in &latency {
        println!(
            "  {:<18} n={:<3} max recovery {:.1}s",
            name,
            n,
            *max_us as f64 / 1e6
        );
    }
}
