//! chaos — the §3.8 robustness campaign.
//!
//! Runs the standard scenario twice with the same seed: once untouched
//! (baseline) and once under a deterministic fault-injection campaign —
//! CN crashes (paced readmission), DN soft-state wipes (RE-ADD
//! fate-sharing), a fleet-wide edge outage (backstop flows cut, then
//! re-attached), and a mass churn burst. Reports the service-level
//! damage (completion rate, peer-efficiency dip) and the recovery
//! machinery's work, plus per-fault-class recovery latency measured from
//! the always-sampled fault trace spans.

use netsession_bench::runner::{
    config_for, parse_args, pct, write_metrics_sidecar, write_trace_sidecar,
};
use netsession_hybrid::alerts::FAULT_CLASS_RULES;
use netsession_hybrid::{FaultEvent, FaultKind, HybridSim, SimOutput};
use netsession_logs::records::DownloadOutcome;
use netsession_obs::json::push_str_literal;
use netsession_obs::AlertEvent;
use std::collections::BTreeMap;

/// The injected campaign: one fault class per week, every region.
fn campaign() -> Vec<FaultEvent> {
    let mut events = Vec::new();
    for region in 0..9 {
        events.push(FaultEvent {
            at_hours: 186, // day 8
            kind: FaultKind::CnCrash { region },
        });
        events.push(FaultEvent {
            at_hours: 330, // day 14
            kind: FaultKind::DnWipe { region },
        });
        events.push(FaultEvent {
            at_hours: 480, // day 20
            kind: FaultKind::EdgeOutage {
                region,
                secs: 7_200,
            },
        });
    }
    events.push(FaultEvent {
        at_hours: 600, // day 25
        kind: FaultKind::ChurnBurst { fraction: 0.3 },
    });
    events
}

/// First injection hour of each fault class, in [`FAULT_CLASS_RULES`]
/// order (joined against the campaign above).
const INJECTION_HOURS: [u64; 4] = [186, 330, 480, 600];

/// Time-to-detection per fault class: the first raise of the class's
/// detection rule at-or-after its injection instant.
fn detection_table(out: &SimOutput) -> Vec<(&'static str, &'static str, u64, Option<u64>)> {
    FAULT_CLASS_RULES
        .iter()
        .zip(INJECTION_HOURS)
        .map(|((class, rule, _), at_hours)| {
            let injected_us = at_hours * 3_600_000_000;
            let detected = out
                .alerts
                .iter()
                .find(|e| e.rule == *rule && e.raised && e.at_us >= injected_us)
                .map(|e| e.at_us);
            (*class, *rule, injected_us, detected)
        })
        .collect()
}

/// Deterministic sidecar: the full alert log plus the TTD table as JSON.
fn write_alerts_sidecars(
    ttd: &[(&str, &str, u64, Option<u64>)],
    log: &[AlertEvent],
    baseline_alerts: usize,
) {
    let dir = std::path::Path::new("results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("# alerts sidecars skipped: cannot create results/: {e}");
        return;
    }

    let mut txt = String::from("# chaos-run alert transitions (virtual time)\n");
    for e in log {
        txt.push_str(&format!(
            "{:>10.1}s  {}  {:<20} {}\n",
            e.at_us as f64 / 1e6,
            if e.raised { "RAISE" } else { "clear" },
            e.rule,
            e.message
        ));
    }

    let mut json = String::from("{\n  \"baseline_alerts\": ");
    json.push_str(&baseline_alerts.to_string());
    json.push_str(",\n  \"time_to_detection\": [\n");
    for (i, (class, rule, injected_us, detected)) in ttd.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"class\": \"{class}\", \"rule\": \"{rule}\", \"injected_us\": {injected_us}, "
        ));
        match detected {
            Some(at) => json.push_str(&format!(
                "\"detected_us\": {at}, \"ttd_s\": {:.1}}}",
                (at - injected_us) as f64 / 1e6
            )),
            None => json.push_str("\"detected_us\": null, \"ttd_s\": null}"),
        }
        json.push_str(if i + 1 < ttd.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n  \"log\": [\n");
    for (i, e) in log.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"at_us\": {}, \"rule\": \"{}\", \"raised\": {}, \"message\": ",
            e.at_us, e.rule, e.raised
        ));
        push_str_literal(&mut json, &e.message);
        json.push('}');
        json.push_str(if i + 1 < log.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    for (name, body) in [("alerts.txt", txt), ("alerts.json", json)] {
        let path = dir.join(name);
        match std::fs::write(&path, body) {
            Ok(()) => eprintln!("# alerts sidecar: {}", path.display()),
            Err(e) => eprintln!("# alerts sidecar skipped: {e}"),
        }
    }
}

fn completion_rate(out: &SimOutput) -> f64 {
    out.stats.completed as f64 / out.dataset.downloads.len().max(1) as f64
}

fn peer_efficiency(out: &SimOutput) -> f64 {
    let total = out.stats.p2p_bytes + out.stats.edge_bytes;
    if total == 0 {
        0.0
    } else {
        out.stats.p2p_bytes as f64 / total as f64
    }
}

/// Per-day peer byte share over completed downloads, keyed by the day the
/// download ended.
fn daily_efficiency(out: &SimOutput) -> BTreeMap<u64, f64> {
    let mut per_day: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
    for rec in &out.dataset.downloads {
        if rec.outcome != DownloadOutcome::Completed {
            continue;
        }
        let day = rec.ended.as_micros() / (24 * 3_600 * 1_000_000);
        let e = per_day.entry(day).or_insert((0, 0));
        e.0 += rec.bytes_peers.bytes();
        e.1 += rec.bytes_infra.bytes();
    }
    per_day
        .into_iter()
        .map(|(day, (peers, infra))| {
            let total = peers + infra;
            let eff = if total == 0 {
                0.0
            } else {
                peers as f64 / total as f64
            };
            (day, eff)
        })
        .collect()
}

fn main() {
    let args = parse_args();
    eprintln!("# chaos: peers={} downloads={}", args.peers, args.downloads);
    let cfg = config_for(&args);

    let baseline = HybridSim::run_config(cfg.clone());
    assert!(
        baseline.alerts.is_empty(),
        "zero-fault baseline fired alerts (false positives): {:?}",
        baseline.alerts
    );
    let mut chaos_cfg = cfg;
    chaos_cfg.faults.events = campaign();
    let out = HybridSim::run_config(chaos_cfg);
    write_metrics_sidecar("chaos", &out.metrics);
    write_trace_sidecar("chaos", &out.trace);
    let ttd = detection_table(&out);
    write_alerts_sidecars(&ttd, &out.alerts, baseline.alerts.len());

    println!("injected campaign (one fault class per week, all 9 regions):");
    println!(
        "  day  8  cn_crash     control connections drop; paced readmission + re-registration"
    );
    println!("  day 14  dn_wipe      directory soft state lost; paced RE-ADD repopulates it");
    println!(
        "  day 20  edge_outage  edge dark for 2h; backstop flows cut, re-attached on recovery"
    );
    println!("  day 25  churn_burst  30% of idle online peers drop offline at once");
    println!();

    println!("service level                   baseline     chaos");
    println!(
        "downloads completed             {:<12} {}",
        baseline.stats.completed, out.stats.completed
    );
    println!(
        "completion rate                 {:<12} {}",
        pct(completion_rate(&baseline)),
        pct(completion_rate(&out))
    );
    println!(
        "peer efficiency (byte share)    {:<12} {}",
        pct(peer_efficiency(&baseline)),
        pct(peer_efficiency(&out))
    );
    println!(
        "p2p bytes (TB)                  {:<12.2} {:.2}",
        baseline.stats.p2p_bytes as f64 / 1e12,
        out.stats.p2p_bytes as f64 / 1e12
    );
    println!(
        "edge bytes (TB)                 {:<12.2} {:.2}",
        baseline.stats.edge_bytes as f64 / 1e12,
        out.stats.edge_bytes as f64 / 1e12
    );
    println!();

    // The worst per-day peer-efficiency dip vs the baseline.
    let base_daily = daily_efficiency(&baseline);
    let chaos_daily = daily_efficiency(&out);
    let mut worst: Option<(u64, f64, f64)> = None;
    for (day, chaos_eff) in &chaos_daily {
        let Some(base_eff) = base_daily.get(day) else {
            continue;
        };
        let dip = base_eff - chaos_eff;
        if worst.is_none_or(|(_, b, c)| dip > b - c) {
            worst = Some((*day, *base_eff, *chaos_eff));
        }
    }
    match worst {
        Some((day, base_eff, chaos_eff)) => println!(
            "worst peer-efficiency dip: day {:>2}  {} -> {}  ({:+.1} pts)",
            day,
            pct(base_eff),
            pct(chaos_eff),
            (chaos_eff - base_eff) * 100.0
        ),
        None => println!("worst peer-efficiency dip: n/a"),
    }
    println!();

    let counter = |name: &str| out.metrics.counter(name).get();
    println!("recovery machinery (chaos run):");
    println!(
        "  cn crashes: {} dropped {} connections; {} paced readmissions re-registered {} cached versions",
        counter("hybrid.fault.cn_crashes"),
        counter("hybrid.fault.peers_disconnected"),
        counter("hybrid.fault.readmissions"),
        counter("hybrid.fault.reregistered_versions"),
    );
    println!(
        "  dn wipes:   {} triggered {} RE-ADDs covering {} versions",
        counter("hybrid.fault.dn_wipes"),
        counter("hybrid.fault.readds"),
        counter("hybrid.fault.readd_versions"),
    );
    println!(
        "  edge:       {} outages cut {} backstop flows, {} re-attached on recovery",
        counter("hybrid.fault.edge_outages"),
        counter("hybrid.fault.edge_flows_cut"),
        counter("hybrid.fault.edge_flows_restored"),
    );
    println!(
        "  churn:      {} burst(s) took {} peers offline",
        counter("hybrid.fault.churn_bursts"),
        counter("hybrid.fault.churn_offline"),
    );
    println!(
        "  degraded:   {} downloads started edge-only while control was unreachable",
        counter("hybrid.fault.edge_only_downloads"),
    );
    println!();

    // Recovery latency per fault class, from the always-sampled fault
    // spans (span end covers the paced recovery wave / outage window).
    let mut latency: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
    for span in out.trace.spans() {
        if span.cat != "fault" {
            continue;
        }
        let Some(end) = span.end_us else { continue };
        let dur = end.saturating_sub(span.start_us);
        let e = latency.entry(span.name).or_insert((0, 0));
        e.0 += 1;
        e.1 = e.1.max(dur);
    }
    println!("recovery latency (virtual time, per fault class):");
    for (name, (n, max_us)) in &latency {
        println!(
            "  {:<18} n={:<3} max recovery {:.1}s",
            name,
            n,
            *max_us as f64 / 1e6
        );
    }
    println!();

    // §3.8 alerting: the AlertEngine ran over virtual time during both
    // runs. The baseline fired nothing (asserted above); here the chaos
    // run must detect every injected class.
    println!("alert engine (baseline run): 0 transitions — zero false positives");
    println!("time-to-detection (first raise after injection, virtual time):");
    let mut missed = 0;
    for (class, rule, injected_us, detected) in &ttd {
        match detected {
            Some(at) => println!(
                "  {:<12} rule {:<16} injected day {:<5.2} detected +{:.1}s",
                class,
                rule,
                *injected_us as f64 / 86.4e9,
                (at - injected_us) as f64 / 1e6
            ),
            None => {
                missed += 1;
                println!("  {class:<12} rule {rule:<16} NEVER DETECTED");
            }
        }
    }
    println!(
        "alert transitions over the chaos month: {} ({} raises)",
        out.alerts.len(),
        out.alerts.iter().filter(|e| e.raised).count()
    );
    assert_eq!(missed, 0, "every injected fault class must be detected");
}
