//! A6 — persistent background client vs launch-on-demand sessions.
//!
//! §3.4: "the short session times that have been observed in p2p systems
//! suggest that users launch the client only when they intend to download
//! something, so the time window in which objects can be uploaded to other
//! peers tends to be very short. As a persistent background application,
//! NetSession does not have this problem." The ablation shrinks each
//! peer's daily online window to model launch-on-demand clients.

use netsession_analytics::overview;
use netsession_bench::runner::{
    config_for, parse_args, write_metrics_sidecar, write_trace_sidecar,
};
use netsession_hybrid::HybridSim;
use netsession_obs::MetricsRegistry;

fn main() {
    let metrics = MetricsRegistry::new();
    let args = parse_args();
    eprintln!(
        "# ablate_sessions: peers={} downloads={}",
        args.peers, args.downloads
    );

    println!("A6: background client vs launch-on-demand sessions");
    println!(
        "{:<28}{:>16}{:>14}{:>12}",
        "availability model", "mean eff %", "p2p TB", "logins"
    );
    let mut baseline_trace = None;
    for (label, factor) in [
        ("persistent background", 1.0),
        ("half-day sessions", 0.5),
        ("short sessions (15%)", 0.15),
    ] {
        let mut cfg = config_for(&args);
        cfg.session_mode_factor = factor;
        let out = HybridSim::run_config_with(cfg, &metrics);
        if baseline_trace.is_none() {
            baseline_trace = Some(out.trace.clone());
        }
        let h = overview::headline(&out.dataset);
        println!(
            "{:<28}{:>16.1}{:>14.2}{:>12}",
            label,
            h.mean_peer_efficiency * 100.0,
            out.stats.p2p_bytes as f64 / 1e12,
            out.stats.logins
        );
    }
    println!();
    println!("expectation: shorter upload windows shrink swarm capacity and efficiency");

    write_metrics_sidecar("ablate_sessions", &metrics);
    if let Some(trace) = &baseline_trace {
        write_trace_sidecar("ablate_sessions", trace);
    }
}
