//! A2 — the edge backstop vs pure p2p.
//!
//! The defining hybrid property (§2.3, §3.3): "if a peer is 'unlucky' and
//! picks peers that are slow or unreliable, the infrastructure can cover
//! the difference." Turning the backstop off should crater completion and
//! speed for unlucky downloads; the BitTorrent baseline shows the same
//! failure mode independently.

use netsession_analytics::outcomes;
use netsession_analytics::stats::Cdf;
use netsession_baseline::bittorrent::{Swarm, SwarmConfig};
use netsession_bench::runner::{
    config_for, parse_args, write_metrics_sidecar, write_trace_sidecar,
};
use netsession_core::rng::DetRng;
use netsession_hybrid::HybridSim;
use netsession_logs::records::DownloadOutcome;
use netsession_obs::MetricsRegistry;

fn main() {
    let metrics = MetricsRegistry::new();
    let args = parse_args();
    eprintln!(
        "# ablate_backstop: peers={} downloads={}",
        args.peers, args.downloads
    );

    println!("A2: the infrastructure backstop");
    println!(
        "{:<22}{:>12}{:>14}{:>18}",
        "system", "completed", "abandoned", "median speed Mbps"
    );
    let mut baseline_trace = None;
    for (label, backstop) in [("hybrid (backstop)", true), ("pure p2p (no edge)", false)] {
        let mut cfg = config_for(&args);
        cfg.edge_backstop = backstop;
        let out = HybridSim::run_config_with(cfg, &metrics);
        if baseline_trace.is_none() {
            baseline_trace = Some(out.trace.clone());
        }
        let (infra, p2p) = outcomes::outcome_split(&out.dataset);
        let completed = (infra.completed * infra.total as f64 + p2p.completed * p2p.total as f64)
            / (infra.total + p2p.total).max(1) as f64;
        let abandoned = (infra.abandoned * infra.total as f64 + p2p.abandoned * p2p.total as f64)
            / (infra.total + p2p.total).max(1) as f64;
        let speeds: Vec<f64> = out
            .dataset
            .downloads
            .iter()
            .filter(|d| d.outcome == DownloadOutcome::Completed)
            .map(|d| d.mean_speed().as_mbps())
            .filter(|s| *s > 0.0)
            .collect();
        let median = if speeds.is_empty() {
            0.0
        } else {
            Cdf::from_values(speeds).median()
        };
        println!(
            "{:<22}{:>11.1}%{:>13.1}%{:>18.2}",
            label,
            completed * 100.0,
            abandoned * 100.0,
            median
        );
    }

    // The independent BitTorrent baseline: seed death strands the swarm.
    let mut rng = DetRng::seeded(args.seed);
    let healthy = Swarm::new(SwarmConfig::default(), &mut rng).run(&mut rng);
    let mut rng = DetRng::seeded(args.seed);
    let orphaned = Swarm::new(
        SwarmConfig {
            seed_leaves_at: Some(2),
            ..SwarmConfig::default()
        },
        &mut rng,
    )
    .run(&mut rng);
    println!();
    println!(
        "BitTorrent baseline: completion {:.0}% with stable seed, {:.0}% when the seed dies early",
        healthy.completion_rate() * 100.0,
        orphaned.completion_rate() * 100.0
    );

    write_metrics_sidecar("ablate_backstop", &metrics);
    if let Some(trace) = &baseline_trace {
        write_trace_sidecar("ablate_backstop", trace);
    }
}
