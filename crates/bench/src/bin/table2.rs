//! E2 — Table 2: global distribution of downloads for the ten largest
//! content providers.

use netsession_analytics::regions;
use netsession_bench::runner::{
    parse_args, run_default, write_metrics_sidecar, write_trace_sidecar,
};
use netsession_world::customers::{customer_by_cp, CUSTOMERS};
use netsession_world::geo::Region;

fn main() {
    let args = parse_args();
    eprintln!(
        "# table2: peers={} downloads={}",
        args.peers, args.downloads
    );
    let out = run_default(&args);
    write_metrics_sidecar("table2", &out.metrics);
    write_trace_sidecar("table2", &out.trace);
    let (rows, all) = regions::table2(&out.dataset);

    print!("{:<14}", "customer");
    for r in Region::ALL {
        print!("{:>11}", r.label());
    }
    println!();

    let print_row = |name: &str, mix: &[f64; 9]| {
        print!("{name:<14}");
        for v in mix {
            if *v < 0.005 {
                print!("{:>11}", "-");
            } else {
                print!("{:>10.0}%", v * 100.0);
            }
        }
        println!();
    };

    for (cp, mix) in &rows {
        let name = customer_by_cp(*cp).map(|c| c.name).unwrap_or("?");
        print_row(&format!("Customer {name}"), mix);
    }
    print_row("All customers", &all);

    println!();
    println!("paper row for comparison (All customers): 7% 4% 11% 3% 2% 20% 46% 4% 2%");
    println!(
        "paper-specified per-customer rows are encoded in netsession_world::customers::CUSTOMERS:"
    );
    for c in CUSTOMERS {
        let row: Vec<String> = c
            .region_mix
            .iter()
            .map(|v| {
                if *v < 0.005 {
                    "-".to_string()
                } else {
                    format!("{:.0}%", v * 100.0)
                }
            })
            .collect();
        println!("  {} (target): {}", c.name, row.join(" "));
    }
}
