//! E19 — §5.2: are peer-assisted downloads less reliable?
//!
//! Paper: 94 % of infrastructure-only downloads complete vs 92 % of
//! peer-assisted; system-related failures 0.1 % vs 0.2 %; pauses 3 % vs
//! 8 % — the completion gap is explained by pauses, which grow with file
//! size, not by system failures.

use netsession_analytics::outcomes;
use netsession_bench::runner::{
    parse_args, run_default, write_metrics_sidecar, write_trace_sidecar,
};

fn main() {
    let args = parse_args();
    eprintln!(
        "# outcomes: peers={} downloads={}",
        args.peers, args.downloads
    );
    let out = run_default(&args);
    write_metrics_sidecar("outcomes", &out.metrics);
    write_trace_sidecar("outcomes", &out.trace);
    let (infra, p2p) = outcomes::outcome_split(&out.dataset);

    println!("§5.2 outcome split");
    println!(
        "{:<24}{:>14}{:>16}",
        "metric", "infra-only", "peer-assisted"
    );
    println!("{:<24}{:>14}{:>16}", "downloads", infra.total, p2p.total);
    let row = |name: &str, a: f64, b: f64, paper: &str| {
        println!(
            "{:<24}{:>13.1}%{:>15.1}%   (paper: {})",
            name,
            a * 100.0,
            b * 100.0,
            paper
        );
    };
    row("completed", infra.completed, p2p.completed, "94% / 92%");
    row(
        "failed (system)",
        infra.failed_system,
        p2p.failed_system,
        "0.1% / 0.2%",
    );
    row(
        "failed (other)",
        infra.failed_other,
        p2p.failed_other,
        "rest",
    );
    row(
        "paused/terminated",
        infra.abandoned,
        p2p.abandoned,
        "3% / 8%",
    );
    println!();
    println!(
        "qualitative check: p2p pauses more ({}), system failures stay tiny both ways ({})",
        p2p.abandoned > infra.abandoned,
        infra.failed_system < 0.01 && p2p.failed_system < 0.01
    );
}
