//! Drill into an exported download trace.
//!
//! Usage:
//!   trace_explain --trace results/headline.trace.json            # index
//!   trace_explain --trace results/headline.trace.json --download 3
//!   trace_explain --trace results/headline.trace.json --download 000100000000002a
//!
//! With `--download` (an index from the listing, or a 16-hex-digit trace
//! id) it prints the full causal narrative for that download: contacts
//! offered vs connected vs rejected, the NAT penalty, time-to-first-source,
//! and the peer/edge byte split.

use netsession_bench::explain::{downloads, narrate, parse_trace, summarize};
use netsession_obs::json::JsonValue;

fn render(v: &JsonValue) -> String {
    match v {
        JsonValue::Null => "null".into(),
        JsonValue::Bool(b) => b.to_string(),
        JsonValue::Num(n) => {
            if n.fract() == 0.0 {
                format!("{}", *n as i64)
            } else {
                n.to_string()
            }
        }
        JsonValue::Str(s) => s.clone(),
        other => format!("{other:?}"),
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let mut trace_path: Option<String> = None;
    let mut selector: Option<String> = None;
    let mut i = 1;
    while i + 1 < argv.len() {
        match argv[i].as_str() {
            "--trace" => trace_path = Some(argv[i + 1].clone()),
            "--download" => selector = Some(argv[i + 1].clone()),
            other => {
                eprintln!("unknown flag {other} (expected --trace/--download)");
                std::process::exit(2);
            }
        }
        i += 2;
    }
    let Some(path) = trace_path else {
        eprintln!("usage: trace_explain --trace <file.trace.json> [--download <index|trace-id>]");
        std::process::exit(2);
    };
    let input = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let doc = match parse_trace(&input) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("cannot parse {path}: {e}");
            std::process::exit(1);
        }
    };
    let dls = downloads(&doc);
    if doc.dropped > 0 {
        eprintln!("# note: sink dropped {} span(s) at capacity", doc.dropped);
    }
    if dls.is_empty() {
        println!("no download traces in {path}");
        return;
    }

    match selector {
        None => {
            println!(
                "{} download trace(s) in {path} (use --download <#|id> to drill in)",
                dls.len()
            );
            println!(
                "{:>4}  {:<16}  {:<13}  {:>12}  {:>12}  {:>9}",
                "#", "trace", "outcome", "peer bytes", "edge bytes", "duration"
            );
            for (i, dl) in dls.iter().enumerate() {
                let s = summarize(dl);
                println!(
                    "{:>4}  {:<16}  {:<13}  {:>12}  {:>12}  {:>8.1}s",
                    i,
                    s.trace,
                    if s.outcome.is_empty() {
                        "unfinished"
                    } else {
                        &s.outcome
                    },
                    s.bytes_peers,
                    s.bytes_edge,
                    s.duration_us as f64 / 1e6
                );
            }
        }
        Some(sel) => {
            let found = match sel.parse::<usize>() {
                Ok(idx) => dls.get(idx),
                Err(_) => dls.iter().find(|dl| dl.root.trace == sel),
            };
            let Some(dl) = found else {
                eprintln!(
                    "no download {sel:?} (have {} traces, ids are 16 hex digits)",
                    dls.len()
                );
                std::process::exit(1);
            };
            print!("{}", narrate(&summarize(dl)));
            println!("  span timeline:");
            for ev in &dl.events {
                let indent = if ev.parent.is_none() { "" } else { "  " };
                let mut attrs = String::new();
                for (k, v) in &ev.attrs {
                    attrs.push_str(&format!(" {k}={}", render(v)));
                }
                println!(
                    "    {:>10.3}s {:>9.3}s  {indent}{}/{}{attrs}",
                    ev.ts as f64 / 1e6,
                    ev.dur as f64 / 1e6,
                    ev.cat,
                    ev.name,
                );
            }
        }
    }
}
