//! E12 — Fig 7: downloads of larger files are terminated more often.
//!
//! Paper shape: pause rates grow from a few percent for <10 MB files to
//! roughly 15–25 % for >1 GB files; peer-assisted downloads pause more
//! because they carry the bigger files, not because p2p is less reliable.

use netsession_analytics::outcomes;
use netsession_bench::runner::{
    parse_args, run_default, write_metrics_sidecar, write_trace_sidecar,
};

fn main() {
    let args = parse_args();
    eprintln!("# fig7: peers={} downloads={}", args.peers, args.downloads);
    let out = run_default(&args);
    write_metrics_sidecar("fig7", &out.metrics);
    write_trace_sidecar("fig7", &out.trace);
    let buckets = outcomes::fig7(&out.dataset);

    println!("Fig 7: pause/termination rate by file size (%)");
    println!(
        "{:<12}{:>10}{:>14}{:>16}{:>8}",
        "size", "all", "infra-only", "peer-assisted", "n"
    );
    for b in &buckets {
        println!(
            "{:<12}{:>10.1}{:>14.1}{:>16.1}{:>8}",
            b.label, b.all, b.infra_only, b.peer_assisted, b.total
        );
    }
    println!();
    let first = &buckets[0];
    let last = &buckets[buckets.len() - 1];
    println!(
        "trend: {:.1}% (<10MB) → {:.1}% (>1GB); paper shows the same monotone growth",
        first.all, last.all
    );
}
