//! `tsreport` — deterministic operational report over a
//! `netsession-timeseries/1` sidecar (`scale --chaos` output).
//!
//! Answers the paper's temporal questions from the artifact alone, no
//! re-run needed:
//!
//! - the fleet diurnal curve (mean active peers per hour-of-day — the
//!   Fig. 2 shape, summed over regions whose local hours differ);
//! - per-region peak/trough windows of download starts;
//! - every injected fault joined to its `AlertEngine` detection with
//!   time-to-detection, plus the local dip vs the region's mean;
//! - the top-N anomalous windows of the fleet completion series.
//!
//! ```text
//! tsreport [path] [--top N]      default path results/scale.timeseries.json
//! ```
//!
//! Everything printed is a pure function of the sidecar bytes, so the
//! output is byte-deterministic and diffable in gates.

use netsession_analytics::timeseries::{diurnal_profile, peak_trough, top_anomalies};
use netsession_hybrid::alerts::FAULT_CLASS_RULES;
use netsession_obs::{json, MergedSeries};

struct Alert {
    class: String,
    at_hours: u64,
    window: usize,
    region: String,
    detail: u64,
}

struct Detection {
    region: Option<String>,
    rule: String,
    raised: bool,
    at_us: u64,
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let mut path = "results/scale.timeseries.json".to_string();
    let mut top_n = 8usize;
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--top" => {
                top_n = argv
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| panic!("--top <n>"));
                i += 2;
            }
            flag if flag.starts_with("--") => panic!("unknown flag {flag}"),
            p => {
                path = p.to_string();
                i += 1;
            }
        }
    }

    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("tsreport: {path}: {e}");
            std::process::exit(2);
        }
    };
    let doc = json::parse(&text).unwrap_or_else(|e| panic!("{path}: {e}"));
    assert_eq!(
        doc.get("schema").and_then(|s| s.as_str()),
        Some("netsession-timeseries/1"),
        "{path}: not a timeseries sidecar"
    );
    let series = MergedSeries::from_value(doc.get("series").expect("series section"))
        .unwrap_or_else(|e| panic!("{path}: {e}"));
    let get_arr = |key: &str| {
        doc.get(key)
            .and_then(|v| v.as_arr())
            .map(<[_]>::to_vec)
            .unwrap_or_default()
    };
    let alerts: Vec<Alert> = get_arr("alerts")
        .iter()
        .map(|a| Alert {
            class: a
                .get("class")
                .and_then(|v| v.as_str())
                .unwrap_or("?")
                .to_string(),
            at_hours: a.get("at_hours").and_then(|v| v.as_u64()).unwrap_or(0),
            window: a.get("window").and_then(|v| v.as_u64()).unwrap_or(0) as usize,
            region: a
                .get("region")
                .and_then(|v| v.as_str())
                .unwrap_or("?")
                .to_string(),
            detail: a.get("detail").and_then(|v| v.as_u64()).unwrap_or(0),
        })
        .collect();
    let detections: Vec<Detection> = get_arr("detections")
        .iter()
        .map(|d| Detection {
            region: d.get("region").and_then(|v| v.as_str()).map(str::to_string),
            rule: d
                .get("rule")
                .and_then(|v| v.as_str())
                .unwrap_or("?")
                .to_string(),
            raised: d.get("raised").and_then(|v| v.as_bool()).unwrap_or(false),
            at_us: d.get("at_us").and_then(|v| v.as_u64()).unwrap_or(0),
        })
        .collect();

    let windows_per_day = (86_400_000_000 / series.interval_us.max(1)) as usize;
    println!(
        "timeseries report: {} windows x {} s, {} regions, {} metrics, {} faults, {} detections",
        series.windows,
        series.interval_us / 1_000_000,
        series.groups.len(),
        series.metrics.len(),
        alerts.len(),
        detections.len()
    );

    // Fleet diurnal curve: mean active peers per hour-of-day (UTC grid;
    // regional local-time offsets smear the trough, exactly as the
    // paper's global curves do).
    let active = series
        .metric("scaled.active_peers")
        .expect("active_peers in catalog")
        .global();
    let prof = diurnal_profile(&active, windows_per_day.max(1));
    let peak_slot = prof
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap().then(b.0.cmp(&a.0)))
        .map_or(0, |(s, _)| s);
    let top = prof.iter().cloned().fold(0.0f64, f64::max).max(1.0);
    println!("\ndiurnal curve (mean active peers per hour-of-day, UTC):");
    for (slot, &v) in prof.iter().enumerate() {
        let bar = "#".repeat(((v / top) * 40.0).round() as usize);
        println!(
            "  h{slot:02} {v:>12.1} {bar}{}",
            if slot == peak_slot { " <- peak" } else { "" }
        );
    }

    // Per-region peak/trough of download starts.
    let starts = series
        .metric("scaled.downloads_started")
        .expect("downloads_started in catalog");
    println!("\nper-region download-start peak/trough (window = sim hour):");
    for (g, label) in series.groups.iter().enumerate() {
        if let Some((peak, trough)) = peak_trough(&starts.values[g]) {
            println!(
                "  {label:>14}: peak {} @h{:03}, trough {} @h{:03}",
                peak.value, peak.window, trough.value, trough.window
            );
        }
    }

    // Injected faults joined to their detections.
    if !alerts.is_empty() {
        let bytes_peers = series
            .metric("scaled.bytes_peers")
            .expect("bytes_peers in catalog");
        println!("\nfault detections (rule join, time-to-detection in minutes):");
        for a in &alerts {
            let rule = FAULT_CLASS_RULES
                .iter()
                .find(|(c, _, _)| *c == a.class)
                .map(|(_, r, _)| *r)
                .unwrap_or("?");
            let inject_us = a.at_hours * 3_600_000_000;
            // Earliest raise of the paired rule at-or-after injection;
            // region-scoped detection preferred, fleet-wide accepted.
            let hit = detections
                .iter()
                .filter(|d| d.rule == rule && d.raised && d.at_us >= inject_us)
                .min_by_key(|d| (d.at_us, d.region.as_deref() != Some(a.region.as_str())));
            let g = series.groups.iter().position(|r| *r == a.region);
            let dip = g.map(|g| {
                let row = &bytes_peers.values[g];
                let mean = row.iter().map(|&v| v as f64).sum::<f64>() / row.len().max(1) as f64;
                let at = row.get(a.window).copied().unwrap_or(0) as f64;
                if mean > 0.0 {
                    100.0 * (at - mean) / mean
                } else {
                    0.0
                }
            });
            match hit {
                Some(d) => println!(
                    "  h{:03} {:>14} {:<11} detail={:<6} -> {} ({}) ttd {:>5.1} min, peer-bytes dip {:+.1}%",
                    a.at_hours,
                    a.region,
                    a.class,
                    a.detail,
                    d.rule,
                    d.region.as_deref().unwrap_or("fleet"),
                    (d.at_us - inject_us) as f64 / 60e6,
                    dip.unwrap_or(0.0),
                ),
                None => println!(
                    "  h{:03} {:>14} {:<11} detail={:<6} -> UNDETECTED",
                    a.at_hours, a.region, a.class, a.detail
                ),
            }
        }
    }

    // Most anomalous completion windows.
    let completed = series
        .metric("scaled.downloads_completed")
        .expect("downloads_completed in catalog")
        .global();
    println!("\ntop {top_n} anomalous windows (fleet downloads completed, |z|):");
    for a in top_anomalies(&completed, top_n) {
        println!("  h{:03} value {:>10} z {:+.2}", a.window, a.value, a.z);
    }
}
