//! PERF — FlowNet scaling: incremental vs full recompute under localized
//! churn.
//!
//! Builds swarm-structured flow graphs (many small connected components,
//! the shape the hybrid driver produces) at 10k→200k flows, then applies
//! a fixed sequence of *localized* mutations — each event touches one
//! swarm, as a requery/offline/finish does — to two identical networks.
//! One network refreshes rates with `recompute_dirty()` (the production
//! path), the other with the full `recompute()` oracle. After every event
//! the two rate checksums must match bit-for-bit.
//!
//! stdout is deterministic (scales, flow/component counts, checksums) so
//! the committed `results/flownet_scale.txt` is diffable run-to-run;
//! wall-clock timings go to stderr and to the volatile section of
//! `results/flownet_scale.metrics.json` — the repo's first perf-trajectory
//! baseline.

use netsession_bench::runner::write_metrics_sidecar;
use netsession_core::rng::DetRng;
use netsession_core::units::Bandwidth;
use netsession_obs::MetricsRegistry;
use netsession_sim::flownet::{FlowId, FlowNet, NodeId};
use std::time::Instant;

/// Peers per swarm (a downloader, its sources, and bystanders).
const SWARM_PEERS: usize = 26;
/// Flows per swarm at build time.
const SWARM_FLOWS: usize = 50;
/// Localized churn events per scale point.
const CHURN_EVENTS: usize = 150;

struct Swarm {
    nodes_a: Vec<NodeId>,
    nodes_b: Vec<NodeId>,
    /// Live flows as (incremental-net id, full-net id) pairs.
    flows: Vec<(FlowId, FlowId)>,
}

fn main() {
    let registry = MetricsRegistry::new();
    println!("FlowNet scaling: incremental recompute_dirty vs full recompute");
    println!(
        "swarm-local churn, {SWARM_FLOWS} flows / {SWARM_PEERS} peers per swarm, \
         {CHURN_EVENTS} events per scale"
    );
    println!(
        "{:>9} {:>9} {:>7} {:>18} {:>6}",
        "flows", "nodes", "swarms", "checksum", "match"
    );

    for &target_flows in &[10_000usize, 50_000, 100_000, 200_000] {
        let mut rng = DetRng::seeded(0xf10c ^ target_flows as u64);
        // `inc` is the production path and carries the instruments;
        // `full` is the oracle.
        let mut inc = FlowNet::new().with_metrics(&registry);
        let mut full = FlowNet::new();

        let n_swarms = target_flows / SWARM_FLOWS;
        let mut swarms: Vec<Swarm> = Vec::with_capacity(n_swarms);
        for _ in 0..n_swarms {
            let mut nodes_a = Vec::with_capacity(SWARM_PEERS);
            let mut nodes_b = Vec::with_capacity(SWARM_PEERS);
            for _ in 0..SWARM_PEERS {
                let up = Bandwidth::from_mbps(rng.range_f64(0.5, 20.0));
                let down = Bandwidth::from_mbps(rng.range_f64(2.0, 100.0));
                nodes_a.push(inc.add_node(up, down));
                nodes_b.push(full.add_node(up, down));
            }
            let mut flows = Vec::with_capacity(SWARM_FLOWS);
            for _ in 0..SWARM_FLOWS {
                let s = rng.index(SWARM_PEERS);
                let mut d = rng.index(SWARM_PEERS);
                while d == s {
                    d = rng.index(SWARM_PEERS);
                }
                let ceil = rng
                    .chance(0.3)
                    .then(|| Bandwidth::from_mbps(rng.range_f64(0.1, 5.0)));
                flows.push((
                    inc.add_flow(nodes_a[s], nodes_a[d], ceil),
                    full.add_flow(nodes_b[s], nodes_b[d], ceil),
                ));
            }
            swarms.push(Swarm {
                nodes_a,
                nodes_b,
                flows,
            });
        }
        // Settle both networks before timing the churn phase.
        inc.recompute_dirty();
        full.recompute();
        assert_eq!(inc.rate_checksum(), full.rate_checksum());

        let mut inc_ns: u64 = 0;
        let mut full_ns: u64 = 0;
        let inc_hist = registry.volatile_histogram(&format!("bench.flownet_{target_flows}.inc_ns"));
        let full_hist =
            registry.volatile_histogram(&format!("bench.flownet_{target_flows}.full_ns"));
        let mut all_match = true;
        for _ in 0..CHURN_EVENTS {
            // One localized event: a single swarm gains a flow, loses a
            // flow, or sees a ceiling change (requery / offline / edge
            // retightening, respectively).
            let sw = &mut swarms[rng.index(n_swarms)];
            match rng.index(3) {
                0 => {
                    let s = rng.index(SWARM_PEERS);
                    let mut d = rng.index(SWARM_PEERS);
                    while d == s {
                        d = rng.index(SWARM_PEERS);
                    }
                    sw.flows.push((
                        inc.add_flow(sw.nodes_a[s], sw.nodes_a[d], None),
                        full.add_flow(sw.nodes_b[s], sw.nodes_b[d], None),
                    ));
                }
                1 if !sw.flows.is_empty() => {
                    let k = rng.index(sw.flows.len());
                    let (fi, ff) = sw.flows.swap_remove(k);
                    inc.remove_flow(fi);
                    full.remove_flow(ff);
                }
                _ if !sw.flows.is_empty() => {
                    let k = rng.index(sw.flows.len());
                    let ceil = Some(Bandwidth::from_mbps(rng.range_f64(0.1, 5.0)));
                    inc.set_flow_ceil(sw.flows[k].0, ceil);
                    full.set_flow_ceil(sw.flows[k].1, ceil);
                }
                _ => {}
            }
            let t0 = Instant::now();
            inc.recompute_dirty();
            let dt = t0.elapsed().as_nanos() as u64;
            inc_ns += dt;
            inc_hist.record(dt);
            let t0 = Instant::now();
            full.recompute();
            let dt = t0.elapsed().as_nanos() as u64;
            full_ns += dt;
            full_hist.record(dt);
            all_match &= inc.rate_checksum() == full.rate_checksum();
        }
        assert!(all_match, "incremental path diverged from the oracle");

        println!(
            "{:>9} {:>9} {:>7} {:>18x} {:>6}",
            inc.flow_count(),
            inc.node_count(),
            n_swarms,
            inc.rate_checksum(),
            all_match
        );
        let speedup = full_ns as f64 / inc_ns.max(1) as f64;
        eprintln!(
            "# {target_flows} flows: incremental {:>10.1} µs/event, full {:>10.1} µs/event, speedup {:.1}x",
            inc_ns as f64 / CHURN_EVENTS as f64 / 1e3,
            full_ns as f64 / CHURN_EVENTS as f64 / 1e3,
            speedup
        );
        registry
            .volatile_counter(&format!("bench.flownet_{target_flows}.inc_total_us"))
            .add(inc_ns / 1_000);
        registry
            .volatile_counter(&format!("bench.flownet_{target_flows}.full_total_us"))
            .add(full_ns / 1_000);
        registry
            .volatile_counter(&format!("bench.flownet_{target_flows}.speedup_x100"))
            .add((speedup * 100.0) as u64);
    }

    write_metrics_sidecar("flownet_scale", &registry);
}
