//! E8 — Fig 3c: bytes served over time ("the usual diurnal patterns").
//!
//! Prints TB/hour aggregated by hour of day, in GMT and in requesters'
//! local time. The paper's signature: the local-time curve shows a strong
//! evening peak; the GMT curve is flattened by timezone spread.

use netsession_analytics::sizes;
use netsession_bench::runner::{
    parse_args, run_default, write_metrics_sidecar, write_trace_sidecar,
};
use netsession_core::time::TRACE_MONTH;
use netsession_world::geo::WORLD_COUNTRIES;

fn main() {
    let args = parse_args();
    eprintln!("# fig3c: peers={} downloads={}", args.peers, args.downloads);
    let out = run_default(&args);
    write_metrics_sidecar("fig3c", &out.metrics);
    write_trace_sidecar("fig3c", &out.trace);
    let hours = TRACE_MONTH.as_hours_f64() as usize + 48;
    let (gmt, local) = sizes::fig3c(&out.dataset, hours, |c| {
        WORLD_COUNTRIES[c as usize].tz_offset
    });

    // Collapse to hour-of-day profiles.
    let mut gmt_prof = [0.0f64; 24];
    let mut local_prof = [0.0f64; 24];
    for (h, v) in gmt.iter().enumerate() {
        gmt_prof[h % 24] += v;
    }
    for (h, v) in local.iter().enumerate() {
        local_prof[h % 24] += v;
    }

    println!("Fig 3c: bytes served by hour of day (TB, summed over the month)");
    println!("{:>6}{:>12}{:>12}", "hour", "GMT", "local");
    for h in 0..24 {
        println!("{:>6}{:>12.3}{:>12.3}", h, gmt_prof[h], local_prof[h]);
    }
    let spread = |v: &[f64; 24]| {
        let max = v.iter().cloned().fold(0.0, f64::max);
        let min = v.iter().cloned().fold(f64::INFINITY, f64::min);
        max / min.max(1e-9)
    };
    println!();
    println!(
        "peak/trough ratio: GMT {:.1}x, local {:.1}x (paper: local curve visibly more diurnal)",
        spread(&gmt_prof),
        spread(&local_prof)
    );
    println!(
        "total served: {:.2} TB over {:.0} days",
        gmt.iter().sum::<f64>(),
        TRACE_MONTH.as_hours_f64() / 24.0
    );
}
