//! E20 — §6.2: mobility-related churn.
//!
//! Paper: 80.6 % of GUIDs connected from one AS, 13.4 % from two, 6 % from
//! more; 77 % stayed within 10 km; the control plane receives 20,922 new
//! connections per minute on average.

use netsession_analytics::mobility;
use netsession_bench::runner::{
    parse_args, run_default, write_metrics_sidecar, write_trace_sidecar,
};

fn main() {
    let args = parse_args();
    eprintln!(
        "# mobility: peers={} downloads={}",
        args.peers, args.downloads
    );
    let out = run_default(&args);
    write_metrics_sidecar("mobility", &out.metrics);
    write_trace_sidecar("mobility", &out.trace);
    let s = mobility::summarize(&out.dataset);

    println!("§6.2 mobility summary ({} GUIDs observed)", s.guids);
    println!("{:<28}{:>10}{:>12}", "metric", "paper", "measured");
    println!(
        "{:<28}{:>10}{:>11.1}%",
        "single AS",
        "80.6%",
        s.single_as * 100.0
    );
    println!(
        "{:<28}{:>10}{:>11.1}%",
        "two ASes",
        "13.4%",
        s.two_as * 100.0
    );
    println!(
        "{:<28}{:>10}{:>11.1}%",
        "more than two",
        "6.0%",
        s.more_as * 100.0
    );
    println!(
        "{:<28}{:>10}{:>11.1}%",
        "within 10 km",
        "77%",
        s.within_10km * 100.0
    );
    let scale = 25_941_122.0 / args.peers as f64;
    println!(
        "{:<28}{:>10}{:>12.1}   (×{:.0} scale → {:.0} at paper scale)",
        "new connections / minute",
        "20,922",
        s.connections_per_minute,
        scale,
        s.connections_per_minute * scale
    );
}
