//! E6 — Fig 3a: request distribution by object size.
//!
//! Paper shape: peer-assisted requests are strongly biased toward large
//! objects — 82 % of them exceed 500 MB — while infrastructure-only
//! requests skew small.

use netsession_analytics::sizes;
use netsession_bench::runner::{
    parse_args, run_default, write_metrics_sidecar, write_trace_sidecar,
};

fn main() {
    let args = parse_args();
    eprintln!("# fig3a: peers={} downloads={}", args.peers, args.downloads);
    let out = run_default(&args);
    write_metrics_sidecar("fig3a", &out.metrics);
    write_trace_sidecar("fig3a", &out.trace);
    let cdfs = sizes::fig3a(&out.dataset);

    println!("Fig 3a: CDF of requests by object size (GB)");
    println!(
        "{:>12}{:>14}{:>10}{:>16}",
        "size (GB)", "infra-only", "all", "peer-assisted"
    );
    for x in [0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0] {
        println!(
            "{:>12}{:>13.0}%{:>9.0}%{:>15.0}%",
            x,
            cdfs.infra_only.fraction_at(x) * 100.0,
            cdfs.all.fraction_at(x) * 100.0,
            cdfs.peer_assisted.fraction_at(x) * 100.0
        );
    }
    println!();
    println!(
        "peer-assisted requests >500MB: {:.0}% (paper: 82%)",
        sizes::p2p_large_request_fraction(&out.dataset) * 100.0
    );
    println!(
        "medians (GB): infra-only {:.3}, all {:.3}, peer-assisted {:.3}",
        cdfs.infra_only.median(),
        cdfs.all.median(),
        cdfs.peer_assisted.median()
    );
}
