//! A1 — locality-aware selection vs random selection.
//!
//! The paper argues (§3.7, §6.1, citing Choffnes & Bustamante) that a
//! simple locality-aware selection strategy avoids burdening ISPs. This
//! ablation turns the locality ladder off and measures intra-AS share and
//! cross-region traffic.

use netsession_analytics::astraffic;
use netsession_bench::runner::{
    config_for, parse_args, write_metrics_sidecar, write_trace_sidecar,
};
use netsession_hybrid::HybridSim;
use netsession_obs::MetricsRegistry;

fn main() {
    let metrics = MetricsRegistry::new();
    let args = parse_args();
    eprintln!(
        "# ablate_locality: peers={} downloads={}",
        args.peers, args.downloads
    );

    let mut rows = Vec::new();
    let mut baseline_trace = None;
    for (label, locality) in [("locality ladder ON", true), ("random selection", false)] {
        let mut cfg = config_for(&args);
        cfg.locality_aware = locality;
        // The ladder only matters when there are more candidates than
        // slots; return few peers so selection is actually selective.
        cfg.peers_returned = 8;
        let out = HybridSim::run_config_with(cfg, &metrics);
        if baseline_trace.is_none() {
            baseline_trace = Some(out.trace.clone());
        }
        let t = astraffic::build(&out.dataset);
        // Cross-country share of p2p bytes.
        let mut cross_country = 0u64;
        let mut total = 0u64;
        for rec in &out.dataset.transfers {
            total += rec.bytes.bytes();
            if rec.from_country != rec.to_country {
                cross_country += rec.bytes.bytes();
            }
        }
        rows.push((
            label,
            t.intra_as_share() * 100.0,
            cross_country as f64 / total.max(1) as f64 * 100.0,
            out.stats.p2p_bytes as f64 / 1e12,
        ));
    }

    println!("A1: impact of locality-aware peer selection");
    println!(
        "{:<22}{:>14}{:>18}{:>14}",
        "policy", "intra-AS %", "cross-country %", "p2p TB"
    );
    for (label, intra, cross, tb) in &rows {
        println!("{label:<22}{intra:>14.1}{cross:>18.1}{tb:>14.2}");
    }
    println!();
    println!(
        "expectation: locality ON keeps more traffic intra-AS and in-country \
         (ISP-friendly), at equal p2p volume"
    );

    write_metrics_sidecar("ablate_locality", &metrics);
    if let Some(trace) = &baseline_trace {
        write_trace_sidecar("ablate_locality", trace);
    }
}
