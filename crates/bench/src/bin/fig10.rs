//! E15 — Fig 10: p2p bytes uploaded vs downloaded per AS.
//!
//! Paper shape: light ASes scatter with large relative imbalances; the
//! heavy uploaders cluster near the diagonal — "they usually receive as
//! much as they send".

use netsession_analytics::astraffic;
use netsession_analytics::stats::Cdf;
use netsession_bench::runner::{
    parse_args, run_default, write_metrics_sidecar, write_trace_sidecar,
};

fn main() {
    let args = parse_args();
    eprintln!("# fig10: peers={} downloads={}", args.peers, args.downloads);
    let out = run_default(&args);
    write_metrics_sidecar("fig10", &out.metrics);
    write_trace_sidecar("fig10", &out.trace);
    let t = astraffic::build(&out.dataset);
    let heavy = t.heavy_uploaders(0.02);
    let scatter = t.fig10(&heavy);

    println!("Fig 10: per-AS uploaded vs downloaded inter-AS bytes (sample)");
    println!("{:>16}{:>16}{:>8}", "uploaded", "downloaded", "heavy");
    for (up, down, is_heavy) in scatter.iter().rev().take(20) {
        println!("{:>16}{:>16}{:>8}", up, down, is_heavy);
    }
    println!("… {} ASes total in the scatter", scatter.len());
    println!();

    let ratios = t.heavy_balance_ratios(&heavy);
    if !ratios.is_empty() {
        let cdf = Cdf::from_values(ratios.clone());
        println!(
            "heavy-uploader balance ratio up/down: median {:.2}, p10 {:.2}, p90 {:.2}",
            cdf.median(),
            cdf.percentile(10.0),
            cdf.percentile(90.0)
        );
        let near =
            ratios.iter().filter(|r| **r > 0.5 && **r < 2.0).count() as f64 / ratios.len() as f64;
        println!(
            "heavy uploaders within 2x of balance: {:.0}% (paper: heavy traffic is well balanced)",
            near * 100.0
        );
    }
    // Light-AS imbalance for contrast.
    let light_ratios: Vec<f64> = scatter
        .iter()
        .filter(|(up, down, h)| !h && *up > 0 && *down > 0)
        .map(|(up, down, _)| *up as f64 / *down as f64)
        .collect();
    if !light_ratios.is_empty() {
        let near = light_ratios
            .iter()
            .filter(|r| **r > 0.5 && **r < 2.0)
            .count() as f64
            / light_ratios.len() as f64;
        println!("light uploaders within 2x of balance: {:.0}%", near * 100.0);
    }
}
