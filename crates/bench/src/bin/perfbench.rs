//! `perfbench` — the hot-path performance campaign harness behind
//! `results/bench/BENCH_10.json` (see `docs/PERFORMANCE.md`).
//!
//! Seven micro/meso families plus a headline macro run:
//!
//! * `event_queue` — timing wheel vs. the binary-heap oracle, both as a
//!   micro drain and as a full same-config sim A/B whose outputs are
//!   asserted bit-identical before either timing is reported.
//! * `hashing` — the in-tree FxHasher vs. std's SipHash-1-3, raw hashing
//!   and a map insert/lookup workload.
//! * `alloc_churn` — allocations per operation on paths the campaign
//!   de-churned (flownet scratch reuse, snapshot-reusing scrapes, the
//!   geo-db borrowed-record fast path), counted by a global allocator.
//! * `obs` — instrumentation cost: the same sim with tracing at every
//!   download, the default 1-in-1024 sampling, and effectively off, plus
//!   scrape-variant timings.
//! * `scale` — the sharded million-peer runner (`run_scaled`): sequential
//!   oracle vs. parallel at the same shard count, outputs asserted
//!   identical before either timing is reported, plus peak RSS for the
//!   fits-in-laptop-RAM claim. Full mode runs 1M peers × 31 days. Records
//!   the machine's core count and the shard→region assignment so the
//!   speedup number carries its own context.
//! * `shard_profile` — the shard profiler's deterministic load-imbalance
//!   summary of the same scaled runs: per-window critical path in events,
//!   the implied speedup ceiling, the predicted ceiling after splitting
//!   the busiest shard, and max-over-mean skew. The sequential and
//!   parallel profiles are asserted equal before being reported.
//! * `timeseries` — the windowed-telemetry sampling cost: the parallel
//!   scaled run with per-shard time-series accumulation on (the default)
//!   vs. off, reports asserted byte-identical before the overhead is
//!   reported, plus the merged catalog size and how many alert-rule
//!   transitions the `AlertEngine` raises replaying it.
//!
//! Modes:
//!
//! ```text
//! perfbench                          full campaign, writes results/bench/BENCH_10.json
//! perfbench --smoke [--out PATH]     seconds-scale run (CI), writes PATH or stdout
//! perfbench --check COMMITTED.json   smoke run + schema lint + coarse regression
//!                                    gate against the committed snapshot
//! perfbench --trend [--require N]    cross-PR trajectory table from every
//!                                    results/bench/BENCH_*.json; fails if the
//!                                    snapshot for issue N is missing or stale
//! perfbench --baseline-ms N          record an externally measured seed-commit
//!                                    headline wall time for the speedup field
//! ```
//!
//! Wall-clock numbers are machine-dependent and land in a JSON that is
//! *not* byte-stable — which is why they live under `results/bench/` and
//! not next to the deterministic experiment outputs. The `--check` gate
//! is deliberately generous (factor-of-five) so CI only fails on real
//! regressions, not scheduler noise.

use netsession_bench::runner::{config_for, ExperimentArgs};
use netsession_core::fxhash::{FxBuildHasher, FxHasher};
use netsession_core::hash::Sha256;
use netsession_core::rng::DetRng;
use netsession_core::time::SimTime;
use netsession_core::units::Bandwidth;
use netsession_hybrid::alerts::replay_standard_alerts;
use netsession_hybrid::{
    run_scaled, run_scaled_profiled, HybridSim, ScaledConfig, Scenario, ScenarioConfig, SimOutput,
};
use netsession_logs::geodb::{EdgeScapeDb, GeoInfo, GeoInfoRef};
use netsession_obs::json::{parse, push_str_literal, JsonValue};
use netsession_obs::profile::ShardProfiler;
use netsession_obs::MetricsRegistry;
use netsession_sim::flownet::FlowNet;
use netsession_sim::queue::{BinaryHeapSched, EventSched, TimingWheel};
use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::hash_map::{DefaultHasher, RandomState};
use std::collections::HashMap;
use std::hash::{BuildHasher, Hasher};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Counting allocator: every heap operation in the process ticks these, so
// steady-state `allocs/op` deltas are exact, not sampled.

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocation count and bytes requested during `f`.
fn alloc_delta<T>(f: impl FnOnce() -> T) -> (u64, u64, T) {
    let a0 = ALLOCS.load(Ordering::Relaxed);
    let b0 = ALLOC_BYTES.load(Ordering::Relaxed);
    let out = f();
    (
        ALLOCS.load(Ordering::Relaxed) - a0,
        ALLOC_BYTES.load(Ordering::Relaxed) - b0,
        out,
    )
}

/// Peak resident set (VmHWM) in KiB, when /proc is available.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
}

/// Best-of-`reps` wall time of `f`, in milliseconds.
fn best_of_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    best
}

// ---------------------------------------------------------------------------
// event_queue family

/// Bulk schedule + drain of `n` uniformly random timestamps in a 30-day
/// window: ns/event for one backend.
fn queue_bulk_ns<S: EventSched<u64> + Default>(n: usize) -> f64 {
    let mut rng = DetRng::seeded(0x716265);
    let month_us = 30 * 24 * 3600 * 1_000_000u64;
    let times: Vec<u64> = (0..n).map(|_| rng.next_u64() % month_us).collect();
    let t = Instant::now();
    let mut q = S::default();
    for (i, &at) in times.iter().enumerate() {
        q.push(SimTime(at), i as u64, i as u64);
    }
    let mut acc = 0u64;
    while let Some((_, _, e)) = q.pop() {
        acc ^= e;
    }
    black_box(acc);
    t.elapsed().as_nanos() as f64 / n as f64
}

/// Steady-state pop-then-reschedule at a deep queue — the shape of the sim's
/// hot loop (queue depth ~780 k on the headline run): ns/op.
fn queue_steady_ns<S: EventSched<u64> + Default>(depth: usize, ops: usize) -> f64 {
    let mut rng = DetRng::seeded(0x716266);
    let mut q = S::default();
    let mut seq = 0u64;
    for _ in 0..depth {
        q.push(SimTime(rng.next_u64() % 1_000_000_000), seq, seq);
        seq += 1;
    }
    let t = Instant::now();
    let mut acc = 0u64;
    for _ in 0..ops {
        let (at, _, e) = q.pop().unwrap();
        acc ^= e;
        // Re-schedule a follow-up a short, varied delay ahead, like the
        // transfer-progress and session events do.
        q.push(
            SimTime(at.as_micros() + 1 + rng.next_u64() % 60_000_000),
            seq,
            seq,
        );
        seq += 1;
    }
    black_box(acc);
    t.elapsed().as_nanos() as f64 / ops as f64
}

/// Digest of everything a run is judged by: the per-download ledger plus
/// the deterministic metrics snapshot. Two backends must agree on this
/// byte-for-byte before their timings are comparable.
fn output_digest(out: &SimOutput, registry: &MetricsRegistry) -> String {
    let mut h = Sha256::new();
    for d in &out.dataset.downloads {
        h.update(format!("{d:?}").as_bytes());
    }
    h.update(registry.snapshot_json().as_bytes());
    format!("{:016x}", h.finalize().prefix_u64())
}

struct MacroAb {
    wheel_ms: f64,
    heap_ms: f64,
    events: u64,
    digest: String,
}

/// Interleaved wheel/heap A/B of the same scenario config. Panics if the
/// two backends' outputs differ in any judged byte.
fn macro_ab(cfg: &ScenarioConfig, reps: usize) -> MacroAb {
    let mut wheel_ms = f64::INFINITY;
    let mut heap_ms = f64::INFINITY;
    let mut events = 0u64;
    let mut digest = String::new();
    for _ in 0..reps {
        let reg_w = MetricsRegistry::new();
        let t = Instant::now();
        let out_w = HybridSim::new(Scenario::build(cfg.clone()))
            .with_metrics(&reg_w)
            .run();
        wheel_ms = wheel_ms.min(t.elapsed().as_secs_f64() * 1e3);

        let reg_h = MetricsRegistry::new();
        let t = Instant::now();
        let out_h = HybridSim::new(Scenario::build(cfg.clone()))
            .with_metrics(&reg_h)
            .run_with_oracle_queue();
        heap_ms = heap_ms.min(t.elapsed().as_secs_f64() * 1e3);

        let dw = output_digest(&out_w, &reg_w);
        let dh = output_digest(&out_h, &reg_h);
        assert_eq!(dw, dh, "wheel and heap backends diverged — oracle violated");
        events = reg_w.scrape().counter("sim.events_processed");
        digest = dw;
    }
    MacroAb {
        wheel_ms,
        heap_ms,
        events,
        digest,
    }
}

// ---------------------------------------------------------------------------
// hashing family

fn hash_u64_ns<H: Hasher + Default>(keys: &[u64]) -> f64 {
    let t = Instant::now();
    let mut acc = 0u64;
    for &k in keys {
        let mut h = H::default();
        h.write_u64(k);
        acc ^= h.finish();
    }
    black_box(acc);
    t.elapsed().as_nanos() as f64 / keys.len() as f64
}

fn map_workload_ns<S: BuildHasher>(build: S, inserts: usize, lookups: usize) -> f64 {
    let mut rng = DetRng::seeded(0x686173);
    let keys: Vec<u128> = (0..inserts).map(|_| rng.next_u64() as u128).collect();
    let t = Instant::now();
    let mut m: HashMap<u128, u64, S> = HashMap::with_hasher(build);
    for (i, &k) in keys.iter().enumerate() {
        m.insert(k, i as u64);
    }
    let mut acc = 0u64;
    for i in 0..lookups {
        acc ^= m.get(&keys[i % keys.len()]).copied().unwrap_or(0);
    }
    black_box(acc);
    t.elapsed().as_nanos() as f64 / (inserts + lookups) as f64
}

// ---------------------------------------------------------------------------
// alloc_churn family

/// Flownet recompute at a fixed swarm shape: (ns/op, allocs/op) in steady
/// state — the pooled scratch should make this allocation-free.
fn flownet_churn(flows: usize, iters: usize) -> (f64, f64) {
    let mut rng = DetRng::seeded(1);
    let mut net = FlowNet::new();
    let nodes: Vec<_> = (0..flows / 4 + 2)
        .map(|_| {
            net.add_node(
                Bandwidth::from_mbps(rng.range_f64(0.5, 10.0)),
                Bandwidth::from_mbps(rng.range_f64(5.0, 100.0)),
            )
        })
        .collect();
    for _ in 0..flows {
        let s = nodes[rng.index(nodes.len())];
        let mut d = nodes[rng.index(nodes.len())];
        while d == s {
            d = nodes[rng.index(nodes.len())];
        }
        net.add_flow(s, d, None);
    }
    for _ in 0..3 {
        net.recompute(); // warm the scratch pools
    }
    let t = Instant::now();
    let (allocs, _, _) = alloc_delta(|| {
        for _ in 0..iters {
            net.recompute();
        }
    });
    (
        t.elapsed().as_nanos() as f64 / iters as f64,
        allocs as f64 / iters as f64,
    )
}

/// Geo-db login-storm shape: the same sites re-observed constantly.
/// Returns ((record ns/op, record allocs/op), (insert ns/op, insert allocs/op)).
fn geodb_churn(iters: usize) -> ((f64, f64), (f64, f64)) {
    const CODES: [&str; 4] = ["US", "DE", "BR", "JP"];
    const CITIES: [&str; 4] = ["cambridge", "berlin", "recife", "osaka"];
    let info = |i: usize| GeoInfoRef {
        country_code: CODES[i % 4],
        city: CITIES[i % 4],
        lat: 42.0 + (i % 7) as f64,
        lon: -71.0 + (i % 11) as f64,
        tz_offset: -5,
        asn: netsession_core::id::AsNumber(7922 + (i % 4) as u32),
        country_idx: (i % 4) as u16,
        region_idx: (i % 4) as u8,
    };
    let mut db = EdgeScapeDb::new();
    for i in 0..256 {
        db.record(i as u32, &info(i)); // populate: all IPs known
    }
    let t = Instant::now();
    let (rec_allocs, _, _) = alloc_delta(|| {
        for i in 0..iters {
            db.record((i % 256) as u32, &info(i % 256));
        }
    });
    let rec = (
        t.elapsed().as_nanos() as f64 / iters as f64,
        rec_allocs as f64 / iters as f64,
    );

    let t = Instant::now();
    let (ins_allocs, _, _) = alloc_delta(|| {
        for i in 0..iters {
            let r = info(i % 256);
            db.insert(
                (i % 256) as u32,
                GeoInfo {
                    country_code: r.country_code.to_string(),
                    city: r.city.to_string(),
                    lat: r.lat,
                    lon: r.lon,
                    tz_offset: r.tz_offset,
                    asn: r.asn,
                    country_idx: r.country_idx,
                    region_idx: r.region_idx,
                },
            );
        }
    });
    let ins = (
        t.elapsed().as_nanos() as f64 / iters as f64,
        ins_allocs as f64 / iters as f64,
    );
    (rec, ins)
}

/// Scrape variants against a registry populated by a real run:
/// fresh `scrape()` per call vs. snapshot-reusing `scrape_into` vs. the
/// alert loop's scalars-only path. Returns [(ns/op, allocs/op); 3].
fn scrape_churn(registry: &MetricsRegistry, iters: usize) -> [(f64, f64); 3] {
    let mut out = [(0.0, 0.0); 3];

    let t = Instant::now();
    let (a, _, _) = alloc_delta(|| {
        for _ in 0..iters {
            black_box(registry.scrape().counters.len());
        }
    });
    out[0] = (
        t.elapsed().as_nanos() as f64 / iters as f64,
        a as f64 / iters as f64,
    );

    let mut snap = registry.scrape();
    let t = Instant::now();
    let (a, _, _) = alloc_delta(|| {
        for _ in 0..iters {
            registry.scrape_into(&mut snap);
        }
    });
    out[1] = (
        t.elapsed().as_nanos() as f64 / iters as f64,
        a as f64 / iters as f64,
    );

    let t = Instant::now();
    let (a, _, _) = alloc_delta(|| {
        for _ in 0..iters {
            registry.scrape_scalars_into(&mut snap);
        }
    });
    out[2] = (
        t.elapsed().as_nanos() as f64 / iters as f64,
        a as f64 / iters as f64,
    );
    out
}

// ---------------------------------------------------------------------------
// obs family

/// Wall time of the same sim with tracing at every download, the default
/// sampling, and effectively off. Metrics counters stay on in all three —
/// they are load-bearing for the alert engine and cannot be disabled.
fn obs_ab(base: &ScenarioConfig, reps: usize) -> [f64; 3] {
    let run_at = |sample_every: u64| {
        let mut cfg = base.clone();
        cfg.obs.trace_sample_every = sample_every;
        best_of_ms(reps, || {
            black_box(HybridSim::run_config(cfg.clone()).stats.completed);
        })
    };
    [run_at(1), run_at(1024), run_at(u64::MAX / 4)]
}

// ---------------------------------------------------------------------------
// JSON assembly (hand-rolled, like every artifact writer in this repo)

struct Json {
    buf: String,
}

impl Json {
    fn new() -> Self {
        Json {
            buf: String::from("{\n"),
        }
    }
    fn key(&mut self, indent: usize, key: &str) {
        let len = self.buf.len();
        if !self.buf.ends_with("{\n") && !self.buf.ends_with("[\n") && len > 2 {
            let trimmed = self.buf.trim_end_matches('\n');
            if !trimmed.ends_with('{') && !trimmed.ends_with('[') && !trimmed.ends_with(',') {
                self.buf.truncate(trimmed.len());
                self.buf.push_str(",\n");
            }
        }
        self.buf.push_str(&"  ".repeat(indent));
        push_str_literal(&mut self.buf, key);
        self.buf.push_str(": ");
    }
    fn num(&mut self, indent: usize, key: &str, v: f64) {
        self.key(indent, key);
        if v.fract() == 0.0 && v.abs() < 1e15 {
            self.buf.push_str(&format!("{}\n", v as i64));
        } else {
            self.buf.push_str(&format!("{v:.3}\n"));
        }
    }
    fn str(&mut self, indent: usize, key: &str, v: &str) {
        self.key(indent, key);
        push_str_literal(&mut self.buf, v);
        self.buf.push('\n');
    }
    fn open(&mut self, indent: usize, key: &str) {
        self.key(indent, key);
        self.buf.push_str("{\n");
    }
    fn close(&mut self, indent: usize) {
        self.buf.push_str(&"  ".repeat(indent));
        self.buf.push_str("}\n");
    }
    fn finish(mut self) -> String {
        self.buf.push_str("}\n");
        self.buf
    }
}

// ---------------------------------------------------------------------------

struct Campaign {
    smoke: bool,
    baseline_ms: Option<f64>,
    current_ms: Option<f64>,
    baseline_commit: String,
}

fn run_campaign(c: &Campaign) -> String {
    let scale = |n: usize| if c.smoke { n / 10 } else { n };

    eprintln!("# event_queue family");
    let bulk_n = scale(200_000).max(5_000);
    let wheel_bulk = (0..3).fold(f64::INFINITY, |m, _| {
        m.min(queue_bulk_ns::<TimingWheel<u64>>(bulk_n))
    });
    let heap_bulk = (0..3).fold(f64::INFINITY, |m, _| {
        m.min(queue_bulk_ns::<BinaryHeapSched<u64>>(bulk_n))
    });
    let depth = scale(500_000).max(20_000);
    let ops = scale(500_000).max(20_000);
    let wheel_steady = (0..3).fold(f64::INFINITY, |m, _| {
        m.min(queue_steady_ns::<TimingWheel<u64>>(depth, ops))
    });
    let heap_steady = (0..3).fold(f64::INFINITY, |m, _| {
        m.min(queue_steady_ns::<BinaryHeapSched<u64>>(depth, ops))
    });

    let macro_args = if c.smoke {
        ExperimentArgs {
            peers: 2_000,
            downloads: 3_000,
            ..ExperimentArgs::default()
        }
    } else {
        ExperimentArgs::default()
    };
    let ab = macro_ab(&config_for(&macro_args), if c.smoke { 1 } else { 2 });
    eprintln!(
        "#   wheel {:.0} ms vs heap {:.0} ms (digest {})",
        ab.wheel_ms, ab.heap_ms, ab.digest
    );

    eprintln!("# hashing family");
    let mut rng = DetRng::seeded(0x6b657973);
    let keys: Vec<u64> = (0..scale(1_000_000).max(50_000))
        .map(|_| rng.next_u64())
        .collect();
    let fx_ns = (0..3).fold(f64::INFINITY, |m, _| m.min(hash_u64_ns::<FxHasher>(&keys)));
    let sip_ns = (0..3).fold(f64::INFINITY, |m, _| {
        m.min(hash_u64_ns::<DefaultHasher>(&keys))
    });
    let map_n = scale(100_000).max(10_000);
    let fx_map = (0..3).fold(f64::INFINITY, |m, _| {
        m.min(map_workload_ns(FxBuildHasher::default(), map_n, map_n * 4))
    });
    let sip_map = (0..3).fold(f64::INFINITY, |m, _| {
        m.min(map_workload_ns(RandomState::new(), map_n, map_n * 4))
    });

    eprintln!("# alloc_churn family");
    let (fn_ns, fn_allocs) = flownet_churn(1_000, if c.smoke { 20 } else { 100 });
    let ((rec_ns, rec_allocs), (ins_ns, ins_allocs)) = geodb_churn(scale(200_000).max(20_000));
    // A registry shaped like a real run's: reuse the macro A/B's registry.
    let reg = MetricsRegistry::new();
    let _ = HybridSim::new(Scenario::build(config_for(&ExperimentArgs {
        peers: 2_000,
        downloads: 3_000,
        ..ExperimentArgs::default()
    })))
    .with_metrics(&reg)
    .run();
    let scrapes = scrape_churn(&reg, scale(20_000).max(2_000));

    eprintln!("# obs family");
    let obs_args = if c.smoke {
        ExperimentArgs {
            peers: 2_000,
            downloads: 3_000,
            ..ExperimentArgs::default()
        }
    } else {
        ExperimentArgs {
            peers: 12_000,
            downloads: 15_000,
            ..ExperimentArgs::default()
        }
    };
    let [obs_all, obs_default, obs_off] =
        obs_ab(&config_for(&obs_args), if c.smoke { 1 } else { 2 });

    eprintln!("# scale family");
    let scale_cfg = if c.smoke {
        ScaledConfig::smoke()
    } else {
        ScaledConfig {
            peers: 1_000_000,
            objects: 20_000,
            days: 31,
            shards: 16,
            ..ScaledConfig::default()
        }
    };
    let t = Instant::now();
    let (scaled_seq, prof_seq) =
        run_scaled_profiled(&scale_cfg, false, None, Some(ShardProfiler::new()));
    let scale_seq_ms = t.elapsed().as_secs_f64() * 1e3;
    let t = Instant::now();
    let (scaled_par, prof_par) =
        run_scaled_profiled(&scale_cfg, true, None, Some(ShardProfiler::new()));
    let scale_par_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        scaled_seq, scaled_par,
        "sharded parallel run diverged from the sequential oracle"
    );
    let prof_seq = prof_seq.expect("profiler attached");
    let prof_par = prof_par.expect("profiler attached");
    assert_eq!(
        prof_seq.exec(),
        prof_par.exec(),
        "deterministic profile channel diverged across execution modes"
    );
    let imb = prof_seq.exec().stats();
    // VmHWM is a process-wide high-water mark; earlier families are far
    // smaller than the scaled run, so this is effectively its footprint.
    let scale_rss_kb = peak_rss_kb().unwrap_or(0);
    eprintln!(
        "#   {} peers x {} days: oracle {:.0} ms vs {}-shard parallel {:.0} ms, outputs identical, peak RSS {} KiB",
        scale_cfg.peers, scale_cfg.days, scale_seq_ms, scale_cfg.shards, scale_par_ms, scale_rss_kb
    );

    eprintln!("# timeseries family");
    // Dedicated profiler-free A/B — the scale family's runs carry a
    // ShardProfiler, which would inflate the sampling-on side. The report
    // must not change: telemetry is a sidecar, never an input to the
    // simulation.
    let ts = scaled_par
        .timeseries
        .as_ref()
        .expect("default config samples timeseries");
    let off_cfg = ScaledConfig {
        timeseries: false,
        ..scale_cfg.clone()
    };
    let t = Instant::now();
    let scaled_on = run_scaled(&scale_cfg, true, None);
    let ts_on_ms = t.elapsed().as_secs_f64() * 1e3;
    let t = Instant::now();
    let scaled_off = run_scaled(&off_cfg, true, None);
    let ts_off_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        scaled_on.report(),
        scaled_off.report(),
        "turning telemetry sampling off changed the deterministic report"
    );
    assert!(scaled_off.timeseries.is_none());
    assert_eq!(
        scaled_on, scaled_par,
        "re-running the same config diverged — determinism violated"
    );
    let ts_overhead_pct = (ts_on_ms / ts_off_ms - 1.0) * 100.0;
    let ts_raised = replay_standard_alerts(ts)
        .iter()
        .filter(|d| d.event.raised)
        .count();
    eprintln!(
        "#   sampling on {:.0} ms vs off {:.0} ms ({:+.1}%), {} windows x {} metrics, {} raised",
        ts_on_ms,
        ts_off_ms,
        ts_overhead_pct,
        ts.windows,
        ts.metrics.len(),
        ts_raised
    );

    eprintln!("# headline macro");
    // The full-mode headline numbers are the macro A/B's wheel runs at the
    // default scale; smoke reuses its smaller macro run.
    let headline_ms = ab.wheel_ms;
    let events_per_sec = ab.events as f64 / (headline_ms / 1e3);
    let rss_kb = peak_rss_kb().unwrap_or(0);

    let mut j = Json::new();
    j.str(1, "schema", "netsession-perfbench/1");
    j.num(1, "issue", 10.0);
    j.str(1, "mode", if c.smoke { "smoke" } else { "full" });
    j.open(1, "hardware");
    j.str(2, "os", std::env::consts::OS);
    j.str(2, "arch", std::env::consts::ARCH);
    j.num(
        2,
        "cpus",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(0) as f64,
    );
    j.str(
        2,
        "note",
        "shared container; ±20% run-to-run noise observed — compare ratios, not absolute times",
    );
    j.close(1);
    j.str(
        1,
        "methodology",
        "best-of-N wall clock (N=3 micro, N=2 macro), interleaved A/B for backend \
         comparisons, outputs asserted bit-identical before timings are reported; \
         allocs counted by a global allocator; peak RSS from /proc VmHWM",
    );
    j.open(1, "families");

    j.open(2, "event_queue");
    j.num(3, "bulk_events", bulk_n as f64);
    j.num(3, "wheel_bulk_ns_per_event", wheel_bulk);
    j.num(3, "heap_bulk_ns_per_event", heap_bulk);
    j.num(3, "steady_depth", depth as f64);
    j.num(3, "wheel_steady_ns_per_op", wheel_steady);
    j.num(3, "heap_steady_ns_per_op", heap_steady);
    j.num(3, "macro_wheel_ms", ab.wheel_ms);
    j.num(3, "macro_heap_ms", ab.heap_ms);
    j.num(3, "macro_speedup", ab.heap_ms / ab.wheel_ms);
    j.str(3, "macro_output_digest", &ab.digest);
    j.close(2);

    j.open(2, "hashing");
    j.num(3, "keys", keys.len() as f64);
    j.num(3, "fx_hash_u64_ns", fx_ns);
    j.num(3, "sip_hash_u64_ns", sip_ns);
    j.num(3, "hash_speedup", sip_ns / fx_ns);
    j.num(3, "fx_map_ns_per_op", fx_map);
    j.num(3, "sip_map_ns_per_op", sip_map);
    j.num(3, "map_speedup", sip_map / fx_map);
    j.close(2);

    j.open(2, "alloc_churn");
    j.num(3, "flownet_recompute_ns", fn_ns);
    j.num(3, "flownet_recompute_allocs_per_op", fn_allocs);
    j.num(3, "geodb_record_ns", rec_ns);
    j.num(3, "geodb_record_allocs_per_op", rec_allocs);
    j.num(3, "geodb_insert_ns", ins_ns);
    j.num(3, "geodb_insert_allocs_per_op", ins_allocs);
    j.num(3, "scrape_fresh_ns", scrapes[0].0);
    j.num(3, "scrape_fresh_allocs_per_op", scrapes[0].1);
    j.num(3, "scrape_into_ns", scrapes[1].0);
    j.num(3, "scrape_into_allocs_per_op", scrapes[1].1);
    j.num(3, "scrape_scalars_ns", scrapes[2].0);
    j.num(3, "scrape_scalars_allocs_per_op", scrapes[2].1);
    j.close(2);

    j.open(2, "obs");
    j.num(3, "peers", obs_args.peers as f64);
    j.num(3, "trace_every_download_ms", obs_all);
    j.num(3, "trace_default_sampling_ms", obs_default);
    j.num(3, "trace_off_ms", obs_off);
    j.num(3, "tracing_overhead_pct", (obs_all / obs_off - 1.0) * 100.0);
    j.close(2);

    j.open(2, "scale");
    j.num(3, "peers", scale_cfg.peers as f64);
    j.num(3, "objects", scale_cfg.objects as f64);
    j.num(3, "days", scale_cfg.days as f64);
    j.num(3, "shards", scale_cfg.shards as f64);
    j.num(3, "windows", scaled_par.windows as f64);
    j.num(3, "events", scaled_par.events as f64);
    j.num(3, "cross_messages", scaled_par.cross_messages as f64);
    j.num(3, "downloads", scaled_par.summary.downloads as f64);
    j.num(3, "seq_wall_ms", scale_seq_ms);
    j.num(3, "par_wall_ms", scale_par_ms);
    j.num(3, "parallel_speedup", scale_seq_ms / scale_par_ms);
    j.num(
        3,
        "events_per_sec",
        scaled_par.events as f64 / (scale_par_ms / 1e3),
    );
    j.num(3, "peak_rss_kb", scale_rss_kb as f64);
    // 1.0 = the seq/par assert_eq above passed (it aborts otherwise).
    j.num(3, "outputs_identical", 1.0);
    // Context for parallel_speedup: how many cores the measurement had,
    // and which regions each shard owned. A speedup of 0.79 on 1 CPU and
    // on 16 CPUs mean very different things.
    j.num(
        3,
        "cpus",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(0) as f64,
    );
    let shard_regions: Vec<String> = scaled_par
        .shard_labels
        .iter()
        .enumerate()
        .map(|(k, l)| format!("{k}={l}"))
        .collect();
    j.str(3, "shard_regions", &shard_regions.join(";"));
    j.close(2);

    j.open(2, "shard_profile");
    j.num(3, "shards", imb.shards as f64);
    j.num(3, "windows", imb.windows as f64);
    j.num(3, "events", imb.events as f64);
    j.num(3, "critical_path_events", imb.crit_events as f64);
    j.num(3, "speedup_ceiling", imb.speedup_ceiling());
    j.num(3, "split_busiest_ceiling", imb.split_busiest_ceiling());
    j.num(3, "skew", imb.skew());
    // 1.0 = the seq/par profile assert_eq above passed.
    j.num(3, "det_stream_identical", 1.0);
    j.close(2);

    j.open(2, "timeseries");
    j.num(3, "windows", ts.windows as f64);
    j.num(3, "metrics", ts.metrics.len() as f64);
    j.num(3, "regions", ts.groups.len() as f64);
    j.num(3, "on_wall_ms", ts_on_ms);
    j.num(3, "off_wall_ms", ts_off_ms);
    j.num(3, "overhead_pct", ts_overhead_pct);
    j.num(3, "detections_raised", ts_raised as f64);
    // 1.0 = the sampling-on/off report assert_eq above passed.
    j.num(3, "report_identical", 1.0);
    j.close(2);

    j.close(1); // families

    j.open(1, "headline");
    j.num(2, "peers", macro_args.peers as f64);
    j.num(2, "downloads", macro_args.downloads as f64);
    j.num(2, "wall_ms", headline_ms);
    j.num(2, "events_processed", ab.events as f64);
    j.num(2, "events_per_sec", events_per_sec);
    j.num(2, "peak_rss_kb", rss_kb as f64);
    if let Some(base) = c.baseline_ms {
        // Like-for-like: the externally measured wall of the *current full
        // binary* (sim + sidecars + analytics tail, same as the baseline
        // binary), not this harness's sim-only macro time.
        let current = c.current_ms.unwrap_or(headline_ms);
        j.open(2, "baseline");
        j.str(3, "commit", &c.baseline_commit);
        j.num(3, "wall_ms", base);
        j.num(3, "current_binary_wall_ms", current);
        j.str(
            3,
            "method",
            "seed-commit headline binary rebuilt in a worktree, interleaved best-of-3 \
             against the current headline binary on the same machine/session",
        );
        j.close(2);
        j.num(2, "speedup_vs_baseline", base / current);
    }
    j.close(1);

    j.open(1, "smoke_reference");
    j.str(
        2,
        "note",
        "gate inputs for scripts/check.sh --check: generous factor-of-five tolerance",
    );
    j.num(2, "macro_wall_ms", ab.wheel_ms);
    j.close(1);

    j.finish()
}

// ---------------------------------------------------------------------------
// --check: schema lint + coarse regression gate

fn get_num(v: &JsonValue, path: &[&str]) -> Option<f64> {
    let mut cur = v;
    for k in path {
        cur = cur.get(k)?;
    }
    cur.as_f64()
}

fn check(committed_path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(committed_path)
        .map_err(|e| format!("cannot read {committed_path}: {e}"))?;
    let doc = parse(&text).map_err(|e| format!("{committed_path}: {e}"))?;

    // Schema lint: the keys every consumer of BENCH_*.json relies on.
    match doc.get("schema") {
        Some(JsonValue::Str(s)) if s == "netsession-perfbench/1" => {}
        other => return Err(format!("schema field missing or wrong: {other:?}")),
    }
    for fam in ["event_queue", "hashing", "alloc_churn", "obs"] {
        if doc.get("families").and_then(|f| f.get(fam)).is_none() {
            return Err(format!("families.{fam} missing"));
        }
    }
    // The `scale` family (sharded runner) joined in issue 7; older committed
    // snapshots predate it and stay lintable, but any snapshot that carries
    // it — and every snapshot from issue 7 on — must have the full shape.
    let issue = get_num(&doc, &["issue"]).unwrap_or(0.0);
    let has_scale = doc.get("families").and_then(|f| f.get("scale")).is_some();
    if issue >= 7.0 && !has_scale {
        return Err("families.scale missing (required from issue 7 on)".into());
    }
    if has_scale {
        for path in [
            &["families", "scale", "peers"][..],
            &["families", "scale", "days"],
            &["families", "scale", "shards"],
            &["families", "scale", "seq_wall_ms"],
            &["families", "scale", "par_wall_ms"],
            &["families", "scale", "peak_rss_kb"],
            &["families", "scale", "outputs_identical"],
        ] {
            if get_num(&doc, path).is_none() {
                return Err(format!("required number {} missing", path.join(".")));
            }
        }
        if get_num(&doc, &["families", "scale", "outputs_identical"]) != Some(1.0) {
            return Err("families.scale.outputs_identical must be 1".into());
        }
    }
    // The `shard_profile` family and the scale-family context fields
    // (`cpus`, `shard_regions`) joined in issue 8; older snapshots stay
    // lintable without them.
    let has_profile = doc
        .get("families")
        .and_then(|f| f.get("shard_profile"))
        .is_some();
    if issue >= 8.0 && !has_profile {
        return Err("families.shard_profile missing (required from issue 8 on)".into());
    }
    if has_profile {
        for path in [
            &["families", "shard_profile", "shards"][..],
            &["families", "shard_profile", "windows"],
            &["families", "shard_profile", "events"],
            &["families", "shard_profile", "critical_path_events"],
            &["families", "shard_profile", "speedup_ceiling"],
            &["families", "shard_profile", "split_busiest_ceiling"],
            &["families", "shard_profile", "skew"],
            &["families", "shard_profile", "det_stream_identical"],
        ] {
            if get_num(&doc, path).is_none() {
                return Err(format!("required number {} missing", path.join(".")));
            }
        }
        if get_num(&doc, &["families", "shard_profile", "det_stream_identical"]) != Some(1.0) {
            return Err("families.shard_profile.det_stream_identical must be 1".into());
        }
    }
    if issue >= 8.0 {
        if get_num(&doc, &["families", "scale", "cpus"]).is_none() {
            return Err("families.scale.cpus missing (required from issue 8 on)".into());
        }
        match doc
            .get("families")
            .and_then(|f| f.get("scale"))
            .and_then(|s| s.get("shard_regions"))
        {
            Some(JsonValue::Str(_)) => {}
            other => {
                return Err(format!(
                    "families.scale.shard_regions missing or not a string: {other:?}"
                ))
            }
        }
    }
    // The `timeseries` family (windowed telemetry sampling cost) joined in
    // issue 10; older snapshots stay lintable without it.
    let has_ts = doc
        .get("families")
        .and_then(|f| f.get("timeseries"))
        .is_some();
    if issue >= 10.0 && !has_ts {
        return Err("families.timeseries missing (required from issue 10 on)".into());
    }
    if has_ts {
        for path in [
            &["families", "timeseries", "windows"][..],
            &["families", "timeseries", "metrics"],
            &["families", "timeseries", "on_wall_ms"],
            &["families", "timeseries", "off_wall_ms"],
            &["families", "timeseries", "overhead_pct"],
            &["families", "timeseries", "report_identical"],
        ] {
            if get_num(&doc, path).is_none() {
                return Err(format!("required number {} missing", path.join(".")));
            }
        }
        if get_num(&doc, &["families", "timeseries", "report_identical"]) != Some(1.0) {
            return Err("families.timeseries.report_identical must be 1".into());
        }
    }
    for path in [
        &["families", "event_queue", "macro_speedup"][..],
        &["families", "hashing", "hash_speedup"],
        &["families", "alloc_churn", "flownet_recompute_allocs_per_op"],
        &["families", "obs", "tracing_overhead_pct"],
        &["headline", "wall_ms"],
        &["headline", "events_per_sec"],
        &["smoke_reference", "macro_wall_ms"],
    ] {
        if get_num(&doc, path).is_none() {
            return Err(format!("required number {} missing", path.join(".")));
        }
    }
    let committed_smoke = get_num(&doc, &["smoke_reference", "macro_wall_ms"]).unwrap();
    eprintln!("# schema lint OK ({committed_path})");

    // Correctness gate: wheel and heap must still be bit-identical, and the
    // smoke-scale run must not have regressed past the generous tolerance.
    let args = ExperimentArgs {
        peers: 2_000,
        downloads: 3_000,
        ..ExperimentArgs::default()
    };
    let ab = macro_ab(&config_for(&args), 1);
    eprintln!(
        "# smoke A/B: wheel {:.0} ms, heap {:.0} ms, outputs identical",
        ab.wheel_ms, ab.heap_ms
    );

    // The committed reference may come from full mode (default scale) —
    // scale it down is not possible portably, so gate only when the
    // committed number is itself smoke-scale comparable; otherwise gate on
    // the wheel-vs-heap ratio alone.
    let tolerance = 5.0;
    if ab.wheel_ms > ab.heap_ms * 2.0 {
        return Err(format!(
            "timing wheel regressed: {:.0} ms vs heap {:.0} ms (>2x slower)",
            ab.wheel_ms, ab.heap_ms
        ));
    }
    let committed_mode = matches!(doc.get("mode"), Some(JsonValue::Str(s)) if s == "smoke");
    if committed_mode && ab.wheel_ms > committed_smoke * tolerance {
        return Err(format!(
            "smoke macro regressed: {:.0} ms vs committed {:.0} ms (tolerance {tolerance}x)",
            ab.wheel_ms, committed_smoke
        ));
    }
    eprintln!("# regression gate OK (tolerance {tolerance}x)");
    Ok(())
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let mut smoke = false;
    let mut trend = false;
    let mut require_issue: Option<u64> = None;
    let mut check_path: Option<String> = None;
    let mut out_path: Option<String> = None;
    let mut baseline_ms: Option<f64> = None;
    let mut current_ms: Option<f64> = None;
    let mut baseline_commit = String::from("seed");
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--smoke" => {
                smoke = true;
                i += 1;
            }
            "--check" => {
                check_path = Some(argv.get(i + 1).expect("--check <BENCH.json>").clone());
                i += 2;
            }
            "--trend" => {
                trend = true;
                i += 1;
            }
            "--require" => {
                require_issue = Some(
                    argv.get(i + 1)
                        .expect("--require <issue>")
                        .parse()
                        .expect("--require <issue>"),
                );
                i += 2;
            }
            "--out" => {
                out_path = Some(argv.get(i + 1).expect("--out <path>").clone());
                i += 2;
            }
            "--baseline-ms" => {
                baseline_ms = Some(
                    argv.get(i + 1)
                        .expect("--baseline-ms <ms>")
                        .parse()
                        .expect("--baseline-ms <ms>"),
                );
                i += 2;
            }
            "--current-ms" => {
                current_ms = Some(
                    argv.get(i + 1)
                        .expect("--current-ms <ms>")
                        .parse()
                        .expect("--current-ms <ms>"),
                );
                i += 2;
            }
            "--baseline-commit" => {
                baseline_commit = argv.get(i + 1).expect("--baseline-commit <sha>").clone();
                i += 2;
            }
            other => panic!("unknown flag {other}"),
        }
    }

    if trend {
        let dir = "results/bench";
        let out = match require_issue {
            Some(n) => netsession_bench::trend::check(dir, n),
            None => netsession_bench::trend::collect(dir)
                .map(|rows| netsession_bench::trend::render(&rows)),
        };
        match out {
            Ok(table) => print!("{table}"),
            Err(e) => {
                eprintln!("perfbench trend: FAIL: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    if let Some(path) = check_path {
        match check(&path) {
            Ok(()) => println!("perfbench check: PASS"),
            Err(e) => {
                eprintln!("perfbench check: FAIL: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    let json = run_campaign(&Campaign {
        smoke,
        baseline_ms,
        current_ms,
        baseline_commit,
    });
    match out_path {
        Some(p) => {
            if let Some(dir) = std::path::Path::new(&p).parent() {
                let _ = std::fs::create_dir_all(dir);
            }
            std::fs::write(&p, &json).expect("write bench json");
            eprintln!("# wrote {p}");
        }
        None if smoke => print!("{json}"),
        None => {
            std::fs::create_dir_all("results/bench").expect("create results/bench");
            std::fs::write("results/bench/BENCH_10.json", &json).expect("write bench json");
            eprintln!("# wrote results/bench/BENCH_10.json");
        }
    }
}
