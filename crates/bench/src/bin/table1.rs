//! E1 — Table 1: overall statistics for the data set.
//!
//! The paper's trace (October 2012): 4,150,989,257 log entries; 25,941,122
//! GUIDs; 4,038,894 distinct URLs; 133,690,372 distinct IPs; 12,508,764
//! downloads; 34,383 locations; 31,190 ASes; 239 country codes. Our run is
//! scaled down (`--scale`); the scale factor is printed so shares can be
//! compared.

use netsession_bench::runner::{
    parse_args, run_default, write_metrics_sidecar, write_trace_sidecar,
};

fn main() {
    let args = parse_args();
    eprintln!(
        "# table1: peers={} downloads={}",
        args.peers, args.downloads
    );
    let out = run_default(&args);
    write_metrics_sidecar("table1", &out.metrics);
    write_trace_sidecar("table1", &out.trace);
    let s = out.dataset.summary();

    let scale = 25_941_122.0 / args.peers as f64;
    println!("Table 1: overall statistics (scale factor ≈ {scale:.0}× below the paper)");
    println!("{:<34}{:>16}{:>16}", "quantity", "paper", "measured");
    let rows: [(&str, u64, u64); 8] = [
        ("Log entries", 4_150_989_257, s.log_entries),
        ("Number of GUIDs", 25_941_122, s.guids),
        ("Distinct URLs", 4_038_894, s.urls),
        ("Distinct IPs", 133_690_372, s.ips),
        ("Downloads initiated", 12_508_764, s.downloads),
        ("Distinct locations", 34_383, s.locations),
        ("Distinct autonomous systems", 31_190, s.ases),
        ("Distinct country codes", 239, s.countries),
    ];
    for (name, paper, measured) in rows {
        println!("{name:<34}{paper:>16}{measured:>16}");
    }
    println!();
    println!(
        "per-GUID downloads: paper {:.2}, measured {:.2}",
        12_508_764.0 / 25_941_122.0,
        s.downloads as f64 / s.guids.max(1) as f64
    );
}
