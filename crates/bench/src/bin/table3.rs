//! E3 — Table 3: observed changes to the upload-enable setting.
//!
//! Paper: initially disabled — 99.96 % zero changes, 0.03 % one, 0.01 %
//! two-plus; initially enabled — 98.11 % / 1.80 % / 0.09 %.

use netsession_analytics::settings;
use netsession_bench::runner::{
    parse_args, run_default, write_metrics_sidecar, write_trace_sidecar,
};

fn main() {
    let args = parse_args();
    eprintln!(
        "# table3: peers={} downloads={}",
        args.peers, args.downloads
    );
    let out = run_default(&args);
    write_metrics_sidecar("table3", &out.metrics);
    write_trace_sidecar("table3", &out.trace);
    let (disabled, enabled) = settings::table3(&out.dataset);

    println!("Table 3: observed changes to the upload setting");
    println!(
        "{:<22}{:>12}{:>10}{:>10}{:>10}",
        "uploads initially...", "GUIDs", "0", "1", ">=2"
    );
    for (label, row, paper) in [
        ("Disabled", &disabled, "99.96% 0.03% 0.01%"),
        ("Enabled", &enabled, "98.11% 1.80% 0.09%"),
    ] {
        let (z, o, t) = row.fractions();
        println!(
            "{:<22}{:>12}{:>9.2}%{:>9.2}%{:>9.2}%   (paper: {})",
            label,
            row.total,
            z * 100.0,
            o * 100.0,
            t * 100.0,
            paper
        );
    }
}
