//! E11/A4 — Fig 6: impact of the number of peers initially returned by the
//! control plane on peer efficiency.
//!
//! Paper shape: ~80 % efficiency is generally reached with about 25–30
//! peers, consistent with BitTorrent needing a few tens of peers.
//!
//! Pass `--sweep 1` to additionally re-run the simulation with the
//! control-plane `max_peers` forced to 5/10/20/40 (ablation A4).

use netsession_analytics::efficiency;
use netsession_analytics::stats::mean;
use netsession_bench::runner::{
    config_for, write_metrics_sidecar, write_trace_sidecar, ExperimentArgs,
};
use netsession_hybrid::HybridSim;
use netsession_logs::records::DownloadOutcome;
use netsession_obs::MetricsRegistry;

fn main() {
    let metrics = MetricsRegistry::new();
    let mut argv: Vec<String> = std::env::args().collect();
    let sweep = if let Some(pos) = argv.iter().position(|a| a == "--sweep") {
        let v = argv.get(pos + 1).map(|v| v == "1").unwrap_or(false);
        argv.drain(pos..pos + 2);
        v
    } else {
        false
    };
    let args = parse_args_from(&argv);
    eprintln!("# fig6: peers={} downloads={}", args.peers, args.downloads);

    let out = HybridSim::run_config_with(config_for(&args), &metrics);
    let buckets = efficiency::fig6(&out.dataset);
    println!("Fig 6: peer efficiency vs peers initially returned");
    println!("{:>8}{:>12}{:>10}", "peers", "downloads", "mean %");
    // Group into fives for readability.
    let mut grouped: std::collections::BTreeMap<u32, Vec<f64>> = Default::default();
    for b in &buckets {
        grouped
            .entry((b.peers / 5) * 5)
            .or_default()
            .extend(std::iter::repeat_n(b.mean, b.downloads));
    }
    for (lo, vals) in &grouped {
        println!(
            "{:>5}-{:<3}{:>11}{:>10.1}",
            lo,
            lo + 4,
            vals.len(),
            mean(vals.iter().copied())
        );
    }

    if sweep {
        println!();
        println!("A4 sweep: forcing max peers returned (re-simulating)");
        println!("{:>12}{:>12}", "max_peers", "mean eff %");
        for max in [5usize, 10, 20, 40] {
            let mut cfg = config_for(&args);
            cfg.peers_returned = max;
            let out = HybridSim::run_config_with(cfg, &metrics);
            let effs: Vec<f64> = out
                .dataset
                .downloads
                .iter()
                .filter(|d| d.p2p_enabled && d.outcome == DownloadOutcome::Completed)
                .map(|d| d.peer_efficiency() * 100.0)
                .collect();
            println!("{:>12}{:>12.1}", max, mean(effs));
        }
    }

    write_metrics_sidecar("fig6", &metrics);
    write_trace_sidecar("fig6", &out.trace);
}

fn parse_args_from(argv: &[String]) -> ExperimentArgs {
    let mut args = ExperimentArgs::default();
    let mut i = 1;
    while i + 1 < argv.len() {
        match argv[i].as_str() {
            "--scale" => args.peers = argv[i + 1].parse().expect("--scale"),
            "--downloads" => args.downloads = argv[i + 1].parse().expect("--downloads"),
            "--seed" => args.seed = argv[i + 1].parse().expect("--seed"),
            other => panic!("unknown flag {other}"),
        }
        i += 2;
    }
    args
}
