//! E7 — Fig 3b: content popularity ("the nearly ubiquitous power law").
//!
//! Prints the downloads-vs-rank series and the fitted log-log slope.

use netsession_analytics::sizes;
use netsession_bench::runner::{
    parse_args, run_default, write_metrics_sidecar, write_trace_sidecar,
};

fn main() {
    let args = parse_args();
    eprintln!("# fig3b: peers={} downloads={}", args.peers, args.downloads);
    let out = run_default(&args);
    write_metrics_sidecar("fig3b", &out.metrics);
    write_trace_sidecar("fig3b", &out.trace);
    let ranked = sizes::fig3b(&out.dataset);

    println!("Fig 3b: content popularity (downloads per object by rank)");
    println!("{:>10}{:>14}", "rank", "downloads");
    let mut rank = 1usize;
    while rank <= ranked.len() {
        println!("{:>10}{:>14}", rank, ranked[rank - 1]);
        rank *= 4;
    }
    println!();
    let alpha = sizes::powerlaw_exponent(&ranked);
    println!("objects downloaded: {}", ranked.len());
    println!("fitted log-log slope: {alpha:.2} (a power law shows a clear negative slope)");
    println!(
        "top-1% share of downloads: {:.0}%",
        ranked[..(ranked.len() / 100).max(1)].iter().sum::<u64>() as f64
            / ranked.iter().sum::<u64>().max(1) as f64
            * 100.0
    );
}
