//! E13 — Fig 8: peer contributions in different regions (one p2p-enabled
//! provider).
//!
//! Paper shape: a mixed picture — peers contribute more in some regions
//! (Africa, South America) but contributions "do not vary much overall"
//! because the edge infrastructure already covers the globe.

use netsession_analytics::regions::{self, CoverageClass};
use netsession_bench::runner::{
    parse_args, run_default, write_metrics_sidecar, write_trace_sidecar,
};
use netsession_world::customers::customer_by_name;
use netsession_world::geo::{continent_of, WORLD_COUNTRIES};
use std::collections::BTreeMap;

fn main() {
    let args = parse_args();
    eprintln!("# fig8: peers={} downloads={}", args.peers, args.downloads);
    let out = run_default(&args);
    write_metrics_sidecar("fig8", &out.metrics);
    write_trace_sidecar("fig8", &out.trace);
    // Customer D: a typical p2p-enabled provider (94 % uploads enabled).
    let cp = customer_by_name("D").expect("customer D").cp;
    let classes = regions::fig8_country_classes(&out.dataset, cp);

    println!("Fig 8: per-country byte split for customer D (p2p-enabled provider)");
    println!(
        "{:<6}{:<22}{:>12}{:>12}{:<20}",
        "iso", "country", "infra GB", "peer GB", "  class"
    );
    let mut by_class: BTreeMap<CoverageClass, usize> = BTreeMap::new();
    let mut by_continent: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
    for (country, infra, peers, class) in &classes {
        let c = &WORLD_COUNTRIES[*country as usize];
        *by_class.entry(*class).or_insert(0) += 1;
        let cont = match continent_of(c.iso) {
            netsession_world::geo::Continent::NorthAmerica => "NorthAmerica",
            netsession_world::geo::Continent::SouthAmerica => "SouthAmerica",
            netsession_world::geo::Continent::Europe => "Europe",
            netsession_world::geo::Continent::Asia => "Asia",
            netsession_world::geo::Continent::Africa => "Africa",
            netsession_world::geo::Continent::Oceania => "Oceania",
        };
        let e = by_continent.entry(cont).or_insert((0, 0));
        e.0 += infra;
        e.1 += peers;
        println!(
            "{:<6}{:<22}{:>12.2}{:>12.2}  {:?}",
            c.iso,
            c.name,
            *infra as f64 / 1e9,
            *peers as f64 / 1e9,
            class
        );
    }
    println!();
    println!("class counts: {by_class:?}");
    println!("per-continent infra/peer byte split:");
    for (cont, (infra, peers)) in &by_continent {
        let share = *peers as f64 / (*infra + *peers).max(1) as f64 * 100.0;
        println!("  {cont}: peers serve {share:.0}% of bytes");
    }
}
