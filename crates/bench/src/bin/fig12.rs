//! E17 — Fig 12: secondary-GUID chain patterns.
//!
//! Paper: 17.7 M graphs with ≥3 vertices; 99.4 % linear chains, 0.6 %
//! trees. Of the nonlinear ones: 46.2 % one long branch plus a one-vertex
//! stub (failed update), 6.2 % two long branches (restored backup), 23.5 %
//! several short/medium branches (re-imaging/cloning), rest irregular.

use netsession_analytics::guidgraph::{self, ChainPattern};
use netsession_bench::runner::{
    parse_args, run_default, write_metrics_sidecar, write_trace_sidecar,
};

fn main() {
    let args = parse_args();
    eprintln!("# fig12: peers={} downloads={}", args.peers, args.downloads);
    let out = run_default(&args);
    write_metrics_sidecar("fig12", &out.metrics);
    write_trace_sidecar("fig12", &out.trace);
    let census = guidgraph::fig12(&out.dataset);

    let total: u64 = census.values().sum();
    let get = |p: ChainPattern| census.get(&p).copied().unwrap_or(0);
    let linear = get(ChainPattern::Linear);
    let nonlinear = total - linear;

    println!("Fig 12: secondary-GUID graph census ({total} graphs with ≥3 vertices)");
    println!(
        "linear chains: {} ({:.2}%)   [paper: 99.4%]",
        linear,
        linear as f64 / total.max(1) as f64 * 100.0
    );
    println!(
        "nonlinear (trees): {} ({:.2}%) [paper: 0.6%]",
        nonlinear,
        guidgraph::nonlinear_fraction(&census) * 100.0
    );
    println!();
    if nonlinear > 0 {
        println!("pattern mix among nonlinear graphs:");
        let pct = |n: u64| n as f64 / nonlinear as f64 * 100.0;
        println!(
            "  long + one-vertex stub : {:>5.1}%  [paper: 46.2%]",
            pct(get(ChainPattern::LongPlusStub))
        );
        println!(
            "  two long branches      : {:>5.1}%  [paper:  6.2%]",
            pct(get(ChainPattern::TwoLongBranches))
        );
        println!(
            "  several branches       : {:>5.1}%  [paper: 23.5%]",
            pct(get(ChainPattern::SeveralBranches))
        );
        println!(
            "  irregular              : {:>5.1}%  [paper: 24.1%]",
            pct(get(ChainPattern::Irregular))
        );
    }
}
