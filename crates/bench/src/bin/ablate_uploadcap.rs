//! A3 — the per-object upload cap.
//!
//! §6.1: "NetSession avoids such biases in part by limiting the number of
//! times a peer will upload a file it has locally cached." Removing the
//! cap should skew upload volume toward a smaller set of (high-upstream)
//! peers and ASes.

use netsession_bench::runner::{
    config_for, parse_args, write_metrics_sidecar, write_trace_sidecar,
};
use netsession_hybrid::HybridSim;
use netsession_obs::MetricsRegistry;
use std::collections::HashMap;

fn main() {
    let metrics = MetricsRegistry::new();
    let args = parse_args();
    eprintln!(
        "# ablate_uploadcap: peers={} downloads={}",
        args.peers, args.downloads
    );

    println!("A3: the per-object upload cap");
    println!(
        "{:<18}{:>14}{:>22}{:>20}",
        "policy", "p2p TB", "top-1% uploader share", "max uploads/peer"
    );
    let mut baseline_trace = None;
    for (label, cap) in [("cap = 30", Some(30u32)), ("uncapped", None)] {
        let mut cfg = config_for(&args);
        cfg.per_object_upload_cap = cap;
        let out = HybridSim::run_config_with(cfg, &metrics);
        if baseline_trace.is_none() {
            baseline_trace = Some(out.trace.clone());
        }
        // Upload bytes per uploader GUID.
        let mut per_uploader: HashMap<u128, u64> = HashMap::new();
        for t in &out.dataset.transfers {
            *per_uploader.entry(t.from_guid.0).or_insert(0) += t.bytes.bytes();
        }
        let mut vols: Vec<u64> = per_uploader.values().copied().collect();
        vols.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = vols.iter().sum();
        let top1: u64 = vols[..(vols.len() / 100).max(1)].iter().sum();
        // Upload *counts* per (uploader, object).
        let mut counts: HashMap<(u128, u64), u32> = HashMap::new();
        for t in &out.dataset.transfers {
            *counts.entry((t.from_guid.0, t.object.0)).or_insert(0) += 1;
        }
        let max_count = counts.values().max().copied().unwrap_or(0);
        println!(
            "{:<18}{:>14.2}{:>21.1}%{:>20}",
            label,
            out.stats.p2p_bytes as f64 / 1e12,
            top1 as f64 / total.max(1) as f64 * 100.0,
            max_count
        );
    }
    println!();
    println!("expectation: uncapped concentrates upload volume on fewer peers");

    write_metrics_sidecar("ablate_uploadcap", &metrics);
    if let Some(trace) = &baseline_trace {
        write_trace_sidecar("ablate_uploadcap", trace);
    }
}
