//! E4 — Table 4: fraction of peers with content uploads enabled, per
//! customer.
//!
//! Paper row: A <1, B 20, C 2, D 94, E 2, F 45, G 47, H <1, I 91, J <1 (%).

use netsession_bench::runner::{config_for, parse_args};
use netsession_hybrid::Scenario;
use netsession_world::customers::CUSTOMERS;

fn main() {
    let args = parse_args();
    eprintln!("# table4: peers={}", args.peers);
    // Table 4 is a property of the installed base; no simulation needed.
    let scenario = Scenario::build(config_for(&args));

    let mut enabled = vec![0u64; CUSTOMERS.len()];
    let mut total = vec![0u64; CUSTOMERS.len()];
    for p in &scenario.population.peers {
        total[p.customer] += 1;
        if p.uploads_enabled {
            enabled[p.customer] += 1;
        }
    }

    println!("Table 4: fraction of peers with content uploads enabled");
    print!("{:<10}", "customer");
    for c in CUSTOMERS {
        print!("{:>7}", c.name);
    }
    println!();
    print!("{:<10}", "measured");
    for i in 0..CUSTOMERS.len() {
        let f = enabled[i] as f64 / total[i].max(1) as f64 * 100.0;
        if f < 1.0 {
            print!("{:>7}", "<1%");
        } else {
            print!("{:>6.0}%", f);
        }
    }
    println!();
    print!("{:<10}", "paper");
    for c in CUSTOMERS {
        let f = c.upload_enabled_fraction * 100.0;
        if f < 1.0 {
            print!("{:>7}", "<1%");
        } else {
            print!("{:>6.0}%", f);
        }
    }
    println!();
    let overall = enabled.iter().sum::<u64>() as f64 / total.iter().sum::<u64>().max(1) as f64;
    println!();
    println!(
        "overall enabled fraction: {:.1}% (paper: ~31%)",
        overall * 100.0
    );
}
