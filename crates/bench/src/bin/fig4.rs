//! E9 — Fig 4: edge-only vs peer-assisted download speed in the two
//! largest ASes.
//!
//! Paper shape: peer-assisted downloads are somewhat slower but still
//! multiple Mbps; the gap is biggest in high-bandwidth networks (upstream
//! asymmetry).

use netsession_analytics::speeds;
use netsession_bench::runner::{
    parse_args, run_default, write_metrics_sidecar, write_trace_sidecar,
};

fn main() {
    let args = parse_args();
    eprintln!("# fig4: peers={} downloads={}", args.peers, args.downloads);
    let out = run_default(&args);
    write_metrics_sidecar("fig4", &out.metrics);
    write_trace_sidecar("fig4", &out.trace);

    for (label, s) in ["AS X", "AS Y"].iter().zip(speeds::fig4(&out.dataset)) {
        println!(
            "Fig 4 — {} ({}, {} downloads): CDF of mean download speed (Mbps)",
            label, s.asn, s.downloads
        );
        println!("{:>12}{:>12}{:>12}", "speed", "edge-only", ">50% p2p");
        for x in [0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0] {
            println!(
                "{:>12}{:>11.0}%{:>11.0}%",
                x,
                s.edge_only.fraction_at(x) * 100.0,
                s.mostly_p2p.fraction_at(x) * 100.0
            );
        }
        if !s.edge_only.is_empty() && !s.mostly_p2p.is_empty() {
            println!(
                "medians: edge-only {:.1} Mbps, >50% p2p {:.1} Mbps (paper: p2p somewhat slower, both multi-Mbps)",
                s.edge_only.median(),
                s.mostly_p2p.median()
            );
        }
        println!();
    }
}
