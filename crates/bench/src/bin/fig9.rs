//! E14/E21 — Fig 9: inter-AS traffic distribution.
//!
//! Paper shape: (a) roughly half the ASes send no inter-AS p2p bytes; a
//! heavy tail sends terabytes. (b) 98 % of ASes contribute only ~10 % of
//! the bytes; the remaining 2 % ("heavy uploaders") contribute ~90 %.
//! (c) heavy uploaders simply contain far more peers (IPs). Also prints
//! the §6.1 headline shares: 18 % intra-AS traffic, ~35 % of heavy-pair
//! bytes on direct links.

use netsession_analytics::astraffic;
use netsession_bench::runner::{
    parse_args, run_default, write_metrics_sidecar, write_trace_sidecar,
};

fn main() {
    let args = parse_args();
    eprintln!("# fig9: peers={} downloads={}", args.peers, args.downloads);
    let out = run_default(&args);
    write_metrics_sidecar("fig9", &out.metrics);
    write_trace_sidecar("fig9", &out.trace);
    let t = astraffic::build(&out.dataset);
    let as_model = &out.scenario.population.as_model;

    println!(
        "intra-AS share of p2p bytes: {:.0}% (paper: 18%)",
        t.intra_as_share() * 100.0
    );
    println!(
        "total p2p content bytes: {:.2} TB across {} uploading ASes",
        t.total_bytes as f64 / 1e12,
        t.uploaded.len()
    );
    println!();

    // Fig 9a.
    let all_ases: Vec<netsession_core::id::AsNumber> =
        as_model.specs().iter().map(|s| s.asn).collect();
    let cdf = t.fig9a(all_ases.iter().copied());
    println!("Fig 9a: CDF of inter-AS p2p bytes uploaded per AS");
    println!("{:>14}{:>14}", "bytes", "frac of ASes");
    for x in [0.0, 1e6, 1e8, 1e9, 1e10, 1e11, 1e12] {
        println!("{:>14.0}{:>13.0}%", x, cdf.fraction_at(x) * 100.0);
    }
    println!();

    // Fig 9b.
    let curve = t.fig9b();
    println!("Fig 9b: cumulative contribution (paper: 98% of ASes → 10% of bytes)");
    if !curve.is_empty() {
        let n = curve.len();
        let idx98 = ((n as f64 * 0.98) as usize).min(n - 1);
        println!(
            "  98% of uploading ASes contribute {:.0}% of the bytes",
            curve[idx98].1
        );
        let heavy = t.heavy_uploaders(0.02);
        println!(
            "  top 2% ({} ASes) contribute {:.0}% (paper: 90%)",
            heavy.len(),
            t.heavy_share(&heavy) * 100.0
        );

        // Fig 9c.
        let (light, heavy_ips) = t.fig9c(&heavy);
        println!();
        println!("Fig 9c: distinct IPs per AS (light vs heavy uploaders)");
        if !light.is_empty() && !heavy_ips.is_empty() {
            println!(
                "  median IPs: light {:.0}, heavy {:.0} (paper: heavy ASes hold far more peers)",
                light.median(),
                heavy_ips.median()
            );
            println!(
                "  p90 IPs:    light {:.0}, heavy {:.0}",
                light.percentile(90.0),
                heavy_ips.percentile(90.0)
            );
        }

        // §6.1 direct-link estimate.
        let share = t.direct_link_share(&heavy, |a, b| {
            match (as_model.index_of(a), as_model.index_of(b)) {
                (Some(x), Some(y)) => as_model.direct_link(x, y),
                _ => false,
            }
        });
        println!();
        println!(
            "heavy-pair bytes on direct AS links: {:.0}% (paper estimate: ~35%)",
            share * 100.0
        );
    }
}
