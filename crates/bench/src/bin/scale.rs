//! `scale` — the million-peer sharded-runner bench and determinism gate.
//!
//! Runs [`netsession_hybrid::run_scaled`] at a configurable population and
//! prints the deterministic merged report — now followed by the shard
//! profiler's load-imbalance report — on **stdout** (byte-identical
//! run-to-run and parallel-vs-sequential — `scripts/check.sh` diffs the
//! two). Wall-clock and peak-RSS timings go to **stderr**, keeping stdout
//! replayable, and three sidecars land in `results/`:
//!
//! - `scale.metrics.json` — registry snapshot (incl. the idempotent
//!   `shard.*` counters), PR 1 convention;
//! - `scale.profile.json` — `netsession-shard-profile/1`: the
//!   deterministic imbalance profile plus a clearly separated volatile
//!   timing section (busy / barrier-wait / merge wall time);
//! - `scale.shardtrace.json` — Perfetto/Chrome timeline, one track per
//!   shard, slices named busy/wait/merge.
//!
//! ```text
//! scale                        1M peers, 31 days, 16 sub-shards, parallel
//! scale --smoke                20k peers, 7 days, 2 shards (CI gate scale)
//! scale --sequential           run the sequential oracle instead
//! scale --peers N --days N --objects N --shards K --window-secs S --seed S
//! scale --profile-det-out F    also write ONLY the deterministic profile
//!                              JSON to F (the check.sh byte-diff target)
//! scale --lint-profile F       validate a scale.profile.json and exit
//! ```
//!
//! Flag order never matters: explicit value flags override the `--smoke`
//! preset wherever they appear, and the effective config is validated at
//! parse time (`ScaledConfig::validate`) with an actionable error instead
//! of a deep panic. Shards are contiguous sub-region blocks, so `K` may
//! exceed the nine regions (up to `MAX_SHARDS`, and never above the
//! population).

use netsession_core::time::SimDuration;
use netsession_hybrid::{run_scaled_profiled, ScaledConfig};
use netsession_logs::ProfileDigest;
use netsession_obs::profile::{ImbalanceStats, ShardProfiler};
use netsession_obs::MetricsRegistry;
use std::time::Instant;

fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    // Overrides are collected first and applied after the base config is
    // chosen, so `--shards 16 --smoke` and `--smoke --shards 16` mean the
    // same thing (explicit flags always beat the smoke preset).
    let mut smoke = false;
    let mut parallel = true;
    let mut det_out: Option<String> = None;
    let mut peers: Option<u64> = None;
    let mut objects: Option<u64> = None;
    let mut days: Option<u64> = None;
    let mut shards: Option<usize> = None;
    let mut window_secs: Option<u64> = None;
    let mut seed: Option<u64> = None;
    let mut i = 1;
    let next = |argv: &[String], i: &mut usize, flag: &str| -> u64 {
        let v = argv
            .get(*i + 1)
            .unwrap_or_else(|| panic!("{flag} <n>"))
            .parse()
            .unwrap_or_else(|_| panic!("{flag} <n>"));
        *i += 2;
        v
    };
    let next_str = |argv: &[String], i: &mut usize, flag: &str| -> String {
        let v = argv
            .get(*i + 1)
            .unwrap_or_else(|| panic!("{flag} <path>"))
            .clone();
        *i += 2;
        v
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--smoke" => {
                smoke = true;
                i += 1;
            }
            "--parallel" => {
                parallel = true;
                i += 1;
            }
            "--sequential" => {
                parallel = false;
                i += 1;
            }
            "--peers" => peers = Some(next(&argv, &mut i, "--peers")),
            "--objects" => objects = Some(next(&argv, &mut i, "--objects")),
            "--days" => days = Some(next(&argv, &mut i, "--days")),
            "--shards" => shards = Some(next(&argv, &mut i, "--shards") as usize),
            "--window-secs" => window_secs = Some(next(&argv, &mut i, "--window-secs")),
            "--seed" => seed = Some(next(&argv, &mut i, "--seed")),
            "--profile-det-out" => det_out = Some(next_str(&argv, &mut i, "--profile-det-out")),
            "--lint-profile" => {
                let path = next_str(&argv, &mut i, "--lint-profile");
                match netsession_bench::profile_lint::lint_profile(&path) {
                    Ok(()) => {
                        println!("profile lint OK: {path}");
                        return;
                    }
                    Err(e) => {
                        eprintln!("profile lint FAILED: {e}");
                        std::process::exit(1);
                    }
                }
            }
            other => panic!("unknown flag {other}"),
        }
    }

    let mut cfg = if smoke {
        ScaledConfig::smoke()
    } else {
        ScaledConfig {
            peers: 1_000_000,
            objects: 20_000,
            days: 31,
            shards: 16,
            ..ScaledConfig::default()
        }
    };
    if let Some(v) = peers {
        cfg.peers = v;
    }
    if let Some(v) = objects {
        cfg.objects = v;
    }
    if let Some(v) = days {
        cfg.days = v;
    }
    if let Some(v) = shards {
        cfg.shards = v;
    }
    if let Some(v) = window_secs {
        cfg.window = SimDuration::from_secs(v);
    }
    if let Some(v) = seed {
        cfg.seed = v;
    }
    // Validate the *effective* config here, where the error can name the
    // flag to fix — not as a panic deep inside the world constructor.
    if let Err(e) = cfg.validate() {
        eprintln!("scale: invalid configuration: {e}");
        std::process::exit(2);
    }

    eprintln!(
        "# scale: {} peers, {} days, {} shards, {}",
        cfg.peers,
        cfg.days,
        cfg.shards,
        if parallel { "parallel" } else { "sequential" }
    );
    let registry = MetricsRegistry::new();
    let profiler = ShardProfiler::new().with_sink(Box::new(ProfileDigest::new()));
    let t = Instant::now();
    let (out, profiler) = run_scaled_profiled(&cfg, parallel, Some(&registry), Some(profiler));
    let wall = t.elapsed().as_secs_f64();
    let profiler = profiler.expect("profiler rides the whole run");
    let stats = profiler.exec().stats();
    let stream = profiler.stream_fingerprint().expect("digest sink attached");

    // Deterministic stdout: merged report, then the shard profile. Both
    // halves are byte-identical sequential-vs-parallel and run-to-run.
    print!("{}", out.report());
    print!(
        "{}",
        stats.render_report(&out.shard_labels, &out.shard_peers)
    );
    println!("  stream {stream}");

    let det_json = stats.to_json(&out.shard_labels, &out.shard_peers, Some(&stream));
    if let Some(path) = det_out {
        if let Err(e) = std::fs::write(&path, format!("{{\n  \"deterministic\": {det_json}\n}}\n"))
        {
            eprintln!("# profile det-out skipped: {e}");
        }
    }

    // Sidecars (stderr-announced, stdout untouched).
    netsession_bench::runner::write_metrics_sidecar("scale", &registry);
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_ok() {
        let timings = profiler.timings();
        let ms = |ns: u64| ns as f64 / 1e6;
        let mut vol = String::new();
        {
            use std::fmt::Write;
            let _ = writeln!(vol, "{{");
            let _ = writeln!(
                vol,
                "    \"mode\": \"{}\",",
                if parallel { "parallel" } else { "sequential" }
            );
            let _ = writeln!(
                vol,
                "    \"cpus\": {},",
                std::thread::available_parallelism().map_or(0, |n| n.get())
            );
            let _ = writeln!(vol, "    \"wall_s\": {wall:.3},");
            let busy: Vec<String> = (0..timings.n_shards())
                .map(|k| format!("{:.1}", ms(timings.busy_total_ns(k))))
                .collect();
            let waitv: Vec<String> = (0..timings.n_shards())
                .map(|k| format!("{:.1}", ms(timings.wait_total_ns(k))))
                .collect();
            let _ = writeln!(vol, "    \"busy_ms\": [{}],", busy.join(", "));
            let _ = writeln!(vol, "    \"wait_ms\": [{}],", waitv.join(", "));
            let _ = writeln!(
                vol,
                "    \"merge_ms\": {:.1},",
                ms(timings.merge_total_ns())
            );
            let _ = writeln!(
                vol,
                "    \"wall_critical_path_ms\": {:.1},",
                ms(timings.wall_critical_path_ns())
            );
            let _ = writeln!(
                vol,
                "    \"wall_speedup_ceiling\": {:.3}",
                timings.wall_speedup_ceiling()
            );
            let _ = write!(vol, "  }}");
        }
        let profile = format!(
            "{{\n  \"schema\": \"netsession-shard-profile/1\",\n  \"deterministic\": {det_json},\n  \"volatile\": {vol}\n}}\n"
        );
        match std::fs::write(dir.join("scale.profile.json"), profile) {
            Ok(()) => eprintln!("# profile sidecar: results/scale.profile.json"),
            Err(e) => eprintln!("# profile sidecar skipped: {e}"),
        }
        // Per-shard bucket budget shrinks as shards grow so the export
        // stays under the 1 MiB trace budget at any (K, population).
        let buckets = (2048 / cfg.shards.max(1)).clamp(64, 512);
        match std::fs::write(
            dir.join("scale.shardtrace.json"),
            profiler.timings().export_chrome_json(buckets),
        ) {
            Ok(()) => eprintln!("# shardtrace sidecar: results/scale.shardtrace.json"),
            Err(e) => eprintln!("# shardtrace sidecar skipped: {e}"),
        }
    }
    // Self-check the artifact we just wrote (cheap, catches drift early).
    let _ = ImbalanceStats::parse_json(&det_json).expect("deterministic profile round-trips");

    eprintln!(
        "# wall {:.1} s, {:.0} events/s, peak RSS {} KiB",
        wall,
        out.events as f64 / wall,
        peak_rss_kb().unwrap_or(0)
    );
}
