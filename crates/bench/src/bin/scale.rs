//! `scale` — the million-peer sharded-runner bench and determinism gate.
//!
//! Runs [`netsession_hybrid::run_scaled`] at a configurable population and
//! prints the deterministic merged report — now followed by the shard
//! profiler's load-imbalance report — on **stdout** (byte-identical
//! run-to-run and parallel-vs-sequential — `scripts/check.sh` diffs the
//! two). Wall-clock and peak-RSS timings go to **stderr**, keeping stdout
//! replayable, and three sidecars land in `results/`:
//!
//! - `scale.metrics.json` — registry snapshot (incl. the idempotent
//!   `shard.*` counters), PR 1 convention;
//! - `scale.profile.json` — `netsession-shard-profile/1`: the
//!   deterministic imbalance profile plus a clearly separated volatile
//!   timing section (busy / barrier-wait / merge wall time);
//! - `scale.shardtrace.json` — Perfetto/Chrome timeline, one track per
//!   shard, slices named busy/wait/merge.
//!
//! ```text
//! scale                        1M peers, 31 days, 4 shards, parallel
//! scale --smoke                20k peers, 7 days, 2 shards (CI gate scale)
//! scale --sequential           run the sequential oracle instead
//! scale --peers N --days N --objects N --shards K --window-secs S --seed S
//! scale --profile-det-out F    also write ONLY the deterministic profile
//!                              JSON to F (the check.sh byte-diff target)
//! scale --lint-profile F       validate a scale.profile.json and exit
//! ```

use netsession_core::time::SimDuration;
use netsession_hybrid::{run_scaled_profiled, ScaledConfig};
use netsession_logs::ProfileDigest;
use netsession_obs::json;
use netsession_obs::profile::{ImbalanceStats, ShardProfiler};
use netsession_obs::MetricsRegistry;
use std::time::Instant;

fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
}

/// Validate a `scale.profile.json` sidecar: schema tag, a complete
/// deterministic section, and a volatile section that stays in its lane.
fn lint_profile(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let v = json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    match v.get("schema").and_then(|s| s.as_str()) {
        Some("netsession-shard-profile/1") => {}
        other => return Err(format!("{path}: bad schema tag {other:?}")),
    }
    let det = v
        .get("deterministic")
        .ok_or_else(|| format!("{path}: missing deterministic section"))?;
    // Structural checks on the deterministic section, mirroring
    // `ImbalanceStats::parse_json`.
    for key in [
        "shards",
        "windows",
        "events",
        "critical_path_events",
        "speedup_ceiling",
        "split_busiest_ceiling",
        "skew",
    ] {
        if det.get(key).and_then(|x| x.as_f64()).is_none() {
            return Err(format!("{path}: deterministic.{key} missing"));
        }
    }
    let shards = det.get("shards").and_then(|x| x.as_u64()).unwrap_or(0) as usize;
    match det.get("per_shard").and_then(|x| x.as_arr()) {
        Some(arr) if arr.len() == shards => {
            for (k, sh) in arr.iter().enumerate() {
                for key in ["shard", "regions", "peers", "events", "share_pct"] {
                    if sh.get(key).is_none() {
                        return Err(format!("{path}: per_shard[{k}].{key} missing"));
                    }
                }
            }
        }
        _ => return Err(format!("{path}: per_shard missing or wrong length")),
    }
    let vol = v
        .get("volatile")
        .ok_or_else(|| format!("{path}: missing volatile section"))?;
    for key in [
        "mode",
        "cpus",
        "wall_critical_path_ms",
        "wall_speedup_ceiling",
    ] {
        if vol.get(key).is_none() {
            return Err(format!("{path}: volatile.{key} missing"));
        }
    }
    // The separation rule, checked from the artifact side: nothing
    // wall-clock may appear inside the deterministic object.
    for leaked in [
        "busy_ms",
        "wait_ms",
        "merge_ms",
        "wall_s",
        "wall_critical_path_ms",
        "wall_speedup_ceiling",
    ] {
        if det.get(leaked).is_some() {
            return Err(format!(
                "{path}: volatile field {leaked} leaked into deterministic section"
            ));
        }
    }
    Ok(())
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let mut cfg = ScaledConfig {
        peers: 1_000_000,
        objects: 20_000,
        days: 31,
        shards: 4,
        ..ScaledConfig::default()
    };
    let mut parallel = true;
    let mut det_out: Option<String> = None;
    let mut i = 1;
    let next = |argv: &[String], i: &mut usize, flag: &str| -> u64 {
        let v = argv
            .get(*i + 1)
            .unwrap_or_else(|| panic!("{flag} <n>"))
            .parse()
            .unwrap_or_else(|_| panic!("{flag} <n>"));
        *i += 2;
        v
    };
    let next_str = |argv: &[String], i: &mut usize, flag: &str| -> String {
        let v = argv
            .get(*i + 1)
            .unwrap_or_else(|| panic!("{flag} <path>"))
            .clone();
        *i += 2;
        v
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--smoke" => {
                cfg = ScaledConfig {
                    seed: cfg.seed,
                    ..ScaledConfig::smoke()
                };
                i += 1;
            }
            "--parallel" => {
                parallel = true;
                i += 1;
            }
            "--sequential" => {
                parallel = false;
                i += 1;
            }
            "--peers" => cfg.peers = next(&argv, &mut i, "--peers"),
            "--objects" => cfg.objects = next(&argv, &mut i, "--objects"),
            "--days" => cfg.days = next(&argv, &mut i, "--days"),
            "--shards" => cfg.shards = next(&argv, &mut i, "--shards") as usize,
            "--window-secs" => {
                cfg.window = SimDuration::from_secs(next(&argv, &mut i, "--window-secs"))
            }
            "--seed" => cfg.seed = next(&argv, &mut i, "--seed"),
            "--profile-det-out" => det_out = Some(next_str(&argv, &mut i, "--profile-det-out")),
            "--lint-profile" => {
                let path = next_str(&argv, &mut i, "--lint-profile");
                match lint_profile(&path) {
                    Ok(()) => {
                        println!("profile lint OK: {path}");
                        return;
                    }
                    Err(e) => {
                        eprintln!("profile lint FAILED: {e}");
                        std::process::exit(1);
                    }
                }
            }
            other => panic!("unknown flag {other}"),
        }
    }

    eprintln!(
        "# scale: {} peers, {} days, {} shards, {}",
        cfg.peers,
        cfg.days,
        cfg.shards,
        if parallel { "parallel" } else { "sequential" }
    );
    let registry = MetricsRegistry::new();
    let profiler = ShardProfiler::new().with_sink(Box::new(ProfileDigest::new()));
    let t = Instant::now();
    let (out, profiler) = run_scaled_profiled(&cfg, parallel, Some(&registry), Some(profiler));
    let wall = t.elapsed().as_secs_f64();
    let profiler = profiler.expect("profiler rides the whole run");
    let stats = profiler.exec().stats();
    let stream = profiler.stream_fingerprint().expect("digest sink attached");

    // Deterministic stdout: merged report, then the shard profile. Both
    // halves are byte-identical sequential-vs-parallel and run-to-run.
    print!("{}", out.report());
    print!(
        "{}",
        stats.render_report(&out.shard_labels, &out.shard_peers)
    );
    println!("  stream {stream}");

    let det_json = stats.to_json(&out.shard_labels, &out.shard_peers, Some(&stream));
    if let Some(path) = det_out {
        if let Err(e) = std::fs::write(&path, format!("{{\n  \"deterministic\": {det_json}\n}}\n"))
        {
            eprintln!("# profile det-out skipped: {e}");
        }
    }

    // Sidecars (stderr-announced, stdout untouched).
    netsession_bench::runner::write_metrics_sidecar("scale", &registry);
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_ok() {
        let timings = profiler.timings();
        let ms = |ns: u64| ns as f64 / 1e6;
        let mut vol = String::new();
        {
            use std::fmt::Write;
            let _ = writeln!(vol, "{{");
            let _ = writeln!(
                vol,
                "    \"mode\": \"{}\",",
                if parallel { "parallel" } else { "sequential" }
            );
            let _ = writeln!(
                vol,
                "    \"cpus\": {},",
                std::thread::available_parallelism().map_or(0, |n| n.get())
            );
            let _ = writeln!(vol, "    \"wall_s\": {wall:.3},");
            let busy: Vec<String> = (0..timings.n_shards())
                .map(|k| format!("{:.1}", ms(timings.busy_total_ns(k))))
                .collect();
            let waitv: Vec<String> = (0..timings.n_shards())
                .map(|k| format!("{:.1}", ms(timings.wait_total_ns(k))))
                .collect();
            let _ = writeln!(vol, "    \"busy_ms\": [{}],", busy.join(", "));
            let _ = writeln!(vol, "    \"wait_ms\": [{}],", waitv.join(", "));
            let _ = writeln!(
                vol,
                "    \"merge_ms\": {:.1},",
                ms(timings.merge_total_ns())
            );
            let _ = writeln!(
                vol,
                "    \"wall_critical_path_ms\": {:.1},",
                ms(timings.wall_critical_path_ns())
            );
            let _ = writeln!(
                vol,
                "    \"wall_speedup_ceiling\": {:.3}",
                timings.wall_speedup_ceiling()
            );
            let _ = write!(vol, "  }}");
        }
        let profile = format!(
            "{{\n  \"schema\": \"netsession-shard-profile/1\",\n  \"deterministic\": {det_json},\n  \"volatile\": {vol}\n}}\n"
        );
        match std::fs::write(dir.join("scale.profile.json"), profile) {
            Ok(()) => eprintln!("# profile sidecar: results/scale.profile.json"),
            Err(e) => eprintln!("# profile sidecar skipped: {e}"),
        }
        match std::fs::write(
            dir.join("scale.shardtrace.json"),
            profiler.timings().export_chrome_json(512),
        ) {
            Ok(()) => eprintln!("# shardtrace sidecar: results/scale.shardtrace.json"),
            Err(e) => eprintln!("# shardtrace sidecar skipped: {e}"),
        }
    }
    // Self-check the artifact we just wrote (cheap, catches drift early).
    let _ = ImbalanceStats::parse_json(&det_json).expect("deterministic profile round-trips");

    eprintln!(
        "# wall {:.1} s, {:.0} events/s, peak RSS {} KiB",
        wall,
        out.events as f64 / wall,
        peak_rss_kb().unwrap_or(0)
    );
}
