//! `scale` — the million-peer sharded-runner bench and determinism gate.
//!
//! Runs [`netsession_hybrid::run_scaled`] at a configurable population and
//! prints the deterministic merged report — now followed by the shard
//! profiler's load-imbalance report — on **stdout** (byte-identical
//! run-to-run and parallel-vs-sequential — `scripts/check.sh` diffs the
//! two). Wall-clock and peak-RSS timings go to **stderr**, keeping stdout
//! replayable, and three sidecars land in `results/`:
//!
//! - `scale.metrics.json` — registry snapshot (incl. the idempotent
//!   `shard.*` counters), PR 1 convention;
//! - `scale.profile.json` — `netsession-shard-profile/1`: the
//!   deterministic imbalance profile plus a clearly separated volatile
//!   timing section (busy / barrier-wait / merge wall time);
//! - `scale.shardtrace.json` — Perfetto/Chrome timeline, one track per
//!   shard, slices named busy/wait/merge — plus virtual-time counter
//!   tracks for the merged time series;
//! - `scale.timeseries.json` — `netsession-timeseries/1`: the merged
//!   per-(metric, region) sim-hour series, the structured injected-fault
//!   log, and the `AlertEngine` detections replayed over the series.
//!
//! ```text
//! scale                        1M peers, 31 days, 16 sub-shards, parallel
//! scale --smoke                20k peers, 7 days, 2 shards (CI gate scale)
//! scale --sequential           run the sequential oracle instead
//! scale --chaos                inject FaultSchedule::scaled_campaign(days)
//! scale --no-timeseries        disable series sampling (stdout reverts to
//!                              the pre-telemetry byte format)
//! scale --peers N --days N --objects N --shards K --window-secs S --seed S
//! scale --profile-det-out F    also write ONLY the deterministic profile
//!                              JSON to F (the check.sh byte-diff target)
//! scale --timeseries-out F     also write the timeseries sidecar to F
//!                              (the check.sh byte-diff target)
//! scale --lint-profile F       validate a scale.profile.json and exit
//! scale --lint-timeseries F    validate a scale.timeseries.json and exit
//! ```
//!
//! Flag order never matters: explicit value flags override the `--smoke`
//! preset wherever they appear, and the effective config is validated at
//! parse time (`ScaledConfig::validate`) with an actionable error instead
//! of a deep panic. Shards are contiguous sub-region blocks, so `K` may
//! exceed the nine regions (up to `MAX_SHARDS`, and never above the
//! population).

use netsession_core::time::SimDuration;
use netsession_hybrid::alerts::{detected_classes, replay_standard_alerts, SeriesDetection};
use netsession_hybrid::{run_scaled_profiled, FaultSchedule, ScaledAlert, ScaledConfig};
use netsession_logs::{ProfileDigest, SeriesDigest};
use netsession_obs::json::push_str_literal;
use netsession_obs::profile::{ImbalanceStats, ShardProfiler};
use netsession_obs::MergedSeries;
use netsession_obs::MetricsRegistry;
use std::time::Instant;

fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
}

/// The `netsession-timeseries/1` sidecar: schema tag, recomputable series
/// digest, the merged series, the structured injected-fault log (region
/// indices resolved to the series' group labels), and the replayed
/// detections. Deterministic bytes — the check.sh gate diffs the
/// sequential and parallel runs' files directly.
fn timeseries_sidecar_json(
    ts: &MergedSeries,
    alerts: &[ScaledAlert],
    detections: &[SeriesDetection],
) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"schema\": \"netsession-timeseries/1\",");
    let _ = writeln!(s, "  \"digest\": \"{}\",", SeriesDigest::fingerprint(ts));
    let _ = write!(s, "  \"series\": {},\n  \"alerts\": [", ts.to_json());
    for (i, a) in alerts.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("\n    {\"class\": ");
        push_str_literal(&mut s, a.class);
        let _ = write!(
            s,
            ", \"at_hours\": {}, \"window\": {}, \"region\": ",
            a.at_hours, a.window
        );
        push_str_literal(&mut s, &ts.groups[a.region as usize]);
        let _ = write!(s, ", \"detail\": {}}}", a.detail);
    }
    if !alerts.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("],\n  \"detections\": [");
    for (i, d) in detections.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("\n    {\"region\": ");
        match &d.region {
            Some(r) => push_str_literal(&mut s, r),
            None => s.push_str("null"),
        }
        s.push_str(", \"rule\": ");
        push_str_literal(&mut s, &d.event.rule);
        let _ = write!(
            s,
            ", \"raised\": {}, \"at_us\": {}, \"message\": ",
            d.event.raised, d.event.at_us
        );
        push_str_literal(&mut s, &d.event.message);
        s.push('}');
    }
    if !detections.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("]\n}\n");
    s
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    // Overrides are collected first and applied after the base config is
    // chosen, so `--shards 16 --smoke` and `--smoke --shards 16` mean the
    // same thing (explicit flags always beat the smoke preset).
    let mut smoke = false;
    let mut parallel = true;
    let mut chaos = false;
    let mut timeseries = true;
    let mut det_out: Option<String> = None;
    let mut ts_out: Option<String> = None;
    let mut peers: Option<u64> = None;
    let mut objects: Option<u64> = None;
    let mut days: Option<u64> = None;
    let mut shards: Option<usize> = None;
    let mut window_secs: Option<u64> = None;
    let mut seed: Option<u64> = None;
    let mut i = 1;
    let next = |argv: &[String], i: &mut usize, flag: &str| -> u64 {
        let v = argv
            .get(*i + 1)
            .unwrap_or_else(|| panic!("{flag} <n>"))
            .parse()
            .unwrap_or_else(|_| panic!("{flag} <n>"));
        *i += 2;
        v
    };
    let next_str = |argv: &[String], i: &mut usize, flag: &str| -> String {
        let v = argv
            .get(*i + 1)
            .unwrap_or_else(|| panic!("{flag} <path>"))
            .clone();
        *i += 2;
        v
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--smoke" => {
                smoke = true;
                i += 1;
            }
            "--parallel" => {
                parallel = true;
                i += 1;
            }
            "--sequential" => {
                parallel = false;
                i += 1;
            }
            "--peers" => peers = Some(next(&argv, &mut i, "--peers")),
            "--objects" => objects = Some(next(&argv, &mut i, "--objects")),
            "--days" => days = Some(next(&argv, &mut i, "--days")),
            "--shards" => shards = Some(next(&argv, &mut i, "--shards") as usize),
            "--window-secs" => window_secs = Some(next(&argv, &mut i, "--window-secs")),
            "--seed" => seed = Some(next(&argv, &mut i, "--seed")),
            "--chaos" => {
                chaos = true;
                i += 1;
            }
            "--no-timeseries" => {
                timeseries = false;
                i += 1;
            }
            "--profile-det-out" => det_out = Some(next_str(&argv, &mut i, "--profile-det-out")),
            "--timeseries-out" => ts_out = Some(next_str(&argv, &mut i, "--timeseries-out")),
            "--lint-timeseries" => {
                let path = next_str(&argv, &mut i, "--lint-timeseries");
                match netsession_bench::ts_lint::lint_timeseries(&path) {
                    Ok(()) => {
                        println!("timeseries lint OK: {path}");
                        return;
                    }
                    Err(e) => {
                        eprintln!("timeseries lint FAILED: {e}");
                        std::process::exit(1);
                    }
                }
            }
            "--lint-profile" => {
                let path = next_str(&argv, &mut i, "--lint-profile");
                match netsession_bench::profile_lint::lint_profile(&path) {
                    Ok(()) => {
                        println!("profile lint OK: {path}");
                        return;
                    }
                    Err(e) => {
                        eprintln!("profile lint FAILED: {e}");
                        std::process::exit(1);
                    }
                }
            }
            other => panic!("unknown flag {other}"),
        }
    }

    let mut cfg = if smoke {
        ScaledConfig::smoke()
    } else {
        ScaledConfig {
            peers: 1_000_000,
            objects: 20_000,
            days: 31,
            shards: 16,
            ..ScaledConfig::default()
        }
    };
    if let Some(v) = peers {
        cfg.peers = v;
    }
    if let Some(v) = objects {
        cfg.objects = v;
    }
    if let Some(v) = days {
        cfg.days = v;
    }
    if let Some(v) = shards {
        cfg.shards = v;
    }
    if let Some(v) = window_secs {
        cfg.window = SimDuration::from_secs(v);
    }
    if let Some(v) = seed {
        cfg.seed = v;
    }
    cfg.timeseries = timeseries;
    if chaos {
        cfg.faults = FaultSchedule::scaled_campaign(cfg.days);
    }
    // Validate the *effective* config here, where the error can name the
    // flag to fix — not as a panic deep inside the world constructor.
    if let Err(e) = cfg.validate() {
        eprintln!("scale: invalid configuration: {e}");
        std::process::exit(2);
    }

    eprintln!(
        "# scale: {} peers, {} days, {} shards, {}",
        cfg.peers,
        cfg.days,
        cfg.shards,
        if parallel { "parallel" } else { "sequential" }
    );
    let registry = MetricsRegistry::new();
    let profiler = ShardProfiler::new().with_sink(Box::new(ProfileDigest::new()));
    let t = Instant::now();
    let (out, profiler) = run_scaled_profiled(&cfg, parallel, Some(&registry), Some(profiler));
    let wall = t.elapsed().as_secs_f64();
    let profiler = profiler.expect("profiler rides the whole run");
    let stats = profiler.exec().stats();
    let stream = profiler.stream_fingerprint().expect("digest sink attached");

    // Deterministic stdout: merged report, then the shard profile, then
    // the time-series fingerprint and detections (sampling on only — with
    // `--no-timeseries` these lines vanish and stdout is byte-identical
    // to the pre-telemetry format). Every half is byte-identical
    // sequential-vs-parallel and run-to-run.
    print!("{}", out.report());
    print!(
        "{}",
        stats.render_report(&out.shard_labels, &out.shard_peers)
    );
    println!("  stream {stream}");
    let detections = out.timeseries.as_ref().map(replay_standard_alerts);
    if let (Some(ts), Some(dets)) = (&out.timeseries, &detections) {
        println!(
            "timeseries: windows={} metrics={} digest={}",
            ts.windows,
            ts.metrics.len(),
            SeriesDigest::fingerprint(ts)
        );
        let raised = dets.iter().filter(|d| d.event.raised).count();
        let classes = detected_classes(dets);
        println!(
            "detections: {} transitions, {} raised, classes [{}]",
            dets.len(),
            raised,
            classes.join(", ")
        );
    }

    let det_json = stats.to_json(&out.shard_labels, &out.shard_peers, Some(&stream));
    if let Some(path) = det_out {
        if let Err(e) = std::fs::write(&path, format!("{{\n  \"deterministic\": {det_json}\n}}\n"))
        {
            eprintln!("# profile det-out skipped: {e}");
        }
    }
    let ts_sidecar = match (&out.timeseries, &detections) {
        (Some(ts), Some(dets)) => {
            let alerts: Vec<ScaledAlert> = out
                .regions
                .iter()
                .flat_map(|r| r.alerts.iter().copied())
                .collect();
            let sidecar = timeseries_sidecar_json(ts, &alerts, dets);
            // Self-check the artifact before it lands anywhere: the same
            // lint check.sh runs on the committed copy.
            if let Err(e) = netsession_bench::ts_lint::lint_timeseries_text(&sidecar) {
                eprintln!("scale: fresh timeseries sidecar fails its own lint: {e}");
                std::process::exit(1);
            }
            Some(sidecar)
        }
        _ => None,
    };
    if let (Some(path), Some(sidecar)) = (&ts_out, &ts_sidecar) {
        if let Err(e) = std::fs::write(path, sidecar) {
            eprintln!("# timeseries-out skipped: {e}");
        }
    }

    // Sidecars (stderr-announced, stdout untouched).
    netsession_bench::runner::write_metrics_sidecar("scale", &registry);
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_ok() {
        let timings = profiler.timings();
        let ms = |ns: u64| ns as f64 / 1e6;
        let mut vol = String::new();
        {
            use std::fmt::Write;
            let _ = writeln!(vol, "{{");
            let _ = writeln!(
                vol,
                "    \"mode\": \"{}\",",
                if parallel { "parallel" } else { "sequential" }
            );
            let _ = writeln!(
                vol,
                "    \"cpus\": {},",
                std::thread::available_parallelism().map_or(0, |n| n.get())
            );
            let _ = writeln!(vol, "    \"wall_s\": {wall:.3},");
            let busy: Vec<String> = (0..timings.n_shards())
                .map(|k| format!("{:.1}", ms(timings.busy_total_ns(k))))
                .collect();
            let waitv: Vec<String> = (0..timings.n_shards())
                .map(|k| format!("{:.1}", ms(timings.wait_total_ns(k))))
                .collect();
            let _ = writeln!(vol, "    \"busy_ms\": [{}],", busy.join(", "));
            let _ = writeln!(vol, "    \"wait_ms\": [{}],", waitv.join(", "));
            let _ = writeln!(
                vol,
                "    \"merge_ms\": {:.1},",
                ms(timings.merge_total_ns())
            );
            let _ = writeln!(
                vol,
                "    \"wall_critical_path_ms\": {:.1},",
                ms(timings.wall_critical_path_ns())
            );
            let _ = writeln!(
                vol,
                "    \"wall_speedup_ceiling\": {:.3}",
                timings.wall_speedup_ceiling()
            );
            let _ = write!(vol, "  }}");
        }
        let profile = format!(
            "{{\n  \"schema\": \"netsession-shard-profile/1\",\n  \"deterministic\": {det_json},\n  \"volatile\": {vol}\n}}\n"
        );
        match std::fs::write(dir.join("scale.profile.json"), profile) {
            Ok(()) => eprintln!("# profile sidecar: results/scale.profile.json"),
            Err(e) => eprintln!("# profile sidecar skipped: {e}"),
        }
        // Per-shard bucket budget shrinks as shards grow so the export
        // stays under the 1 MiB trace budget at any (K, population).
        let buckets = (2048 / cfg.shards.max(1)).clamp(64, 512);
        let mut trace = profiler.timings().export_chrome_json(buckets);
        if let Some(ts) = &out.timeseries {
            // Counter tracks ride the same trace on their own pid (the
            // slice pids are 0..shards for workers plus one for the
            // barrier) with their own coalescing budget, sized so the
            // whole file stays within the 1 MiB lint at month scale.
            let ts_buckets = (1536 / ts.metrics.len().max(1)).clamp(32, 128);
            let counters = ts.chrome_counter_events(cfg.shards + 1, ts_buckets);
            if let Some(pos) = trace.rfind("\n]}") {
                trace.insert_str(pos, &counters);
            }
        }
        match std::fs::write(dir.join("scale.shardtrace.json"), trace) {
            Ok(()) => eprintln!("# shardtrace sidecar: results/scale.shardtrace.json"),
            Err(e) => eprintln!("# shardtrace sidecar skipped: {e}"),
        }
        if let Some(sidecar) = &ts_sidecar {
            match std::fs::write(dir.join("scale.timeseries.json"), sidecar) {
                Ok(()) => eprintln!("# timeseries sidecar: results/scale.timeseries.json"),
                Err(e) => eprintln!("# timeseries sidecar skipped: {e}"),
            }
        }
    }
    // Self-check the artifact we just wrote (cheap, catches drift early).
    let _ = ImbalanceStats::parse_json(&det_json).expect("deterministic profile round-trips");

    eprintln!(
        "# wall {:.1} s, {:.0} events/s, peak RSS {} KiB",
        wall,
        out.events as f64 / wall,
        peak_rss_kb().unwrap_or(0)
    );
}
