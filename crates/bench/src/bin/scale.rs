//! `scale` — the million-peer sharded-runner bench and determinism gate.
//!
//! Runs [`netsession_hybrid::run_scaled`] at a configurable population and
//! prints the deterministic merged report on **stdout** (byte-identical
//! run-to-run and parallel-vs-sequential — `scripts/check.sh` diffs the
//! two). Wall-clock and peak-RSS timings go to **stderr**, keeping stdout
//! replayable.
//!
//! ```text
//! scale                        1M peers, 31 days, 4 shards, parallel
//! scale --smoke                20k peers, 7 days, 2 shards (CI gate scale)
//! scale --sequential           run the sequential oracle instead
//! scale --peers N --days N --objects N --shards K --window-secs S --seed S
//! ```

use netsession_core::time::SimDuration;
use netsession_hybrid::{run_scaled, ScaledConfig};
use netsession_obs::MetricsRegistry;
use std::time::Instant;

fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let mut cfg = ScaledConfig {
        peers: 1_000_000,
        objects: 20_000,
        days: 31,
        shards: 4,
        ..ScaledConfig::default()
    };
    let mut parallel = true;
    let mut i = 1;
    let next = |argv: &[String], i: &mut usize, flag: &str| -> u64 {
        let v = argv
            .get(*i + 1)
            .unwrap_or_else(|| panic!("{flag} <n>"))
            .parse()
            .unwrap_or_else(|_| panic!("{flag} <n>"));
        *i += 2;
        v
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--smoke" => {
                cfg = ScaledConfig {
                    seed: cfg.seed,
                    ..ScaledConfig::smoke()
                };
                i += 1;
            }
            "--parallel" => {
                parallel = true;
                i += 1;
            }
            "--sequential" => {
                parallel = false;
                i += 1;
            }
            "--peers" => cfg.peers = next(&argv, &mut i, "--peers"),
            "--objects" => cfg.objects = next(&argv, &mut i, "--objects"),
            "--days" => cfg.days = next(&argv, &mut i, "--days"),
            "--shards" => cfg.shards = next(&argv, &mut i, "--shards") as usize,
            "--window-secs" => {
                cfg.window = SimDuration::from_secs(next(&argv, &mut i, "--window-secs"))
            }
            "--seed" => cfg.seed = next(&argv, &mut i, "--seed"),
            other => panic!("unknown flag {other}"),
        }
    }

    eprintln!(
        "# scale: {} peers, {} days, {} shards, {}",
        cfg.peers,
        cfg.days,
        cfg.shards,
        if parallel { "parallel" } else { "sequential" }
    );
    let registry = MetricsRegistry::new();
    let t = Instant::now();
    let out = run_scaled(&cfg, parallel, Some(&registry));
    let wall = t.elapsed().as_secs_f64();
    print!("{}", out.report());
    eprintln!(
        "# wall {:.1} s, {:.0} events/s, peak RSS {} KiB",
        wall,
        out.events as f64 / wall,
        peak_rss_kb().unwrap_or(0)
    );
}
