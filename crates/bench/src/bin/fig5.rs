//! E10 — Fig 5: registered file copies vs. peer efficiency.
//!
//! Paper shape: below ~50 registered copies efficiency is under 10 %, it
//! rises rapidly after that, and reaches ~80 % around 10,000 copies.

use netsession_analytics::efficiency;
use netsession_bench::runner::{
    parse_args, run_default, write_metrics_sidecar, write_trace_sidecar,
};

fn main() {
    let args = parse_args();
    eprintln!("# fig5: peers={} downloads={}", args.peers, args.downloads);
    let out = run_default(&args);
    write_metrics_sidecar("fig5", &out.metrics);
    write_trace_sidecar("fig5", &out.trace);
    let buckets = efficiency::fig5(&out.dataset);

    println!("Fig 5: peer efficiency vs file copies registered during the month");
    println!(
        "{:>14}{:>8}{:>10}{:>9}{:>9}",
        "copies (~)", "files", "mean %", "p20 %", "p80 %"
    );
    for b in &buckets {
        println!(
            "{:>14.0}{:>8}{:>10.1}{:>9.1}{:>9.1}",
            b.copies, b.files, b.mean, b.p20, b.p80
        );
    }
    println!();
    if let (Some(first), Some(last)) = (buckets.first(), buckets.last()) {
        println!(
            "trend: {:.0}% at ~{:.0} copies → {:.0}% at ~{:.0} copies (paper: <10% below 50 copies, ~80% at 10k)",
            first.mean, first.copies, last.mean, last.copies
        );
    }
}
