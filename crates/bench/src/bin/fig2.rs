//! E5 — Fig 2: global distribution of peers ("bubble plot" data).
//!
//! Prints, per country, the number of peers whose first control-plane
//! connection came from there, plus continental shares to compare against
//! §4.2 (North America 27 %, Europe 35 %).

use netsession_analytics::regions;
use netsession_bench::runner::{
    parse_args, run_default, write_metrics_sidecar, write_trace_sidecar,
};
use netsession_world::geo::{continent_of, Continent, WORLD_COUNTRIES};
use std::collections::HashMap;

fn main() {
    let args = parse_args();
    eprintln!("# fig2: peers={} downloads={}", args.peers, args.downloads);
    let out = run_default(&args);
    write_metrics_sidecar("fig2", &out.metrics);
    write_trace_sidecar("fig2", &out.trace);
    let bubbles = regions::fig2_first_connections(&out.dataset);

    println!("Fig 2: first-connection counts per country (bubble sizes)");
    println!("{:<6}{:<24}{:>10}", "iso", "country", "peers");
    for (country_idx, count) in bubbles.iter().take(25) {
        let c = &WORLD_COUNTRIES[*country_idx as usize];
        println!("{:<6}{:<24}{:>10}", c.iso, c.name, count);
    }
    if bubbles.len() > 25 {
        println!("… and {} more countries", bubbles.len() - 25);
    }

    let total: u64 = bubbles.iter().map(|(_, n)| n).sum();
    let mut shares: HashMap<Continent, u64> = HashMap::new();
    for (country_idx, count) in &bubbles {
        let iso = WORLD_COUNTRIES[*country_idx as usize].iso;
        *shares.entry(continent_of(iso)).or_insert(0) += count;
    }
    println!();
    println!("continental shares (paper: North America 27%, Europe 35%):");
    let mut shares: Vec<(Continent, u64)> = shares.into_iter().collect();
    shares.sort_by_key(|(cont, _)| format!("{cont:?}"));
    for (cont, count) in &shares {
        println!(
            "  {:?}: {:.0}%",
            cont,
            *count as f64 / total.max(1) as f64 * 100.0
        );
    }
    println!(
        "countries with peers: {} (paper: 239 incl. territories)",
        bubbles.len()
    );
}
