//! E18 — the §5.1 headline numbers.
//!
//! Paper values: ~31 % of peers upload-enabled; p2p enabled on 1.7 % of
//! files accounting for 57.4 % of bytes; mean peer efficiency for
//! peer-assisted downloads 71.4 %; 70–80 % of peer-assisted traffic
//! offloaded to peers.

use netsession_analytics::overview;
use netsession_bench::runner::{
    parse_args, pct, run_default, write_metrics_sidecar, write_trace_sidecar,
};

fn main() {
    let args = parse_args();
    eprintln!(
        "# headline: peers={} downloads={}",
        args.peers, args.downloads
    );
    let out = run_default(&args);
    write_metrics_sidecar("headline", &out.metrics);
    write_trace_sidecar("headline", &out.trace);
    let h = overview::headline(&out.dataset);

    println!("metric                          paper      measured");
    println!(
        "uploads enabled (peers)         ~31%       {}",
        pct(h.enabled_fraction)
    );
    println!(
        "p2p-enabled files               1.7%       {}",
        pct(h.p2p_file_fraction)
    );
    println!(
        "bytes on p2p-enabled files      57.4%      {}",
        pct(h.p2p_byte_share)
    );
    println!(
        "mean peer efficiency (p2p dls)  71.4%      {}",
        pct(h.mean_peer_efficiency)
    );
    println!(
        "offload (bytes-weighted)        70-80%     {}",
        pct(h.offload_fraction)
    );
    println!();
    println!(
        "downloads logged: {}  completed: {}  abandoned: {}  failed(sys/env): {}/{}",
        out.dataset.downloads.len(),
        out.stats.completed,
        out.stats.abandoned,
        out.stats.failed_system,
        out.stats.failed_env
    );
    println!(
        "p2p bytes: {:.2} TB  edge bytes: {:.2} TB  logins: {}  punch failures: {}",
        out.stats.p2p_bytes as f64 / 1e12,
        out.stats.edge_bytes as f64 / 1e12,
        out.stats.logins,
        out.stats.punch_failures
    );
}
