//! A5 — sweep of the uploads-enabled fraction.
//!
//! §5.1 observes ~31 % enabled and argues the infrastructure "can easily
//! absorb the cost of a few users who decide not to upload" (§3.4). The
//! sweep quantifies how peer efficiency and edge offload scale with the
//! willing-uploader fraction.

use netsession_analytics::overview;
use netsession_bench::runner::{
    config_for, parse_args, write_metrics_sidecar, write_trace_sidecar,
};
use netsession_hybrid::HybridSim;
use netsession_obs::MetricsRegistry;

fn main() {
    let metrics = MetricsRegistry::new();
    let args = parse_args();
    eprintln!(
        "# ablate_enablefrac: peers={} downloads={}",
        args.peers, args.downloads
    );

    println!("A5: uploads-enabled fraction sweep");
    println!(
        "{:>10}{:>16}{:>14}{:>14}",
        "enabled", "mean eff %", "p2p TB", "edge TB"
    );
    let mut baseline_trace = None;
    for frac in [0.0, 0.1, 0.31, 0.6, 1.0] {
        let mut cfg = config_for(&args);
        cfg.enable_fraction_override = Some(frac);
        let out = HybridSim::run_config_with(cfg, &metrics);
        if baseline_trace.is_none() {
            baseline_trace = Some(out.trace.clone());
        }
        let h = overview::headline(&out.dataset);
        println!(
            "{:>9.0}%{:>16.1}{:>14.2}{:>14.2}",
            frac * 100.0,
            h.mean_peer_efficiency * 100.0,
            out.stats.p2p_bytes as f64 / 1e12,
            out.stats.edge_bytes as f64 / 1e12
        );
    }
    println!();
    println!(
        "expectation: efficiency grows with the enabled fraction; ~31% already \
         yields the bulk of the achievable offload (diminishing returns)"
    );

    write_metrics_sidecar("ablate_enablefrac", &metrics);
    if let Some(trace) = &baseline_trace {
        write_trace_sidecar("ablate_enablefrac", trace);
    }
}
