//! E16 — Fig 11: traffic balance on AS-to-AS links.
//!
//! Paper shape: among directly connected heavy uploaders, the pairwise
//! A→B vs B→A byte counts hug the diagonal — no pairwise imbalance either.

use netsession_analytics::astraffic;
use netsession_analytics::stats::Cdf;
use netsession_bench::runner::{
    parse_args, run_default, write_metrics_sidecar, write_trace_sidecar,
};

fn main() {
    let args = parse_args();
    eprintln!("# fig11: peers={} downloads={}", args.peers, args.downloads);
    let out = run_default(&args);
    write_metrics_sidecar("fig11", &out.metrics);
    write_trace_sidecar("fig11", &out.trace);
    let t = astraffic::build(&out.dataset);
    let as_model = &out.scenario.population.as_model;
    let heavy = t.heavy_uploaders(0.02);

    let pairs = t.fig11(&heavy, |a, b| {
        match (as_model.index_of(a), as_model.index_of(b)) {
            (Some(x), Some(y)) => as_model.direct_link(x, y),
            _ => false,
        }
    });

    println!(
        "Fig 11: A→B vs B→A bytes for {} directly connected heavy pairs",
        pairs.len()
    );
    println!("{:>16}{:>16}", "A→B bytes", "B→A bytes");
    for (ab, ba) in pairs.iter().rev().take(20) {
        println!("{:>16}{:>16}", ab, ba);
    }
    let ratios: Vec<f64> = pairs
        .iter()
        .filter(|(ab, ba)| *ab > 0 && *ba > 0)
        .map(|(ab, ba)| *ab as f64 / *ba as f64)
        .collect();
    if !ratios.is_empty() {
        let cdf = Cdf::from_values(ratios.clone());
        let near =
            ratios.iter().filter(|r| **r > 0.5 && **r < 2.0).count() as f64 / ratios.len() as f64;
        println!();
        println!(
            "pairwise balance: median ratio {:.2}; {:.0}% of pairs within 2x (paper: roughly even)",
            cdf.median(),
            near * 100.0
        );
    }
}
