//! Criterion micro-benchmarks for the hot paths: content hashing, wire
//! codec, piece bookkeeping, max-min fair recomputation, the selection
//! ladder, the event queue, and the analytics CDF machinery.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use netsession_control::directory::{DirectoryNode, PeerRecord};
use netsession_control::selection::{Querier, SelectionPolicy, Selector};
use netsession_core::codec::Wire;
use netsession_core::hash::Sha256;
use netsession_core::id::{AsNumber, Guid, ObjectId, VersionId};
use netsession_core::msg::{ControlMsg, NatType, PeerAddr};
use netsession_core::piece::PieceMap;
use netsession_core::rng::DetRng;
use netsession_core::time::SimTime;
use netsession_core::units::Bandwidth;
use netsession_sim::engine::EventQueue;
use netsession_sim::flownet::FlowNet;

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    for size in [1024usize, 65536, 1 << 20] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, data| {
            b.iter(|| {
                let mut h = Sha256::new();
                h.update(data);
                h.finalize()
            });
        });
    }
    group.finish();
}

fn bench_codec(c: &mut Criterion) {
    let msg = ControlMsg::Login {
        guid: Guid(123456789),
        secondary_guids: vec![netsession_core::id::SecondaryGuid([1, 2, 3, 4, 5]); 5],
        uploads_enabled: true,
        software_version: 40100,
        nat: NatType::PortRestricted,
        addr: PeerAddr {
            ip: 0x7f000001,
            port: 8443,
        },
    };
    let payload = msg.to_payload();
    c.bench_function("codec/encode_login", |b| b.iter(|| msg.to_payload()));
    c.bench_function("codec/decode_login", |b| {
        b.iter(|| ControlMsg::from_payload(&payload).unwrap())
    });
}

fn bench_piecemap(c: &mut Criterion) {
    c.bench_function("piecemap/set_clear_4096", |b| {
        b.iter(|| {
            let mut m = PieceMap::empty(4096);
            for i in 0..4096 {
                m.set(i);
            }
            m.is_complete()
        })
    });
    let mut mine = PieceMap::empty(4096);
    let theirs = PieceMap::full(4096);
    for i in (0..4096).step_by(2) {
        mine.set(i);
    }
    c.bench_function("piecemap/wanted_from_4096", |b| {
        b.iter(|| mine.wanted_from(&theirs).len())
    });
}

fn bench_flownet(c: &mut Criterion) {
    let mut group = c.benchmark_group("flownet/recompute");
    for flows in [100usize, 1000, 4000] {
        group.bench_with_input(BenchmarkId::from_parameter(flows), &flows, |b, &flows| {
            let mut rng = DetRng::seeded(1);
            let mut net = FlowNet::new();
            let nodes: Vec<_> = (0..flows / 4 + 2)
                .map(|_| {
                    net.add_node(
                        Bandwidth::from_mbps(rng.range_f64(0.5, 10.0)),
                        Bandwidth::from_mbps(rng.range_f64(5.0, 100.0)),
                    )
                })
                .collect();
            for _ in 0..flows {
                let s = nodes[rng.index(nodes.len())];
                let mut d = nodes[rng.index(nodes.len())];
                while d == s {
                    d = nodes[rng.index(nodes.len())];
                }
                net.add_flow(s, d, None);
            }
            b.iter(|| net.recompute());
        });
    }
    group.finish();
}

fn bench_selection(c: &mut Criterion) {
    let mut dn = DirectoryNode::new(0);
    let ver = VersionId {
        object: ObjectId(1),
        version: 1,
    };
    for g in 0..5000u64 {
        dn.register(
            PeerRecord {
                guid: Guid(g as u128),
                addr: PeerAddr {
                    ip: g as u32,
                    port: 1,
                },
                asn: AsNumber(100 + (g % 50) as u32),
                area: (g % 20) as u16,
                zone: (g % 9) as u8,
                nat: NatType::FullCone,
            },
            ver,
        );
    }
    let selector = Selector::new(SelectionPolicy::default());
    let querier = Querier {
        guid: Guid(u128::MAX),
        asn: AsNumber(100),
        area: 1,
        zone: 1,
        nat: NatType::PortRestricted,
    };
    let mut rng = DetRng::seeded(2);
    c.bench_function("selection/ladder_5000_holders", |b| {
        b.iter(|| selector.select(&mut dn, ver, &querier, &mut rng).len())
    });
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("engine/schedule_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            let mut rng = DetRng::seeded(3);
            for i in 0..10_000u64 {
                q.schedule(SimTime(rng.next_u64() % 1_000_000_000), i);
            }
            let mut count = 0;
            while q.pop().is_some() {
                count += 1;
            }
            count
        })
    });
}

fn bench_cdf(c: &mut Criterion) {
    let mut rng = DetRng::seeded(4);
    let values: Vec<f64> = (0..100_000).map(|_| rng.lognormal(1.0, 1.5)).collect();
    c.bench_function("analytics/cdf_build_100k", |b| {
        b.iter(|| netsession_analytics::stats::Cdf::from_values(values.clone()).len())
    });
}

criterion_group!(
    benches,
    bench_sha256,
    bench_codec,
    bench_piecemap,
    bench_flownet,
    bench_selection,
    bench_event_queue,
    bench_cdf
);
criterion_main!(benches);
