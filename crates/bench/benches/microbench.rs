//! Criterion micro-benchmarks for the hot paths: content hashing, wire
//! codec, piece bookkeeping, max-min fair recomputation, the selection
//! ladder, the event queue, and the analytics CDF machinery.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use netsession_control::directory::{DirectoryNode, PeerRecord};
use netsession_control::selection::{Querier, SelectionPolicy, Selector};
use netsession_core::codec::Wire;
use netsession_core::hash::Sha256;
use netsession_core::id::{AsNumber, Guid, ObjectId, VersionId};
use netsession_core::msg::{ControlMsg, NatType, PeerAddr};
use netsession_core::piece::PieceMap;
use netsession_core::rng::DetRng;
use netsession_core::time::SimTime;
use netsession_core::units::Bandwidth;
use netsession_sim::engine::EventQueue;
use netsession_sim::flownet::FlowNet;
use netsession_sim::queue::{BinaryHeapSched, EventSched, TimingWheel};
use std::collections::hash_map::DefaultHasher;
use std::hash::Hasher;

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    for size in [1024usize, 65536, 1 << 20] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, data| {
            b.iter(|| {
                let mut h = Sha256::new();
                h.update(data);
                h.finalize()
            });
        });
    }
    group.finish();
}

fn bench_codec(c: &mut Criterion) {
    let msg = ControlMsg::Login {
        guid: Guid(123456789),
        secondary_guids: vec![netsession_core::id::SecondaryGuid([1, 2, 3, 4, 5]); 5],
        uploads_enabled: true,
        software_version: 40100,
        nat: NatType::PortRestricted,
        addr: PeerAddr {
            ip: 0x7f000001,
            port: 8443,
        },
    };
    let payload = msg.to_payload();
    c.bench_function("codec/encode_login", |b| b.iter(|| msg.to_payload()));
    c.bench_function("codec/decode_login", |b| {
        b.iter(|| ControlMsg::from_payload(&payload).unwrap())
    });
}

fn bench_piecemap(c: &mut Criterion) {
    c.bench_function("piecemap/set_clear_4096", |b| {
        b.iter(|| {
            let mut m = PieceMap::empty(4096);
            for i in 0..4096 {
                m.set(i);
            }
            m.is_complete()
        })
    });
    let mut mine = PieceMap::empty(4096);
    let theirs = PieceMap::full(4096);
    for i in (0..4096).step_by(2) {
        mine.set(i);
    }
    c.bench_function("piecemap/wanted_from_4096", |b| {
        b.iter(|| mine.wanted_from(&theirs).len())
    });
}

fn bench_flownet(c: &mut Criterion) {
    let mut group = c.benchmark_group("flownet/recompute");
    for flows in [100usize, 1000, 4000] {
        group.bench_with_input(BenchmarkId::from_parameter(flows), &flows, |b, &flows| {
            let mut rng = DetRng::seeded(1);
            let mut net = FlowNet::new();
            let nodes: Vec<_> = (0..flows / 4 + 2)
                .map(|_| {
                    net.add_node(
                        Bandwidth::from_mbps(rng.range_f64(0.5, 10.0)),
                        Bandwidth::from_mbps(rng.range_f64(5.0, 100.0)),
                    )
                })
                .collect();
            for _ in 0..flows {
                let s = nodes[rng.index(nodes.len())];
                let mut d = nodes[rng.index(nodes.len())];
                while d == s {
                    d = nodes[rng.index(nodes.len())];
                }
                net.add_flow(s, d, None);
            }
            b.iter(|| net.recompute());
        });
    }
    group.finish();
}

fn bench_selection(c: &mut Criterion) {
    let mut dn = DirectoryNode::new(0);
    let ver = VersionId {
        object: ObjectId(1),
        version: 1,
    };
    for g in 0..5000u64 {
        dn.register(
            PeerRecord {
                guid: Guid(g as u128),
                addr: PeerAddr {
                    ip: g as u32,
                    port: 1,
                },
                asn: AsNumber(100 + (g % 50) as u32),
                area: (g % 20) as u16,
                zone: (g % 9) as u8,
                nat: NatType::FullCone,
            },
            ver,
        );
    }
    let selector = Selector::new(SelectionPolicy::default());
    let querier = Querier {
        guid: Guid(u128::MAX),
        asn: AsNumber(100),
        area: 1,
        zone: 1,
        nat: NatType::PortRestricted,
    };
    let mut rng = DetRng::seeded(2);
    c.bench_function("selection/ladder_5000_holders", |b| {
        b.iter(|| selector.select(&mut dn, ver, &querier, &mut rng).len())
    });
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("engine/schedule_pop_10k", |b| {
        b.iter(|| {
            let mut q: EventQueue<u64> = EventQueue::new();
            let mut rng = DetRng::seeded(3);
            for i in 0..10_000u64 {
                q.schedule(SimTime(rng.next_u64() % 1_000_000_000), i);
            }
            let mut count = 0;
            while q.pop().is_some() {
                count += 1;
            }
            count
        })
    });
}

fn bench_queue_backends(c: &mut Criterion) {
    // Steady-state pop-then-reschedule at a deep queue: the shape of the
    // sim's hot loop, where the wheel's O(1) placement beats heap sifts.
    // (perfbench's event_queue family is the authoritative A/B; this keeps
    // the comparison visible from `cargo bench` too.)
    fn steady<S: EventSched<u64> + Default>(depth: usize, ops: usize) -> u64 {
        let mut rng = DetRng::seeded(0x716266);
        let mut q = S::default();
        let mut seq = 0u64;
        for _ in 0..depth {
            q.push(SimTime(rng.next_u64() % 1_000_000_000), seq, seq);
            seq += 1;
        }
        let mut acc = 0u64;
        for _ in 0..ops {
            let (at, _, e) = q.pop().unwrap();
            acc ^= e;
            q.push(
                SimTime(at.as_micros() + 1 + rng.next_u64() % 60_000_000),
                seq,
                seq,
            );
            seq += 1;
        }
        acc
    }
    let mut group = c.benchmark_group("queue/steady_50k_depth");
    group.bench_function("timing_wheel", |b| {
        b.iter(|| steady::<TimingWheel<u64>>(50_000, 10_000))
    });
    group.bench_function("binary_heap", |b| {
        b.iter(|| steady::<BinaryHeapSched<u64>>(50_000, 10_000))
    });
    group.finish();
}

fn bench_hashers(c: &mut Criterion) {
    let mut rng = DetRng::seeded(0x6b657973);
    let keys: Vec<u64> = (0..100_000).map(|_| rng.next_u64()).collect();
    let mut group = c.benchmark_group("hash/u64_keys_100k");
    group.bench_function("fx", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &k in &keys {
                let mut h = netsession_core::fxhash::FxHasher::default();
                h.write_u64(k);
                acc ^= h.finish();
            }
            acc
        })
    });
    group.bench_function("siphash", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &k in &keys {
                let mut h = DefaultHasher::default();
                h.write_u64(k);
                acc ^= h.finish();
            }
            acc
        })
    });
    group.finish();
}

fn bench_scrape(c: &mut Criterion) {
    // Registry shaped like a real run's scrape load: the alert loop calls
    // this ~43k times per headline run.
    let reg = netsession_obs::MetricsRegistry::new();
    for i in 0..40 {
        reg.counter(&format!("bench.counter_{i:02}")).add(i);
        reg.gauge(&format!("bench.gauge_{i:02}")).set(i as i64);
    }
    for i in 0..15 {
        let h = reg.histogram(&format!("bench.histo_{i:02}"));
        for v in 0..200 {
            h.record(v * 13);
        }
    }
    let mut group = c.benchmark_group("obs/scrape");
    group.bench_function("fresh", |b| b.iter(|| reg.scrape().counters.len()));
    let mut snap = reg.scrape();
    group.bench_function("into_reused", |b| {
        b.iter(|| {
            reg.scrape_into(&mut snap);
            snap.counters.len()
        })
    });
    let mut snap2 = reg.scrape();
    group.bench_function("scalars_only", |b| {
        b.iter(|| {
            reg.scrape_scalars_into(&mut snap2);
            snap2.counters.len()
        })
    });
    group.finish();
}

fn bench_cdf(c: &mut Criterion) {
    let mut rng = DetRng::seeded(4);
    let values: Vec<f64> = (0..100_000).map(|_| rng.lognormal(1.0, 1.5)).collect();
    c.bench_function("analytics/cdf_build_100k", |b| {
        b.iter(|| netsession_analytics::stats::Cdf::from_values(values.clone()).len())
    });
}

criterion_group!(
    benches,
    bench_sha256,
    bench_codec,
    bench_piecemap,
    bench_flownet,
    bench_selection,
    bench_event_queue,
    bench_queue_backends,
    bench_hashers,
    bench_scrape,
    bench_cdf
);
criterion_main!(benches);
