//! End-to-end check that `trace_explain`'s byte split is *numerically*
//! identical to the metrics log: run a small scenario tracing every
//! download, export + re-parse the trace file format, and cross-check
//! each trace's peer/edge byte split against its `DownloadRecord`.

use netsession_bench::explain::{downloads, narrate, parse_trace, summarize};
use netsession_hybrid::{HybridSim, ScenarioConfig};
use std::collections::HashMap;

#[test]
fn trace_byte_splits_match_download_records_exactly() {
    let mut cfg = ScenarioConfig::tiny();
    cfg.obs.trace_sample_every = 1; // trace every download
    let out = HybridSim::run_config(cfg);

    let doc = parse_trace(&out.trace.export_chrome_json()).expect("export parses");
    assert_eq!(doc.dropped, 0, "tiny run must fit in the span bound");
    let dls = downloads(&doc);
    assert!(
        dls.len() >= out.dataset.downloads.len(),
        "every logged download must have a trace ({} traces, {} records)",
        dls.len(),
        out.dataset.downloads.len()
    );

    // Index records by (guid-hex, object, start micros) — guids export as
    // hex strings (they exceed 2^53), the rest use the attrs' truncations.
    let mut records: HashMap<(String, u64, u64), (u64, u64)> = HashMap::new();
    for r in &out.dataset.downloads {
        records.insert(
            (
                format!("{:016x}", r.guid.0 as u64),
                r.object.0,
                r.started.as_micros(),
            ),
            (r.bytes_peers.bytes(), r.bytes_infra.bytes()),
        );
    }

    let mut checked = 0usize;
    for dl in &dls {
        let s = summarize(dl);
        if s.outcome.is_empty() || s.outcome == "denied" {
            // Still active at the cutoff, or denied authorization (denied
            // downloads never produce a DownloadRecord).
            continue;
        }
        let guid = dl
            .root
            .attr("guid")
            .and_then(|v| v.as_str())
            .expect("guid attr");
        let object = s.object.expect("object attr");
        let key = (guid.to_string(), object, s.start_us);
        let (rec_peers, rec_edge) = records
            .get(&key)
            .unwrap_or_else(|| panic!("no DownloadRecord for trace {key:?}"));
        assert_eq!(
            (s.bytes_peers, s.bytes_edge),
            (*rec_peers, *rec_edge),
            "trace {} byte split must match its DownloadRecord",
            s.trace
        );
        checked += 1;
    }
    assert!(checked > 100, "checked {checked} downloads");

    // And the narrative for a download that actually used peers mentions
    // both sides of the split.
    let with_peers = dls
        .iter()
        .map(summarize)
        .find(|s| s.bytes_peers > 0 && s.bytes_edge > 0)
        .expect("some download split bytes between peers and edge");
    let text = narrate(&with_peers);
    assert!(text.contains("from peers"), "{text}");
    assert!(text.contains("from edge"), "{text}");
}
