//! Corrupted-sidecar coverage for the `scale.profile.json` lint: a
//! damaged artifact must fail loudly, never sail through the gate. The
//! regression of record: `deterministic.shards` missing or zero used to
//! default to 0 and vacuously match an empty `per_shard` array.

use netsession_bench::profile_lint::{lint_profile, lint_profile_text};

/// A minimal well-formed sidecar the mutations below corrupt.
fn good() -> String {
    r#"{
  "schema": "netsession-shard-profile/1",
  "deterministic": {
    "shards": 2,
    "windows": 10,
    "events": 100,
    "critical_path_events": 60,
    "critical_path_split_events": 55,
    "speedup_ceiling": 1.6667,
    "split_busiest_ceiling": 1.8182,
    "skew": 1.2,
    "per_shard": [
      { "shard": 0, "regions": "US East", "peers": 10, "events": 60, "share_pct": 60.00 },
      { "shard": 1, "regions": "Europe", "peers": 10, "events": 40, "share_pct": 40.00 }
    ],
    "mail_matrix": [[0, 1], [2, 0]]
  },
  "volatile": {
    "mode": "parallel",
    "cpus": 1,
    "wall_s": 0.5,
    "wall_critical_path_ms": 400.0,
    "wall_speedup_ceiling": 1.2
  }
}"#
    .to_string()
}

#[test]
fn well_formed_sidecar_passes() {
    lint_profile_text(&good()).expect("well-formed profile lints clean");
}

/// The regression: `shards: 0` + empty `per_shard` used to pass because
/// the length check compared `0 == 0`.
#[test]
fn zero_shards_with_empty_per_shard_fails() {
    let corrupt = good().replace("\"shards\": 2,", "\"shards\": 0,").replace(
        r#""per_shard": [
      { "shard": 0, "regions": "US East", "peers": 10, "events": 60, "share_pct": 60.00 },
      { "shard": 1, "regions": "Europe", "peers": 10, "events": 40, "share_pct": 40.00 }
    ],"#,
        r#""per_shard": [],"#,
    );
    let err = lint_profile_text(&corrupt).expect_err("zero-shard profile must fail");
    assert!(
        err.contains("shards is 0"),
        "message must name the corruption: {err}"
    );
}

#[test]
fn missing_shards_key_fails() {
    let corrupt = good().replace("\"shards\": 2,", "");
    let err = lint_profile_text(&corrupt).expect_err("missing shards must fail");
    assert!(err.contains("shards"), "message must name the field: {err}");
}

#[test]
fn per_shard_length_mismatch_names_both_counts() {
    let corrupt = good().replace("\"shards\": 2,", "\"shards\": 3,");
    let err = lint_profile_text(&corrupt).expect_err("length mismatch must fail");
    assert!(
        err.contains("2 entries") && err.contains("3"),
        "message must name both counts: {err}"
    );
}

#[test]
fn volatile_leak_into_deterministic_fails() {
    let corrupt = good().replace("\"skew\": 1.2,", "\"skew\": 1.2, \"wall_s\": 0.5,");
    let err = lint_profile_text(&corrupt).expect_err("wall-clock leak must fail");
    assert!(err.contains("leaked"), "got: {err}");
}

#[test]
fn path_variant_reports_missing_file() {
    let err = lint_profile("/nonexistent/scale.profile.json").expect_err("missing file");
    assert!(err.contains("/nonexistent/scale.profile.json"));
}
