//! Live monitoring e2e: real admin endpoints scraped over real sockets,
//! a monitor server aggregating the fleet, §3.6 problem reports pushed
//! over the framed protocol, and the §3.8 alert story — kill the control
//! server, watch `control-unreachable` raise, restart it on the same
//! address, watch it clear.

use netsession_core::id::{CpCode, Guid, ObjectId};
use netsession_core::msg::ProblemKind;
use netsession_core::policy::DownloadPolicy;
use netsession_edge::accounting::AccountingLedger;
use netsession_edge::auth::EdgeAuth;
use netsession_edge::store::ContentStore;
use netsession_net::control_server::ControlServer;
use netsession_net::edge_server::EdgeHttpServer;
use netsession_net::http::http_get;
use netsession_net::monitor_server::{default_rules, MonitorServer, MonitorTarget};
use netsession_net::peer_daemon::PeerDaemon;
use netsession_obs::parse_prometheus;
use std::sync::Arc;
use std::time::{Duration, Instant};

const T: Duration = Duration::from_secs(2);

fn deploy() -> (ControlServer, EdgeHttpServer) {
    let auth = EdgeAuth::from_seed(42);
    let store = Arc::new(ContentStore::new());
    let content: Vec<u8> = (0..120_000u32)
        .map(|i| (i.wrapping_mul(2654435761)) as u8)
        .collect();
    store.publish_content(
        ObjectId(1),
        CpCode(1),
        content,
        16 * 1024,
        DownloadPolicy::peer_assisted(),
    );
    let edge = EdgeHttpServer::start(
        "127.0.0.1:0",
        store,
        auth.clone(),
        Arc::new(AccountingLedger::new()),
    )
    .unwrap();
    let control = ControlServer::start("127.0.0.1:0", auth).unwrap();
    (control, edge)
}

/// Poll `cond` until it holds or `secs` elapse.
fn wait_for(secs: u64, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + Duration::from_secs(secs);
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    cond()
}

/// Every live server exposes `/metrics` (parseable Prometheus text),
/// `/healthz` (JSON), and `/varz` over its own admin port.
#[test]
fn admin_endpoints_serve_metrics_healthz_and_varz() {
    let (control, edge) = deploy();
    let p = PeerDaemon::start(control.local_addr(), edge.local_addr(), Guid(1), true).unwrap();
    p.download(ObjectId(1)).unwrap();

    // Control: metrics parse back and count the peer's connection.
    let (status, body) = http_get(control.admin_addr(), "/metrics", T).unwrap();
    assert_eq!(status, 200);
    let snap = parse_prometheus(&body).unwrap();
    assert!(snap.counter("net.control.connections") >= 1);
    let (status, body) = http_get(control.admin_addr(), "/healthz", T).unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("\"component\":\"control\""), "{body}");
    assert!(body.contains("\"connected\":1"), "{body}");

    // Edge: bytes served show up in healthz.
    let (status, body) = http_get(edge.admin_addr(), "/metrics", T).unwrap();
    assert_eq!(status, 200);
    assert!(parse_prometheus(&body).unwrap().counter("net.edge.msgs_in") >= 1);
    let (_, body) = http_get(edge.admin_addr(), "/healthz", T).unwrap();
    assert!(body.contains("\"bytes_served\":120000"), "{body}");

    // Peer: download counters over /metrics, link health over /healthz.
    let (status, body) = http_get(p.admin_addr(), "/metrics", T).unwrap();
    assert_eq!(status, 200);
    let snap = parse_prometheus(&body).unwrap();
    assert_eq!(snap.counter("net.peer.downloads_completed"), 1);
    let (_, body) = http_get(p.admin_addr(), "/healthz", T).unwrap();
    assert!(body.contains("\"component\":\"peer\""), "{body}");
    assert!(body.contains("\"control_up\":true"), "{body}");
    assert!(body.contains("\"cached_objects\":1"), "{body}");

    // /varz includes the volatile section the deterministic scrape omits.
    let (status, body) = http_get(p.admin_addr(), "/varz", T).unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("\"volatile\""), "{body}");

    p.shutdown();
    control.shutdown();
    edge.shutdown();
}

/// Satellite: the reconnect supervisor's state — control_up, backoff
/// attempt count, queued backlog — is visible as gauges and in /healthz.
#[test]
fn reconnect_supervisor_state_is_visible_in_gauges_and_healthz() {
    let (control, edge) = deploy();
    let p = PeerDaemon::start(control.local_addr(), edge.local_addr(), Guid(2), true).unwrap();
    assert!(wait_for(5, || p.control_connected()));
    assert_eq!(p.metrics().gauge("net.peer.control_up").get(), 1);
    assert_eq!(
        p.metrics().gauge("net.peer.control_backoff_failures").get(),
        0
    );

    // Crash the control plane: the supervisor lowers control_up and the
    // failed reconnect attempts show up in the backoff gauge.
    control.kill();
    assert!(wait_for(5, || p
        .metrics()
        .gauge("net.peer.control_up")
        .get()
        == 0));
    assert!(wait_for(10, || {
        p.metrics().gauge("net.peer.control_backoff_failures").get() >= 1
    }));
    let (_, body) = http_get(p.admin_addr(), "/healthz", T).unwrap();
    assert!(body.contains("\"control_up\":false"), "{body}");

    // Queued messages during the outage appear as backlog depth.
    p.download(ObjectId(1)).unwrap();
    assert!(
        p.metrics().gauge("net.peer.control_queue_depth").get() >= 0,
        "gauge exists and never goes negative"
    );

    p.shutdown();
    edge.shutdown();
}

/// The headline §3.8 scenario: monitor scrapes the whole deployment,
/// stays quiet while healthy, raises `control-unreachable` when the CN
/// dies, and clears it when the CN comes back on the same address.
#[test]
fn monitor_detects_control_crash_and_clears_after_restart() {
    let (control, edge) = deploy();
    let control_addr = control.local_addr();
    let control_admin = control.admin_addr();
    let p = PeerDaemon::start(control_addr, edge.local_addr(), Guid(3), true).unwrap();
    p.download(ObjectId(1)).unwrap();

    let targets = vec![
        MonitorTarget::new("control", control_admin),
        MonitorTarget::new("edge", edge.admin_addr()),
        MonitorTarget::new("peer-3", p.admin_addr()),
    ];
    let rules = default_rules(&targets);
    let monitor =
        MonitorServer::start("127.0.0.1:0", targets, Duration::from_millis(50), rules).unwrap();

    // Healthy fleet: scrapes complete, aggregation sees the peer's
    // download through the merged snapshot, and nothing fires.
    assert!(wait_for(5, || monitor.scrapes() >= 2));
    assert!(
        monitor.active_alerts().is_empty(),
        "healthy fleet must not alert: {:?}",
        monitor.active_alerts()
    );
    assert_eq!(
        monitor
            .fleet_snapshot()
            .counter("net.peer.downloads_completed"),
        1,
        "fleet view must aggregate peer metrics"
    );
    assert_eq!(monitor.metrics().gauge("monitor.up.control").get(), 1);

    // Kill the CN. The next scrape round fails against its admin port
    // and the zero-window threshold rule fires immediately.
    control.kill();
    assert!(
        wait_for(5, || monitor
            .active_alerts()
            .contains(&"control-unreachable".to_string())),
        "monitor must detect the dead control server: {:?}",
        monitor.alert_log()
    );
    assert_eq!(
        monitor.active_alerts(),
        vec!["control-unreachable".to_string()],
        "only the control target is down"
    );

    // Restart on the same protocol *and* admin addresses (SO_REUSEADDR;
    // retry until the old accept loops release the ports).
    let deadline = Instant::now() + Duration::from_secs(5);
    let control2 = loop {
        match ControlServer::start_with_admin(
            &control_addr.to_string(),
            &control_admin.to_string(),
            EdgeAuth::from_seed(42),
        ) {
            Ok(server) => break server,
            Err(_) if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(25)),
            Err(e) => panic!("restart failed: {e:?}"),
        }
    };
    assert!(
        wait_for(5, || monitor.active_alerts().is_empty()),
        "alert must clear once the control server is back: {:?}",
        monitor.alert_log()
    );

    // The log kept the full raise/clear history.
    let log = monitor.alert_log();
    let raised = log
        .iter()
        .any(|e| e.rule == "control-unreachable" && e.raised);
    let cleared = log
        .iter()
        .any(|e| e.rule == "control-unreachable" && !e.raised);
    assert!(raised && cleared, "{log:?}");

    // The monitor's own admin endpoint reports fleet health.
    let (status, body) = http_get(monitor.admin_addr(), "/healthz", T).unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("\"component\":\"monitor\""), "{body}");
    assert!(body.contains("\"active_alerts\":[]"), "{body}");

    p.shutdown();
    monitor.shutdown();
    control2.shutdown();
    edge.shutdown();
}

/// §3.6: peers push problem reports to the monitoring node over the
/// framed protocol; the monitor counts them per kind and a burst trips
/// the `problem-burst` rate rule.
#[test]
fn peer_problem_reports_reach_the_monitor_fleet_view() {
    let (control, edge) = deploy();
    let p = PeerDaemon::start(control.local_addr(), edge.local_addr(), Guid(4), true).unwrap();

    let targets = vec![MonitorTarget::new("peer-4", p.admin_addr())];
    let rules = default_rules(&targets);
    let monitor =
        MonitorServer::start("127.0.0.1:0", targets, Duration::from_millis(50), rules).unwrap();
    p.set_monitor_addr(monitor.local_addr());

    // A couple of reports of different kinds arrive and are tallied.
    p.report_problem(ProblemKind::Crash, "simulated crash");
    p.report_problem(ProblemKind::DownloadFailure, "object 9 stalled");
    p.report_problem(ProblemKind::DownloadFailure, "object 9 timed out");
    assert!(wait_for(5, || {
        monitor.metrics().counter("monitor.problems.total").get() == 3
    }));
    assert_eq!(monitor.metrics().counter("monitor.problems.crash").get(), 1);
    assert_eq!(
        monitor
            .metrics()
            .counter("monitor.problems.download_failure")
            .get(),
        2
    );

    // The tallies surface in the monitor's own /metrics exposition.
    assert!(wait_for(5, || {
        http_get(monitor.admin_addr(), "/metrics", T)
            .ok()
            .and_then(|(_, body)| parse_prometheus(&body).ok())
            .is_some_and(|snap| snap.counter("monitor.problems.total") == 3)
    }));

    // A burst (default rule: >10 within a minute) raises problem-burst.
    for i in 0..12 {
        p.report_problem(ProblemKind::TraversalFailure, format!("burst {i}"));
    }
    assert!(
        wait_for(5, || monitor
            .active_alerts()
            .contains(&"problem-burst".to_string())),
        "{:?}",
        monitor.alert_log()
    );

    p.shutdown();
    monitor.shutdown();
    control.shutdown();
    edge.shutdown();
}
