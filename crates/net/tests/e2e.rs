//! End-to-end live-runtime test: a real control plane, a real edge server,
//! and real peer daemons exchanging verified content over loopback TCP —
//! the §3.3 Download Manager story executed on actual sockets.

use netsession_core::hash::sha256;
use netsession_core::id::{CpCode, Guid, ObjectId};
use netsession_core::policy::DownloadPolicy;
use netsession_edge::accounting::AccountingLedger;
use netsession_edge::auth::EdgeAuth;
use netsession_edge::store::ContentStore;
use netsession_net::control_server::ControlServer;
use netsession_net::edge_server::EdgeHttpServer;
use netsession_net::peer_daemon::PeerDaemon;
use std::sync::Arc;

struct Deployment {
    control: ControlServer,
    edge: EdgeHttpServer,
    content: Vec<u8>,
}

fn deploy(p2p: bool) -> Deployment {
    let auth = EdgeAuth::from_seed(42);
    let store = Arc::new(ContentStore::new());
    let content: Vec<u8> = (0..300_000u32)
        .map(|i| (i.wrapping_mul(2654435761)) as u8)
        .collect();
    let policy = if p2p {
        DownloadPolicy::peer_assisted()
    } else {
        DownloadPolicy::infrastructure_only()
    };
    store.publish_content(ObjectId(1), CpCode(1), content.clone(), 16 * 1024, policy);
    let ledger = Arc::new(AccountingLedger::new());
    let edge = EdgeHttpServer::start("127.0.0.1:0", store, auth.clone(), ledger).unwrap();
    let control = ControlServer::start("127.0.0.1:0", auth).unwrap();
    Deployment {
        control,
        edge,
        content,
    }
}

#[test]
fn first_peer_downloads_from_edge_then_seeds_others() {
    let d = deploy(true);
    let expected_hash = sha256(&d.content);

    // Peer 1: nothing registered yet — everything from the edge.
    let p1 = PeerDaemon::start(d.control.local_addr(), d.edge.local_addr(), Guid(1), true).unwrap();
    let r1 = p1.download(ObjectId(1)).unwrap();
    assert_eq!(r1.content_hash, expected_hash);
    assert_eq!(r1.bytes_from_peers, 0);
    assert_eq!(r1.bytes_from_edge, d.content.len() as u64);
    assert_eq!(p1.cached_objects(), 1);

    // Give the registration a moment to land.
    std::thread::sleep(std::time::Duration::from_millis(150));

    // Peer 2: should pull most bytes from peer 1.
    let p2 = PeerDaemon::start(d.control.local_addr(), d.edge.local_addr(), Guid(2), true).unwrap();
    let r2 = p2.download(ObjectId(1)).unwrap();
    assert_eq!(r2.content_hash, expected_hash);
    assert!(
        r2.bytes_from_peers > 0,
        "second download must use the swarm"
    );
    assert_eq!(
        r2.bytes_from_peers + r2.bytes_from_edge,
        d.content.len() as u64
    );
    assert!(r2.peer_sources >= 1);

    std::thread::sleep(std::time::Duration::from_millis(150));

    // Peer 3: two seeds now.
    let p3 = PeerDaemon::start(d.control.local_addr(), d.edge.local_addr(), Guid(3), true).unwrap();
    let r3 = p3.download(ObjectId(1)).unwrap();
    assert_eq!(r3.content_hash, expected_hash);
    assert!(r3.bytes_from_peers > 0);

    // Usage reports reached the control plane.
    std::thread::sleep(std::time::Duration::from_millis(150));
    let usage = d.control.drain_usage();
    assert!(usage.len() >= 3, "usage records: {}", usage.len());

    p1.shutdown();
    p2.shutdown();
    p3.shutdown();
    d.control.shutdown();
    d.edge.shutdown();
}

#[test]
fn trace_context_propagates_across_processes() {
    let d = deploy(true);

    // Seed peer 1 from the edge, then let peer 2 download from the swarm.
    let p1 =
        PeerDaemon::start(d.control.local_addr(), d.edge.local_addr(), Guid(41), true).unwrap();
    p1.download(ObjectId(1)).unwrap();
    std::thread::sleep(std::time::Duration::from_millis(150));
    let p2 =
        PeerDaemon::start(d.control.local_addr(), d.edge.local_addr(), Guid(42), true).unwrap();
    let r2 = p2.download(ObjectId(1)).unwrap();
    assert!(r2.bytes_from_peers > 0, "p2 must use the swarm");

    // p2's root download span defines the trace id every other process
    // should have joined via the framing envelope.
    let p2_spans = p2.trace().spans();
    let root = p2_spans
        .iter()
        .find(|s| s.name == "download")
        .expect("client records a root span");
    let trace_id = root.trace;

    // Control server: the query_peers span joined p2's trace.
    let control_spans = d.control.trace().spans();
    assert!(
        control_spans
            .iter()
            .any(|s| s.trace == trace_id && s.name == "query_peers"),
        "control-plane span must join the client's trace: {control_spans:?}"
    );

    // Edge server: the authorize span joined p2's trace.
    let edge_spans = d.edge.trace().spans();
    assert!(
        edge_spans
            .iter()
            .any(|s| s.trace == trace_id && s.name == "authorize"),
        "edge span must join the client's trace: {edge_spans:?}"
    );

    // Uploading peer: serve_upload joined p2's trace.
    let p1_spans = p1.trace().spans();
    assert!(
        p1_spans
            .iter()
            .any(|s| s.trace == trace_id && s.name == "serve_upload"),
        "uploader span must join the downloader's trace: {p1_spans:?}"
    );

    // Span ids from different processes never collide (distinct prefixes).
    let mut all_ids: Vec<u64> = Vec::new();
    for s in p2_spans
        .iter()
        .chain(&control_spans)
        .chain(&edge_spans)
        .chain(&p1_spans)
    {
        all_ids.push(s.id.0);
    }
    let distinct: std::collections::HashSet<u64> = all_ids.iter().copied().collect();
    assert_eq!(distinct.len(), all_ids.len(), "span ids must be unique");

    p1.shutdown();
    p2.shutdown();
    d.control.shutdown();
    d.edge.shutdown();
}

#[test]
fn infra_only_object_never_touches_peers() {
    let d = deploy(false);
    let p1 =
        PeerDaemon::start(d.control.local_addr(), d.edge.local_addr(), Guid(10), true).unwrap();
    let r1 = p1.download(ObjectId(1)).unwrap();
    assert_eq!(r1.bytes_from_peers, 0);

    let p2 =
        PeerDaemon::start(d.control.local_addr(), d.edge.local_addr(), Guid(11), true).unwrap();
    let r2 = p2.download(ObjectId(1)).unwrap();
    // p2p disabled: even with a cached copy nearby, all bytes are edge.
    assert_eq!(r2.bytes_from_peers, 0);
    assert_eq!(r2.bytes_from_edge, d.content.len() as u64);
    p1.shutdown();
    p2.shutdown();
    d.control.shutdown();
    d.edge.shutdown();
}

#[test]
fn upload_disabled_peer_is_never_selected() {
    let d = deploy(true);
    // Peer 1 downloads but has uploads OFF.
    let p1 =
        PeerDaemon::start(d.control.local_addr(), d.edge.local_addr(), Guid(21), false).unwrap();
    let r1 = p1.download(ObjectId(1)).unwrap();
    assert_eq!(r1.bytes_from_peers, 0);
    std::thread::sleep(std::time::Duration::from_millis(150));

    // Peer 2: no seeders available (peer 1 didn't register) → edge only.
    let p2 =
        PeerDaemon::start(d.control.local_addr(), d.edge.local_addr(), Guid(22), true).unwrap();
    let r2 = p2.download(ObjectId(1)).unwrap();
    assert_eq!(
        r2.bytes_from_peers, 0,
        "nobody registered a copy, so the edge serves everything"
    );
    p1.shutdown();
    p2.shutdown();
    d.control.shutdown();
    d.edge.shutdown();
}

/// §3.8 over real sockets: kill the control server mid-deployment, watch
/// daemons degrade to edge-only, restart the server on the same port, and
/// verify the reconnect supervisor re-logs-in and re-registers cached
/// content (fate-sharing) so the swarm works again.
#[test]
fn control_kill_degrades_to_edge_then_reconnect_restores_the_swarm() {
    let Deployment {
        control,
        edge,
        content,
    } = deploy(true);
    let expected_hash = sha256(&content);
    let control_addr = control.local_addr();

    // Seed peer 1 from the edge; its registration lands on the CN.
    let p1 = PeerDaemon::start(control_addr, edge.local_addr(), Guid(51), true).unwrap();
    p1.download(ObjectId(1)).unwrap();
    // Peer 2 joins while the control plane is still healthy.
    let p2 = PeerDaemon::start(control_addr, edge.local_addr(), Guid(52), true).unwrap();
    assert!(p1.control_connected() && p2.control_connected());

    // Crash the CN: every live control connection is severed.
    control.kill();
    let gone = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while (p1.control_connected() || p2.control_connected()) && std::time::Instant::now() < gone {
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    assert!(
        !p2.control_connected(),
        "severed link must be detected and control_up lowered"
    );

    // Download during the outage: no peer query, all bytes from the edge.
    let r2 = p2.download(ObjectId(1)).unwrap();
    assert_eq!(r2.content_hash, expected_hash);
    assert_eq!(r2.bytes_from_peers, 0);
    assert_eq!(r2.bytes_from_edge, content.len() as u64);
    assert_eq!(
        p2.metrics().counter("net.peer.edge_only_downloads").get(),
        1,
        "the degraded download must be counted"
    );

    // Restart the CN on the same address. SO_REUSEADDR lets us rebind as
    // soon as the old accept loop notices the stop flag (~10ms); retry
    // until then.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    let control2 = loop {
        match ControlServer::start(&control_addr.to_string(), EdgeAuth::from_seed(42)) {
            Ok(server) => break server,
            Err(_) if std::time::Instant::now() < deadline => {
                std::thread::sleep(std::time::Duration::from_millis(25));
            }
            Err(e) => panic!("restart on {control_addr} failed: {e:?}"),
        }
    };

    // Both daemons reconnect under backoff and re-register their caches.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while control2.connected() < 2 && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
    assert_eq!(control2.connected(), 2, "both daemons must reconnect");
    let version = netsession_core::id::VersionId {
        object: ObjectId(1),
        version: 1,
    };
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while control2.holder_count(version) < 2 && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
    assert_eq!(
        control2.holder_count(version),
        2,
        "reconnect must re-register both cached copies (fate-sharing)"
    );
    assert!(p2.metrics().counter("net.peer.control_reconnects").get() >= 1);
    assert!(p2.metrics().counter("net.peer.control_disconnects").get() >= 1);
    assert!(
        p2.metrics()
            .counter("net.peer.control_reregistrations")
            .get()
            >= 1
    );

    // A third peer now sees a healthy swarm again.
    let p3 = PeerDaemon::start(control_addr, edge.local_addr(), Guid(53), true).unwrap();
    let r3 = p3.download(ObjectId(1)).unwrap();
    assert_eq!(r3.content_hash, expected_hash);
    assert!(
        r3.bytes_from_peers > 0,
        "after recovery the swarm must serve bytes again"
    );

    p1.shutdown();
    p2.shutdown();
    p3.shutdown();
    control2.shutdown();
    edge.shutdown();
}

/// A control plane that accepts connections but never answers: the peer
/// query times out after 3s and the download must degrade to edge-only
/// (not fail), count the timeout, and close the query span.
#[test]
fn unresponsive_control_times_out_and_degrades_to_edge() {
    let d = deploy(true);

    // Black-hole control server: accepts and holds sockets, says nothing.
    let blackhole = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let bh_addr = blackhole.local_addr().unwrap();
    std::thread::spawn(move || {
        let mut held = Vec::new();
        while let Ok((stream, _)) = blackhole.accept() {
            held.push(stream);
        }
    });

    let p = PeerDaemon::start(bh_addr, d.edge.local_addr(), Guid(61), true).unwrap();
    let r = p.download(ObjectId(1)).unwrap();
    assert_eq!(r.content_hash, sha256(&d.content));
    assert_eq!(r.bytes_from_peers, 0);
    assert_eq!(r.bytes_from_edge, d.content.len() as u64);
    assert_eq!(r.peer_sources, 0);
    assert_eq!(p.metrics().counter("net.peer.query_timeouts").get(), 1);
    assert_eq!(p.metrics().counter("net.peer.downloads_completed").get(), 1);

    // The timed-out query span must still be closed (span-leak fix).
    let spans = p.trace().spans();
    let q = spans
        .iter()
        .find(|s| s.name == "query_peers")
        .expect("query span recorded");
    assert!(q.end_us.is_some(), "timeout path must end the span");

    p.shutdown();
    d.control.shutdown();
    d.edge.shutdown();
}

#[test]
fn unknown_object_is_denied() {
    let d = deploy(true);
    let p = PeerDaemon::start(d.control.local_addr(), d.edge.local_addr(), Guid(31), true).unwrap();
    let err = p.download(ObjectId(404)).unwrap_err();
    assert!(matches!(
        err,
        netsession_core::error::Error::PolicyDenied(_)
    ));
    p.shutdown();
    d.control.shutdown();
    d.edge.shutdown();
}
