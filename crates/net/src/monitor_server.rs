//! Live monitoring-node server (§3.6, §3.8).
//!
//! The operational half of the paper's monitoring story: one process
//! that (a) scrapes every registered admin endpoint's `/metrics` on an
//! interval, aggregates the fleet into a single
//! [`RegistrySnapshot`], (b) accepts §3.6 problem reports pushed by
//! peer daemons over the framed protocol, and (c) evaluates an
//! [`AlertEngine`] — the same engine the hybrid simulator runs over
//! virtual time — against the merged state, so "automated alerts ...
//! notify network engineers in case of large-scale problems" (§3.8).
//!
//! Per-target liveness is tracked as `monitor.up.<name>` gauges (1 =
//! last scrape succeeded): the stock rule set raises
//! `<name>-unreachable` the moment a scrape fails and clears it on the
//! first success after recovery. The monitor exposes its own admin
//! endpoint, so the fleet view is itself scrapeable.

use crate::framing::{read_msg, wall_now};
use crate::http::{http_get, AdminEndpoint, HttpResponse};
use netsession_core::error::{Error, Result};
use netsession_core::msg::MonitorMsg;
use netsession_obs::{
    parse_prometheus, render_prometheus, AlertEngine, AlertEvent, AlertRule, MetricsRegistry,
    RegistrySnapshot, RuleKind,
};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// One scrape target: a live server's admin endpoint.
#[derive(Clone, Debug)]
pub struct MonitorTarget {
    /// Stable name; becomes the `monitor.up.<name>` gauge and the
    /// `<name>-unreachable` rule.
    pub name: String,
    /// The target's admin (HTTP) address.
    pub admin_addr: SocketAddr,
}

impl MonitorTarget {
    /// Convenience constructor.
    pub fn new(name: &str, admin_addr: SocketAddr) -> MonitorTarget {
        MonitorTarget {
            name: name.to_string(),
            admin_addr,
        }
    }
}

/// The stock rule set: one `<name>-unreachable` threshold rule per
/// target (fires on the first failed scrape, clears on recovery) plus a
/// `problem-burst` rate rule over pushed §3.6 problem reports (10
/// within a minute).
pub fn default_rules(targets: &[MonitorTarget]) -> Vec<AlertRule> {
    let mut rules: Vec<AlertRule> = targets
        .iter()
        .map(|t| {
            AlertRule::new(
                &format!("{}-unreachable", t.name),
                &format!("monitor.up.{}", t.name),
                RuleKind::GaugeBelow { limit: 1 },
                0,
            )
        })
        .collect();
    rules.push(AlertRule::new(
        "problem-burst",
        "monitor.problems.total",
        RuleKind::RateAbove { delta: 10 },
        60_000_000,
    ));
    rules
}

struct MonShared {
    targets: Vec<MonitorTarget>,
    /// The monitor's own instruments: per-target `monitor.up.*` gauges,
    /// pushed `monitor.problems.*` counters, scrape bookkeeping.
    metrics: MetricsRegistry,
    /// Last aggregated fleet snapshot (merged target scrapes + own
    /// instruments) — what `/metrics` serves.
    fleet: Mutex<RegistrySnapshot>,
    engine: Mutex<AlertEngine>,
}

impl MonShared {
    /// One scrape round: poll every target, merge, evaluate rules.
    fn scrape_round(&self) {
        let mut fleet = RegistrySnapshot::default();
        for target in &self.targets {
            let up_gauge = self.metrics.gauge(&format!("monitor.up.{}", target.name));
            match http_get(target.admin_addr, "/metrics", Duration::from_secs(1)) {
                Ok((200, body)) => match parse_prometheus(&body) {
                    Ok(snap) => {
                        up_gauge.set(1);
                        fleet.merge(&snap);
                    }
                    Err(_) => {
                        up_gauge.set(0);
                        self.metrics.counter("monitor.scrape_errors").incr();
                    }
                },
                _ => {
                    up_gauge.set(0);
                    self.metrics.counter("monitor.scrape_errors").incr();
                }
            }
        }
        self.metrics.counter("monitor.scrapes").incr();
        // The monitor's own instruments ride along so rules can watch
        // target liveness and pushed problem reports too.
        fleet.merge(&self.metrics.scrape());
        self.engine
            .lock()
            .unwrap()
            .observe(wall_now().as_micros(), &fleet);
        *self.fleet.lock().unwrap() = fleet;
    }
}

/// A running monitoring node.
pub struct MonitorServer {
    local_addr: SocketAddr,
    shared: Arc<MonShared>,
    stop: Arc<AtomicBool>,
    admin: AdminEndpoint,
}

impl MonitorServer {
    /// Start on `addr` (framed listener for pushed problem reports),
    /// scraping `targets` every `interval` and evaluating `rules`
    /// (typically [`default_rules`]). The admin endpoint binds an
    /// ephemeral loopback port.
    pub fn start(
        addr: &str,
        targets: Vec<MonitorTarget>,
        interval: Duration,
        rules: Vec<AlertRule>,
    ) -> Result<MonitorServer> {
        let listener = TcpListener::bind(addr).map_err(|e| Error::Network(format!("bind: {e}")))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| Error::Network(e.to_string()))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| Error::Network(e.to_string()))?;
        let shared = Arc::new(MonShared {
            targets,
            metrics: MetricsRegistry::new(),
            fleet: Mutex::new(RegistrySnapshot::default()),
            engine: Mutex::new(AlertEngine::new(rules)),
        });
        let stop = Arc::new(AtomicBool::new(false));

        // Problem-report listener: short-lived framed connections.
        let stop_for_accept = stop.clone();
        let shared_for_accept = shared.clone();
        std::thread::spawn(move || {
            while !stop_for_accept.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let shared = shared_for_accept.clone();
                        std::thread::spawn(move || receive_problems(stream, shared));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
        });

        // Scrape loop.
        let stop_for_scrape = stop.clone();
        let shared_for_scrape = shared.clone();
        std::thread::spawn(move || {
            while !stop_for_scrape.load(Ordering::Relaxed) {
                shared_for_scrape.scrape_round();
                // Sleep in slices so shutdown stays responsive.
                let end = std::time::Instant::now() + interval;
                while std::time::Instant::now() < end && !stop_for_scrape.load(Ordering::Relaxed) {
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
        });

        let admin = {
            let shared = shared.clone();
            AdminEndpoint::start("127.0.0.1:0", move |path| match path {
                "/metrics" => Some(HttpResponse::text(render_prometheus(
                    &shared.fleet.lock().unwrap(),
                ))),
                "/healthz" => {
                    let engine = shared.engine.lock().unwrap();
                    let active: Vec<String> =
                        engine.active().iter().map(|n| format!("\"{n}\"")).collect();
                    Some(HttpResponse::json(format!(
                        "{{\"status\":\"ok\",\"component\":\"monitor\",\"targets\":{},\
                         \"scrapes\":{},\"active_alerts\":[{}]}}",
                        shared.targets.len(),
                        shared.metrics.counter("monitor.scrapes").get(),
                        active.join(",")
                    )))
                }
                "/varz" => Some(HttpResponse::json(shared.metrics.full_snapshot_json())),
                _ => None,
            })?
        };
        Ok(MonitorServer {
            local_addr,
            shared,
            stop,
            admin,
        })
    }

    /// Where peers push problem reports (framed protocol).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Where the admin (HTTP) endpoint listens.
    pub fn admin_addr(&self) -> SocketAddr {
        self.admin.local_addr()
    }

    /// The monitor's own instruments (per-target `monitor.up.*`,
    /// `monitor.problems.*`, scrape counters).
    pub fn metrics(&self) -> MetricsRegistry {
        self.shared.metrics.clone()
    }

    /// Last aggregated fleet snapshot.
    pub fn fleet_snapshot(&self) -> RegistrySnapshot {
        self.shared.fleet.lock().unwrap().clone()
    }

    /// Completed scrape rounds.
    pub fn scrapes(&self) -> u64 {
        self.shared.metrics.counter("monitor.scrapes").get()
    }

    /// Names of currently firing alerts.
    pub fn active_alerts(&self) -> Vec<String> {
        self.shared
            .engine
            .lock()
            .unwrap()
            .active()
            .iter()
            .map(|s| s.to_string())
            .collect()
    }

    /// Every raise/clear transition so far.
    pub fn alert_log(&self) -> Vec<AlertEvent> {
        self.shared.engine.lock().unwrap().log().to_vec()
    }

    /// Stop scraping and accepting reports.
    pub fn shutdown(self) {
        self.stop.store(true, Ordering::Relaxed);
        self.admin.stop();
    }
}

/// Drain one problem-report connection.
fn receive_problems(mut stream: TcpStream, shared: Arc<MonShared>) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    while let Ok(Some(msg)) = read_msg::<_, MonitorMsg>(&mut stream) {
        let MonitorMsg::Problem { guid, kind, detail } = msg;
        shared.metrics.counter("monitor.problems.total").incr();
        shared
            .metrics
            .counter(&format!("monitor.problems.{}", kind.label()))
            .incr();
        shared
            .metrics
            .record_event_with(wall_now().as_micros(), "monitor", kind.label(), || {
                format!("guid={:016x} {detail}", guid.0 as u64)
            });
    }
}
