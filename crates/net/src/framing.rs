//! Blocking framing over byte streams.
//!
//! Frames are `u32-le length` + payload, exactly as
//! [`netsession_core::codec`] defines them; this module adds the blocking
//! read/write halves used by the threaded live runtime.

use netsession_core::codec::{frame, Wire, MAX_FRAME};
use netsession_core::error::{Error, Result};
use std::io::{Read, Write};

/// Write one message as a frame.
pub fn write_msg<W, T>(writer: &mut W, msg: &T) -> Result<()>
where
    W: Write,
    T: Wire,
{
    let payload = msg.to_payload();
    let framed = frame(&payload);
    writer
        .write_all(&framed)
        .map_err(|e| Error::Network(format!("write: {e}")))?;
    writer
        .flush()
        .map_err(|e| Error::Network(format!("flush: {e}")))?;
    Ok(())
}

/// Read one message from a frame. Returns `None` on clean EOF at a frame
/// boundary.
pub fn read_msg<R, T>(reader: &mut R) -> Result<Option<T>>
where
    R: Read,
    T: Wire,
{
    let mut len_buf = [0u8; 4];
    match reader.read_exact(&mut len_buf) {
        Ok(_) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(Error::Network(format!("read len: {e}"))),
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(Error::Codec(format!("frame length {len} exceeds maximum")));
    }
    let mut payload = vec![0u8; len];
    reader
        .read_exact(&mut payload)
        .map_err(|e| Error::Network(format!("read payload: {e}")))?;
    Ok(Some(T::from_payload(&payload)?))
}

/// Process-wide wall clock mapped onto [`netsession_core::time::SimTime`]:
/// zero at first use. All live components in one process share it, so
/// token expiries behave as in the simulator.
pub fn wall_now() -> netsession_core::time::SimTime {
    use std::sync::OnceLock;
    use std::time::Instant;
    static START: OnceLock<Instant> = OnceLock::new();
    let start = START.get_or_init(Instant::now);
    netsession_core::time::SimTime(start.elapsed().as_micros() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsession_core::msg::SwarmMsg;
    use std::net::{TcpListener, TcpStream};

    /// A connected loopback socket pair (stand-in for tokio's duplex).
    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    #[test]
    fn roundtrip_over_socket_pair() {
        let (mut a, mut b) = pair();
        let msg = SwarmMsg::Request { piece: 7 };
        write_msg(&mut a, &msg).unwrap();
        let got: Option<SwarmMsg> = read_msg(&mut b).unwrap();
        assert_eq!(got, Some(msg));
    }

    #[test]
    fn clean_eof_returns_none() {
        let (a, mut b) = pair();
        drop(a);
        let got: Option<SwarmMsg> = read_msg(&mut b).unwrap();
        assert!(got.is_none());
    }

    #[test]
    fn oversized_frame_rejected() {
        let (mut a, mut b) = pair();
        use std::io::Write as _;
        a.write_all(&u32::MAX.to_le_bytes()).unwrap();
        let got: Result<Option<SwarmMsg>> = read_msg(&mut b);
        assert!(got.is_err());
    }

    #[test]
    fn multiple_messages_in_sequence() {
        let (mut a, mut b) = pair();
        for piece in 0..10u32 {
            write_msg(&mut a, &SwarmMsg::Request { piece }).unwrap();
        }
        for piece in 0..10u32 {
            let got: Option<SwarmMsg> = read_msg(&mut b).unwrap();
            assert_eq!(got, Some(SwarmMsg::Request { piece }));
        }
    }
}
