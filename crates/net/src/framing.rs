//! Blocking framing over byte streams.
//!
//! Frames are `u32-le length` + envelope, where the envelope wraps the
//! [`netsession_core::codec`] message payload with a one-byte flags field
//! and an optional 16-byte trace context (trace id + span id, both
//! little-endian u64). The length counts the whole envelope, so readers
//! that predate a given flag still skip the frame cleanly. The trace
//! context is how a client's download trace crosses process boundaries:
//! servers [`netsession_obs::TraceSink::join`] the received ids so their
//! spans land in the caller's trace.

use netsession_core::codec::{Wire, MAX_FRAME};
use netsession_core::error::{Error, Result};
use netsession_obs::{SpanId, TraceId};
use std::io::{Read, Write};

/// Envelope flag: the frame carries a 16-byte trace context.
const FLAG_TRACED: u8 = 0x01;

/// Envelope overhead ceiling: flags byte + trace context.
const MAX_ENVELOPE: usize = 1 + 16;

/// Write one message as a frame with no trace context.
pub fn write_msg<W, T>(writer: &mut W, msg: &T) -> Result<()>
where
    W: Write,
    T: Wire,
{
    write_msg_traced(writer, msg, None)
}

/// Write one message as a frame, stamping the sender's trace context into
/// the envelope when given.
pub fn write_msg_traced<W, T>(writer: &mut W, msg: &T, ctx: Option<(TraceId, SpanId)>) -> Result<()>
where
    W: Write,
    T: Wire,
{
    let payload = msg.to_payload();
    let header = 1 + if ctx.is_some() { 16 } else { 0 };
    let mut framed = Vec::with_capacity(4 + header + payload.len());
    framed.extend_from_slice(&((header + payload.len()) as u32).to_le_bytes());
    match ctx {
        Some((trace, span)) => {
            framed.push(FLAG_TRACED);
            framed.extend_from_slice(&trace.0.to_le_bytes());
            framed.extend_from_slice(&span.0.to_le_bytes());
        }
        None => framed.push(0),
    }
    framed.extend_from_slice(&payload);
    writer
        .write_all(&framed)
        .map_err(|e| Error::Network(format!("write: {e}")))?;
    writer
        .flush()
        .map_err(|e| Error::Network(format!("flush: {e}")))?;
    Ok(())
}

/// Read one message from a frame, discarding any trace context. Returns
/// `None` on clean EOF at a frame boundary.
pub fn read_msg<R, T>(reader: &mut R) -> Result<Option<T>>
where
    R: Read,
    T: Wire,
{
    Ok(read_msg_traced(reader)?.map(|(msg, _)| msg))
}

/// Read one message from a frame together with the sender's trace context
/// (if the sender stamped one). Returns `None` on clean EOF at a frame
/// boundary.
#[allow(clippy::type_complexity)]
pub fn read_msg_traced<R, T>(reader: &mut R) -> Result<Option<(T, Option<(TraceId, SpanId)>)>>
where
    R: Read,
    T: Wire,
{
    let mut len_buf = [0u8; 4];
    match reader.read_exact(&mut len_buf) {
        Ok(_) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(Error::Network(format!("read len: {e}"))),
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME + MAX_ENVELOPE {
        return Err(Error::Codec(format!("frame length {len} exceeds maximum")));
    }
    if len == 0 {
        return Err(Error::Codec("empty frame (missing envelope flags)".into()));
    }
    let mut body = vec![0u8; len];
    reader
        .read_exact(&mut body)
        .map_err(|e| Error::Network(format!("read payload: {e}")))?;
    let flags = body[0];
    if flags & !FLAG_TRACED != 0 {
        return Err(Error::Codec(format!("unknown envelope flags {flags:#04x}")));
    }
    let (ctx, payload) = if flags & FLAG_TRACED != 0 {
        if body.len() < 1 + 16 {
            return Err(Error::Codec("truncated trace context".into()));
        }
        let trace = u64::from_le_bytes(body[1..9].try_into().expect("8 bytes"));
        let span = u64::from_le_bytes(body[9..17].try_into().expect("8 bytes"));
        (Some((TraceId(trace), SpanId(span))), &body[17..])
    } else {
        (None, &body[1..])
    };
    Ok(Some((T::from_payload(payload)?, ctx)))
}

/// Process-wide wall clock mapped onto [`netsession_core::time::SimTime`]:
/// zero at first use. All live components in one process share it, so
/// token expiries behave as in the simulator.
pub fn wall_now() -> netsession_core::time::SimTime {
    use std::sync::OnceLock;
    use std::time::Instant;
    static START: OnceLock<Instant> = OnceLock::new();
    let start = START.get_or_init(Instant::now);
    netsession_core::time::SimTime(start.elapsed().as_micros() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsession_core::msg::SwarmMsg;
    use std::net::{TcpListener, TcpStream};

    /// A connected loopback socket pair (stand-in for tokio's duplex).
    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    #[test]
    fn roundtrip_over_socket_pair() {
        let (mut a, mut b) = pair();
        let msg = SwarmMsg::Request { piece: 7 };
        write_msg(&mut a, &msg).unwrap();
        let got: Option<SwarmMsg> = read_msg(&mut b).unwrap();
        assert_eq!(got, Some(msg));
    }

    #[test]
    fn trace_context_survives_the_wire() {
        let (mut a, mut b) = pair();
        let msg = SwarmMsg::Request { piece: 7 };
        let ctx = (
            TraceId(0x00ab_cdef_0123_4567),
            SpanId(0x89ab_cdef_0000_0001),
        );
        write_msg_traced(&mut a, &msg, Some(ctx)).unwrap();
        let (got, got_ctx) = read_msg_traced::<_, SwarmMsg>(&mut b).unwrap().unwrap();
        assert_eq!(got, msg);
        assert_eq!(got_ctx, Some(ctx));
    }

    #[test]
    fn untraced_frame_reads_as_no_context() {
        let (mut a, mut b) = pair();
        write_msg(&mut a, &SwarmMsg::Request { piece: 3 }).unwrap();
        let (_, ctx) = read_msg_traced::<_, SwarmMsg>(&mut b).unwrap().unwrap();
        assert_eq!(ctx, None);
    }

    #[test]
    fn clean_eof_returns_none() {
        let (a, mut b) = pair();
        drop(a);
        let got: Option<SwarmMsg> = read_msg(&mut b).unwrap();
        assert!(got.is_none());
    }

    #[test]
    fn oversized_frame_rejected() {
        let (mut a, mut b) = pair();
        use std::io::Write as _;
        a.write_all(&u32::MAX.to_le_bytes()).unwrap();
        let got: Result<Option<SwarmMsg>> = read_msg(&mut b);
        assert!(got.is_err());
    }

    #[test]
    fn multiple_messages_in_sequence() {
        let (mut a, mut b) = pair();
        for piece in 0..10u32 {
            write_msg(&mut a, &SwarmMsg::Request { piece }).unwrap();
        }
        for piece in 0..10u32 {
            let got: Option<SwarmMsg> = read_msg(&mut b).unwrap();
            assert_eq!(got, Some(SwarmMsg::Request { piece }));
        }
    }
}
