//! Async framing over tokio streams.
//!
//! Frames are `u32-le length` + payload, exactly as
//! [`netsession_core::codec`] defines them; this module adds the async
//! read/write halves the tokio tutorial's framing chapter describes.

use netsession_core::codec::{frame, Wire, MAX_FRAME};
use netsession_core::error::{Error, Result};
use tokio::io::{AsyncReadExt, AsyncWriteExt};

/// Write one message as a frame.
pub async fn write_msg<W, T>(writer: &mut W, msg: &T) -> Result<()>
where
    W: AsyncWriteExt + Unpin,
    T: Wire,
{
    let payload = msg.to_payload();
    let framed = frame(&payload);
    writer
        .write_all(&framed)
        .await
        .map_err(|e| Error::Network(format!("write: {e}")))?;
    writer
        .flush()
        .await
        .map_err(|e| Error::Network(format!("flush: {e}")))?;
    Ok(())
}

/// Read one message from a frame. Returns `None` on clean EOF at a frame
/// boundary.
pub async fn read_msg<R, T>(reader: &mut R) -> Result<Option<T>>
where
    R: AsyncReadExt + Unpin,
    T: Wire,
{
    let mut len_buf = [0u8; 4];
    match reader.read_exact(&mut len_buf).await {
        Ok(_) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(Error::Network(format!("read len: {e}"))),
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(Error::Codec(format!("frame length {len} exceeds maximum")));
    }
    let mut payload = vec![0u8; len];
    reader
        .read_exact(&mut payload)
        .await
        .map_err(|e| Error::Network(format!("read payload: {e}")))?;
    Ok(Some(T::from_payload(&payload)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsession_core::msg::SwarmMsg;

    #[tokio::test]
    async fn roundtrip_over_duplex() {
        let (mut a, mut b) = tokio::io::duplex(1024);
        let msg = SwarmMsg::Request { piece: 7 };
        write_msg(&mut a, &msg).await.unwrap();
        let got: Option<SwarmMsg> = read_msg(&mut b).await.unwrap();
        assert_eq!(got, Some(msg));
    }

    #[tokio::test]
    async fn clean_eof_returns_none() {
        let (a, mut b) = tokio::io::duplex(64);
        drop(a);
        let got: Option<SwarmMsg> = read_msg(&mut b).await.unwrap();
        assert!(got.is_none());
    }

    #[tokio::test]
    async fn oversized_frame_rejected() {
        let (mut a, mut b) = tokio::io::duplex(64);
        tokio::io::AsyncWriteExt::write_all(&mut a, &u32::MAX.to_le_bytes())
            .await
            .unwrap();
        let got: Result<Option<SwarmMsg>> = read_msg(&mut b).await;
        assert!(got.is_err());
    }

    #[tokio::test]
    async fn multiple_messages_in_sequence() {
        let (mut a, mut b) = tokio::io::duplex(4096);
        for piece in 0..10u32 {
            write_msg(&mut a, &SwarmMsg::Request { piece }).await.unwrap();
        }
        for piece in 0..10u32 {
            let got: Option<SwarmMsg> = read_msg(&mut b).await.unwrap();
            assert_eq!(got, Some(SwarmMsg::Request { piece }));
        }
    }
}

/// Process-wide wall clock mapped onto [`netsession_core::time::SimTime`]:
/// zero at first use. All live components in one process share it, so
/// token expiries behave as in the simulator.
pub fn wall_now() -> netsession_core::time::SimTime {
    use std::sync::OnceLock;
    use std::time::Instant;
    static START: OnceLock<Instant> = OnceLock::new();
    let start = START.get_or_init(Instant::now);
    netsession_core::time::SimTime(start.elapsed().as_micros() as u64)
}
