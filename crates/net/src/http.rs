//! Minimal HTTP/1.0 admin plumbing for live introspection.
//!
//! Every live server (control, edge, peer daemon, monitor) exposes an
//! [`AdminEndpoint`]: a tiny HTTP/1.0 responder on its own loopback
//! listener, serving `/metrics` (Prometheus text exposition), `/healthz`
//! (JSON liveness), and `/varz` (full JSON snapshot). It rides the same
//! plain-thread TCP style as the framed protocol servers — no external
//! dependencies, nonblocking accept with a 5 ms poll, one short-lived
//! thread per request, `Connection: close` semantics.
//!
//! The admin listener is a *separate port* from the framed protocol
//! listener by design: framed connections start with a little-endian
//! length prefix, so the bytes of `"GET "` would be misparsed as a
//! 0x20544547-byte frame. Keeping HTTP off the protocol port avoids that
//! ambiguity entirely.
//!
//! [`http_get`] is the matching scrape client used by the monitor server
//! and the e2e tests.

use netsession_core::error::{Error, Result};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How long one admin request may take end-to-end before the connection
/// is dropped (defense against wedged scrapers holding threads).
const REQUEST_TIMEOUT: Duration = Duration::from_secs(2);

/// Response from an admin route handler.
pub struct HttpResponse {
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
}

impl HttpResponse {
    /// A `text/plain` response (Prometheus exposition uses this too).
    pub fn text(body: String) -> HttpResponse {
        HttpResponse {
            content_type: "text/plain; charset=utf-8",
            body,
        }
    }

    /// An `application/json` response.
    pub fn json(body: String) -> HttpResponse {
        HttpResponse {
            content_type: "application/json",
            body,
        }
    }
}

/// A running HTTP/1.0 admin listener. Routing is a single closure:
/// `path -> Some(response)` or `None` for 404.
pub struct AdminEndpoint {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
}

impl AdminEndpoint {
    /// Bind `addr` (typically `127.0.0.1:0`) and serve requests through
    /// `handler` until [`AdminEndpoint::stop`].
    pub fn start<H>(addr: &str, handler: H) -> Result<AdminEndpoint>
    where
        H: Fn(&str) -> Option<HttpResponse> + Send + Sync + 'static,
    {
        let listener =
            TcpListener::bind(addr).map_err(|e| Error::Network(format!("admin bind: {e}")))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| Error::Network(e.to_string()))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| Error::Network(e.to_string()))?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_for_loop = stop.clone();
        let handler = Arc::new(handler);
        std::thread::spawn(move || {
            while !stop_for_loop.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let handler = handler.clone();
                        std::thread::spawn(move || {
                            let _ = serve_request(stream, &*handler);
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(AdminEndpoint { local_addr, stop })
    }

    /// Where the admin listener is bound.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stop accepting admin requests (in-flight ones finish).
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }
}

fn serve_request<H>(mut stream: TcpStream, handler: &H) -> std::io::Result<()>
where
    H: Fn(&str) -> Option<HttpResponse>,
{
    stream.set_read_timeout(Some(REQUEST_TIMEOUT))?;
    stream.set_write_timeout(Some(REQUEST_TIMEOUT))?;
    // Read until the end of the header block (we ignore headers and any
    // body — admin routes are all GETs).
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    while !buf.windows(4).any(|w| w == b"\r\n\r\n") {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Ok(());
        }
        buf.extend_from_slice(&chunk[..n]);
        if buf.len() > 16 * 1024 {
            break; // Oversized header block: treat as malformed.
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let request_line = head.lines().next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let (method, path) = (
        parts.next().unwrap_or_default(),
        parts.next().unwrap_or_default(),
    );
    let (status, resp) = if method != "GET" {
        (
            "405 Method Not Allowed",
            HttpResponse::text("method not allowed\n".to_string()),
        )
    } else {
        match handler(path) {
            Some(resp) => ("200 OK", resp),
            None => (
                "404 Not Found",
                HttpResponse::text("not found\n".to_string()),
            ),
        }
    };
    let header = format!(
        "HTTP/1.0 {status}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        resp.content_type,
        resp.body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(resp.body.as_bytes())?;
    stream.flush()
}

/// The standard admin route set every live server exposes:
///
/// - `/metrics` — Prometheus text exposition of the deterministic
///   instruments ([`netsession_obs::render_prometheus`]);
/// - `/healthz` — small JSON liveness document from `health` (each
///   server reports its own fields; the closure runs per request);
/// - `/varz` — the full JSON snapshot, volatile section included.
pub fn standard_routes<F>(
    metrics: netsession_obs::MetricsRegistry,
    health: F,
) -> impl Fn(&str) -> Option<HttpResponse> + Send + Sync + 'static
where
    F: Fn() -> String + Send + Sync + 'static,
{
    move |path| match path {
        "/metrics" => Some(HttpResponse::text(netsession_obs::render_prometheus(
            &metrics.scrape(),
        ))),
        "/healthz" => Some(HttpResponse::json(health())),
        "/varz" => Some(HttpResponse::json(metrics.full_snapshot_json())),
        _ => None,
    }
}

/// Fetch `path` from an admin endpoint. Returns `(status_code, body)`.
pub fn http_get(addr: SocketAddr, path: &str, timeout: Duration) -> Result<(u16, String)> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout)
        .map_err(|e| Error::Network(format!("connect {addr}: {e}")))?;
    stream
        .set_read_timeout(Some(timeout))
        .map_err(|e| Error::Network(e.to_string()))?;
    stream
        .set_write_timeout(Some(timeout))
        .map_err(|e| Error::Network(e.to_string()))?;
    stream
        .write_all(format!("GET {path} HTTP/1.0\r\nHost: netsession\r\n\r\n").as_bytes())
        .map_err(|e| Error::Network(format!("write {addr}: {e}")))?;
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| Error::Network(format!("read {addr}: {e}")))?;
    let text = String::from_utf8_lossy(&raw);
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| Error::Network(format!("{addr}: malformed HTTP response")))?;
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| Error::Network(format!("{addr}: malformed status line")))?;
    Ok((status, body.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn endpoint() -> AdminEndpoint {
        AdminEndpoint::start("127.0.0.1:0", |path| match path {
            "/healthz" => Some(HttpResponse::json("{\"status\":\"ok\"}".to_string())),
            "/metrics" => Some(HttpResponse::text("x 1\n".to_string())),
            _ => None,
        })
        .unwrap()
    }

    #[test]
    fn serves_routes_and_404s() {
        let ep = endpoint();
        let t = Duration::from_secs(2);
        let (status, body) = http_get(ep.local_addr(), "/healthz", t).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "{\"status\":\"ok\"}");
        let (status, body) = http_get(ep.local_addr(), "/metrics", t).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "x 1\n");
        let (status, _) = http_get(ep.local_addr(), "/nope", t).unwrap();
        assert_eq!(status, 404);
        ep.stop();
    }

    #[test]
    fn rejects_non_get() {
        let ep = endpoint();
        let mut s = TcpStream::connect(ep.local_addr()).unwrap();
        s.write_all(b"POST /healthz HTTP/1.0\r\n\r\n").unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.0 405"));
        ep.stop();
    }
}
