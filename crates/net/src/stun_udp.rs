//! STUN-style reflexive-address service over real UDP.
//!
//! NetSession peers "periodically communicate with STUN components over UDP
//! and TCP to determine the details of their connectivity" (§3.6). The
//! live runtime's variant: a binding request carries a transaction ID; the
//! server echoes it together with the observed (reflexive) source address.
//! On loopback every peer is effectively `NatType::Open`; the NAT-model
//! crate covers the interesting classifications.

use netsession_core::error::{Error, Result};
use std::net::SocketAddr;
use tokio::net::UdpSocket;

/// Wire format: 8-byte transaction ID. Response: transaction ID + 4-byte
/// IP + 2-byte port (all big-endian).
const REQ_LEN: usize = 8;
const RESP_LEN: usize = 14;

/// A running STUN-ish server.
pub struct StunUdpServer {
    local_addr: SocketAddr,
    handle: tokio::task::JoinHandle<()>,
}

impl StunUdpServer {
    /// Bind and start serving on `127.0.0.1:0` (or a given address).
    pub async fn start(addr: &str) -> Result<StunUdpServer> {
        let socket = UdpSocket::bind(addr)
            .await
            .map_err(|e| Error::Network(format!("bind: {e}")))?;
        let local_addr = socket
            .local_addr()
            .map_err(|e| Error::Network(e.to_string()))?;
        let handle = tokio::spawn(async move {
            let mut buf = [0u8; 64];
            loop {
                let Ok((n, from)) = socket.recv_from(&mut buf).await else {
                    break;
                };
                if n != REQ_LEN {
                    continue;
                }
                let mut resp = [0u8; RESP_LEN];
                resp[..8].copy_from_slice(&buf[..8]);
                match from {
                    SocketAddr::V4(v4) => {
                        resp[8..12].copy_from_slice(&v4.ip().octets());
                        resp[12..14].copy_from_slice(&v4.port().to_be_bytes());
                    }
                    SocketAddr::V6(_) => continue,
                }
                let _ = socket.send_to(&resp, from).await;
            }
        });
        Ok(StunUdpServer { local_addr, handle })
    }

    /// Where the server listens.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stop serving.
    pub fn shutdown(self) {
        self.handle.abort();
    }
}

/// Ask a STUN server for our reflexive address. Returns (ip, port).
pub async fn reflexive_address(server: SocketAddr, txn_id: u64) -> Result<(u32, u16)> {
    let socket = UdpSocket::bind("127.0.0.1:0")
        .await
        .map_err(|e| Error::Network(format!("bind: {e}")))?;
    let req = txn_id.to_be_bytes();
    socket
        .send_to(&req, server)
        .await
        .map_err(|e| Error::Network(format!("send: {e}")))?;
    let mut buf = [0u8; RESP_LEN];
    let (n, _) = tokio::time::timeout(std::time::Duration::from_secs(2), socket.recv_from(&mut buf))
        .await
        .map_err(|_| Error::Network("stun timeout".into()))?
        .map_err(|e| Error::Network(format!("recv: {e}")))?;
    if n != RESP_LEN || buf[..8] != req {
        return Err(Error::Codec("bad stun response".into()));
    }
    let ip = u32::from_be_bytes(buf[8..12].try_into().unwrap());
    let port = u16::from_be_bytes(buf[12..14].try_into().unwrap());
    Ok((ip, port))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[tokio::test]
    async fn reflexive_address_is_observed_source() {
        let server = StunUdpServer::start("127.0.0.1:0").await.unwrap();
        let (ip, port) = reflexive_address(server.local_addr(), 42).await.unwrap();
        assert_eq!(ip, u32::from_be_bytes([127, 0, 0, 1]));
        assert!(port > 0);
        server.shutdown();
    }

    #[tokio::test]
    async fn distinct_sockets_get_distinct_ports() {
        let server = StunUdpServer::start("127.0.0.1:0").await.unwrap();
        let (_, p1) = reflexive_address(server.local_addr(), 1).await.unwrap();
        let (_, p2) = reflexive_address(server.local_addr(), 2).await.unwrap();
        assert_ne!(p1, p2);
        server.shutdown();
    }
}
