//! STUN-style reflexive-address service over real UDP.
//!
//! NetSession peers "periodically communicate with STUN components over UDP
//! and TCP to determine the details of their connectivity" (§3.6). The
//! live runtime's variant: a binding request carries a transaction ID; the
//! server echoes it together with the observed (reflexive) source address.
//! On loopback every peer is effectively `NatType::Open`; the NAT-model
//! crate covers the interesting classifications.

use netsession_core::error::{Error, Result};
use netsession_obs::Counter;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Wire format: 8-byte transaction ID. Response: transaction ID + 4-byte
/// IP + 2-byte port (all big-endian).
const REQ_LEN: usize = 8;
const RESP_LEN: usize = 14;

/// A running STUN-ish server.
pub struct StunUdpServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    /// Binding requests answered (live telemetry).
    pub requests: Counter,
}

impl StunUdpServer {
    /// Bind and start serving on `127.0.0.1:0` (or a given address).
    pub fn start(addr: &str) -> Result<StunUdpServer> {
        let socket = UdpSocket::bind(addr).map_err(|e| Error::Network(format!("bind: {e}")))?;
        let local_addr = socket
            .local_addr()
            .map_err(|e| Error::Network(e.to_string()))?;
        socket
            .set_read_timeout(Some(Duration::from_millis(50)))
            .map_err(|e| Error::Network(e.to_string()))?;
        let stop = Arc::new(AtomicBool::new(false));
        let requests = Counter::detached();
        let stop_for_loop = stop.clone();
        let requests_for_loop = requests.clone();
        std::thread::spawn(move || {
            let mut buf = [0u8; 64];
            while !stop_for_loop.load(Ordering::Relaxed) {
                let (n, from) = match socket.recv_from(&mut buf) {
                    Ok(r) => r,
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut =>
                    {
                        continue;
                    }
                    Err(_) => break,
                };
                if n != REQ_LEN {
                    continue;
                }
                let mut resp = [0u8; RESP_LEN];
                resp[..8].copy_from_slice(&buf[..8]);
                match from {
                    SocketAddr::V4(v4) => {
                        resp[8..12].copy_from_slice(&v4.ip().octets());
                        resp[12..14].copy_from_slice(&v4.port().to_be_bytes());
                    }
                    SocketAddr::V6(_) => continue,
                }
                requests_for_loop.incr();
                let _ = socket.send_to(&resp, from);
            }
        });
        Ok(StunUdpServer {
            local_addr,
            stop,
            requests,
        })
    }

    /// Where the server listens.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stop serving.
    pub fn shutdown(self) {
        self.stop.store(true, Ordering::Relaxed);
    }
}

/// Ask a STUN server for our reflexive address. Returns (ip, port).
pub fn reflexive_address(server: SocketAddr, txn_id: u64) -> Result<(u32, u16)> {
    let socket =
        UdpSocket::bind("127.0.0.1:0").map_err(|e| Error::Network(format!("bind: {e}")))?;
    socket
        .set_read_timeout(Some(Duration::from_secs(2)))
        .map_err(|e| Error::Network(e.to_string()))?;
    let req = txn_id.to_be_bytes();
    socket
        .send_to(&req, server)
        .map_err(|e| Error::Network(format!("send: {e}")))?;
    let mut buf = [0u8; RESP_LEN];
    let (n, _) = socket.recv_from(&mut buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::WouldBlock || e.kind() == std::io::ErrorKind::TimedOut {
            Error::Network("stun timeout".into())
        } else {
            Error::Network(format!("recv: {e}"))
        }
    })?;
    if n != RESP_LEN || buf[..8] != req {
        return Err(Error::Codec("bad stun response".into()));
    }
    let ip = u32::from_be_bytes(buf[8..12].try_into().unwrap());
    let port = u16::from_be_bytes(buf[12..14].try_into().unwrap());
    Ok((ip, port))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reflexive_address_is_observed_source() {
        let server = StunUdpServer::start("127.0.0.1:0").unwrap();
        let (ip, port) = reflexive_address(server.local_addr(), 42).unwrap();
        assert_eq!(ip, u32::from_be_bytes([127, 0, 0, 1]));
        assert!(port > 0);
        assert_eq!(server.requests.get(), 1);
        server.shutdown();
    }

    #[test]
    fn distinct_sockets_get_distinct_ports() {
        let server = StunUdpServer::start("127.0.0.1:0").unwrap();
        let (_, p1) = reflexive_address(server.local_addr(), 1).unwrap();
        let (_, p2) = reflexive_address(server.local_addr(), 2).unwrap();
        assert_ne!(p1, p2);
        server.shutdown();
    }
}
