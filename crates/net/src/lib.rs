//! # netsession-net
//!
//! The live NetSession runtime: the same protocol logic the simulator
//! exercises, running over real TCP and UDP sockets on plain threads. This is
//! the "it is an implementable network protocol" half of the reproduction:
//! a control-plane server ([`control_server`]), an edge server
//! ([`edge_server`]), a STUN-style reflexive-address service over UDP
//! ([`stun_udp`]), and a full peer daemon ([`peer_daemon`]) that downloads
//! from the edge and from other daemons *in parallel*, verifies every
//! piece against the manifest, serves uploads under the governor rules,
//! and registers completed objects with the control plane.
//!
//! Everything binds to loopback by default and is exercised end-to-end by
//! the crate's tests and the `live_swarm` example.

pub mod control_server;
pub mod edge_server;
pub mod framing;
pub mod http;
pub mod monitor_server;
pub mod peer_daemon;
pub mod stun_udp;

pub use control_server::ControlServer;
pub use edge_server::EdgeHttpServer;
pub use http::{http_get, AdminEndpoint, HttpResponse};
pub use monitor_server::{default_rules, MonitorServer, MonitorTarget};
pub use peer_daemon::{DownloadReport, PeerDaemon};
pub use stun_udp::StunUdpServer;
