//! Live edge server.
//!
//! Serves the §3.5 edge functions over a framed TCP protocol (standing in
//! for HTTP(S)): authorization — yielding the token, the provider policy,
//! and the manifest with piece hashes — and piece downloads, each recorded
//! as a trusted receipt in the accounting ledger.

use crate::framing::{read_msg_traced, wall_now, write_msg};
use crate::http::{standard_routes, AdminEndpoint};
use netsession_core::error::{Error, Result};
use netsession_core::msg::EdgeMsg;
use netsession_edge::accounting::AccountingLedger;
use netsession_edge::auth::EdgeAuth;
use netsession_edge::server::EdgeServer;
use netsession_edge::store::ContentStore;
use netsession_obs::{MetricsRegistry, SpanId, TraceCtx, TraceSink};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Trace-id prefix for the edge-server process (see
/// [`TraceSink::with_id_prefix`]).
const EDGE_ID_PREFIX: u16 = 0x0003;

/// A running live edge server.
pub struct EdgeHttpServer {
    local_addr: SocketAddr,
    /// The underlying edge logic (shared with tests for assertions).
    pub edge: Arc<EdgeServer>,
    /// Live telemetry: connections accepted, framed messages in/out.
    pub metrics: MetricsRegistry,
    trace: TraceSink,
    stop: Arc<AtomicBool>,
    admin: AdminEndpoint,
}

impl EdgeHttpServer {
    /// Start serving the given store on `127.0.0.1:0` (or a given addr).
    pub fn start(
        addr: &str,
        store: Arc<ContentStore>,
        auth: EdgeAuth,
        ledger: Arc<AccountingLedger>,
    ) -> Result<EdgeHttpServer> {
        let listener = TcpListener::bind(addr).map_err(|e| Error::Network(format!("bind: {e}")))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| Error::Network(e.to_string()))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| Error::Network(e.to_string()))?;
        let metrics = MetricsRegistry::new();
        let trace = TraceSink::with_id_prefix(1, EDGE_ID_PREFIX);
        trace.attach_metrics(&metrics);
        let edge = Arc::new(EdgeServer::new(0, store, auth, ledger).with_metrics(&metrics));
        let stop = Arc::new(AtomicBool::new(false));
        let edge_for_loop = edge.clone();
        let stop_for_loop = stop.clone();
        let metrics_for_loop = metrics.clone();
        let trace_for_loop = trace.clone();
        std::thread::spawn(move || {
            while !stop_for_loop.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        metrics_for_loop.counter("net.edge.connections").incr();
                        let edge = edge_for_loop.clone();
                        let metrics = metrics_for_loop.clone();
                        let trace = trace_for_loop.clone();
                        std::thread::spawn(move || {
                            let _ = serve_connection(stream, edge, metrics, trace);
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
        });
        let admin = {
            let edge = edge.clone();
            AdminEndpoint::start(
                "127.0.0.1:0",
                standard_routes(metrics.clone(), move || {
                    format!(
                        "{{\"status\":\"ok\",\"component\":\"edge\",\"bytes_served\":{}}}",
                        edge.total_served().bytes()
                    )
                }),
            )?
        };
        Ok(EdgeHttpServer {
            local_addr,
            edge,
            metrics,
            trace,
            stop,
            admin,
        })
    }

    /// Where the server listens.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Where the admin (HTTP) endpoint listens.
    pub fn admin_addr(&self) -> SocketAddr {
        self.admin.local_addr()
    }

    /// This server's trace sink. Spans for traced client requests join
    /// the *client's* trace id (received via the framing envelope).
    pub fn trace(&self) -> TraceSink {
        self.trace.clone()
    }

    /// Stop serving.
    pub fn shutdown(self) {
        self.stop.store(true, Ordering::Relaxed);
        self.admin.stop();
    }
}

fn serve_connection(
    mut stream: TcpStream,
    edge: Arc<EdgeServer>,
    metrics: MetricsRegistry,
    trace: TraceSink,
) -> Result<()> {
    let msgs_in = metrics.counter("net.edge.msgs_in");
    let msgs_out = metrics.counter("net.edge.msgs_out");
    loop {
        let Some((msg, remote_ctx)) = read_msg_traced::<_, EdgeMsg>(&mut stream)? else {
            return Ok(());
        };
        msgs_in.incr();
        // A stamped request records the server-side half of the exchange
        // under the client's trace.
        let ctx = match remote_ctx {
            Some((t, parent)) => trace.join(t, parent),
            None => TraceCtx::NONE,
        };
        let span = if ctx.sampled {
            let name = match &msg {
                EdgeMsg::Authorize { .. } => "authorize",
                EdgeMsg::GetPiece { .. } => "serve_piece",
                _ => "edge_request",
            };
            trace.span(ctx, name, "edge", wall_now().as_micros())
        } else {
            SpanId::NONE
        };
        let resp = edge.handle(msg, wall_now());
        if span.is_some() {
            trace.add_attr(span, "granted", !matches!(resp, EdgeMsg::Denied { .. }));
            trace.end_span(span, wall_now().as_micros());
        }
        write_msg(&mut stream, &resp)?;
        msgs_out.incr();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framing::read_msg;
    use netsession_core::id::{CpCode, Guid, ObjectId, VersionId};
    use netsession_core::policy::DownloadPolicy;

    fn fixture() -> (EdgeHttpServer, Vec<u8>) {
        let store = Arc::new(ContentStore::new());
        let content: Vec<u8> = (0..5000u32).map(|i| (i % 251) as u8).collect();
        store.publish_content(
            ObjectId(1),
            CpCode(1),
            content.clone(),
            1024,
            DownloadPolicy::peer_assisted(),
        );
        let server = EdgeHttpServer::start(
            "127.0.0.1:0",
            store,
            EdgeAuth::from_seed(1),
            Arc::new(AccountingLedger::new()),
        )
        .unwrap();
        (server, content)
    }

    #[test]
    fn authorize_then_fetch_all_pieces() {
        let (server, content) = fixture();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        write_msg(
            &mut stream,
            &EdgeMsg::Authorize {
                guid: Guid(7),
                version: VersionId {
                    object: ObjectId(1),
                    version: 1,
                },
            },
        )
        .unwrap();
        let resp: EdgeMsg = read_msg(&mut stream).unwrap().unwrap();
        let (token, manifest) = match resp {
            EdgeMsg::Authorized {
                token, manifest, ..
            } => (token, manifest),
            other => panic!("{other:?}"),
        };
        let mut got = Vec::new();
        for piece in 0..manifest.piece_count() {
            write_msg(&mut stream, &EdgeMsg::GetPiece { token, piece }).unwrap();
            match read_msg(&mut stream).unwrap().unwrap() {
                EdgeMsg::PieceData { data, .. } => {
                    assert!(manifest.verify_piece(piece, &data));
                    got.extend_from_slice(&data);
                }
                other => panic!("{other:?}"),
            }
        }
        assert_eq!(got, content);
        assert_eq!(server.edge.total_served().bytes(), content.len() as u64);
        // Telemetry observed the exchange.
        assert_eq!(server.metrics.counter("net.edge.connections").get(), 1);
        assert_eq!(
            server.metrics.counter("net.edge.msgs_in").get(),
            1 + manifest.piece_count() as u64
        );
        server.shutdown();
    }

    #[test]
    fn unknown_object_denied() {
        let (server, _) = fixture();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        write_msg(
            &mut stream,
            &EdgeMsg::Authorize {
                guid: Guid(7),
                version: VersionId {
                    object: ObjectId(404),
                    version: 1,
                },
            },
        )
        .unwrap();
        match read_msg::<_, EdgeMsg>(&mut stream).unwrap().unwrap() {
            EdgeMsg::Denied { reason } => assert!(reason.contains("not found")),
            other => panic!("{other:?}"),
        }
        server.shutdown();
    }
}
