//! Live edge server.
//!
//! Serves the §3.5 edge functions over a framed TCP protocol (standing in
//! for HTTP(S)): authorization — yielding the token, the provider policy,
//! and the manifest with piece hashes — and piece downloads, each recorded
//! as a trusted receipt in the accounting ledger.

use crate::framing::{read_msg, wall_now, write_msg};
use netsession_core::error::{Error, Result};
use netsession_core::msg::EdgeMsg;
use netsession_edge::accounting::AccountingLedger;
use netsession_edge::auth::EdgeAuth;
use netsession_edge::server::EdgeServer;
use netsession_edge::store::ContentStore;
use std::net::SocketAddr;
use std::sync::Arc;
use tokio::net::{TcpListener, TcpStream};

/// A running live edge server.
pub struct EdgeHttpServer {
    local_addr: SocketAddr,
    /// The underlying edge logic (shared with tests for assertions).
    pub edge: Arc<EdgeServer>,
    handle: tokio::task::JoinHandle<()>,
}

impl EdgeHttpServer {
    /// Start serving the given store on `127.0.0.1:0` (or a given addr).
    pub async fn start(
        addr: &str,
        store: Arc<ContentStore>,
        auth: EdgeAuth,
        ledger: Arc<AccountingLedger>,
    ) -> Result<EdgeHttpServer> {
        let listener = TcpListener::bind(addr)
            .await
            .map_err(|e| Error::Network(format!("bind: {e}")))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| Error::Network(e.to_string()))?;
        let edge = Arc::new(EdgeServer::new(0, store, auth, ledger));
        let edge_for_loop = edge.clone();
        let handle = tokio::spawn(async move {
            loop {
                let Ok((stream, _)) = listener.accept().await else {
                    break;
                };
                let edge = edge_for_loop.clone();
                tokio::spawn(async move {
                    let _ = serve_connection(stream, edge).await;
                });
            }
        });
        Ok(EdgeHttpServer {
            local_addr,
            edge,
            handle,
        })
    }

    /// Where the server listens.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stop serving.
    pub fn shutdown(self) {
        self.handle.abort();
    }
}

async fn serve_connection(mut stream: TcpStream, edge: Arc<EdgeServer>) -> Result<()> {
    loop {
        let Some(msg): Option<EdgeMsg> = read_msg(&mut stream).await? else {
            return Ok(());
        };
        let resp = edge.handle(msg, wall_now());
        write_msg(&mut stream, &resp).await?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsession_core::id::{CpCode, Guid, ObjectId, VersionId};
    use netsession_core::policy::DownloadPolicy;

    async fn fixture() -> (EdgeHttpServer, Vec<u8>) {
        let store = Arc::new(ContentStore::new());
        let content: Vec<u8> = (0..5000u32).map(|i| (i % 251) as u8).collect();
        store.publish_content(
            ObjectId(1),
            CpCode(1),
            content.clone(),
            1024,
            DownloadPolicy::peer_assisted(),
        );
        let server = EdgeHttpServer::start(
            "127.0.0.1:0",
            store,
            EdgeAuth::from_seed(1),
            Arc::new(AccountingLedger::new()),
        )
        .await
        .unwrap();
        (server, content)
    }

    #[tokio::test]
    async fn authorize_then_fetch_all_pieces() {
        let (server, content) = fixture().await;
        let mut stream = TcpStream::connect(server.local_addr()).await.unwrap();
        write_msg(
            &mut stream,
            &EdgeMsg::Authorize {
                guid: Guid(7),
                version: VersionId {
                    object: ObjectId(1),
                    version: 1,
                },
            },
        )
        .await
        .unwrap();
        let resp: EdgeMsg = read_msg(&mut stream).await.unwrap().unwrap();
        let (token, manifest) = match resp {
            EdgeMsg::Authorized {
                token, manifest, ..
            } => (token, manifest),
            other => panic!("{other:?}"),
        };
        let mut got = Vec::new();
        for piece in 0..manifest.piece_count() {
            write_msg(&mut stream, &EdgeMsg::GetPiece { token, piece })
                .await
                .unwrap();
            match read_msg(&mut stream).await.unwrap().unwrap() {
                EdgeMsg::PieceData { data, .. } => {
                    assert!(manifest.verify_piece(piece, &data));
                    got.extend_from_slice(&data);
                }
                other => panic!("{other:?}"),
            }
        }
        assert_eq!(got, content);
        assert_eq!(server.edge.total_served().bytes(), content.len() as u64);
        server.shutdown();
    }

    #[tokio::test]
    async fn unknown_object_denied() {
        let (server, _) = fixture().await;
        let mut stream = TcpStream::connect(server.local_addr()).await.unwrap();
        write_msg(
            &mut stream,
            &EdgeMsg::Authorize {
                guid: Guid(7),
                version: VersionId {
                    object: ObjectId(404),
                    version: 1,
                },
            },
        )
        .await
        .unwrap();
        match read_msg::<_, EdgeMsg>(&mut stream).await.unwrap().unwrap() {
            EdgeMsg::Denied { reason } => assert!(reason.contains("not found")),
            other => panic!("{other:?}"),
        }
        server.shutdown();
    }
}
