//! The live NetSession Interface daemon.
//!
//! A real network client implementing §3.3–§3.4: it keeps a persistent
//! control connection, authorizes downloads with the edge, downloads from
//! the edge *and* from peers in parallel (the edge connection is never
//! closed — the backstop), verifies every piece against the manifest,
//! serves uploads to other daemons under the governor's limits, registers
//! completed objects with the control plane, and reports usage.
//!
//! Concurrency model: plain threads and channels. Each remote peer
//! connection gets a reader thread (and a writer thread for outbound
//! messages); the edge fetch runs on its own thread; the download
//! coordinator multiplexes all of them over one mpsc channel with
//! `recv_timeout` providing the overall deadline.

use crate::framing::{read_msg, read_msg_traced, wall_now, write_msg, write_msg_traced};
use crate::http::{standard_routes, AdminEndpoint};
use netsession_core::error::{Error, Result};
use netsession_core::hash::{sha256, Digest};
use netsession_core::id::{Guid, ObjectId};
use netsession_core::msg::{
    ControlMsg, EdgeMsg, MonitorMsg, NatType, PeerAddr, ProblemKind, SwarmMsg,
};
use netsession_core::piece::{Manifest, PieceMap};
use netsession_core::policy::TransferConfig;
use netsession_core::rng::DetRng;
use netsession_core::units::ByteCount;
use netsession_obs::{MetricsRegistry, SpanId, TraceId, TraceSink};
use netsession_peer::governor::UploadGovernor;
use netsession_peer::swarm::{SwarmEvent, SwarmSession};
use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A completed, shareable object.
struct SharedObject {
    manifest: Manifest,
    bytes: Vec<u8>,
}

/// A control-plane message plus the trace context to stamp on its frame.
type TracedControlMsg = (ControlMsg, Option<(TraceId, SpanId)>);

struct Inner {
    guid: Guid,
    store: Mutex<HashMap<ObjectId, Arc<SharedObject>>>,
    governor: Mutex<UploadGovernor>,
    control_tx: mpsc::Sender<TracedControlMsg>,
    /// Whether the control link is currently established (§3.8: while it
    /// is down the daemon degrades to edge-only downloads).
    control_up: AtomicBool,
    pending_query: Mutex<Option<mpsc::Sender<Vec<netsession_core::msg::PeerContact>>>>,
    /// Monitoring node to push §3.6 problem reports to, when configured.
    monitor_addr: Mutex<Option<SocketAddr>>,
    metrics: MetricsRegistry,
    trace: TraceSink,
}

impl Inner {
    /// Queue a message for the control link, keeping the
    /// `net.peer.control_queue_depth` gauge in step with the backlog the
    /// supervisor has yet to drain.
    fn queue_control(&self, msg: TracedControlMsg) -> Result<()> {
        let depth = self.metrics.gauge("net.peer.control_queue_depth");
        depth.add(1);
        self.control_tx.send(msg).map_err(|_| {
            depth.sub(1);
            Error::Network("control writer gone".into())
        })
    }

    /// Flip the control-link liveness flag and its mirror gauge together.
    fn set_control_up(&self, up: bool) {
        self.control_up.store(up, Ordering::Release);
        self.metrics
            .gauge("net.peer.control_up")
            .set(if up { 1 } else { 0 });
    }

    /// Push one problem report to the monitoring node (§3.6), if one is
    /// configured. Fire-and-forget on a short-lived thread: reporting
    /// must never slow down or fail the path that hit the problem.
    fn report_problem(&self, kind: ProblemKind, detail: String) {
        self.metrics
            .counter(&format!("net.peer.problems.{}", kind.label()))
            .incr();
        let Some(addr) = *self.monitor_addr.lock().unwrap() else {
            return;
        };
        let guid = self.guid;
        std::thread::spawn(move || {
            let Ok(mut stream) = TcpStream::connect_timeout(&addr, Duration::from_secs(2)) else {
                return;
            };
            let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
            let _ = write_msg(&mut stream, &MonitorMsg::Problem { guid, kind, detail });
        });
    }
}

/// What one download achieved.
#[derive(Clone, Debug)]
pub struct DownloadReport {
    /// Bytes fetched from the edge server.
    pub bytes_from_edge: u64,
    /// Bytes fetched from peers.
    pub bytes_from_peers: u64,
    /// SHA-256 of the assembled content.
    pub content_hash: Digest,
    /// Peers that contributed at least one piece.
    pub peer_sources: usize,
}

/// A running peer daemon.
pub struct PeerDaemon {
    /// This installation's GUID.
    pub guid: Guid,
    edge_addr: SocketAddr,
    listen_addr: SocketAddr,
    inner: Arc<Inner>,
    stop: Arc<AtomicBool>,
    admin: AdminEndpoint,
}

impl PeerDaemon {
    /// Start a daemon: bind the swarm listener, log into the control
    /// plane, and start serving uploads.
    pub fn start(
        control_addr: SocketAddr,
        edge_addr: SocketAddr,
        guid: Guid,
        uploads_enabled: bool,
    ) -> Result<PeerDaemon> {
        let listener =
            TcpListener::bind("127.0.0.1:0").map_err(|e| Error::Network(format!("bind: {e}")))?;
        let listen_addr = listener
            .local_addr()
            .map_err(|e| Error::Network(e.to_string()))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| Error::Network(e.to_string()))?;

        let control = TcpStream::connect(control_addr)
            .map_err(|e| Error::Network(format!("control connect: {e}")))?;
        let (control_tx, control_rx) = mpsc::channel::<TracedControlMsg>();

        let metrics = MetricsRegistry::new();
        // Every live download is traced (sample_every = 1): live runs are
        // small, and the e2e tests assert cross-process propagation. The
        // id prefix is guid-derived so span ids from different daemons in
        // one deployment never collide when traces are merged.
        let trace = TraceSink::with_id_prefix(1, 0x1000 | (guid.0 as u16 & 0x0fff));
        trace.attach_metrics(&metrics);
        let inner = Arc::new(Inner {
            guid,
            store: Mutex::new(HashMap::new()),
            governor: Mutex::new(UploadGovernor::new(
                TransferConfig::default(),
                uploads_enabled,
            )),
            control_tx: control_tx.clone(),
            control_up: AtomicBool::new(false),
            pending_query: Mutex::new(None),
            monitor_addr: Mutex::new(None),
            metrics: metrics.clone(),
            trace,
        });
        let admin = {
            let inner = inner.clone();
            AdminEndpoint::start(
                "127.0.0.1:0",
                standard_routes(metrics.clone(), move || {
                    let m = &inner.metrics;
                    format!(
                        "{{\"status\":\"ok\",\"component\":\"peer\",\"guid\":\"{:016x}\",\
                         \"control_up\":{},\"backoff_failures\":{},\"queued\":{},\
                         \"cached_objects\":{}}}",
                        inner.guid.0 as u64,
                        inner.control_up.load(Ordering::Acquire),
                        m.gauge("net.peer.control_backoff_failures").get(),
                        m.gauge("net.peer.control_queue_depth").get(),
                        inner.store.lock().unwrap().len()
                    )
                }),
            )?
        };

        // Control-link supervisor: owns the outbound queue for the
        // daemon's whole life, logs in, pumps messages, and — when the
        // link drops — reconnects with exponential backoff (§3.8).
        let stop = Arc::new(AtomicBool::new(false));
        let inner_for_link = inner.clone();
        let stop_for_link = stop.clone();
        let listen_port = listen_addr.port();
        std::thread::spawn(move || {
            run_control_link(
                inner_for_link,
                control_addr,
                control_rx,
                Some(control),
                uploads_enabled,
                listen_port,
                stop_for_link,
            );
        });

        // Upload accept loop.
        let stop_for_accept = stop.clone();
        let inner_for_accept = inner.clone();
        std::thread::spawn(move || {
            while !stop_for_accept.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        inner_for_accept
                            .metrics
                            .counter("net.peer.upload_connections_in")
                            .incr();
                        let inner = inner_for_accept.clone();
                        std::thread::spawn(move || {
                            let _ = serve_upload(stream, inner);
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
        });

        // Wait for the supervisor's first login to go out so a download
        // issued right after `start` returns sees the link up (the
        // initial connect above already succeeded, so this is quick).
        let deadline = Instant::now() + Duration::from_secs(2);
        while !inner.control_up.load(Ordering::Acquire) && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }

        Ok(PeerDaemon {
            guid,
            edge_addr,
            listen_addr,
            inner,
            stop,
            admin,
        })
    }

    /// Where this daemon accepts swarm connections.
    pub fn listen_addr(&self) -> SocketAddr {
        self.listen_addr
    }

    /// Where the admin (HTTP) endpoint listens.
    pub fn admin_addr(&self) -> SocketAddr {
        self.admin.local_addr()
    }

    /// Configure the monitoring node that receives this daemon's §3.6
    /// problem reports (crash, download failure, traversal failure).
    pub fn set_monitor_addr(&self, addr: SocketAddr) {
        *self.inner.monitor_addr.lock().unwrap() = Some(addr);
    }

    /// Push one problem report to the monitoring node.
    pub fn report_problem(&self, kind: ProblemKind, detail: impl Into<String>) {
        self.inner.report_problem(kind, detail.into());
    }

    /// Number of objects in the local cache.
    pub fn cached_objects(&self) -> usize {
        self.inner.store.lock().unwrap().len()
    }

    /// Whether the control link is currently established (§3.8
    /// observability: while false, downloads run edge-only).
    pub fn control_connected(&self) -> bool {
        self.inner.control_up.load(Ordering::Acquire)
    }

    /// Live telemetry registry for this daemon.
    pub fn metrics(&self) -> MetricsRegistry {
        self.inner.metrics.clone()
    }

    /// This daemon's trace sink (handles are shared; clones see the same
    /// spans).
    pub fn trace(&self) -> TraceSink {
        self.inner.trace.clone()
    }

    /// Download an object end-to-end: edge authorization, control-plane
    /// peer query, parallel edge + swarm fetch, verification, assembly,
    /// registration, and usage reporting.
    pub fn download(&self, object: ObjectId) -> Result<DownloadReport> {
        let metrics = &self.inner.metrics;
        let trace = &self.inner.trace;
        let ctx = trace.start_trace("download", "client", wall_now().as_micros());
        // GUIDs can exceed 2^53: export them as hex strings so an f64
        // JSON parser round-trips them exactly.
        trace.add_attr(ctx.span, "guid", format!("{:016x}", self.guid.0 as u64));
        trace.add_attr(ctx.span, "object", object.0);
        // 1. Authorize with the edge. The frame carries (trace, span) so
        // the edge server's own spans join this download's trace.
        let mut edge = TcpStream::connect(self.edge_addr)
            .map_err(|e| Error::Network(format!("edge connect: {e}")))?;
        let auth_span = trace.span(ctx, "authorize", "edge", wall_now().as_micros());
        write_msg_traced(
            &mut edge,
            &EdgeMsg::Authorize {
                guid: self.guid,
                version: netsession_core::id::VersionId { object, version: 1 },
            },
            Some((ctx.trace, auth_span)),
        )?;
        let resp: EdgeMsg =
            read_msg(&mut edge)?.ok_or_else(|| Error::Network("edge closed".into()))?;
        let (token, policy, manifest) = match resp {
            EdgeMsg::Authorized {
                token,
                policy,
                manifest,
            } => {
                trace.add_attr(auth_span, "granted", true);
                trace.end_span(auth_span, wall_now().as_micros());
                (token, policy, manifest)
            }
            EdgeMsg::Denied { reason } => {
                metrics.counter("net.peer.downloads_denied").incr();
                trace.add_attr(auth_span, "granted", false);
                trace.end_span(auth_span, wall_now().as_micros());
                trace.add_attr(ctx.span, "outcome", "denied");
                trace.end_span(ctx.span, wall_now().as_micros());
                return Err(Error::PolicyDenied(reason));
            }
            other => return Err(Error::Network(format!("unexpected {other:?}"))),
        };
        let version = manifest.version;
        let piece_count = manifest.piece_count();

        // 2. Query the control plane for peers (p2p-enabled objects only).
        // Every failure here degrades to an empty contact list — the edge
        // backstop serves the whole object (§3.8: "peers can always fall
        // back to downloading from the edge servers").
        let control_up = self.inner.control_up.load(Ordering::Acquire);
        let contacts = if policy.p2p_enabled && control_up {
            let (tx, rx) = mpsc::channel();
            *self.inner.pending_query.lock().unwrap() = Some(tx);
            let qspan = trace.span(ctx, "query_peers", "control", wall_now().as_micros());
            self.inner.queue_control((
                ControlMsg::QueryPeers {
                    token,
                    max_peers: 8,
                },
                Some((ctx.trace, qspan)),
            ))?;
            match rx.recv_timeout(Duration::from_secs(3)) {
                Ok(peers) => {
                    trace.add_attr(qspan, "offered", peers.len() as u64);
                    trace.end_span(qspan, wall_now().as_micros());
                    peers
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    metrics.counter("net.peer.query_timeouts").incr();
                    trace.add_attr(qspan, "error", "timeout");
                    trace.end_span(qspan, wall_now().as_micros());
                    Vec::new()
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    trace.add_attr(qspan, "error", "disconnected");
                    trace.end_span(qspan, wall_now().as_micros());
                    Vec::new()
                }
            }
        } else {
            if policy.p2p_enabled {
                metrics.counter("net.peer.edge_only_downloads").incr();
                trace.instant(ctx, "control_unreachable", "fault", wall_now().as_micros());
            }
            Vec::new()
        };

        // 3. Spawn the swarm connections.
        #[allow(clippy::large_enum_variant)]
        enum Ev {
            Joined(Guid, PieceMap),
            Msg(Guid, SwarmMsg),
            Left(Guid),
            EdgePiece(u32, Vec<u8>, Digest),
            EdgeFailed(String),
        }
        let (ev_tx, ev_rx) = mpsc::channel::<Ev>();
        let mut peer_out: HashMap<Guid, mpsc::Sender<SwarmMsg>> = HashMap::new();
        for contact in contacts.iter().take(8) {
            let addr = SocketAddr::from((
                std::net::Ipv4Addr::from(contact.addr.ip.to_be_bytes()),
                contact.addr.port,
            ));
            let (out_tx, out_rx) = mpsc::channel::<SwarmMsg>();
            peer_out.insert(contact.guid, out_tx);
            let ev_tx = ev_tx.clone();
            let my_guid = self.guid;
            let remote_guid = contact.guid;
            metrics.counter("net.peer.swarm_connections_out").incr();
            let attempt = trace.instant(ctx, "connect_attempt", "peer", wall_now().as_micros());
            // The GUID on a connect_attempt is the peer we dial — the
            // *destination* of the connection, not its source.
            trace.add_attr(
                attempt,
                "dst_guid",
                format!("{:016x}", remote_guid.0 as u64),
            );
            let thread_trace = trace.clone();
            let thread_inner = self.inner.clone();
            let trace_ids = Some((ctx.trace, attempt)).filter(|_| ctx.sampled);
            std::thread::spawn(move || {
                let Ok(stream) = TcpStream::connect(addr) else {
                    thread_trace.add_attr(attempt, "result", "connect_failed");
                    thread_inner.report_problem(
                        ProblemKind::TraversalFailure,
                        format!("connect to peer {:016x} failed", remote_guid.0 as u64),
                    );
                    let _ = ev_tx.send(Ev::Left(remote_guid));
                    return;
                };
                // Bounded reads so an idle remote can't pin this thread
                // past any download deadline.
                let _ = stream.set_read_timeout(Some(Duration::from_secs(90)));
                let mut r = match stream.try_clone() {
                    Ok(r) => r,
                    Err(_) => {
                        thread_trace.add_attr(attempt, "result", "connect_failed");
                        let _ = ev_tx.send(Ev::Left(remote_guid));
                        return;
                    }
                };
                let mut w = stream;
                if write_msg_traced(
                    &mut w,
                    &SwarmMsg::Handshake {
                        guid: my_guid,
                        token,
                        version,
                    },
                    trace_ids,
                )
                .is_err()
                {
                    thread_trace.add_attr(attempt, "result", "handshake_failed");
                    let _ = ev_tx.send(Ev::Left(remote_guid));
                    return;
                }
                // Expect their handshake + have-map.
                let hs: Option<SwarmMsg> = read_msg(&mut r).ok().flatten();
                if !matches!(hs, Some(SwarmMsg::Handshake { .. })) {
                    thread_trace.add_attr(attempt, "result", "handshake_failed");
                    let _ = ev_tx.send(Ev::Left(remote_guid));
                    return;
                }
                match read_msg::<_, SwarmMsg>(&mut r) {
                    Ok(Some(SwarmMsg::HaveMap { pieces, words })) => {
                        match SwarmMsg::decode_have_map(pieces, &words) {
                            Ok(map) => {
                                thread_trace.add_attr(attempt, "result", "connected");
                                let _ = ev_tx.send(Ev::Joined(remote_guid, map));
                            }
                            Err(_) => {
                                thread_trace.add_attr(attempt, "result", "bad_have_map");
                                let _ = ev_tx.send(Ev::Left(remote_guid));
                                return;
                            }
                        }
                    }
                    _ => {
                        thread_trace.add_attr(attempt, "result", "handshake_failed");
                        let _ = ev_tx.send(Ev::Left(remote_guid));
                        return;
                    }
                }
                // Full duplex: a writer thread drains out_rx while this
                // thread keeps reading events.
                std::thread::spawn(move || {
                    while let Ok(msg) = out_rx.recv() {
                        if write_msg(&mut w, &msg).is_err() {
                            break;
                        }
                    }
                });
                while let Ok(Some(msg)) = read_msg::<_, SwarmMsg>(&mut r) {
                    if ev_tx.send(Ev::Msg(remote_guid, msg)).is_err() {
                        break;
                    }
                }
                let _ = ev_tx.send(Ev::Left(remote_guid));
            });
        }

        // Edge fetch thread: one outstanding piece request at a time.
        let (edge_req_tx, edge_req_rx) = mpsc::channel::<u32>();
        let ev_tx_edge = ev_tx.clone();
        std::thread::spawn(move || {
            while let Ok(piece) = edge_req_rx.recv() {
                if write_msg(&mut edge, &EdgeMsg::GetPiece { token, piece }).is_err() {
                    let _ = ev_tx_edge.send(Ev::EdgeFailed("edge write".into()));
                    return;
                }
                match read_msg::<_, EdgeMsg>(&mut edge) {
                    Ok(Some(EdgeMsg::PieceData {
                        piece,
                        data,
                        digest,
                    })) => {
                        if ev_tx_edge.send(Ev::EdgePiece(piece, data, digest)).is_err() {
                            return;
                        }
                    }
                    Ok(Some(EdgeMsg::Denied { reason })) => {
                        let _ = ev_tx_edge.send(Ev::EdgeFailed(reason));
                        return;
                    }
                    _ => {
                        let _ = ev_tx_edge.send(Ev::EdgeFailed("edge read".into()));
                        return;
                    }
                }
            }
        });
        drop(ev_tx);

        // 4. Coordinate.
        let mut session = SwarmSession::new(manifest.clone(), PieceMap::empty(piece_count));
        let mut pieces: Vec<Option<Vec<u8>>> = vec![None; piece_count as usize];
        let mut rng = DetRng::seeded(self.guid.0 as u64 ^ object.0);
        let mut bytes_from_edge = 0u64;
        let mut bytes_from_peers = 0u64;
        let mut contributors: std::collections::HashSet<Guid> = Default::default();
        let mut edge_busy = false;
        let mut edge_alive = true;
        let piece_bytes_hist = metrics.histogram("net.peer.piece_bytes");

        let deadline = Instant::now() + Duration::from_secs(60);
        // When the control plane returned peers, give their handshakes a
        // head start before engaging the edge backstop; on a fast local
        // link the edge would otherwise win the race for every piece and
        // the swarm would never contribute (§3.3: the edge covers what the
        // peers don't, it doesn't compete with them).
        let edge_hold_until = if contacts.is_empty() {
            Instant::now()
        } else {
            Instant::now() + Duration::from_millis(400)
        };
        while !session.is_complete() {
            let now = Instant::now();
            // Keep the edge backstop busy.
            if edge_alive && !edge_busy && now >= edge_hold_until {
                if let Some(piece) = session.next_edge_piece() {
                    if edge_req_tx.send(piece).is_ok() {
                        edge_busy = true;
                    } else {
                        edge_alive = false;
                    }
                }
            }
            // Wake at the hold boundary so the backstop engages even if no
            // swarm event ever arrives.
            let wake = if now < edge_hold_until {
                edge_hold_until.min(deadline)
            } else {
                deadline
            };
            let ev = match ev_rx.recv_timeout(wake.saturating_duration_since(now)) {
                Ok(ev) => ev,
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if Instant::now() >= deadline {
                        metrics.counter("net.peer.downloads_failed").incr();
                        trace.add_attr(ctx.span, "outcome", "failed");
                        trace.end_span(ctx.span, wall_now().as_micros());
                        self.inner.report_problem(
                            ProblemKind::DownloadFailure,
                            format!("object {} timed out", object.0),
                        );
                        return Err(Error::Network("download timed out or stalled".into()));
                    }
                    continue;
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    metrics.counter("net.peer.downloads_failed").incr();
                    trace.add_attr(ctx.span, "outcome", "failed");
                    trace.end_span(ctx.span, wall_now().as_micros());
                    self.inner.report_problem(
                        ProblemKind::DownloadFailure,
                        format!("object {} stalled", object.0),
                    );
                    return Err(Error::Network("download timed out or stalled".into()));
                }
            };
            let events = match ev {
                Ev::Joined(guid, map) => session.on_peer_joined(guid, map, &mut rng),
                Ev::Left(guid) => {
                    peer_out.remove(&guid);
                    session.on_peer_left(guid);
                    Vec::new()
                }
                Ev::Msg(guid, msg) => {
                    // Keep piece bytes aside before the session verifies.
                    let staged = match &msg {
                        SwarmMsg::Piece { piece, data, .. } => Some((*piece, data.clone())),
                        _ => None,
                    };
                    let events = session.on_message(guid, msg, &mut rng);
                    if let Some((piece, data)) = staged {
                        if events.contains(&SwarmEvent::PieceVerified(piece)) {
                            bytes_from_peers += data.len() as u64;
                            piece_bytes_hist.record(data.len() as u64);
                            contributors.insert(guid);
                            pieces[piece as usize] = Some(data);
                        }
                    }
                    events
                }
                Ev::EdgePiece(piece, data, digest) => {
                    edge_busy = false;
                    let events = session.on_edge_piece(piece, &data, digest);
                    if events.contains(&SwarmEvent::PieceVerified(piece)) {
                        bytes_from_edge += data.len() as u64;
                        piece_bytes_hist.record(data.len() as u64);
                        pieces[piece as usize] = Some(data);
                    }
                    events
                }
                Ev::EdgeFailed(_reason) => {
                    edge_alive = false;
                    edge_busy = false;
                    Vec::new()
                }
            };
            for event in events {
                if let SwarmEvent::Send(guid, msg) = event {
                    if let Some(out) = peer_out.get(&guid) {
                        let _ = out.send(msg);
                    }
                }
            }
        }

        // 5. Assemble, store, register, report. Dropping the channel ends
        // the edge fetch thread; Goodbye + dropped senders wind down the
        // per-peer threads.
        for (guid, out) in &peer_out {
            let _ = out.send(SwarmMsg::Goodbye);
            let _ = guid;
        }
        drop(edge_req_tx);
        let mut content = Vec::with_capacity(manifest.size.bytes() as usize);
        for p in pieces.into_iter() {
            content.extend_from_slice(&p.expect("complete download has all pieces"));
        }
        let content_hash = sha256(&content);
        let uploads_enabled = {
            let store = &self.inner.store;
            store.lock().unwrap().insert(
                object,
                Arc::new(SharedObject {
                    manifest,
                    bytes: content,
                }),
            );
            self.inner
                .governor
                .lock()
                .unwrap()
                .rate_cap(netsession_core::units::Bandwidth::from_mbps(1.0))
                > netsession_core::units::Bandwidth::ZERO
        };
        if uploads_enabled && policy.upload_allowed {
            let _ = self.inner.queue_control((
                ControlMsg::RegisterContent {
                    version,
                    fraction: 1.0,
                },
                None,
            ));
        }
        let _ = self.inner.queue_control((
            ControlMsg::UsageReport {
                records: vec![netsession_core::msg::UsageRecord {
                    guid: self.guid,
                    version,
                    started: wall_now(),
                    ended: wall_now(),
                    bytes_from_infrastructure: ByteCount(bytes_from_edge),
                    bytes_from_peers: ByteCount(bytes_from_peers),
                }],
            },
            None,
        ));
        metrics.counter("net.peer.downloads_completed").incr();
        metrics
            .counter("net.peer.bytes_from_edge")
            .add(bytes_from_edge);
        metrics
            .counter("net.peer.bytes_from_peers")
            .add(bytes_from_peers);
        trace.add_attr(ctx.span, "outcome", "completed");
        trace.add_attr(ctx.span, "bytes_edge", bytes_from_edge);
        trace.add_attr(ctx.span, "bytes_peers", bytes_from_peers);
        trace.add_attr(ctx.span, "peer_sources", contributors.len() as u64);
        trace.end_span(ctx.span, wall_now().as_micros());

        Ok(DownloadReport {
            bytes_from_edge,
            bytes_from_peers,
            content_hash,
            peer_sources: contributors.len(),
        })
    }

    /// Shut the daemon down.
    pub fn shutdown(self) {
        let _ = self.inner.queue_control((ControlMsg::Logout, None));
        self.stop.store(true, Ordering::Relaxed);
        self.admin.stop();
    }
}

/// Maximum exponent for the reconnect backoff: 50ms << 5 = 1.6s cap.
const BACKOFF_BASE_MS: u64 = 50;
const BACKOFF_MAX_SHIFT: u32 = 5;

/// The control-link supervisor (§3.8).
///
/// Owns the outbound message queue for the daemon's entire life. For each
/// established connection it sends `Login`, re-registers every cached
/// object (fate-sharing: the CN lost our soft state when the connection
/// died), raises `control_up`, and pumps queued messages until the link
/// fails. Between connections it retries with exponential backoff plus
/// deterministic jitter (seeded from the GUID) so a restarted CN is not
/// hit by a synchronized thundering herd, while `control_up` stays low
/// and downloads degrade to edge-only.
#[allow(clippy::too_many_arguments)]
fn run_control_link(
    inner: Arc<Inner>,
    control_addr: SocketAddr,
    control_rx: mpsc::Receiver<TracedControlMsg>,
    first: Option<TcpStream>,
    uploads_enabled: bool,
    listen_port: u16,
    stop: Arc<AtomicBool>,
) {
    let mut jitter_rng = DetRng::seeded(inner.guid.0 as u64 ^ 0xC0A7_11AC);
    let mut stream = first;
    let mut failures: u32 = 0;
    let mut sessions: u64 = 0;
    let msgs_out = inner.metrics.counter("net.peer.control_msgs_out");
    let backoff_gauge = inner.metrics.gauge("net.peer.control_backoff_failures");
    let queue_depth = inner.metrics.gauge("net.peer.control_queue_depth");
    loop {
        if stop.load(Ordering::Relaxed) {
            return;
        }
        let s = match stream.take() {
            Some(s) => s,
            None => match TcpStream::connect(control_addr) {
                Ok(s) => s,
                Err(_) => {
                    inner
                        .metrics
                        .counter("net.peer.control_reconnect_failures")
                        .incr();
                    let base = BACKOFF_BASE_MS << failures.min(BACKOFF_MAX_SHIFT);
                    // Up to +50% deterministic jitter, so a fleet of
                    // daemons with distinct GUIDs desynchronizes.
                    let delay = base + (base as f64 * 0.5 * jitter_rng.f64()) as u64;
                    failures = failures.saturating_add(1);
                    backoff_gauge.set(failures as i64);
                    // Sleep in slices so shutdown stays responsive.
                    let deadline = Instant::now() + Duration::from_millis(delay);
                    while Instant::now() < deadline && !stop.load(Ordering::Relaxed) {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    continue;
                }
            },
        };
        failures = 0;
        backoff_gauge.set(0);
        let Ok(read_half) = s.try_clone() else {
            continue;
        };
        let mut write_half = s;
        let link_down = Arc::new(AtomicBool::new(false));
        spawn_control_reader(read_half, inner.clone(), link_down.clone());

        // Session setup: login, then re-register whatever we cached while
        // the control plane wasn't looking (fate-sharing re-add).
        let login = ControlMsg::Login {
            guid: inner.guid,
            secondary_guids: vec![],
            uploads_enabled,
            software_version: 40_100,
            nat: NatType::Open,
            addr: PeerAddr {
                ip: u32::from_be_bytes([127, 0, 0, 1]),
                port: listen_port,
            },
        };
        let mut session_ok = write_msg_traced(&mut write_half, &login, None).is_ok();
        if session_ok {
            msgs_out.incr();
            if uploads_enabled {
                let versions: Vec<_> = inner
                    .store
                    .lock()
                    .unwrap()
                    .values()
                    .map(|o| o.manifest.version)
                    .collect();
                for version in versions {
                    let msg = ControlMsg::RegisterContent {
                        version,
                        fraction: 1.0,
                    };
                    if write_msg_traced(&mut write_half, &msg, None).is_err() {
                        session_ok = false;
                        break;
                    }
                    msgs_out.incr();
                    if sessions > 0 {
                        inner
                            .metrics
                            .counter("net.peer.control_reregistrations")
                            .incr();
                    }
                }
            }
        }
        if session_ok {
            if sessions > 0 {
                inner.metrics.counter("net.peer.control_reconnects").incr();
            }
            sessions += 1;
            inner.set_control_up(true);
            // Pump outbound messages until the link drops or we stop.
            loop {
                if link_down.load(Ordering::Relaxed) {
                    break;
                }
                if stop.load(Ordering::Relaxed) {
                    // Drain what is already queued (Logout included), then
                    // exit for good.
                    while let Ok((msg, ctx)) = control_rx.try_recv() {
                        queue_depth.sub(1);
                        if write_msg_traced(&mut write_half, &msg, ctx).is_err() {
                            break;
                        }
                        msgs_out.incr();
                    }
                    inner.set_control_up(false);
                    return;
                }
                match control_rx.recv_timeout(Duration::from_millis(100)) {
                    Ok((msg, ctx)) => {
                        queue_depth.sub(1);
                        if write_msg_traced(&mut write_half, &msg, ctx).is_err() {
                            break;
                        }
                        msgs_out.incr();
                    }
                    Err(mpsc::RecvTimeoutError::Timeout) => {}
                    Err(mpsc::RecvTimeoutError::Disconnected) => return,
                }
            }
        }
        // Link failed: degrade. Dropping the pending-query sender wakes
        // any download blocked on a peer query so it proceeds edge-only
        // immediately instead of waiting out its timeout.
        inner.set_control_up(false);
        inner.metrics.counter("net.peer.control_disconnects").incr();
        inner.pending_query.lock().unwrap().take();
    }
}

/// Per-connection control reader: LoginAck, PeerList (answering queries),
/// ReAdd. Signals `link_down` when the socket dies so the supervisor
/// starts reconnecting.
fn spawn_control_reader(mut read_half: TcpStream, inner: Arc<Inner>, link_down: Arc<AtomicBool>) {
    let msgs_in = inner.metrics.counter("net.peer.control_msgs_in");
    std::thread::spawn(move || {
        while let Ok(Some(msg)) = read_msg::<_, ControlMsg>(&mut read_half) {
            msgs_in.incr();
            match msg {
                ControlMsg::PeerList { peers, .. } => {
                    if let Some(tx) = inner.pending_query.lock().unwrap().take() {
                        let _ = tx.send(peers);
                    }
                }
                ControlMsg::ReAdd => {
                    let versions: Vec<_> = inner
                        .store
                        .lock()
                        .unwrap()
                        .values()
                        .map(|o| o.manifest.version)
                        .collect();
                    let _ = inner.queue_control((ControlMsg::ReAddResponse { versions }, None));
                }
                // LoginAck / ConnectTo(passive) / ConfigUpdate need no
                // action in this loopback deployment: the active side
                // dials us directly.
                _ => {}
            }
        }
        link_down.store(true, Ordering::Relaxed);
        // Fail any in-flight query right away (the supervisor also does
        // this, but it may be up to 100ms behind).
        inner.pending_query.lock().unwrap().take();
    });
}

/// Serve one inbound swarm connection (the upload side). When the
/// downloader stamped its trace context on the handshake frame, this
/// uploader's `serve_upload` span joins the *downloader's* trace.
fn serve_upload(stream: TcpStream, inner: Arc<Inner>) -> Result<()> {
    let mut r = stream
        .try_clone()
        .map_err(|e| Error::Network(e.to_string()))?;
    let mut w = stream;
    let Some((
        SwarmMsg::Handshake {
            guid,
            token,
            version,
        },
        remote_ctx,
    )) = read_msg_traced(&mut r)?
    else {
        return Ok(());
    };
    let trace = &inner.trace;
    let ctx = match remote_ctx {
        Some((t, parent)) => trace.join(t, parent),
        None => netsession_obs::TraceCtx::NONE,
    };
    let span = trace.span(ctx, "serve_upload", "peer", wall_now().as_micros());
    trace.add_attr(span, "downloader_guid", format!("{:016x}", guid.0 as u64));
    let object = version.object;
    let shared = inner.store.lock().unwrap().get(&object).cloned();
    let Some(shared) = shared else {
        trace.add_attr(span, "result", "not_cached");
        trace.end_span(span, wall_now().as_micros());
        let _ = write_msg(&mut w, &SwarmMsg::Goodbye);
        return Ok(());
    };
    if shared.manifest.version != version {
        trace.add_attr(span, "result", "stale_version");
        trace.end_span(span, wall_now().as_micros());
        let _ = write_msg(&mut w, &SwarmMsg::Goodbye);
        return Ok(());
    }
    // Governor gate: global connection limit etc.
    if inner
        .governor
        .lock()
        .unwrap()
        .try_start(guid, object, None)
        .is_err()
    {
        trace.add_attr(span, "result", "governor_busy");
        trace.end_span(span, wall_now().as_micros());
        let _ = write_msg(&mut w, &SwarmMsg::Busy);
        return Ok(());
    }

    let mut bytes_served = 0u64;
    let result = (|| {
        // Our half of the handshake + our have-map (we are a seeder).
        write_msg(
            &mut w,
            &SwarmMsg::Handshake {
                guid: inner.guid,
                token,
                version,
            },
        )?;
        let full = PieceMap::full(shared.manifest.piece_count());
        write_msg(&mut w, &SwarmMsg::have_map(&full))?;
        let served = inner.metrics.counter("net.peer.bytes_uploaded");
        loop {
            match read_msg::<_, SwarmMsg>(&mut r)? {
                Some(SwarmMsg::Request { piece }) => {
                    let start = piece as usize * shared.manifest.piece_size as usize;
                    let len = shared.manifest.piece_len(piece) as usize;
                    let data = shared.bytes[start..start + len].to_vec();
                    let digest = shared.manifest.piece_hashes[piece as usize];
                    served.add(data.len() as u64);
                    bytes_served += data.len() as u64;
                    write_msg(
                        &mut w,
                        &SwarmMsg::Piece {
                            piece,
                            data,
                            digest,
                        },
                    )?;
                }
                Some(SwarmMsg::Goodbye) | None => break,
                Some(_) => {}
            }
        }
        Ok::<(), Error>(())
    })();
    inner.governor.lock().unwrap().finish(guid, object, true);
    trace.add_attr(span, "result", "served");
    trace.add_attr(span, "bytes", bytes_served);
    trace.end_span(span, wall_now().as_micros());
    result
}
