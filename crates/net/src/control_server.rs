//! Live control-plane server.
//!
//! One process standing in for a CN+DN region (§3.6): peers keep a
//! persistent framed TCP connection; the server answers logins and peer
//! queries, accepts content registrations and usage reports, and pushes
//! `ConnectTo` instructions to *both* endpoints of every suggested pairing
//! — the coordination real NAT traversal needs.

use crate::framing::{read_msg_traced, wall_now, write_msg};
use crate::http::{standard_routes, AdminEndpoint};
use netsession_control::directory::PeerRecord;
use netsession_control::plane::{ControlPlane, PlaneConfig};
use netsession_control::selection::Querier;
use netsession_core::error::{Error, Result};
use netsession_core::id::Guid;
use netsession_core::msg::ControlMsg;
use netsession_core::rng::DetRng;
use netsession_edge::auth::EdgeAuth;
use netsession_obs::{MetricsRegistry, TraceCtx, TraceSink};
use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Trace-id prefix for the control-server process (see
/// [`TraceSink::with_id_prefix`]).
const CONTROL_ID_PREFIX: u16 = 0x0002;

struct Shared {
    plane: Mutex<ControlPlane>,
    rng: Mutex<DetRng>,
    /// Outbound push channels per logged-in GUID.
    pushers: Mutex<HashMap<Guid, mpsc::Sender<ControlMsg>>>,
    /// Raw handles of accepted connections, kept so [`ControlServer::kill`]
    /// can sever live links (crash injection for the e2e tests).
    conns: Mutex<Vec<TcpStream>>,
    metrics: MetricsRegistry,
    trace: TraceSink,
}

/// A running control-plane server.
pub struct ControlServer {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    stop: Arc<AtomicBool>,
    admin: AdminEndpoint,
}

impl ControlServer {
    /// Start on `127.0.0.1:0` (or a given addr), verifying tokens minted
    /// with `auth`. The admin endpoint binds an ephemeral port; use
    /// [`ControlServer::start_with_admin`] when a restarted server must
    /// come back on the same admin address.
    pub fn start(addr: &str, auth: EdgeAuth) -> Result<ControlServer> {
        ControlServer::start_with_admin(addr, "127.0.0.1:0", auth)
    }

    /// Start with an explicit admin (HTTP) listen address serving
    /// `/metrics`, `/healthz`, and `/varz`.
    pub fn start_with_admin(addr: &str, admin_addr: &str, auth: EdgeAuth) -> Result<ControlServer> {
        let listener = TcpListener::bind(addr).map_err(|e| Error::Network(format!("bind: {e}")))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| Error::Network(e.to_string()))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| Error::Network(e.to_string()))?;
        let metrics = MetricsRegistry::new();
        let shared = Arc::new(Shared {
            plane: Mutex::new(
                ControlPlane::new(
                    &PlaneConfig {
                        regions: 1,
                        ..PlaneConfig::default()
                    },
                    auth,
                )
                .with_metrics(&metrics),
            ),
            rng: Mutex::new(DetRng::seeded(0xC0117201)),
            pushers: Mutex::new(HashMap::new()),
            conns: Mutex::new(Vec::new()),
            trace: {
                let trace = TraceSink::with_id_prefix(1, CONTROL_ID_PREFIX);
                trace.attach_metrics(&metrics);
                trace
            },
            metrics,
        });
        let stop = Arc::new(AtomicBool::new(false));
        let shared_for_loop = shared.clone();
        let stop_for_loop = stop.clone();
        std::thread::spawn(move || {
            while !stop_for_loop.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        shared_for_loop
                            .metrics
                            .counter("net.control.connections")
                            .incr();
                        if let Ok(handle) = stream.try_clone() {
                            shared_for_loop.conns.lock().unwrap().push(handle);
                        }
                        let shared = shared_for_loop.clone();
                        std::thread::spawn(move || {
                            let _ = serve_connection(stream, shared);
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
        });
        let admin = {
            let shared = shared.clone();
            AdminEndpoint::start(
                admin_addr,
                standard_routes(shared.metrics.clone(), move || {
                    format!(
                        "{{\"status\":\"ok\",\"component\":\"control\",\"connected\":{}}}",
                        shared.pushers.lock().unwrap().len()
                    )
                }),
            )?
        };
        Ok(ControlServer {
            local_addr,
            shared,
            stop,
            admin,
        })
    }

    /// Where the server listens.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Where the admin (HTTP) endpoint listens.
    pub fn admin_addr(&self) -> SocketAddr {
        self.admin.local_addr()
    }

    /// Currently connected peers (test observability).
    pub fn connected(&self) -> usize {
        self.shared.pushers.lock().unwrap().len()
    }

    /// Live telemetry registry (connections, framed messages, plus the
    /// control-plane's own instruments).
    pub fn metrics(&self) -> MetricsRegistry {
        self.shared.metrics.clone()
    }

    /// This server's trace sink. Spans for traced client requests join
    /// the *client's* trace id (received via the framing envelope).
    pub fn trace(&self) -> TraceSink {
        self.shared.trace.clone()
    }

    /// Drain collected usage records (billing pipeline; test observability).
    pub fn drain_usage(&self) -> Vec<netsession_core::msg::UsageRecord> {
        self.shared.plane.lock().unwrap().drain_usage()
    }

    /// Registered holders of a version (test observability for the
    /// fate-sharing re-registration path).
    pub fn holder_count(&self, version: netsession_core::id::VersionId) -> usize {
        self.shared.plane.lock().unwrap().holder_count(0, version)
    }

    /// Stop serving. Live connections are left to drain naturally.
    pub fn shutdown(self) {
        self.stop.store(true, Ordering::Relaxed);
        self.admin.stop();
    }

    /// Crash the server: stop accepting *and* sever every established
    /// connection, the way a CN process death looks from the outside
    /// (§3.8 fault injection). The listening port is released within a
    /// few milliseconds, so a replacement can bind the same address.
    pub fn kill(self) {
        self.stop.store(true, Ordering::Relaxed);
        self.admin.stop();
        for conn in self.shared.conns.lock().unwrap().drain(..) {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
    }
}

fn serve_connection(stream: TcpStream, shared: Arc<Shared>) -> Result<()> {
    let mut reader = stream
        .try_clone()
        .map_err(|e| Error::Network(e.to_string()))?;
    let mut writer = stream;
    let (tx, rx) = mpsc::channel::<ControlMsg>();
    let msgs_in = shared.metrics.counter("net.control.msgs_in");
    let msgs_out = shared.metrics.counter("net.control.msgs_out");

    // Writer thread: everything (responses and pushes) leaves through here.
    let msgs_out_for_writer = msgs_out.clone();
    let writer_thread = std::thread::spawn(move || {
        while let Ok(msg) = rx.recv() {
            if write_msg(&mut writer, &msg).is_err() {
                break;
            }
            msgs_out_for_writer.incr();
        }
    });

    let mut session: Option<(Guid, PeerRecord)> = None;
    while let Some((msg, remote_ctx)) = read_msg_traced::<_, ControlMsg>(&mut reader)? {
        msgs_in.incr();
        // Requests stamped with a trace context get their server-side
        // spans recorded under the client's trace.
        let ctx = match remote_ctx {
            Some((t, parent)) => shared.trace.join(t, parent),
            None => TraceCtx::NONE,
        };
        match msg {
            ControlMsg::Login {
                guid,
                secondary_guids,
                uploads_enabled,
                software_version,
                nat,
                addr,
            } => {
                let conn = shared.plane.lock().unwrap().login(
                    0,
                    guid,
                    addr,
                    nat,
                    uploads_enabled,
                    software_version,
                    secondary_guids,
                    wall_now(),
                );
                session = Some((
                    guid,
                    PeerRecord {
                        guid,
                        addr,
                        asn: netsession_core::id::AsNumber(1),
                        area: 0,
                        zone: 0,
                        nat,
                    },
                ));
                shared.pushers.lock().unwrap().insert(guid, tx.clone());
                let _ = tx.send(ControlMsg::LoginAck {
                    conn,
                    config: netsession_core::policy::TransferConfig::default(),
                });
            }
            ControlMsg::QueryPeers { token, max_peers } => {
                let Some((guid, record)) = &session else {
                    continue;
                };
                let querier = Querier {
                    guid: *guid,
                    asn: record.asn,
                    area: record.area,
                    zone: record.zone,
                    nat: record.nat,
                };
                let peers = {
                    let mut plane = shared.plane.lock().unwrap();
                    let mut rng = shared.rng.lock().unwrap();
                    let (result, _span) = plane.query_peers_traced(
                        0,
                        &querier,
                        &token,
                        wall_now(),
                        &mut rng,
                        &shared.trace,
                        ctx,
                    );
                    result.unwrap_or_default()
                };
                let peers: Vec<_> = peers.into_iter().take(max_peers as usize).collect();
                // Tell both sides to connect (§3.6).
                for contact in &peers {
                    let pusher = shared.pushers.lock().unwrap().get(&contact.guid).cloned();
                    if let Some(pusher) = pusher {
                        let _ = pusher.send(ControlMsg::ConnectTo {
                            contact: netsession_core::msg::PeerContact {
                                guid: *guid,
                                addr: record.addr,
                                asn: record.asn,
                                nat: record.nat,
                            },
                            version: token.version,
                            active_role: false,
                        });
                    }
                    let _ = tx.send(ControlMsg::ConnectTo {
                        contact: contact.clone(),
                        version: token.version,
                        active_role: true,
                    });
                }
                let _ = tx.send(ControlMsg::PeerList {
                    version: token.version,
                    peers,
                });
            }
            ControlMsg::RegisterContent { version, .. } => {
                if let Some((_, record)) = &session {
                    shared
                        .plane
                        .lock()
                        .unwrap()
                        .register_content(0, record.clone(), version);
                }
            }
            ControlMsg::UnregisterContent { version } => {
                if let Some((guid, _)) = &session {
                    shared
                        .plane
                        .lock()
                        .unwrap()
                        .unregister_content(0, *guid, version);
                }
            }
            ControlMsg::ReAddResponse { versions } => {
                if let Some((_, record)) = &session {
                    shared
                        .plane
                        .lock()
                        .unwrap()
                        .handle_readd(0, record.clone(), &versions);
                }
            }
            ControlMsg::UsageReport { records } => {
                shared.plane.lock().unwrap().accept_usage(0, records);
            }
            ControlMsg::Logout => break,
            // Server→client messages arriving here are protocol errors;
            // ignore them rather than kill the connection.
            _ => {}
        }
    }
    if let Some((guid, _)) = session {
        shared.pushers.lock().unwrap().remove(&guid);
        shared.plane.lock().unwrap().logout(0, guid);
    }
    // Dropping `tx` ends the writer thread once the queue drains.
    drop(tx);
    let _ = writer_thread.join();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framing::read_msg;
    use netsession_core::id::{ObjectId, VersionId};
    use netsession_core::msg::{NatType, PeerAddr};

    fn login(addr: SocketAddr, guid: u64, port: u16) -> TcpStream {
        let mut stream = TcpStream::connect(addr).unwrap();
        write_msg(
            &mut stream,
            &ControlMsg::Login {
                guid: Guid(guid as u128),
                secondary_guids: vec![],
                uploads_enabled: true,
                software_version: 1,
                nat: NatType::Open,
                addr: PeerAddr {
                    ip: u32::from_be_bytes([127, 0, 0, 1]),
                    port,
                },
            },
        )
        .unwrap();
        let ack: ControlMsg = read_msg(&mut stream).unwrap().unwrap();
        assert!(matches!(ack, ControlMsg::LoginAck { .. }));
        stream
    }

    fn ver() -> VersionId {
        VersionId {
            object: ObjectId(9),
            version: 1,
        }
    }

    #[test]
    fn login_register_query_roundtrip() {
        let auth = EdgeAuth::from_seed(5);
        let server = ControlServer::start("127.0.0.1:0", auth.clone()).unwrap();
        // Peer A registers a copy.
        let mut a = login(server.local_addr(), 1, 1111);
        write_msg(
            &mut a,
            &ControlMsg::RegisterContent {
                version: ver(),
                fraction: 1.0,
            },
        )
        .unwrap();

        // Peer B queries with a valid token.
        let mut b = login(server.local_addr(), 2, 2222);
        let token = auth.issue(Guid(2), ver(), wall_now());
        write_msg(
            &mut b,
            &ControlMsg::QueryPeers {
                token,
                max_peers: 10,
            },
        )
        .unwrap();
        // B receives a ConnectTo (active) then the PeerList.
        let m1: ControlMsg = read_msg(&mut b).unwrap().unwrap();
        match m1 {
            ControlMsg::ConnectTo {
                contact,
                active_role,
                ..
            } => {
                assert_eq!(contact.guid, Guid(1));
                assert!(active_role);
            }
            other => panic!("{other:?}"),
        }
        let m2: ControlMsg = read_msg(&mut b).unwrap().unwrap();
        match m2 {
            ControlMsg::PeerList { peers, .. } => {
                assert_eq!(peers.len(), 1);
                assert_eq!(peers[0].addr.port, 1111);
            }
            other => panic!("{other:?}"),
        }
        // A receives the passive ConnectTo push.
        let push: ControlMsg = read_msg(&mut a).unwrap().unwrap();
        match push {
            ControlMsg::ConnectTo {
                contact,
                active_role,
                ..
            } => {
                assert_eq!(contact.guid, Guid(2));
                assert!(!active_role);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(server.connected(), 2);
        assert_eq!(server.metrics().counter("net.control.connections").get(), 2);
        server.shutdown();
    }

    #[test]
    fn forged_token_yields_empty_list() {
        let server = ControlServer::start("127.0.0.1:0", EdgeAuth::from_seed(5)).unwrap();
        let mut s = login(server.local_addr(), 3, 3333);
        let forged = EdgeAuth::from_seed(99).issue(Guid(3), ver(), wall_now());
        write_msg(
            &mut s,
            &ControlMsg::QueryPeers {
                token: forged,
                max_peers: 10,
            },
        )
        .unwrap();
        let resp: ControlMsg = read_msg(&mut s).unwrap().unwrap();
        match resp {
            ControlMsg::PeerList { peers, .. } => assert!(peers.is_empty()),
            other => panic!("{other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn usage_reports_reach_the_pipeline() {
        let server = ControlServer::start("127.0.0.1:0", EdgeAuth::from_seed(5)).unwrap();
        let mut s = login(server.local_addr(), 4, 4444);
        write_msg(
            &mut s,
            &ControlMsg::UsageReport {
                records: vec![netsession_core::msg::UsageRecord {
                    guid: Guid(4),
                    version: ver(),
                    started: wall_now(),
                    ended: wall_now(),
                    bytes_from_infrastructure: netsession_core::units::ByteCount(10),
                    bytes_from_peers: netsession_core::units::ByteCount(20),
                }],
            },
        )
        .unwrap();
        // Give the server a beat to process.
        std::thread::sleep(std::time::Duration::from_millis(100));
        let usage = server.drain_usage();
        assert_eq!(usage.len(), 1);
        assert_eq!(usage[0].bytes_from_peers.bytes(), 20);
        server.shutdown();
    }
}
