//! Live control-plane server.
//!
//! One process standing in for a CN+DN region (§3.6): peers keep a
//! persistent framed TCP connection; the server answers logins and peer
//! queries, accepts content registrations and usage reports, and pushes
//! `ConnectTo` instructions to *both* endpoints of every suggested pairing
//! — the coordination real NAT traversal needs.

use crate::framing::{read_msg, wall_now, write_msg};
use netsession_control::directory::PeerRecord;
use netsession_control::plane::{ControlPlane, PlaneConfig};
use netsession_control::selection::Querier;
use netsession_core::error::{Error, Result};
use netsession_core::id::Guid;
use netsession_core::msg::ControlMsg;
use netsession_core::rng::DetRng;
use netsession_edge::auth::EdgeAuth;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::Arc;
use tokio::net::{TcpListener, TcpStream};
use tokio::sync::mpsc;

struct Shared {
    plane: Mutex<ControlPlane>,
    rng: Mutex<DetRng>,
    /// Outbound push channels per logged-in GUID.
    pushers: Mutex<HashMap<Guid, mpsc::UnboundedSender<ControlMsg>>>,
}

/// A running control-plane server.
pub struct ControlServer {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    handle: tokio::task::JoinHandle<()>,
}

impl ControlServer {
    /// Start on `127.0.0.1:0` (or a given addr), verifying tokens minted
    /// with `auth`.
    pub async fn start(addr: &str, auth: EdgeAuth) -> Result<ControlServer> {
        let listener = TcpListener::bind(addr)
            .await
            .map_err(|e| Error::Network(format!("bind: {e}")))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| Error::Network(e.to_string()))?;
        let shared = Arc::new(Shared {
            plane: Mutex::new(ControlPlane::new(
                &PlaneConfig {
                    regions: 1,
                    ..PlaneConfig::default()
                },
                auth,
            )),
            rng: Mutex::new(DetRng::seeded(0xC0117201)),
            pushers: Mutex::new(HashMap::new()),
        });
        let shared_for_loop = shared.clone();
        let handle = tokio::spawn(async move {
            loop {
                let Ok((stream, _)) = listener.accept().await else {
                    break;
                };
                let shared = shared_for_loop.clone();
                tokio::spawn(async move {
                    let _ = serve_connection(stream, shared).await;
                });
            }
        });
        Ok(ControlServer {
            local_addr,
            shared,
            handle,
        })
    }

    /// Where the server listens.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Currently connected peers (test observability).
    pub fn connected(&self) -> usize {
        self.shared.pushers.lock().len()
    }

    /// Drain collected usage records (billing pipeline; test observability).
    pub fn drain_usage(&self) -> Vec<netsession_core::msg::UsageRecord> {
        self.shared.plane.lock().drain_usage()
    }

    /// Stop serving.
    pub fn shutdown(self) {
        self.handle.abort();
    }
}

async fn serve_connection(stream: TcpStream, shared: Arc<Shared>) -> Result<()> {
    let (mut reader, mut writer) = stream.into_split();
    let (tx, mut rx) = mpsc::unbounded_channel::<ControlMsg>();

    // Writer task: everything (responses and pushes) leaves through here.
    let writer_task = tokio::spawn(async move {
        while let Some(msg) = rx.recv().await {
            if write_msg(&mut writer, &msg).await.is_err() {
                break;
            }
        }
    });

    let mut session: Option<(Guid, PeerRecord)> = None;
    loop {
        let Some(msg): Option<ControlMsg> = read_msg(&mut reader).await? else {
            break;
        };
        match msg {
            ControlMsg::Login {
                guid,
                secondary_guids,
                uploads_enabled,
                software_version,
                nat,
                addr,
            } => {
                let conn = shared.plane.lock().login(
                    0,
                    guid,
                    addr,
                    nat,
                    uploads_enabled,
                    software_version,
                    secondary_guids,
                    wall_now(),
                );
                session = Some((
                    guid,
                    PeerRecord {
                        guid,
                        addr,
                        asn: netsession_core::id::AsNumber(1),
                        area: 0,
                        zone: 0,
                        nat,
                    },
                ));
                shared.pushers.lock().insert(guid, tx.clone());
                let _ = tx.send(ControlMsg::LoginAck {
                    conn,
                    config: netsession_core::policy::TransferConfig::default(),
                });
            }
            ControlMsg::QueryPeers { token, max_peers } => {
                let Some((guid, record)) = &session else {
                    continue;
                };
                let querier = Querier {
                    guid: *guid,
                    asn: record.asn,
                    area: record.area,
                    zone: record.zone,
                    nat: record.nat,
                };
                let peers = {
                    let mut plane = shared.plane.lock();
                    let mut rng = shared.rng.lock();
                    plane
                        .query_peers(0, &querier, &token, wall_now(), &mut rng)
                        .unwrap_or_default()
                };
                let peers: Vec<_> = peers.into_iter().take(max_peers as usize).collect();
                // Tell both sides to connect (§3.6).
                for contact in &peers {
                    if let Some(pusher) = shared.pushers.lock().get(&contact.guid) {
                        let _ = pusher.send(ControlMsg::ConnectTo {
                            contact: netsession_core::msg::PeerContact {
                                guid: *guid,
                                addr: record.addr,
                                asn: record.asn,
                                nat: record.nat,
                            },
                            version: token.version,
                            active_role: false,
                        });
                    }
                    let _ = tx.send(ControlMsg::ConnectTo {
                        contact: contact.clone(),
                        version: token.version,
                        active_role: true,
                    });
                }
                let _ = tx.send(ControlMsg::PeerList {
                    version: token.version,
                    peers,
                });
            }
            ControlMsg::RegisterContent { version, .. } => {
                if let Some((_, record)) = &session {
                    shared
                        .plane
                        .lock()
                        .register_content(0, record.clone(), version);
                }
            }
            ControlMsg::UnregisterContent { version } => {
                if let Some((guid, _)) = &session {
                    shared.plane.lock().unregister_content(0, *guid, version);
                }
            }
            ControlMsg::ReAddResponse { versions } => {
                if let Some((_, record)) = &session {
                    shared
                        .plane
                        .lock()
                        .handle_readd(0, record.clone(), &versions);
                }
            }
            ControlMsg::UsageReport { records } => {
                shared.plane.lock().accept_usage(0, records);
            }
            ControlMsg::Logout => break,
            // Server→client messages arriving here are protocol errors;
            // ignore them rather than kill the connection.
            _ => {}
        }
    }
    if let Some((guid, _)) = session {
        shared.pushers.lock().remove(&guid);
        shared.plane.lock().logout(0, guid);
    }
    writer_task.abort();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsession_core::id::{ObjectId, VersionId};
    use netsession_core::msg::{NatType, PeerAddr};

    async fn login(
        addr: SocketAddr,
        guid: u64,
        port: u16,
    ) -> (tokio::net::tcp::OwnedReadHalf, tokio::net::tcp::OwnedWriteHalf) {
        let stream = TcpStream::connect(addr).await.unwrap();
        let (mut r, mut w) = stream.into_split();
        write_msg(
            &mut w,
            &ControlMsg::Login {
                guid: Guid(guid as u128),
                secondary_guids: vec![],
                uploads_enabled: true,
                software_version: 1,
                nat: NatType::Open,
                addr: PeerAddr {
                    ip: u32::from_be_bytes([127, 0, 0, 1]),
                    port,
                },
            },
        )
        .await
        .unwrap();
        let ack: ControlMsg = read_msg(&mut r).await.unwrap().unwrap();
        assert!(matches!(ack, ControlMsg::LoginAck { .. }));
        (r, w)
    }

    fn ver() -> VersionId {
        VersionId {
            object: ObjectId(9),
            version: 1,
        }
    }

    #[tokio::test]
    async fn login_register_query_roundtrip() {
        let auth = EdgeAuth::from_seed(5);
        let server = ControlServer::start("127.0.0.1:0", auth.clone())
            .await
            .unwrap();
        // Peer A registers a copy.
        let (mut ra, mut wa) = login(server.local_addr(), 1, 1111).await;
        write_msg(
            &mut wa,
            &ControlMsg::RegisterContent {
                version: ver(),
                fraction: 1.0,
            },
        )
        .await
        .unwrap();

        // Peer B queries with a valid token.
        let (mut rb, mut wb) = login(server.local_addr(), 2, 2222).await;
        let token = auth.issue(Guid(2), ver(), wall_now());
        write_msg(&mut wb, &ControlMsg::QueryPeers { token, max_peers: 10 })
            .await
            .unwrap();
        // B receives a ConnectTo (active) then the PeerList.
        let m1: ControlMsg = read_msg(&mut rb).await.unwrap().unwrap();
        match m1 {
            ControlMsg::ConnectTo {
                contact,
                active_role,
                ..
            } => {
                assert_eq!(contact.guid, Guid(1));
                assert!(active_role);
            }
            other => panic!("{other:?}"),
        }
        let m2: ControlMsg = read_msg(&mut rb).await.unwrap().unwrap();
        match m2 {
            ControlMsg::PeerList { peers, .. } => {
                assert_eq!(peers.len(), 1);
                assert_eq!(peers[0].addr.port, 1111);
            }
            other => panic!("{other:?}"),
        }
        // A receives the passive ConnectTo push.
        let push: ControlMsg = read_msg(&mut ra).await.unwrap().unwrap();
        match push {
            ControlMsg::ConnectTo {
                contact,
                active_role,
                ..
            } => {
                assert_eq!(contact.guid, Guid(2));
                assert!(!active_role);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(server.connected(), 2);
        server.shutdown();
    }

    #[tokio::test]
    async fn forged_token_yields_empty_list() {
        let server = ControlServer::start("127.0.0.1:0", EdgeAuth::from_seed(5))
            .await
            .unwrap();
        let (mut r, mut w) = login(server.local_addr(), 3, 3333).await;
        let forged = EdgeAuth::from_seed(99).issue(Guid(3), ver(), wall_now());
        write_msg(
            &mut w,
            &ControlMsg::QueryPeers {
                token: forged,
                max_peers: 10,
            },
        )
        .await
        .unwrap();
        let resp: ControlMsg = read_msg(&mut r).await.unwrap().unwrap();
        match resp {
            ControlMsg::PeerList { peers, .. } => assert!(peers.is_empty()),
            other => panic!("{other:?}"),
        }
        server.shutdown();
    }

    #[tokio::test]
    async fn usage_reports_reach_the_pipeline() {
        let server = ControlServer::start("127.0.0.1:0", EdgeAuth::from_seed(5))
            .await
            .unwrap();
        let (_r, mut w) = login(server.local_addr(), 4, 4444).await;
        write_msg(
            &mut w,
            &ControlMsg::UsageReport {
                records: vec![netsession_core::msg::UsageRecord {
                    guid: Guid(4),
                    version: ver(),
                    started: wall_now(),
                    ended: wall_now(),
                    bytes_from_infrastructure: netsession_core::units::ByteCount(10),
                    bytes_from_peers: netsession_core::units::ByteCount(20),
                }],
            },
        )
        .await
        .unwrap();
        // Give the server a beat to process.
        tokio::time::sleep(std::time::Duration::from_millis(100)).await;
        let usage = server.drain_usage();
        assert_eq!(usage.len(), 1);
        assert_eq!(usage[0].bytes_from_peers.bytes(), 20);
        server.shutdown();
    }
}
