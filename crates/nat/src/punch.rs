//! Control-plane-coordinated UDP hole punching.
//!
//! NetSession's persistent control connections "are also used to tell peers
//! to connect to each other in order to facilitate sharing of content. Such
//! coordination is necessary … to overcome NATs and firewalls" (§3.6). This
//! module simulates the punch as it actually unfolds:
//!
//! 1. Both peers run STUN and report their mapped (server-reflexive)
//!    endpoints to the control plane.
//! 2. The control plane tells each peer the other's reflexive endpoint
//!    (the `ConnectTo` message).
//! 3. Both peers simultaneously send UDP probes to the learned endpoint.
//!    The first probes open outbound permissions; whether subsequent probes
//!    are delivered is decided entirely by the two modeled boxes.
//!
//! Direct TCP is preferred when one side is publicly reachable; the punch
//! is only attempted otherwise.

use crate::natbox::{Endpoint, NatBox};
use netsession_core::msg::NatType;

/// Result of a connection-establishment attempt between two peers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PunchOutcome {
    /// A plain TCP connection works (at least one side publicly reachable).
    DirectTcp,
    /// The UDP hole punch succeeded in both directions.
    Punched,
    /// No connectivity could be established.
    Failed,
}

impl PunchOutcome {
    /// Whether a usable peer connection resulted.
    pub fn connected(self) -> bool {
        self != PunchOutcome::Failed
    }
}

/// Attempt to connect two peers behind the given boxes. `a_int`/`b_int` are
/// the peers' internal sockets.
pub fn punch(
    a_box: &mut NatBox,
    a_int: Endpoint,
    b_box: &mut NatBox,
    b_int: Endpoint,
) -> PunchOutcome {
    // Fast path: somebody is directly reachable over TCP — the other side
    // simply dials (both are online; the control plane tells them to).
    if a_box.inbound_tcp_allowed() || b_box.inbound_tcp_allowed() {
        return PunchOutcome::DirectTcp;
    }
    // Blocked firewalls cannot do UDP at all, and we established neither
    // side accepts inbound TCP.
    if a_box.kind() == NatType::Blocked || b_box.kind() == NatType::Blocked {
        return PunchOutcome::Failed;
    }

    // Step 1: STUN — both sides learn their reflexive endpoints. We model
    // the STUN exchange as a send to the STUN server; the reflexive address
    // is what that mapping exposes.
    let stun = Endpoint::new(0x08080808, 3478);
    let a_reflex = match a_box.send(a_int, stun) {
        Some(e) => e,
        None => return PunchOutcome::Failed,
    };
    let b_reflex = match b_box.send(b_int, stun) {
        Some(e) => e,
        None => return PunchOutcome::Failed,
    };

    // Step 2+3: simultaneous probes. Each side sends a few probes to the
    // other's *reflexive* endpoint. For symmetric NATs the probe allocates a
    // NEW mapping (different from the reflexive one), which is exactly why
    // symmetric↔symmetric fails.
    let a_probe_src = a_box.send(a_int, b_reflex); // A's packets toward B
    let b_probe_src = b_box.send(b_int, a_reflex); // B's packets toward A

    let (a_probe_src, b_probe_src) = match (a_probe_src, b_probe_src) {
        (Some(x), Some(y)) => (x, y),
        _ => return PunchOutcome::Failed,
    };

    // Round 2: after both sides have sent once (permissions now exist),
    // deliverability is evaluated. B's probe arrives at A's box from
    // b_probe_src addressed to a_reflex; and vice versa. Note the subtlety:
    // a symmetric side sends from a_probe_src ≠ a_reflex, so the peer's
    // probes toward a_reflex target a *different* mapping.
    let b_to_a = a_box.receive(b_probe_src, a_reflex).is_some()
        || a_box.receive(b_probe_src, a_probe_src).is_some();
    let a_to_b = b_box.receive(a_probe_src, b_reflex).is_some()
        || b_box.receive(a_probe_src, b_probe_src).is_some();

    if a_to_b && b_to_a {
        PunchOutcome::Punched
    } else {
        PunchOutcome::Failed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn boxes(a: NatType, b: NatType) -> (NatBox, Endpoint, NatBox, Endpoint) {
        let a_pub = if a == NatType::Open {
            0x0a000001
        } else {
            0x01010101
        };
        let b_pub = if b == NatType::Open {
            0x0b000001
        } else {
            0x02020202
        };
        (
            NatBox::new(a, a_pub),
            Endpoint::new(0x0a000001, 5000),
            NatBox::new(b, b_pub),
            Endpoint::new(0x0b000001, 6000),
        )
    }

    fn outcome(a: NatType, b: NatType) -> PunchOutcome {
        let (mut ab, ai, mut bb, bi) = boxes(a, b);
        punch(&mut ab, ai, &mut bb, bi)
    }

    #[test]
    fn open_peer_gives_direct_tcp() {
        for other in NatType::ALL {
            assert_eq!(
                outcome(NatType::Open, other),
                PunchOutcome::DirectTcp,
                "open + {other:?}"
            );
            assert_eq!(
                outcome(other, NatType::Open),
                PunchOutcome::DirectTcp,
                "{other:?} + open"
            );
        }
    }

    #[test]
    fn blocked_pairs_fail_without_an_open_side() {
        for other in [
            NatType::FullCone,
            NatType::RestrictedCone,
            NatType::PortRestricted,
            NatType::Symmetric,
            NatType::Blocked,
        ] {
            assert_eq!(outcome(NatType::Blocked, other), PunchOutcome::Failed);
            assert_eq!(outcome(other, NatType::Blocked), PunchOutcome::Failed);
        }
    }

    #[test]
    fn cone_pairs_punch() {
        let cones = [
            NatType::FullCone,
            NatType::RestrictedCone,
            NatType::PortRestricted,
        ];
        for a in cones {
            for b in cones {
                assert_eq!(outcome(a, b), PunchOutcome::Punched, "{a:?}+{b:?}");
            }
        }
    }

    #[test]
    fn symmetric_with_symmetric_fails() {
        assert_eq!(
            outcome(NatType::Symmetric, NatType::Symmetric),
            PunchOutcome::Failed
        );
    }

    #[test]
    fn symmetric_with_port_restricted_fails() {
        // Classic result: the symmetric side's punch mapping differs from
        // its reflexive address, and the port-restricted side only accepts
        // from the exact endpoint it sent to.
        assert_eq!(
            outcome(NatType::Symmetric, NatType::PortRestricted),
            PunchOutcome::Failed
        );
        assert_eq!(
            outcome(NatType::PortRestricted, NatType::Symmetric),
            PunchOutcome::Failed
        );
    }

    #[test]
    fn symmetric_with_permissive_cones_punches() {
        assert_eq!(
            outcome(NatType::Symmetric, NatType::FullCone),
            PunchOutcome::Punched
        );
        assert_eq!(
            outcome(NatType::Symmetric, NatType::RestrictedCone),
            PunchOutcome::Punched
        );
    }
}
