//! STUN-style connectivity classification.
//!
//! NetSession peers "periodically communicate with STUN components over UDP
//! and TCP to determine the details of their connectivity (which are then
//! stored in the DN databases)" (§3.6). This module implements the classic
//! RFC 3489 decision tree as an actual protocol run against a modeled
//! [`NatBox`]:
//!
//! 1. **Test I** — send to server address A; the server echoes the mapped
//!    (public) address. No reply → UDP blocked. Mapped == local → open.
//! 2. **Test II** — ask the server to reply from a *different IP and port*.
//!    Reply received → full cone.
//! 3. **Test I′** — repeat Test I toward server address B (different IP).
//!    Different mapped address → symmetric.
//! 4. **Test III** — ask the server to reply from the *same IP, different
//!    port*. Reply received → address-restricted cone; otherwise
//!    port-restricted cone.

use crate::natbox::{Endpoint, NatBox};
use netsession_core::msg::NatType;

/// A STUN server with two distinct public IPs and two ports, as the
/// classification algorithm requires.
#[derive(Clone, Copy, Debug)]
pub struct StunServer {
    /// Primary address (IP A, port 1).
    pub primary: Endpoint,
    /// Alternate port on the primary IP (IP A, port 2) — for Test III.
    pub alt_port: Endpoint,
    /// Alternate IP entirely (IP B, port 1) — for Test II and Test I′.
    pub alt_ip: Endpoint,
}

impl Default for StunServer {
    fn default() -> Self {
        StunServer {
            primary: Endpoint::new(0x08080808, 3478),
            alt_port: Endpoint::new(0x08080808, 3479),
            alt_ip: Endpoint::new(0x08080404, 3478),
        }
    }
}

impl StunServer {
    /// Run one binding request: the client behind `nat` sends from
    /// `internal` to `to`; the server replies *from* `reply_from` to the
    /// mapped address. Returns the mapped address if the reply gets back
    /// through the NAT.
    fn binding_request(
        &self,
        nat: &mut NatBox,
        internal: Endpoint,
        to: Endpoint,
        reply_from: Endpoint,
    ) -> Option<Endpoint> {
        let mapped = nat.send(internal, to)?;
        // The server sends its reply from `reply_from` to `mapped`.
        nat.receive(reply_from, mapped)?;
        Some(mapped)
    }

    /// Classify the NAT in front of `internal` by running the full RFC 3489
    /// decision tree.
    ///
    /// `internal` must be a *freshly bound* socket: permissions opened by a
    /// previous classification on the same socket would let Test II replies
    /// through restricted boxes and misclassify them as full cone — exactly
    /// why real STUN clients bind a new port per classification round.
    pub fn classify(&self, nat: &mut NatBox, internal: Endpoint) -> NatType {
        // Test I: request to primary, reply from primary.
        let mapped1 = match self.binding_request(nat, internal, self.primary, self.primary) {
            Some(m) => m,
            None => return NatType::Blocked,
        };

        if mapped1 == internal {
            // No translation observed. (A UDP-hostile firewall with no NAT
            // would have failed Test I entirely.)
            return NatType::Open;
        }

        // Test II: request to primary, reply from the alternate IP+port.
        if self
            .binding_request(nat, internal, self.primary, self.alt_ip)
            .is_some()
        {
            return NatType::FullCone;
        }

        // Test I': request to the alternate IP; compare mapped addresses.
        if let Some(mapped2) = self.binding_request(nat, internal, self.alt_ip, self.alt_ip) {
            if mapped2 != mapped1 {
                return NatType::Symmetric;
            }
        } else {
            // The reply from alt_ip is from an address we *did* send to, so
            // cone NATs deliver it; only a symmetric box with a divergent
            // mapping can lose it.
            return NatType::Symmetric;
        }

        // Test III: request to primary, reply from same IP, different port.
        if self
            .binding_request(nat, internal, self.primary, self.alt_port)
            .is_some()
        {
            NatType::RestrictedCone
        } else {
            NatType::PortRestricted
        }
    }
}

/// Classify using a default server layout.
pub fn classify(nat: &mut NatBox, internal: Endpoint) -> NatType {
    StunServer::default().classify(nat, internal)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The classifier must recover the ground-truth type of every modeled
    /// box — the key correctness property tying `stun` to `natbox`.
    #[test]
    fn classifier_recovers_ground_truth_for_every_nat_type() {
        for kind in NatType::ALL {
            let public_ip = if kind == NatType::Open {
                0x0a000001 // open host's public IP == its own address
            } else {
                0x01010101
            };
            let mut nat = NatBox::new(kind, public_ip);
            let internal = Endpoint::new(0x0a000001, 5000);
            let inferred = classify(&mut nat, internal);
            assert_eq!(inferred, kind, "misclassified {kind:?} as {inferred:?}");
        }
    }

    #[test]
    fn classification_is_stable_across_fresh_sockets() {
        // Each classification round binds a fresh socket, as real STUN
        // clients do; results must agree across rounds.
        let mut nat = NatBox::new(NatType::PortRestricted, 0x01010101);
        let first = classify(&mut nat, Endpoint::new(0x0a000001, 5000));
        for port in 5001..5004 {
            assert_eq!(classify(&mut nat, Endpoint::new(0x0a000001, port)), first);
        }
    }

    #[test]
    fn different_internal_sockets_classify_independently() {
        let mut nat = NatBox::new(NatType::Symmetric, 0x01010101);
        let a = classify(&mut nat, Endpoint::new(0x0a000001, 5000));
        let b = classify(&mut nat, Endpoint::new(0x0a000001, 5001));
        assert_eq!(a, NatType::Symmetric);
        assert_eq!(b, NatType::Symmetric);
    }
}
