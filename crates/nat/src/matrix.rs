//! Pairwise connectivity matrix.
//!
//! The DN "selects only peers that are likely to be able to establish a
//! connection with each other, e.g., based on the type of their NAT or
//! firewall" (§3.7). For that it needs a fast, table-driven answer; the
//! table here is the closed form of what the punch simulation computes, and
//! a test in this module *derives* the table from [`crate::punch`] to prove
//! the two never drift apart.

use netsession_core::msg::NatType;

/// How two endpoints can be connected, if at all.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Connectivity {
    /// Plain TCP works; no traversal needed.
    Direct,
    /// Reachable via a coordinated UDP hole punch.
    HolePunch,
    /// No direct connectivity; the control plane must not pair these peers.
    None,
}

impl Connectivity {
    /// Whether the DN may pair two such peers.
    pub fn usable(self) -> bool {
        self != Connectivity::None
    }

    /// Whether establishing the connection needs the control plane to
    /// coordinate a punch (drives the §3.6 `ConnectTo`-to-both-sides path).
    pub fn needs_punch(self) -> bool {
        self == Connectivity::HolePunch
    }

    /// A stable label for logs and trace-span attributes.
    pub fn label(self) -> &'static str {
        match self {
            Connectivity::Direct => "direct",
            Connectivity::HolePunch => "hole_punch",
            Connectivity::None => "unreachable",
        }
    }
}

/// The closed-form connectivity table.
pub fn connectivity(a: NatType, b: NatType) -> Connectivity {
    use NatType::*;
    match (a, b) {
        (Open, _) | (_, Open) => Connectivity::Direct,
        (Blocked, _) | (_, Blocked) => Connectivity::None,
        (Symmetric, Symmetric) => Connectivity::None,
        (Symmetric, PortRestricted) | (PortRestricted, Symmetric) => Connectivity::None,
        _ => Connectivity::HolePunch,
    }
}

/// Fraction of peer pairs that are connectable under a given distribution of
/// NAT types — a useful aggregate when generating populations.
pub fn connectable_fraction(dist: &[(NatType, f64)]) -> f64 {
    let mut total = 0.0;
    let mut ok = 0.0;
    for (a, pa) in dist {
        for (b, pb) in dist {
            total += pa * pb;
            if connectivity(*a, *b).usable() {
                ok += pa * pb;
            }
        }
    }
    if total > 0.0 {
        ok / total
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::natbox::{Endpoint, NatBox};
    use crate::punch::{punch, PunchOutcome};

    /// Derive the matrix from the behavioural punch simulation and compare
    /// against the closed form — the central consistency check of the crate.
    #[test]
    fn table_matches_punch_simulation_for_all_pairs() {
        for a in NatType::ALL {
            for b in NatType::ALL {
                let a_pub = if a == NatType::Open {
                    0x0a000001
                } else {
                    0x01010101
                };
                let b_pub = if b == NatType::Open {
                    0x0b000001
                } else {
                    0x02020202
                };
                let mut ab = NatBox::new(a, a_pub);
                let mut bb = NatBox::new(b, b_pub);
                let sim = punch(
                    &mut ab,
                    Endpoint::new(0x0a000001, 5000),
                    &mut bb,
                    Endpoint::new(0x0b000001, 6000),
                );
                let table = connectivity(a, b);
                let agree = matches!(
                    (sim, table),
                    (PunchOutcome::DirectTcp, Connectivity::Direct)
                        | (PunchOutcome::Punched, Connectivity::HolePunch)
                        | (PunchOutcome::Failed, Connectivity::None)
                );
                assert!(agree, "{a:?}+{b:?}: sim={sim:?} table={table:?}");
            }
        }
    }

    #[test]
    fn matrix_is_symmetric() {
        for a in NatType::ALL {
            for b in NatType::ALL {
                assert_eq!(connectivity(a, b), connectivity(b, a), "{a:?}/{b:?}");
            }
        }
    }

    #[test]
    fn connectable_fraction_bounds() {
        let all_open = [(NatType::Open, 1.0)];
        assert!((connectable_fraction(&all_open) - 1.0).abs() < 1e-12);
        let all_sym = [(NatType::Symmetric, 1.0)];
        assert!(connectable_fraction(&all_sym) < 1e-12);
        // A realistic mixture gives something strictly in between.
        let mix = [
            (NatType::Open, 0.1),
            (NatType::FullCone, 0.15),
            (NatType::RestrictedCone, 0.2),
            (NatType::PortRestricted, 0.35),
            (NatType::Symmetric, 0.15),
            (NatType::Blocked, 0.05),
        ];
        let f = connectable_fraction(&mix);
        assert!(f > 0.5 && f < 1.0, "got {f}");
    }
}
