//! Behavioural NAT/firewall box model.
//!
//! A [`NatBox`] sits between one internal host and the public Internet. It
//! implements the two orthogonal behaviours that distinguish real NATs:
//!
//! * **mapping allocation** — cone NATs reuse one external port per internal
//!   socket regardless of destination; symmetric NATs allocate a fresh
//!   external port per destination.
//! * **inbound filtering** — full-cone boxes accept from anyone once a
//!   mapping exists; address-restricted boxes require the internal host to
//!   have previously sent to the source *IP*; port-restricted and symmetric
//!   boxes require a previous send to the exact source *IP:port*; blocked
//!   firewalls drop all inbound UDP.
//!
//! The STUN classifier and the hole-punch simulation operate on these
//! behaviours directly, so their outcomes are consequences of the model, not
//! hard-coded rules.

use netsession_core::msg::NatType;
use std::collections::{HashMap, HashSet};

/// A transport endpoint (IP, port) in the modeled network.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Endpoint {
    /// IPv4 address as an integer.
    pub ip: u32,
    /// UDP port.
    pub port: u16,
}

impl Endpoint {
    /// Convenience constructor.
    pub fn new(ip: u32, port: u16) -> Self {
        Endpoint { ip, port }
    }
}

/// Key for a mapping: cone NATs map per internal socket; symmetric NATs map
/// per (internal socket, destination).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum MapKey {
    Cone(Endpoint),
    Symmetric(Endpoint, Endpoint),
}

/// A modeled NAT/firewall in front of a single internal host.
#[derive(Clone, Debug)]
pub struct NatBox {
    kind: NatType,
    /// Public IP of the box (for [`NatType::Open`] this equals the host IP).
    public_ip: u32,
    /// Allocated mappings: key → external port.
    mappings: HashMap<MapKey, u16>,
    /// Reverse view: external port → internal endpoint.
    reverse: HashMap<u16, Endpoint>,
    /// Outbound permissions per internal endpoint: destinations sent to.
    permissions: HashMap<Endpoint, HashSet<Endpoint>>,
    next_port: u16,
}

impl NatBox {
    /// Create a box of the given kind with the given public IP.
    pub fn new(kind: NatType, public_ip: u32) -> Self {
        NatBox {
            kind,
            public_ip,
            mappings: HashMap::new(),
            reverse: HashMap::new(),
            permissions: HashMap::new(),
            next_port: 40000,
        }
    }

    /// The box's NAT classification (ground truth; the STUN classifier must
    /// *infer* this).
    pub fn kind(&self) -> NatType {
        self.kind
    }

    /// The box's public IP.
    pub fn public_ip(&self) -> u32 {
        self.public_ip
    }

    /// The internal host sends a UDP datagram from `internal` to `dst`.
    /// Returns the external (public) endpoint the datagram appears to come
    /// from, or `None` if the firewall blocks outbound UDP entirely.
    pub fn send(&mut self, internal: Endpoint, dst: Endpoint) -> Option<Endpoint> {
        if self.kind == NatType::Blocked {
            return None;
        }
        self.permissions.entry(internal).or_default().insert(dst);
        if self.kind == NatType::Open {
            return Some(internal);
        }
        let key = match self.kind {
            NatType::Symmetric => MapKey::Symmetric(internal, dst),
            _ => MapKey::Cone(internal),
        };
        let port = match self.mappings.get(&key) {
            Some(p) => *p,
            None => {
                let p = self.next_port;
                self.next_port = self.next_port.wrapping_add(1).max(40000);
                self.mappings.insert(key, p);
                self.reverse.insert(p, internal);
                p
            }
        };
        Some(Endpoint::new(self.public_ip, port))
    }

    /// A datagram arrives from `src` addressed to the box's external
    /// endpoint `to`. Returns the internal endpoint it is delivered to, or
    /// `None` if the box filters it.
    pub fn receive(&self, src: Endpoint, to: Endpoint) -> Option<Endpoint> {
        if self.kind == NatType::Blocked {
            return None;
        }
        if self.kind == NatType::Open {
            // No NAT: deliver if addressed to the host itself.
            return if to.ip == self.public_ip {
                Some(to)
            } else {
                None
            };
        }
        if to.ip != self.public_ip {
            return None;
        }
        let internal = *self.reverse.get(&to.port)?;
        let perms = self.permissions.get(&internal);
        let allowed = match self.kind {
            NatType::FullCone => true,
            NatType::RestrictedCone => perms.is_some_and(|p| p.iter().any(|d| d.ip == src.ip)),
            NatType::PortRestricted | NatType::Symmetric => perms.is_some_and(|p| p.contains(&src)),
            NatType::Open | NatType::Blocked => unreachable!(),
        };
        if !allowed {
            return None;
        }
        // Symmetric boxes additionally require the mapping used for *this*
        // destination to be the one addressed: a packet to a mapping
        // allocated for a different destination is dropped even if a
        // permission exists.
        if self.kind == NatType::Symmetric {
            let key = MapKey::Symmetric(internal, src);
            match self.mappings.get(&key) {
                Some(p) if *p == to.port => {}
                _ => return None,
            }
        }
        Some(internal)
    }

    /// Whether the internal host can make direct *outbound TCP* connections
    /// (all kinds except none — even blocked firewalls allow outbound TCP,
    /// which is how blocked peers still reach edge servers and the control
    /// plane).
    pub fn outbound_tcp_allowed(&self) -> bool {
        true
    }

    /// Whether inbound TCP connections to the host succeed without any
    /// traversal (only for publicly reachable hosts).
    pub fn inbound_tcp_allowed(&self) -> bool {
        self.kind == NatType::Open
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HOST: Endpoint = Endpoint {
        ip: 0x0a000001,
        port: 5000,
    };
    const DST_A: Endpoint = Endpoint {
        ip: 0x08080808,
        port: 3478,
    };
    const DST_B: Endpoint = Endpoint {
        ip: 0x08080404,
        port: 3478,
    };

    #[test]
    fn open_host_is_transparent() {
        let mut nat = NatBox::new(NatType::Open, HOST.ip);
        let ext = nat.send(HOST, DST_A).unwrap();
        assert_eq!(ext, HOST, "no translation");
        assert_eq!(nat.receive(DST_B, HOST), Some(HOST), "accepts from anyone");
    }

    #[test]
    fn blocked_box_drops_udp_both_ways() {
        let mut nat = NatBox::new(NatType::Blocked, 0x01010101);
        assert!(nat.send(HOST, DST_A).is_none());
        assert!(nat
            .receive(DST_A, Endpoint::new(0x01010101, 40000))
            .is_none());
        assert!(nat.outbound_tcp_allowed());
        assert!(!nat.inbound_tcp_allowed());
    }

    #[test]
    fn cone_nats_reuse_mapping_across_destinations() {
        for kind in [
            NatType::FullCone,
            NatType::RestrictedCone,
            NatType::PortRestricted,
        ] {
            let mut nat = NatBox::new(kind, 0x01010101);
            let e1 = nat.send(HOST, DST_A).unwrap();
            let e2 = nat.send(HOST, DST_B).unwrap();
            assert_eq!(e1, e2, "{kind:?} must reuse the mapping");
        }
    }

    #[test]
    fn symmetric_nat_allocates_per_destination() {
        let mut nat = NatBox::new(NatType::Symmetric, 0x01010101);
        let e1 = nat.send(HOST, DST_A).unwrap();
        let e2 = nat.send(HOST, DST_B).unwrap();
        assert_ne!(e1.port, e2.port, "fresh port per destination");
        assert_eq!(e1.ip, e2.ip);
        // Same destination reuses.
        let e1again = nat.send(HOST, DST_A).unwrap();
        assert_eq!(e1, e1again);
    }

    #[test]
    fn full_cone_accepts_unsolicited_sources() {
        let mut nat = NatBox::new(NatType::FullCone, 0x01010101);
        let ext = nat.send(HOST, DST_A).unwrap();
        assert_eq!(nat.receive(DST_B, ext), Some(HOST), "any source ok");
    }

    #[test]
    fn restricted_cone_filters_by_ip_only() {
        let mut nat = NatBox::new(NatType::RestrictedCone, 0x01010101);
        let ext = nat.send(HOST, DST_A).unwrap();
        // Same IP, different port: allowed.
        let same_ip = Endpoint::new(DST_A.ip, 9999);
        assert_eq!(nat.receive(same_ip, ext), Some(HOST));
        // Different IP: dropped.
        assert_eq!(nat.receive(DST_B, ext), None);
    }

    #[test]
    fn port_restricted_requires_exact_endpoint() {
        let mut nat = NatBox::new(NatType::PortRestricted, 0x01010101);
        let ext = nat.send(HOST, DST_A).unwrap();
        assert_eq!(nat.receive(DST_A, ext), Some(HOST));
        let same_ip = Endpoint::new(DST_A.ip, 9999);
        assert_eq!(nat.receive(same_ip, ext), None, "port mismatch dropped");
    }

    #[test]
    fn symmetric_drops_cross_mapping_delivery() {
        let mut nat = NatBox::new(NatType::Symmetric, 0x01010101);
        let ext_a = nat.send(HOST, DST_A).unwrap();
        let _ext_b = nat.send(HOST, DST_B).unwrap();
        // DST_B sends to the mapping allocated for DST_A: dropped even
        // though a permission for DST_B exists.
        assert_eq!(nat.receive(DST_B, ext_a), None);
        // DST_A to its own mapping: delivered.
        assert_eq!(nat.receive(DST_A, ext_a), Some(HOST));
    }

    #[test]
    fn packets_to_wrong_public_ip_dropped() {
        let mut nat = NatBox::new(NatType::FullCone, 0x01010101);
        let ext = nat.send(HOST, DST_A).unwrap();
        let wrong = Endpoint::new(0x02020202, ext.port);
        assert_eq!(nat.receive(DST_A, wrong), None);
    }

    #[test]
    fn unmapped_port_dropped() {
        let nat = NatBox::new(NatType::FullCone, 0x01010101);
        assert_eq!(nat.receive(DST_A, Endpoint::new(0x01010101, 40000)), None);
    }
}
