//! # netsession-nat
//!
//! NAT and firewall substrate for the NetSession reproduction.
//!
//! The paper stresses that NAT traversal is a first-class concern for a
//! peer-assisted CDN: peers "periodically communicate with STUN components
//! over UDP and TCP to determine the details of their connectivity … and to
//! enable NAT traversal. This involves a protocol with goals similar to
//! \[RFC 5389\], but NetSession uses a custom implementation" (§3.6), and
//! "due to the vast diversity in NAT implementations today, NAT hole
//! punching is a complex issue, and the necessary code takes up a large
//! fraction of the NetSession codebase" (§3.7).
//!
//! This crate provides that substrate:
//!
//! * [`natbox`] — a behavioural model of a NAT/firewall box: mapping
//!   allocation (per-endpoint vs. per-destination) and filtering rules
//!   (full-cone, restricted, port-restricted, symmetric, blocked).
//! * [`stun`] — an RFC 3489-style classification protocol that runs *real
//!   tests against the modeled box* (Test I/II/III, two server addresses)
//!   and infers the [`NatType`](netsession_core::msg::NatType).
//! * [`punch`] — control-plane-coordinated UDP hole punching between two
//!   modeled boxes; success is determined by the boxes' actual mapping and
//!   filtering behaviour, not by a lookup table.
//! * [`matrix`] — the pairwise connectivity matrix the DN consults when
//!   choosing peers ("it selects only peers that are likely to be able to
//!   establish a connection with each other", §3.7). A test derives this
//!   matrix from the punch simulation and asserts they agree.

pub mod matrix;
pub mod natbox;
pub mod punch;
pub mod stun;

pub use matrix::{connectivity, Connectivity};
pub use natbox::{Endpoint, NatBox};
pub use punch::{punch as punch_peers, PunchOutcome};
pub use stun::{classify, StunServer};
