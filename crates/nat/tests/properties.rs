//! Property-based tests for the NAT substrate.

use netsession_core::msg::NatType;
use netsession_nat::matrix::connectivity;
use netsession_nat::natbox::{Endpoint, NatBox};
use netsession_nat::punch::punch;
use netsession_nat::stun::classify;
use proptest::prelude::*;

fn nat_type() -> impl Strategy<Value = NatType> {
    (0usize..6).prop_map(|i| NatType::ALL[i])
}

proptest! {
    /// The punch outcome is symmetric in its arguments.
    #[test]
    fn punch_is_symmetric(a in nat_type(), b in nat_type()) {
        let run = |x: NatType, y: NatType| {
            let x_pub = if x == NatType::Open { 0x0a000001 } else { 0x01010101 };
            let y_pub = if y == NatType::Open { 0x0b000001 } else { 0x02020202 };
            let mut xb = NatBox::new(x, x_pub);
            let mut yb = NatBox::new(y, y_pub);
            punch(
                &mut xb,
                Endpoint::new(0x0a000001, 5000),
                &mut yb,
                Endpoint::new(0x0b000001, 6000),
            )
            .connected()
        };
        prop_assert_eq!(run(a, b), run(b, a));
    }

    /// Punch connectivity always agrees with the static matrix.
    #[test]
    fn punch_agrees_with_matrix(a in nat_type(), b in nat_type()) {
        let a_pub = if a == NatType::Open { 0x0a000001 } else { 0x01010101 };
        let b_pub = if b == NatType::Open { 0x0b000001 } else { 0x02020202 };
        let mut ab = NatBox::new(a, a_pub);
        let mut bb = NatBox::new(b, b_pub);
        let sim = punch(
            &mut ab,
            Endpoint::new(0x0a000001, 5000),
            &mut bb,
            Endpoint::new(0x0b000001, 6000),
        );
        prop_assert_eq!(sim.connected(), connectivity(a, b).usable());
    }

    /// The STUN classifier recovers ground truth regardless of the
    /// internal socket chosen.
    #[test]
    fn classifier_recovers_ground_truth(kind in nat_type(), port in 1024u16..60000) {
        let public_ip = if kind == NatType::Open { 0x0a000001 } else { 0x01010101 };
        let mut nat = NatBox::new(kind, public_ip);
        prop_assert_eq!(classify(&mut nat, Endpoint::new(0x0a000001, port)), kind);
    }

    /// Mapping behaviour: cone boxes reuse the external endpoint per
    /// internal socket; every send from the same socket to the same
    /// destination yields the same mapping.
    #[test]
    fn mappings_are_stable(kind in nat_type(), port in 1024u16..60000, dports in proptest::collection::vec(1u16..60000, 1..8)) {
        prop_assume!(kind != NatType::Blocked);
        let mut nat = NatBox::new(kind, 0x01010101);
        let internal = Endpoint::new(0x0a000001, port);
        for dp in &dports {
            let dst = Endpoint::new(0x08080808, *dp);
            let first = nat.send(internal, dst).unwrap();
            let second = nat.send(internal, dst).unwrap();
            prop_assert_eq!(first, second, "same destination, same mapping");
        }
    }

    /// Unsolicited inbound traffic never reaches hosts behind restrictive
    /// boxes.
    #[test]
    fn restrictive_boxes_drop_unsolicited(src_ip in any::<u32>(), src_port in 1u16..60000, ext_port in 1u16..60000) {
        for kind in [NatType::RestrictedCone, NatType::PortRestricted, NatType::Symmetric, NatType::Blocked] {
            let nat = NatBox::new(kind, 0x01010101);
            // No prior outbound traffic: everything must be filtered.
            let delivered = nat.receive(
                Endpoint::new(src_ip, src_port),
                Endpoint::new(0x01010101, ext_port),
            );
            prop_assert!(delivered.is_none(), "{kind:?} leaked unsolicited traffic");
        }
    }
}
