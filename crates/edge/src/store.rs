//! Content store.
//!
//! Edge servers "generate and maintain secure IDs of content, which are
//! unique to each version, as well as secure hashes of the pieces of each
//! file" (§3.5). The store maps object IDs to their current version's
//! manifest and provider policy; publishing new content bumps the version,
//! so stale pieces from an older version can never be mixed into a new
//! download.

use netsession_core::id::{CpCode, ObjectId, VersionId};
use netsession_core::piece::{Manifest, DEFAULT_PIECE_SIZE};
use netsession_core::policy::DownloadPolicy;
use netsession_core::units::ByteCount;
use std::collections::HashMap;
use std::sync::RwLock;

/// One published object: its manifest, policy, owner, and (optionally, for
/// the live runtime) the actual bytes.
#[derive(Clone, Debug)]
pub struct StoredObject {
    /// Current manifest (includes the versioned secure content ID).
    pub manifest: Manifest,
    /// Provider policy.
    pub policy: DownloadPolicy,
    /// Owning content provider.
    pub cp: CpCode,
    /// Raw content, present only in live-runtime deployments.
    pub content: Option<Vec<u8>>,
}

/// Thread-safe content store shared by the edge servers of one deployment.
#[derive(Default)]
pub struct ContentStore {
    objects: RwLock<HashMap<ObjectId, StoredObject>>,
}

impl ContentStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publish a *synthetic* object (simulation: sizes without bytes).
    /// Returns the assigned version.
    pub fn publish_synthetic(
        &self,
        id: ObjectId,
        cp: CpCode,
        size: ByteCount,
        policy: DownloadPolicy,
    ) -> VersionId {
        let version = self.next_version(id);
        let manifest = Manifest::synthetic(version, size, DEFAULT_PIECE_SIZE);
        self.objects.write().unwrap().insert(
            id,
            StoredObject {
                manifest,
                policy,
                cp,
                content: None,
            },
        );
        version
    }

    /// Publish real content bytes (live runtime). Returns the version.
    pub fn publish_content(
        &self,
        id: ObjectId,
        cp: CpCode,
        content: Vec<u8>,
        piece_size: u64,
        policy: DownloadPolicy,
    ) -> VersionId {
        let version = self.next_version(id);
        let manifest = Manifest::from_content(version, &content, piece_size);
        self.objects.write().unwrap().insert(
            id,
            StoredObject {
                manifest,
                policy,
                cp,
                content: Some(content),
            },
        );
        version
    }

    fn next_version(&self, id: ObjectId) -> VersionId {
        let objects = self.objects.read().unwrap();
        let version = objects
            .get(&id)
            .map(|o| o.manifest.version.version + 1)
            .unwrap_or(1);
        VersionId {
            object: id,
            version,
        }
    }

    /// Fetch the stored object, if published.
    pub fn get(&self, id: ObjectId) -> Option<StoredObject> {
        self.objects.read().unwrap().get(&id).cloned()
    }

    /// Current manifest of an object.
    pub fn manifest(&self, id: ObjectId) -> Option<Manifest> {
        self.objects
            .read()
            .unwrap()
            .get(&id)
            .map(|o| o.manifest.clone())
    }

    /// Whether `version` is the *current* version of its object — stale
    /// versions must not be served or swarmed (§3.5).
    pub fn is_current(&self, version: VersionId) -> bool {
        self.objects
            .read()
            .unwrap()
            .get(&version.object)
            .is_some_and(|o| o.manifest.version == version)
    }

    /// Bytes of one piece of the current version (live runtime only).
    pub fn piece_bytes(&self, version: VersionId, piece: u32) -> Option<Vec<u8>> {
        let objects = self.objects.read().unwrap();
        let obj = objects.get(&version.object)?;
        if obj.manifest.version != version {
            return None;
        }
        let content = obj.content.as_ref()?;
        let start = piece as usize * obj.manifest.piece_size as usize;
        let len = obj.manifest.piece_len(piece) as usize;
        content.get(start..start + len).map(|s| s.to_vec())
    }

    /// Number of published objects.
    pub fn len(&self) -> usize {
        self.objects.read().unwrap().len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.read().unwrap().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> ContentStore {
        ContentStore::new()
    }

    #[test]
    fn publish_and_get_synthetic() {
        let s = store();
        let v = s.publish_synthetic(
            ObjectId(1),
            CpCode(9),
            ByteCount::from_mib(3),
            DownloadPolicy::peer_assisted(),
        );
        assert_eq!(v.version, 1);
        let obj = s.get(ObjectId(1)).unwrap();
        assert_eq!(obj.manifest.piece_count(), 3);
        assert!(obj.content.is_none());
        assert!(s.is_current(v));
    }

    #[test]
    fn republish_bumps_version_and_invalidates_old() {
        let s = store();
        let v1 = s.publish_synthetic(
            ObjectId(1),
            CpCode(9),
            ByteCount::from_mib(1),
            DownloadPolicy::peer_assisted(),
        );
        let v2 = s.publish_synthetic(
            ObjectId(1),
            CpCode(9),
            ByteCount::from_mib(2),
            DownloadPolicy::peer_assisted(),
        );
        assert_eq!(v2.version, v1.version + 1);
        assert!(!s.is_current(v1), "old version must be stale");
        assert!(s.is_current(v2));
        // The two versions have different secure content IDs.
        assert_ne!(
            Manifest::synthetic(v1, ByteCount::from_mib(1), 1 << 20).content_id,
            s.manifest(ObjectId(1)).unwrap().content_id
        );
    }

    #[test]
    fn content_pieces_are_retrievable_and_verifiable() {
        let s = store();
        let content: Vec<u8> = (0..2500u32).map(|i| (i % 251) as u8).collect();
        let v = s.publish_content(
            ObjectId(2),
            CpCode(9),
            content.clone(),
            1000,
            DownloadPolicy::infrastructure_only(),
        );
        let manifest = s.manifest(ObjectId(2)).unwrap();
        for piece in 0..manifest.piece_count() {
            let bytes = s.piece_bytes(v, piece).unwrap();
            assert!(manifest.verify_piece(piece, &bytes), "piece {piece}");
        }
        // Out-of-range piece handled by manifest bounds; stale version None.
        let stale = VersionId {
            object: ObjectId(2),
            version: 99,
        };
        assert!(s.piece_bytes(stale, 0).is_none());
    }

    #[test]
    fn missing_object_lookups_are_none() {
        let s = store();
        assert!(s.get(ObjectId(404)).is_none());
        assert!(s.manifest(ObjectId(404)).is_none());
        assert!(!s.is_current(VersionId {
            object: ObjectId(404),
            version: 1
        }));
        assert!(s.is_empty());
    }
}
