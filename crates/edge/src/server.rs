//! Edge-server request handling.
//!
//! One [`EdgeServer`] models a regional edge deployment. It answers the two
//! HTTP(S) request kinds of §3.5 — authorization (yielding a token, the
//! policy, and the manifest) and piece downloads — and records a trusted
//! receipt for every byte it serves, which the accounting pipeline uses to
//! cross-check peer reports.

use crate::accounting::AccountingLedger;
use crate::auth::EdgeAuth;
use crate::store::ContentStore;
use netsession_core::error::{Error, Result};
use netsession_core::id::{Guid, ObjectId, VersionId};
use netsession_core::msg::{AuthToken, EdgeMsg};
use netsession_core::piece::Manifest;
use netsession_core::time::SimTime;
use netsession_core::units::ByteCount;
use netsession_obs::{MetricsRegistry, TraceCtx, TraceSink};
use std::sync::Arc;
use std::sync::Mutex;

/// A regional edge server.
pub struct EdgeServer {
    /// Which network region this server serves (see §3.7).
    pub region: u32,
    store: Arc<ContentStore>,
    auth: EdgeAuth,
    ledger: Arc<AccountingLedger>,
    served: Mutex<ByteCount>,
    metrics: MetricsRegistry,
}

/// Successful authorization response payload.
#[derive(Clone, Debug)]
pub struct Authorization {
    /// The token for control-plane queries and swarm handshakes.
    pub token: AuthToken,
    /// The provider's policy for this object.
    pub policy: netsession_core::policy::DownloadPolicy,
    /// The current manifest (piece hashes, secure content ID).
    pub manifest: Manifest,
}

impl EdgeServer {
    /// Create a server over a shared store, auth secret, and ledger.
    pub fn new(
        region: u32,
        store: Arc<ContentStore>,
        auth: EdgeAuth,
        ledger: Arc<AccountingLedger>,
    ) -> Self {
        EdgeServer {
            region,
            store,
            auth,
            ledger,
            served: Mutex::new(ByteCount::ZERO),
            metrics: MetricsRegistry::new(),
        }
    }

    /// Attach this server's instruments to a shared registry. All edge
    /// counters are named `edge.*`:
    /// `edge.auth_grants` / `edge.auth_denials`, `edge.pieces_served`,
    /// `edge.bytes_served`, and the `edge.piece_len` histogram.
    pub fn with_metrics(mut self, registry: &MetricsRegistry) -> Self {
        self.attach_metrics(registry);
        self
    }

    /// In-place variant of [`EdgeServer::with_metrics`].
    pub fn attach_metrics(&mut self, registry: &MetricsRegistry) {
        self.metrics = registry.clone();
    }

    /// The registry this server records into.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Handle an authorization request (§3.5): authentication is implicit
    /// (the GUID identifies the installation); policy gates the download.
    pub fn authorize(&self, guid: Guid, object: ObjectId, now: SimTime) -> Result<Authorization> {
        let stored = match self.store.get(object) {
            Some(stored) => stored,
            None => {
                self.metrics.counter("edge.auth_denials").incr();
                return Err(Error::NotFound(format!("object {object}")));
            }
        };
        if !stored.policy.download_allowed {
            self.metrics.counter("edge.auth_denials").incr();
            return Err(Error::PolicyDenied(format!(
                "provider policy forbids downloading object {object}"
            )));
        }
        let token = self.auth.issue(guid, stored.manifest.version, now);
        self.metrics.counter("edge.auth_grants").incr();
        Ok(Authorization {
            token,
            policy: stored.policy,
            manifest: stored.manifest,
        })
    }

    /// Trace-aware [`EdgeServer::authorize`]: same behaviour, plus an
    /// `"authorize"` span in the edge layer recording the grant/deny
    /// outcome under the caller's download trace.
    pub fn authorize_traced(
        &self,
        guid: Guid,
        object: ObjectId,
        now: SimTime,
        trace: &TraceSink,
        ctx: TraceCtx,
    ) -> Result<Authorization> {
        let span = trace.span(ctx, "authorize", "edge", now.as_micros());
        let result = self.authorize(guid, object, now);
        trace.add_attr(span, "granted", result.is_ok());
        if let Err(e) = &result {
            trace.add_attr(span, "reason", e.to_string());
        }
        trace.end_span(span, now.as_micros());
        result
    }

    /// Serve one piece (simulation flavour: returns the piece's digest and
    /// length; the live runtime uses [`EdgeServer::piece_bytes`]). Records
    /// the served bytes in the ledger.
    pub fn serve_piece_digest(
        &self,
        token: &AuthToken,
        piece: u32,
        now: SimTime,
    ) -> Result<(netsession_core::Digest, u64)> {
        self.check_token(token, now)?;
        let manifest = self
            .store
            .manifest(token.version.object)
            .ok_or_else(|| Error::NotFound(format!("object {}", token.version.object)))?;
        if manifest.version != token.version {
            return Err(Error::InvalidState("token is for a stale version".into()));
        }
        if piece >= manifest.piece_count() {
            return Err(Error::NotFound(format!("piece {piece}")));
        }
        let len = manifest.piece_len(piece);
        self.record_served(token.guid, token.version, ByteCount::from_bytes(len));
        Ok((manifest.piece_hashes[piece as usize], len))
    }

    /// Serve one piece's raw bytes (live runtime).
    pub fn piece_bytes(&self, token: &AuthToken, piece: u32, now: SimTime) -> Result<Vec<u8>> {
        self.check_token(token, now)?;
        let bytes = self
            .store
            .piece_bytes(token.version, piece)
            .ok_or_else(|| Error::NotFound(format!("piece {piece} of {:?}", token.version)))?;
        self.record_served(
            token.guid,
            token.version,
            ByteCount::from_bytes(bytes.len() as u64),
        );
        Ok(bytes)
    }

    /// Record served bytes directly (used by the fluid simulation, which
    /// accounts transfers continuously rather than per piece).
    pub fn record_served(&self, guid: Guid, version: VersionId, bytes: ByteCount) {
        *self.served.lock().unwrap() += bytes;
        self.metrics.counter("edge.pieces_served").incr();
        self.metrics.counter("edge.bytes_served").add(bytes.bytes());
        self.metrics
            .histogram("edge.piece_len")
            .record(bytes.bytes());
        self.ledger.record_edge_receipt(guid, version, bytes);
    }

    /// Trace-aware [`EdgeServer::record_served`]: adds an `"accounting"`
    /// marker span carrying the receipted byte count, so a download's
    /// trace shows exactly what the edge billed for it.
    pub fn record_served_traced(
        &self,
        guid: Guid,
        version: VersionId,
        bytes: ByteCount,
        trace: &TraceSink,
        ctx: TraceCtx,
        now_us: u64,
    ) {
        let span = trace.instant(ctx, "accounting", "edge", now_us);
        trace.add_attr(span, "bytes", bytes.bytes());
        self.record_served(guid, version, bytes);
    }

    /// Cross-check this server's byte counter against the ledger's edge
    /// receipts, recording the outcome as `edge.accounting_ok` /
    /// `edge.accounting_mismatch`. Returns `true` when they agree.
    pub fn verify_accounting(&self) -> bool {
        let served = self.served.lock().unwrap().bytes();
        let receipts = self.ledger.total_edge_bytes().bytes();
        let ok = served == receipts;
        let name = if ok {
            "edge.accounting_ok"
        } else {
            "edge.accounting_mismatch"
        };
        self.metrics.counter(name).incr();
        ok
    }

    fn check_token(&self, token: &AuthToken, now: SimTime) -> Result<()> {
        if !self.auth.verify(token, now) {
            return Err(Error::Unauthorized("bad or expired token".into()));
        }
        Ok(())
    }

    /// Total bytes this server has served.
    pub fn total_served(&self) -> ByteCount {
        *self.served.lock().unwrap()
    }

    /// Dispatch a wire-level [`EdgeMsg`] (used by the live runtime's
    /// request loop).
    pub fn handle(&self, msg: EdgeMsg, now: SimTime) -> EdgeMsg {
        match msg {
            EdgeMsg::Authorize { guid, version } => {
                match self.authorize(guid, version.object, now) {
                    Ok(a) => EdgeMsg::Authorized {
                        token: a.token,
                        policy: a.policy,
                        manifest: a.manifest,
                    },
                    Err(e) => EdgeMsg::Denied {
                        reason: e.to_string(),
                    },
                }
            }
            EdgeMsg::GetPiece { token, piece } => match self.piece_bytes(&token, piece, now) {
                Ok(data) => {
                    let digest = netsession_core::hash::sha256(&data);
                    EdgeMsg::PieceData {
                        piece,
                        data,
                        digest,
                    }
                }
                Err(e) => EdgeMsg::Denied {
                    reason: e.to_string(),
                },
            },
            other => EdgeMsg::Denied {
                reason: format!("unexpected request {other:?}"),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsession_core::policy::DownloadPolicy;

    fn fixture() -> (EdgeServer, VersionId) {
        let store = Arc::new(ContentStore::new());
        let v = store.publish_synthetic(
            ObjectId(1),
            netsession_core::id::CpCode(5),
            ByteCount::from_mib(2),
            DownloadPolicy::peer_assisted(),
        );
        let ledger = Arc::new(AccountingLedger::new());
        let server = EdgeServer::new(0, store, EdgeAuth::from_seed(1), ledger);
        (server, v)
    }

    #[test]
    fn authorize_returns_token_policy_manifest() {
        let (server, v) = fixture();
        let a = server.authorize(Guid(7), ObjectId(1), SimTime(0)).unwrap();
        assert_eq!(a.token.version, v);
        assert_eq!(a.manifest.piece_count(), 2);
        assert!(a.policy.p2p_enabled);
    }

    #[test]
    fn authorize_unknown_object_fails() {
        let (server, _) = fixture();
        assert!(matches!(
            server.authorize(Guid(7), ObjectId(404), SimTime(0)),
            Err(Error::NotFound(_))
        ));
    }

    #[test]
    fn download_denied_by_policy() {
        let store = Arc::new(ContentStore::new());
        store.publish_synthetic(
            ObjectId(2),
            netsession_core::id::CpCode(5),
            ByteCount::from_mib(1),
            netsession_core::policy::DownloadPolicy {
                download_allowed: false,
                p2p_enabled: false,
                upload_allowed: false,
                per_peer_upload_cap: None,
            },
        );
        let server = EdgeServer::new(
            0,
            store,
            EdgeAuth::from_seed(1),
            Arc::new(AccountingLedger::new()),
        );
        assert!(matches!(
            server.authorize(Guid(7), ObjectId(2), SimTime(0)),
            Err(Error::PolicyDenied(_))
        ));
    }

    #[test]
    fn piece_serving_requires_valid_token_and_counts_bytes() {
        let (server, _) = fixture();
        let a = server.authorize(Guid(7), ObjectId(1), SimTime(0)).unwrap();
        let (digest, len) = server.serve_piece_digest(&a.token, 0, SimTime(1)).unwrap();
        assert_eq!(len, 1 << 20);
        assert!(a.manifest.verify_digest(0, digest));
        assert_eq!(server.total_served().bytes(), 1 << 20);

        // Forged token fails.
        let other = EdgeAuth::from_seed(99).issue(Guid(7), a.token.version, SimTime(0));
        assert!(matches!(
            server.serve_piece_digest(&other, 0, SimTime(1)),
            Err(Error::Unauthorized(_))
        ));
        // Out-of-range piece fails.
        assert!(server.serve_piece_digest(&a.token, 99, SimTime(1)).is_err());
    }

    #[test]
    fn stale_version_tokens_rejected_after_republish() {
        let store = Arc::new(ContentStore::new());
        store.publish_synthetic(
            ObjectId(1),
            netsession_core::id::CpCode(5),
            ByteCount::from_mib(1),
            DownloadPolicy::peer_assisted(),
        );
        let ledger = Arc::new(AccountingLedger::new());
        let server = EdgeServer::new(0, store.clone(), EdgeAuth::from_seed(1), ledger);
        let a = server.authorize(Guid(7), ObjectId(1), SimTime(0)).unwrap();
        // Provider pushes a new version.
        store.publish_synthetic(
            ObjectId(1),
            netsession_core::id::CpCode(5),
            ByteCount::from_mib(1),
            DownloadPolicy::peer_assisted(),
        );
        assert!(matches!(
            server.serve_piece_digest(&a.token, 0, SimTime(1)),
            Err(Error::InvalidState(_))
        ));
    }

    #[test]
    fn wire_dispatch_roundtrip() {
        let store = Arc::new(ContentStore::new());
        let content = vec![42u8; 1500];
        store.publish_content(
            ObjectId(3),
            netsession_core::id::CpCode(5),
            content,
            1000,
            DownloadPolicy::infrastructure_only(),
        );
        let server = EdgeServer::new(
            0,
            store,
            EdgeAuth::from_seed(1),
            Arc::new(AccountingLedger::new()),
        );
        let resp = server.handle(
            EdgeMsg::Authorize {
                guid: Guid(7),
                version: VersionId {
                    object: ObjectId(3),
                    version: 1,
                },
            },
            SimTime(0),
        );
        let token = match resp {
            EdgeMsg::Authorized {
                token, manifest, ..
            } => {
                assert_eq!(manifest.piece_count(), 2);
                token
            }
            other => panic!("expected Authorized, got {other:?}"),
        };
        match server.handle(EdgeMsg::GetPiece { token, piece: 1 }, SimTime(1)) {
            EdgeMsg::PieceData { data, .. } => assert_eq!(data.len(), 500),
            other => panic!("expected PieceData, got {other:?}"),
        }
    }
}
