//! Accounting cross-checks.
//!
//! "NetSession also uses information from the trusted edge servers to
//! prevent accounting attacks, where compromised or faulty peers
//! incorrectly report downloads and uploads" (§3.5, citing Aditya et al.,
//! NSDI 2012). The ledger collects the trusted edge receipts and reconciles
//! them against peer-submitted [`UsageRecord`]s:
//!
//! * a peer claiming more infrastructure bytes than the edges actually
//!   served it is **inflating** (billing fraud against the provider);
//! * a completed download whose claimed bytes (infra + peers) fall short of
//!   the object size is **deflating** (hiding service that was rendered);
//! * claims against objects the edges never authorized for that GUID are
//!   **phantom** downloads.
//!
//! Flagged records are excluded from billing, exactly as §3.5 describes
//! ("to detect such attacks and to filter out incorrect reports").

use netsession_core::id::{Guid, VersionId};
use netsession_core::msg::UsageRecord;
use netsession_core::units::ByteCount;
use std::collections::HashMap;
use std::sync::Mutex;

/// Reconciliation tolerance: protocol overhead and in-flight rounding allow
/// a small relative slack before a record is flagged.
pub const SLACK: f64 = 0.02;

/// Why a usage record was rejected.
#[derive(Clone, Debug, PartialEq)]
pub enum Discrepancy {
    /// Claimed more infrastructure bytes than the edge receipts show.
    InflatedInfrastructure {
        /// The offending record's peer.
        guid: Guid,
        /// Claimed bytes.
        claimed: ByteCount,
        /// Receipt total.
        receipted: ByteCount,
    },
    /// Completed download claims fewer total bytes than the object holds.
    DeflatedTotal {
        /// The offending record's peer.
        guid: Guid,
        /// Claimed total bytes.
        claimed: ByteCount,
        /// Object size.
        expected: ByteCount,
    },
    /// No authorization/receipt trail exists at all for this download.
    Phantom {
        /// The offending record's peer.
        guid: Guid,
        /// The claimed version.
        version: VersionId,
    },
}

/// The trusted ledger: edge receipts per (GUID, version).
#[derive(Default)]
pub struct AccountingLedger {
    receipts: Mutex<HashMap<(Guid, VersionId), ByteCount>>,
    authorized: Mutex<std::collections::HashSet<(Guid, VersionId)>>,
}

impl AccountingLedger {
    /// Empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that an edge authorized `guid` for `version` (every download
    /// begins with an authorization, §3.5).
    pub fn record_authorization(&self, guid: Guid, version: VersionId) {
        self.authorized.lock().unwrap().insert((guid, version));
    }

    /// Record bytes an edge actually served.
    pub fn record_edge_receipt(&self, guid: Guid, version: VersionId, bytes: ByteCount) {
        *self
            .receipts
            .lock()
            .unwrap()
            .entry((guid, version))
            .or_insert(ByteCount::ZERO) += bytes;
        // Serving implies authorization.
        self.authorized.lock().unwrap().insert((guid, version));
    }

    /// Total bytes receipted across all (GUID, version) pairs.
    pub fn total_edge_bytes(&self) -> ByteCount {
        ByteCount::from_bytes(
            self.receipts
                .lock()
                .unwrap()
                .values()
                .map(|b| b.bytes())
                .sum(),
        )
    }

    /// Receipted bytes for a (GUID, version).
    pub fn receipted(&self, guid: Guid, version: VersionId) -> ByteCount {
        self.receipts
            .lock()
            .unwrap()
            .get(&(guid, version))
            .copied()
            .unwrap_or(ByteCount::ZERO)
    }

    /// Reconcile a batch of peer reports against the receipts. `sizes`
    /// gives the object size per version for completed downloads (pass the
    /// size only for records the caller knows completed). Returns the
    /// records that survive, plus the discrepancies for those that do not.
    pub fn reconcile(
        &self,
        reports: &[UsageRecord],
        completed_size: impl Fn(&UsageRecord) -> Option<ByteCount>,
    ) -> (Vec<UsageRecord>, Vec<Discrepancy>) {
        let mut accepted = Vec::with_capacity(reports.len());
        let mut flagged = Vec::new();
        for r in reports {
            let key = (r.guid, r.version);
            if !self.authorized.lock().unwrap().contains(&key) {
                flagged.push(Discrepancy::Phantom {
                    guid: r.guid,
                    version: r.version,
                });
                continue;
            }
            let receipted = self.receipted(r.guid, r.version);
            let slack_bytes =
                ByteCount::from_bytes((receipted.bytes() as f64 * SLACK) as u64 + 4096);
            if r.bytes_from_infrastructure.bytes() > (receipted + slack_bytes).bytes() {
                flagged.push(Discrepancy::InflatedInfrastructure {
                    guid: r.guid,
                    claimed: r.bytes_from_infrastructure,
                    receipted,
                });
                continue;
            }
            if let Some(size) = completed_size(r) {
                let claimed = r.bytes_from_infrastructure + r.bytes_from_peers;
                let floor = ByteCount::from_bytes((size.bytes() as f64 * (1.0 - SLACK)) as u64);
                if claimed.bytes() < floor.bytes() {
                    flagged.push(Discrepancy::DeflatedTotal {
                        guid: r.guid,
                        claimed,
                        expected: size,
                    });
                    continue;
                }
            }
            accepted.push(r.clone());
        }
        (accepted, flagged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsession_core::id::ObjectId;
    use netsession_core::time::SimTime;

    fn ver() -> VersionId {
        VersionId {
            object: ObjectId(1),
            version: 1,
        }
    }

    fn report(guid: Guid, infra: u64, peers: u64) -> UsageRecord {
        UsageRecord {
            guid,
            version: ver(),
            started: SimTime(0),
            ended: SimTime(100),
            bytes_from_infrastructure: ByteCount(infra),
            bytes_from_peers: ByteCount(peers),
        }
    }

    #[test]
    fn honest_report_accepted() {
        let ledger = AccountingLedger::new();
        ledger.record_edge_receipt(Guid(1), ver(), ByteCount(300_000));
        let size = ByteCount(1_000_000);
        let (ok, bad) = ledger.reconcile(&[report(Guid(1), 300_000, 700_000)], |_| Some(size));
        assert_eq!(ok.len(), 1);
        assert!(bad.is_empty());
    }

    #[test]
    fn inflated_infrastructure_claim_flagged() {
        let ledger = AccountingLedger::new();
        ledger.record_edge_receipt(Guid(1), ver(), ByteCount(100_000));
        let (ok, bad) = ledger.reconcile(&[report(Guid(1), 900_000, 100_000)], |_| None);
        assert!(ok.is_empty());
        assert!(matches!(
            bad[0],
            Discrepancy::InflatedInfrastructure { claimed, .. } if claimed == ByteCount(900_000)
        ));
    }

    #[test]
    fn deflated_completed_download_flagged() {
        let ledger = AccountingLedger::new();
        ledger.record_edge_receipt(Guid(1), ver(), ByteCount(100_000));
        let size = ByteCount(1_000_000);
        let (ok, bad) = ledger.reconcile(&[report(Guid(1), 100_000, 200_000)], |_| Some(size));
        assert!(ok.is_empty());
        assert!(matches!(bad[0], Discrepancy::DeflatedTotal { .. }));
    }

    #[test]
    fn phantom_download_flagged() {
        let ledger = AccountingLedger::new();
        let (ok, bad) = ledger.reconcile(&[report(Guid(2), 10, 0)], |_| None);
        assert!(ok.is_empty());
        assert!(matches!(bad[0], Discrepancy::Phantom { guid, .. } if guid == Guid(2)));
    }

    #[test]
    fn authorization_without_bytes_is_enough_for_p2p_only_tail() {
        // A download that got everything from peers (infra connection idle)
        // must still reconcile if the edge authorized it.
        let ledger = AccountingLedger::new();
        ledger.record_authorization(Guid(3), ver());
        let size = ByteCount(500_000);
        let (ok, bad) = ledger.reconcile(&[report(Guid(3), 0, 500_000)], |_| Some(size));
        assert_eq!(ok.len(), 1, "{bad:?}");
    }

    #[test]
    fn slack_tolerates_rounding() {
        let ledger = AccountingLedger::new();
        ledger.record_edge_receipt(Guid(1), ver(), ByteCount(100_000));
        // 1% over the receipts: inside the slack.
        let (ok, bad) = ledger.reconcile(&[report(Guid(1), 101_000, 0)], |_| None);
        assert_eq!(ok.len(), 1, "{bad:?}");
    }

    #[test]
    fn receipts_accumulate() {
        let ledger = AccountingLedger::new();
        ledger.record_edge_receipt(Guid(1), ver(), ByteCount(100));
        ledger.record_edge_receipt(Guid(1), ver(), ByteCount(200));
        assert_eq!(ledger.receipted(Guid(1), ver()), ByteCount(300));
        assert_eq!(ledger.receipted(Guid(2), ver()), ByteCount::ZERO);
    }
}
