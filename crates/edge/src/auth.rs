//! Authorization tokens.
//!
//! "Before a peer can receive content from other peers, it must
//! authenticate to an edge server over the HTTP(S) connection; this yields
//! an encrypted token that can be used to search for peers. This is done to
//! prevent users from downloading files from peers that they are not
//! authorized to obtain from the infrastructure" (§3.5).
//!
//! Tokens are MACed with the edge tier's secret: `mac = SHA-256(secret ‖
//! guid ‖ version ‖ expiry)`. The control plane holds the same secret and
//! verifies tokens before answering peer queries; peers verify each other's
//! tokens during the swarm handshake.

use netsession_core::hash::Sha256;
use netsession_core::id::{Guid, VersionId};
use netsession_core::msg::AuthToken;
use netsession_core::time::{SimDuration, SimTime};

/// Default token lifetime.
pub const TOKEN_TTL: SimDuration = SimDuration::from_hours(12);

/// Token mint/verifier, shared (by secret) between edge tier and control
/// plane.
#[derive(Clone, Debug)]
pub struct EdgeAuth {
    secret: [u8; 32],
}

impl EdgeAuth {
    /// Create with a deployment secret.
    pub fn new(secret: [u8; 32]) -> Self {
        EdgeAuth { secret }
    }

    /// Convenience: derive the secret from a seed (tests, simulation).
    pub fn from_seed(seed: u64) -> Self {
        let mut h = Sha256::new();
        h.update(b"netsession-edge-secret");
        h.update(&seed.to_be_bytes());
        EdgeAuth {
            secret: h.finalize().0,
        }
    }

    fn mac(&self, guid: Guid, version: VersionId, expires: SimTime) -> netsession_core::Digest {
        let mut h = Sha256::new();
        h.update(&self.secret);
        h.update(&guid.0.to_be_bytes());
        h.update(&version.object.0.to_be_bytes());
        h.update(&version.version.to_be_bytes());
        h.update(&expires.0.to_be_bytes());
        h.finalize()
    }

    /// Issue a token authorizing `guid` to obtain `version`, valid for
    /// [`TOKEN_TTL`] from `now`.
    pub fn issue(&self, guid: Guid, version: VersionId, now: SimTime) -> AuthToken {
        let expires = now + TOKEN_TTL;
        AuthToken {
            guid,
            version,
            expires,
            mac: self.mac(guid, version, expires),
        }
    }

    /// Verify a token's MAC and expiry.
    pub fn verify(&self, token: &AuthToken, now: SimTime) -> bool {
        token.expires >= now && self.mac(token.guid, token.version, token.expires) == token.mac
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsession_core::id::ObjectId;

    fn ver(n: u64) -> VersionId {
        VersionId {
            object: ObjectId(n),
            version: 1,
        }
    }

    #[test]
    fn issued_tokens_verify() {
        let auth = EdgeAuth::from_seed(1);
        let t = auth.issue(Guid(7), ver(1), SimTime(100));
        assert!(auth.verify(&t, SimTime(100)));
        assert!(auth.verify(&t, SimTime(100) + SimDuration::from_hours(11)));
    }

    #[test]
    fn expired_tokens_rejected() {
        let auth = EdgeAuth::from_seed(1);
        let t = auth.issue(Guid(7), ver(1), SimTime(0));
        assert!(!auth.verify(&t, SimTime(0) + SimDuration::from_hours(13)));
    }

    #[test]
    fn forged_fields_rejected() {
        let auth = EdgeAuth::from_seed(1);
        let t = auth.issue(Guid(7), ver(1), SimTime(0));
        // Tampered GUID: a stolen token cannot be rebound to another peer.
        let mut forged = t;
        forged.guid = Guid(8);
        assert!(!auth.verify(&forged, SimTime(0)));
        // Tampered version: authorization is per-object-version.
        let mut forged = t;
        forged.version = ver(2);
        assert!(!auth.verify(&forged, SimTime(0)));
        // Extended expiry.
        let mut forged = t;
        forged.expires += SimDuration::from_days(30);
        assert!(!auth.verify(&forged, SimTime(0)));
    }

    #[test]
    fn different_deployments_have_incompatible_tokens() {
        let a = EdgeAuth::from_seed(1);
        let b = EdgeAuth::from_seed(2);
        let t = a.issue(Guid(7), ver(1), SimTime(0));
        assert!(!b.verify(&t, SimTime(0)));
    }
}
