//! # netsession-edge
//!
//! The trusted edge-server tier of NetSession (§3.5). Edge servers are the
//! only components users must trust: they
//!
//! * hold the content and its versioned **secure content IDs** and
//!   per-piece hashes ([`store`]),
//! * perform **authorization** — a peer must authenticate to an edge server
//!   before it may even search for peers, receiving an encrypted token
//!   ([`auth`]),
//! * serve pieces over HTTP(S) and emit *trusted receipts* of everything
//!   they served ([`server`]),
//! * provide the trusted side of **accounting cross-checks** that detect
//!   compromised peers misreporting their downloads ([`accounting`],
//!   following Aditya et al., NSDI 2012 — reference \[1\] in the paper).

pub mod accounting;
pub mod auth;
pub mod server;
pub mod store;

pub use accounting::{AccountingLedger, Discrepancy};
pub use auth::EdgeAuth;
pub use server::EdgeServer;
pub use store::ContentStore;
