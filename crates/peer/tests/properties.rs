//! Property-based tests for the NetSession Interface components.

use netsession_core::id::{Guid, ObjectId, VersionId};
use netsession_core::piece::{Manifest, PieceMap};
use netsession_core::policy::TransferConfig;
use netsession_core::rng::DetRng;
use netsession_core::units::{Bandwidth, ByteCount};
use netsession_peer::governor::UploadGovernor;
use netsession_peer::picker::PiecePicker;
use netsession_peer::swarm::{SwarmEvent, SwarmSession};
use proptest::prelude::*;

proptest! {
    /// The picker never assigns the same piece to two sources, never
    /// assigns a held piece, and eventually covers everything.
    #[test]
    fn picker_no_double_assignment(
        pieces in 1u32..200,
        seed in any::<u64>(),
    ) {
        let mut rng = DetRng::seeded(seed);
        let mut picker = PiecePicker::new(pieces);
        let mine = PieceMap::empty(pieces);
        let theirs = PieceMap::full(pieces);
        picker.peer_joined(&theirs);
        let mut assigned = std::collections::HashSet::new();
        // Interleave peer and edge picks.
        loop {
            let pick = if rng.chance(0.5) {
                picker.next_for_peer(&mine, &theirs, &mut rng)
            } else {
                picker.next_for_edge(&mine)
            };
            match pick {
                Some(p) => prop_assert!(assigned.insert(p), "piece {p} assigned twice"),
                None => break,
            }
        }
        prop_assert_eq!(assigned.len(), pieces as usize);
    }

    /// The governor never exceeds its global connection limit under any
    /// operation sequence, and per-object caps are never overshot.
    #[test]
    fn governor_limits_hold(
        limit in 1usize..12,
        cap in 1u32..6,
        ops in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<bool>()), 0..200),
    ) {
        let mut g = UploadGovernor::new(
            TransferConfig {
                max_upload_connections: limit,
                ..TransferConfig::default()
            },
            true,
        );
        for (to, obj, finish) in ops {
            let to = Guid(to as u128 % 16);
            let obj = ObjectId(obj as u64 % 4);
            if finish {
                g.finish(to, obj, true);
            } else {
                let _ = g.try_start(to, obj, Some(cap));
            }
            prop_assert!(g.active_count() <= limit);
            for o in 0..4u64 {
                // Completed uploads may reach the cap but try_start must
                // refuse beyond it, so counts can exceed cap only via
                // uploads already in flight when it was hit — our model
                // finishes at most one at a time, so the bound is cap +
                // limit.
                prop_assert!(g.uploads_of(ObjectId(o)) <= cap + limit as u32);
            }
        }
    }

    /// A swarm fed only valid pieces always terminates with a complete,
    /// verified map, regardless of how many seeders there are and in
    /// which order they answer.
    #[test]
    fn swarm_always_completes_with_honest_seeders(
        pieces in 1u64..60,
        n_seeders in 1usize..6,
        seed in any::<u64>(),
    ) {
        let manifest = Manifest::synthetic(
            VersionId { object: ObjectId(1), version: 1 },
            ByteCount(pieces * 1000),
            1000,
        );
        let n = manifest.piece_count();
        let mut rng = DetRng::seeded(seed);
        let mut session = SwarmSession::new(manifest.clone(), PieceMap::empty(n));
        let mut queue: Vec<SwarmEvent> = Vec::new();
        for s in 0..n_seeders {
            queue.extend(session.on_peer_joined(Guid(s as u128), PieceMap::full(n), &mut rng));
        }
        let mut steps = 0;
        while !session.is_complete() {
            steps += 1;
            prop_assert!(steps < 10_000, "swarm failed to converge");
            let mut next = Vec::new();
            for ev in queue.drain(..) {
                if let SwarmEvent::Send(to, netsession_core::msg::SwarmMsg::Request { piece }) = ev {
                    let reply = netsession_core::msg::SwarmMsg::Piece {
                        piece,
                        data: vec![],
                        digest: manifest.piece_hashes[piece as usize],
                    };
                    next.extend(session.on_message(to, reply, &mut rng));
                }
            }
            if next.is_empty() && !session.is_complete() {
                next.extend(session.pump_all(&mut rng));
                prop_assert!(!next.is_empty(), "stalled incomplete swarm");
            }
            queue = next;
        }
        prop_assert!(session.is_complete());
    }

    /// Upload rate caps scale monotonically with upstream capacity and
    /// never exceed it.
    #[test]
    fn governor_rate_cap_bounded(up_mbps in 0.0f64..500.0, busy in any::<bool>()) {
        let mut g = UploadGovernor::new(TransferConfig::default(), true);
        g.set_link_busy(busy);
        let up = Bandwidth::from_mbps(up_mbps);
        let cap = g.rate_cap(up);
        prop_assert!(cap.bytes_per_sec() <= up.bytes_per_sec() + 1e-9);
        prop_assert!(cap.bytes_per_sec() >= 0.0);
    }
}
