//! The Download Manager (DLM).
//!
//! "The DLM is one of several applications that use the NetSession system;
//! a typical use case is to distribute large objects that are several GBs
//! in size … Users can pause and resume downloads, and they can continue
//! downloads that were aborted earlier, e.g., because the peer lost network
//! connectivity or the peer's hard drive was full" (§3.3).
//!
//! The DLM accounts every byte by source (infrastructure vs. peers), which
//! is what the usage reports — and ultimately the paper's *peer efficiency*
//! metric (§5.1) — are computed from.

use netsession_core::error::Error;
use netsession_core::id::{Guid, ObjectId, VersionId};
use netsession_core::msg::UsageRecord;
use netsession_core::policy::DownloadPolicy;
use netsession_core::time::SimTime;
use netsession_core::units::ByteCount;
use netsession_obs::MetricsRegistry;
use std::collections::HashMap;

/// Lifecycle of one download.
#[derive(Clone, Debug, PartialEq)]
pub enum DownloadPhase {
    /// Transferring.
    Active,
    /// Paused by the user; resumable.
    Paused,
    /// All bytes present and verified.
    Completed,
    /// Failed (the error says whether it was system-related, §5.2).
    Failed(Error),
    /// Aborted by the user and never resumed.
    Aborted,
}

/// One managed download.
#[derive(Clone, Debug)]
pub struct Download {
    /// What is being downloaded.
    pub version: VersionId,
    /// Total size.
    pub size: ByteCount,
    /// Provider policy (p2p allowed?).
    pub policy: DownloadPolicy,
    /// When it started.
    pub started: SimTime,
    /// When it reached a terminal phase.
    pub ended: Option<SimTime>,
    /// Bytes fetched from edge servers.
    pub bytes_infra: ByteCount,
    /// Bytes fetched from peers.
    pub bytes_peers: ByteCount,
    /// Current phase.
    pub phase: DownloadPhase,
    /// How many times it was paused and resumed.
    pub resume_count: u32,
}

impl Download {
    /// Total bytes fetched so far.
    pub fn total_bytes(&self) -> ByteCount {
        self.bytes_infra + self.bytes_peers
    }

    /// Fraction of bytes that came from peers — zero until bytes arrive.
    pub fn peer_efficiency(&self) -> f64 {
        let total = self.total_bytes().bytes();
        if total == 0 {
            0.0
        } else {
            self.bytes_peers.bytes() as f64 / total as f64
        }
    }

    /// Progress in `[0, 1]`.
    pub fn progress(&self) -> f64 {
        if self.size.bytes() == 0 {
            1.0
        } else {
            (self.total_bytes().bytes() as f64 / self.size.bytes() as f64).min(1.0)
        }
    }

    /// Whether the phase is terminal.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self.phase,
            DownloadPhase::Completed | DownloadPhase::Failed(_) | DownloadPhase::Aborted
        )
    }

    /// The usage record this download reports to the control plane (§4.1).
    pub fn usage_record(&self, guid: Guid) -> UsageRecord {
        UsageRecord {
            guid,
            version: self.version,
            started: self.started,
            ended: self.ended.unwrap_or(self.started),
            bytes_from_infrastructure: self.bytes_infra,
            bytes_from_peers: self.bytes_peers,
        }
    }
}

/// The per-peer download manager.
///
/// Carries passive `peer.download_*` outcome counters; they start detached
/// and can be pointed at a shared registry with
/// [`DownloadManager::with_metrics`]. Clones share the same instruments.
#[derive(Clone, Debug, Default)]
pub struct DownloadManager {
    downloads: HashMap<ObjectId, Download>,
    metrics: MetricsRegistry,
}

impl DownloadManager {
    /// Empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attach outcome instruments to `registry`: `peer.downloads_started`,
    /// `peer.downloads_completed`, `peer.downloads_failed`,
    /// `peer.downloads_aborted`, `peer.downloads_paused`,
    /// `peer.downloads_resumed`, and the `peer.download_peer_share_pct`
    /// histogram (peer-sourced percentage of each completed download).
    pub fn with_metrics(mut self, registry: &MetricsRegistry) -> Self {
        self.metrics = registry.clone();
        self
    }

    /// Start (or restart) a download. A download for an older version of
    /// the same object is replaced.
    pub fn begin(
        &mut self,
        version: VersionId,
        size: ByteCount,
        policy: DownloadPolicy,
        now: SimTime,
    ) -> &mut Download {
        self.metrics.counter("peer.downloads_started").incr();
        self.downloads.insert(
            version.object,
            Download {
                version,
                size,
                policy,
                started: now,
                ended: None,
                bytes_infra: ByteCount::ZERO,
                bytes_peers: ByteCount::ZERO,
                phase: DownloadPhase::Active,
                resume_count: 0,
            },
        );
        self.downloads.get_mut(&version.object).unwrap()
    }

    /// Account received bytes. `from_peers` selects the source bucket.
    /// Returns `true` when this made the download byte-complete.
    pub fn record_bytes(
        &mut self,
        object: ObjectId,
        from_peers: bool,
        bytes: ByteCount,
        now: SimTime,
    ) -> bool {
        let Some(d) = self.downloads.get_mut(&object) else {
            return false;
        };
        if d.phase != DownloadPhase::Active {
            return false;
        }
        if from_peers {
            d.bytes_peers += bytes;
        } else {
            d.bytes_infra += bytes;
        }
        if d.total_bytes().bytes() >= d.size.bytes() {
            d.phase = DownloadPhase::Completed;
            d.ended = Some(now);
            self.metrics.counter("peer.downloads_completed").incr();
            self.metrics
                .histogram("peer.download_peer_share_pct")
                .record((d.peer_efficiency() * 100.0) as u64);
            true
        } else {
            false
        }
    }

    /// Pause an active download.
    pub fn pause(&mut self, object: ObjectId, _now: SimTime) -> bool {
        match self.downloads.get_mut(&object) {
            Some(d) if d.phase == DownloadPhase::Active => {
                d.phase = DownloadPhase::Paused;
                self.metrics.counter("peer.downloads_paused").incr();
                true
            }
            _ => false,
        }
    }

    /// Resume a paused download.
    pub fn resume(&mut self, object: ObjectId) -> bool {
        match self.downloads.get_mut(&object) {
            Some(d) if d.phase == DownloadPhase::Paused => {
                d.phase = DownloadPhase::Active;
                d.resume_count += 1;
                self.metrics.counter("peer.downloads_resumed").incr();
                true
            }
            _ => false,
        }
    }

    /// The user abandons the download (paused-and-never-resumed collapses
    /// to this at trace end).
    pub fn abort(&mut self, object: ObjectId, now: SimTime) -> bool {
        match self.downloads.get_mut(&object) {
            Some(d) if !d.is_terminal() => {
                d.phase = DownloadPhase::Aborted;
                d.ended = Some(now);
                self.metrics.counter("peer.downloads_aborted").incr();
                true
            }
            _ => false,
        }
    }

    /// The download failed.
    pub fn fail(&mut self, object: ObjectId, error: Error, now: SimTime) -> bool {
        match self.downloads.get_mut(&object) {
            Some(d) if !d.is_terminal() => {
                d.phase = DownloadPhase::Failed(error);
                d.ended = Some(now);
                self.metrics.counter("peer.downloads_failed").incr();
                true
            }
            _ => false,
        }
    }

    /// A download by object.
    pub fn get(&self, object: ObjectId) -> Option<&Download> {
        self.downloads.get(&object)
    }

    /// Mutable access.
    pub fn get_mut(&mut self, object: ObjectId) -> Option<&mut Download> {
        self.downloads.get_mut(&object)
    }

    /// Count of non-terminal downloads.
    pub fn active_count(&self) -> usize {
        self.downloads.values().filter(|d| !d.is_terminal()).count()
    }

    /// Iterate all downloads.
    pub fn iter(&self) -> impl Iterator<Item = &Download> {
        self.downloads.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ver(o: u64) -> VersionId {
        VersionId {
            object: ObjectId(o),
            version: 1,
        }
    }

    fn begin(dm: &mut DownloadManager, o: u64, size: u64) {
        dm.begin(
            ver(o),
            ByteCount(size),
            DownloadPolicy::peer_assisted(),
            SimTime(0),
        );
    }

    #[test]
    fn bytes_accumulate_and_complete() {
        let mut dm = DownloadManager::new();
        begin(&mut dm, 1, 1000);
        assert!(!dm.record_bytes(ObjectId(1), false, ByteCount(400), SimTime(1)));
        assert!(!dm.record_bytes(ObjectId(1), true, ByteCount(500), SimTime(2)));
        assert!(dm.record_bytes(ObjectId(1), true, ByteCount(100), SimTime(3)));
        let d = dm.get(ObjectId(1)).unwrap();
        assert_eq!(d.phase, DownloadPhase::Completed);
        assert_eq!(d.ended, Some(SimTime(3)));
        assert!((d.peer_efficiency() - 0.6).abs() < 1e-9);
        assert_eq!(d.progress(), 1.0);
    }

    #[test]
    fn usage_record_reflects_split() {
        let mut dm = DownloadManager::new();
        begin(&mut dm, 1, 100);
        dm.record_bytes(ObjectId(1), false, ByteCount(30), SimTime(1));
        dm.record_bytes(ObjectId(1), true, ByteCount(70), SimTime(2));
        let rec = dm.get(ObjectId(1)).unwrap().usage_record(Guid(5));
        assert_eq!(rec.bytes_from_infrastructure, ByteCount(30));
        assert_eq!(rec.bytes_from_peers, ByteCount(70));
        assert_eq!(rec.ended, SimTime(2));
    }

    #[test]
    fn pause_resume_cycle() {
        let mut dm = DownloadManager::new();
        begin(&mut dm, 1, 1000);
        assert!(dm.pause(ObjectId(1), SimTime(1)));
        // Paused downloads accept no bytes.
        assert!(!dm.record_bytes(ObjectId(1), false, ByteCount(10), SimTime(2)));
        assert_eq!(dm.get(ObjectId(1)).unwrap().total_bytes(), ByteCount::ZERO);
        assert!(dm.resume(ObjectId(1)));
        assert_eq!(dm.get(ObjectId(1)).unwrap().resume_count, 1);
        assert!(dm.record_bytes(ObjectId(1), false, ByteCount(1000), SimTime(3)));
        // Terminal: pause/resume now fail.
        assert!(!dm.pause(ObjectId(1), SimTime(4)));
        assert!(!dm.resume(ObjectId(1)));
    }

    #[test]
    fn abort_and_fail_are_terminal() {
        let mut dm = DownloadManager::new();
        begin(&mut dm, 1, 1000);
        begin(&mut dm, 2, 1000);
        assert!(dm.abort(ObjectId(1), SimTime(5)));
        assert!(dm.fail(ObjectId(2), Error::DiskFull, SimTime(6)));
        assert!(dm.get(ObjectId(1)).unwrap().is_terminal());
        assert!(dm.get(ObjectId(2)).unwrap().is_terminal());
        assert!(!dm.abort(ObjectId(1), SimTime(7)), "already terminal");
        assert_eq!(dm.active_count(), 0);
        match &dm.get(ObjectId(2)).unwrap().phase {
            DownloadPhase::Failed(e) => assert!(!e.is_system_related()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn zero_byte_download_is_trivially_complete_progress() {
        let mut dm = DownloadManager::new();
        begin(&mut dm, 1, 0);
        assert_eq!(dm.get(ObjectId(1)).unwrap().progress(), 1.0);
        assert_eq!(dm.get(ObjectId(1)).unwrap().peer_efficiency(), 0.0);
    }

    #[test]
    fn new_version_replaces_download() {
        let mut dm = DownloadManager::new();
        begin(&mut dm, 1, 1000);
        dm.record_bytes(ObjectId(1), false, ByteCount(10), SimTime(1));
        let v2 = VersionId {
            object: ObjectId(1),
            version: 2,
        };
        dm.begin(
            v2,
            ByteCount(500),
            DownloadPolicy::peer_assisted(),
            SimTime(2),
        );
        let d = dm.get(ObjectId(1)).unwrap();
        assert_eq!(d.version, v2);
        assert_eq!(d.total_bytes(), ByteCount::ZERO);
    }
}
