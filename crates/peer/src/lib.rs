//! # netsession-peer
//!
//! The **NetSession Interface** — the client software installed on user
//! machines (§3.3–§3.4, §3.9). It runs as a persistent background
//! application, downloads from edge servers and peers *in parallel*, and
//! takes "great care not to inconvenience the user".
//!
//! * [`prefs`] — user preferences: the upload on/off switch with its change
//!   history (Tables 3/4), and the control-panel status surface.
//! * [`cache`] — the local object cache: completed objects stay shareable
//!   for a TTL and are announced to the control plane (§5.2: "the peer
//!   keeps it in a local cache for a certain amount of time").
//! * [`picker`] — piece selection: rarest-first for peer connections, an
//!   in-order cursor for the always-on edge connection, and in-flight
//!   deduplication.
//! * [`swarm`] — the BitTorrent-like swarming protocol engine *without
//!   tit-for-tat* (§3.4): have-maps, requests, verification, and the polite
//!   `Busy` instead of choking.
//! * [`dlm`] — the Download Manager: pause/resume/abort, byte accounting
//!   split between infrastructure and peers, and usage-record emission.
//! * [`governor`] — the upload governor: the global upload-connection
//!   limit, the upstream rate fraction, idle-link backoff, and per-object
//!   upload caps (§3.9).
//! * [`streaming`] — the video-streaming delivery mode (§3.4): in-order
//!   windowed piece selection with startup and rebuffering accounting.

pub mod cache;
pub mod dlm;
pub mod governor;
pub mod picker;
pub mod prefs;
pub mod streaming;
pub mod swarm;

pub use cache::ObjectCache;
pub use dlm::{Download, DownloadManager, DownloadPhase};
pub use governor::UploadGovernor;
pub use picker::PiecePicker;
pub use prefs::Preferences;
pub use streaming::{PlaybackState, StreamBuffer};
pub use swarm::SwarmSession;
