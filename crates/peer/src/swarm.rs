//! Swarming protocol engine (download side).
//!
//! "For downloads from peers, it uses a swarming protocol not unlike
//! BitTorrent's. As in BitTorrent, objects are broken into fixed-size
//! pieces that can be downloaded and their content hashes verified
//! separately, and peers exchange information about which pieces of the
//! file they have locally available. A key difference to BitTorrent is the
//! absence of an incentive mechanism … There is no tit-for-tat strategy
//! that would 'choke' slow uploaders" (§3.4).
//!
//! "If a peer cannot validate a file piece, it discards the piece and does
//! not upload it to other peers" (§3.5) — a corrupt piece is dropped,
//! re-requested elsewhere, and reported.

use crate::picker::PiecePicker;

use netsession_core::id::Guid;
use netsession_core::msg::SwarmMsg;
use netsession_core::piece::{Manifest, PieceIndex, PieceMap};
use netsession_core::rng::DetRng;
use netsession_obs::MetricsRegistry;
use std::collections::HashMap;

/// State kept per connected remote peer.
#[derive(Clone, Debug)]
pub struct RemotePeer {
    /// The remote's have-map.
    pub map: PieceMap,
    /// The piece we currently have requested from it, if any.
    pub in_flight: Option<PieceIndex>,
    /// Pieces received and verified from this peer.
    pub pieces_received: u32,
    /// Corrupt pieces received from this peer (for peer quality tracking).
    pub corrupt_received: u32,
}

/// What the engine wants the caller to do.
#[derive(Clone, Debug, PartialEq)]
pub enum SwarmEvent {
    /// Send a message to a remote peer.
    Send(Guid, SwarmMsg),
    /// A piece arrived and verified.
    PieceVerified(PieceIndex),
    /// The download is complete.
    Completed,
    /// A corrupt piece arrived from this peer (discarded, §3.5).
    CorruptPiece(Guid, PieceIndex),
}

/// Download-side swarm engine for one object.
pub struct SwarmSession {
    manifest: Manifest,
    mine: PieceMap,
    picker: PiecePicker,
    remotes: HashMap<Guid, RemotePeer>,
    metrics: MetricsRegistry,
}

impl SwarmSession {
    /// Start a session, resuming from an existing piece map if the cache
    /// holds partial progress.
    pub fn new(manifest: Manifest, mine: PieceMap) -> Self {
        assert_eq!(mine.len(), manifest.piece_count());
        let picker = PiecePicker::new(manifest.piece_count());
        SwarmSession {
            manifest,
            mine,
            picker,
            remotes: HashMap::new(),
            metrics: MetricsRegistry::new(),
        }
    }

    /// Attach passive piece-outcome instruments to `registry`:
    /// `peer.swarm_pieces_from_peers`, `peer.swarm_pieces_from_edge`,
    /// `peer.swarm_pieces_corrupt`, and `peer.swarm_peers_joined` /
    /// `peer.swarm_peers_left`.
    pub fn with_metrics(mut self, registry: &MetricsRegistry) -> Self {
        self.metrics = registry.clone();
        self
    }

    /// The local have-map.
    pub fn mine(&self) -> &PieceMap {
        &self.mine
    }

    /// Whether every piece is present.
    pub fn is_complete(&self) -> bool {
        self.mine.is_complete()
    }

    /// Connected remote count.
    pub fn remote_count(&self) -> usize {
        self.remotes.len()
    }

    /// A remote finished handshaking and sent its have-map. Returns
    /// follow-up actions (typically an immediate request).
    pub fn on_peer_joined(
        &mut self,
        guid: Guid,
        their_map: PieceMap,
        rng: &mut DetRng,
    ) -> Vec<SwarmEvent> {
        assert_eq!(their_map.len(), self.manifest.piece_count());
        self.picker.peer_joined(&their_map);
        self.metrics.counter("peer.swarm_peers_joined").incr();
        self.remotes.insert(
            guid,
            RemotePeer {
                map: their_map,
                in_flight: None,
                pieces_received: 0,
                corrupt_received: 0,
            },
        );
        self.pump_one(guid, rng).into_iter().collect()
    }

    /// A remote disconnected; its in-flight request is returned to the
    /// pool.
    pub fn on_peer_left(&mut self, guid: Guid) {
        if let Some(remote) = self.remotes.remove(&guid) {
            self.metrics.counter("peer.swarm_peers_left").incr();
            self.picker.peer_left(&remote.map);
            if let Some(p) = remote.in_flight {
                self.picker.request_finished(p);
            }
        }
    }

    /// Handle an incoming message from `from`.
    pub fn on_message(&mut self, from: Guid, msg: SwarmMsg, rng: &mut DetRng) -> Vec<SwarmEvent> {
        let mut out = Vec::new();
        match msg {
            SwarmMsg::Have { piece } => {
                if let Some(remote) = self.remotes.get_mut(&from) {
                    if piece < remote.map.len() && remote.map.set(piece) {
                        self.picker.have_announced(piece);
                    }
                }
                if let Some(ev) = self.pump_one(from, rng) {
                    out.push(ev);
                }
            }
            SwarmMsg::Piece {
                piece,
                data,
                digest,
            } => {
                let ok = if data.is_empty() {
                    // Simulation flavour: verify by digest.
                    self.manifest.verify_digest(piece, digest)
                } else {
                    self.manifest.verify_piece(piece, &data)
                };
                self.picker.request_finished(piece);
                if let Some(remote) = self.remotes.get_mut(&from) {
                    remote.in_flight = None;
                    if ok {
                        remote.pieces_received += 1;
                    } else {
                        remote.corrupt_received += 1;
                    }
                }
                if ok {
                    if self.mine.set(piece) {
                        self.metrics.counter("peer.swarm_pieces_from_peers").incr();
                        out.push(SwarmEvent::PieceVerified(piece));
                        // Announce to everyone else (they may want it).
                        for guid in self.remotes.keys() {
                            out.push(SwarmEvent::Send(*guid, SwarmMsg::Have { piece }));
                        }
                        if self.mine.is_complete() {
                            out.push(SwarmEvent::Completed);
                        }
                    }
                } else {
                    self.metrics.counter("peer.swarm_pieces_corrupt").incr();
                    out.push(SwarmEvent::CorruptPiece(from, piece));
                }
                if !self.mine.is_complete() {
                    if let Some(ev) = self.pump_one(from, rng) {
                        out.push(ev);
                    }
                }
            }
            SwarmMsg::Busy => {
                // The polite replacement for choking: free the in-flight
                // slot; the piece goes back to the pool.
                if let Some(remote) = self.remotes.get_mut(&from) {
                    if let Some(p) = remote.in_flight.take() {
                        self.picker.request_finished(p);
                    }
                }
            }
            SwarmMsg::Goodbye => {
                self.on_peer_left(from);
            }
            // Handshake/HaveMap are handled by the connection layer;
            // Request/Cancel belong to the upload side.
            _ => {}
        }
        out
    }

    /// Issue a request to `guid` if it is idle and has something we need.
    fn pump_one(&mut self, guid: Guid, rng: &mut DetRng) -> Option<SwarmEvent> {
        let remote = self.remotes.get_mut(&guid)?;
        if remote.in_flight.is_some() || self.mine.is_complete() {
            return None;
        }
        let piece = self.picker.next_for_peer(&self.mine, &remote.map, rng)?;
        remote.in_flight = Some(piece);
        Some(SwarmEvent::Send(guid, SwarmMsg::Request { piece }))
    }

    /// Pick the next piece to fetch over the always-on edge connection
    /// (§3.3: "the download from the edge servers continues in parallel").
    /// Marks the piece in flight.
    pub fn next_edge_piece(&mut self) -> Option<PieceIndex> {
        self.picker.next_for_edge(&self.mine)
    }

    /// An edge piece arrived: verify and record it. Content may be raw
    /// bytes (live runtime) or empty-with-digest (simulation flavour).
    pub fn on_edge_piece(
        &mut self,
        piece: PieceIndex,
        data: &[u8],
        digest: netsession_core::hash::Digest,
    ) -> Vec<SwarmEvent> {
        let ok = if data.is_empty() {
            self.manifest.verify_digest(piece, digest)
        } else {
            self.manifest.verify_piece(piece, data)
        };
        self.picker.request_finished(piece);
        let mut out = Vec::new();
        if ok && self.mine.set(piece) {
            self.metrics.counter("peer.swarm_pieces_from_edge").incr();
            out.push(SwarmEvent::PieceVerified(piece));
            for guid in self.remotes.keys() {
                out.push(SwarmEvent::Send(*guid, SwarmMsg::Have { piece }));
            }
            if self.mine.is_complete() {
                out.push(SwarmEvent::Completed);
            }
        }
        out
    }

    /// Issue requests to every idle remote (call after joins/stalls).
    pub fn pump_all(&mut self, rng: &mut DetRng) -> Vec<SwarmEvent> {
        let guids: Vec<Guid> = self.remotes.keys().copied().collect();
        guids
            .into_iter()
            .filter_map(|g| self.pump_one(g, rng))
            .collect()
    }

    /// Pieces verified from each remote (quality telemetry).
    pub fn remote_stats(&self) -> impl Iterator<Item = (Guid, u32, u32)> + '_ {
        self.remotes
            .iter()
            .map(|(g, r)| (*g, r.pieces_received, r.corrupt_received))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsession_core::id::{ObjectId, VersionId};
    use netsession_core::units::ByteCount;

    fn manifest(pieces: u64) -> Manifest {
        Manifest::synthetic(
            VersionId {
                object: ObjectId(1),
                version: 1,
            },
            ByteCount::from_bytes(pieces * 1000),
            1000,
        )
    }

    fn good_piece(m: &Manifest, piece: PieceIndex) -> SwarmMsg {
        SwarmMsg::Piece {
            piece,
            data: vec![],
            digest: m.piece_hashes[piece as usize],
        }
    }

    #[test]
    fn requests_flow_on_join_and_complete() {
        let m = manifest(3);
        let mut s = SwarmSession::new(m.clone(), PieceMap::empty(3));
        let mut rng = DetRng::seeded(1);
        let seeder = Guid(9);
        let events = s.on_peer_joined(seeder, PieceMap::full(3), &mut rng);
        let first = match &events[0] {
            SwarmEvent::Send(g, SwarmMsg::Request { piece }) => {
                assert_eq!(*g, seeder);
                *piece
            }
            other => panic!("expected request, got {other:?}"),
        };
        // Deliver pieces until complete.
        let mut next = first;
        for round in 0..3 {
            let events = s.on_message(seeder, good_piece(&m, next), &mut rng);
            assert!(events.contains(&SwarmEvent::PieceVerified(next)));
            if round == 2 {
                assert!(events.contains(&SwarmEvent::Completed));
            } else {
                next = events
                    .iter()
                    .find_map(|e| match e {
                        SwarmEvent::Send(_, SwarmMsg::Request { piece }) => Some(*piece),
                        _ => None,
                    })
                    .expect("next request");
            }
        }
        assert!(s.is_complete());
    }

    #[test]
    fn corrupt_piece_discarded_and_rerequested() {
        let m = manifest(2);
        let mut s = SwarmSession::new(m.clone(), PieceMap::empty(2));
        let mut rng = DetRng::seeded(2);
        let seeder = Guid(9);
        let events = s.on_peer_joined(seeder, PieceMap::full(2), &mut rng);
        let piece = match &events[0] {
            SwarmEvent::Send(_, SwarmMsg::Request { piece }) => *piece,
            _ => panic!(),
        };
        let bad = SwarmMsg::Piece {
            piece,
            data: vec![],
            digest: netsession_core::hash::sha256(b"garbage"),
        };
        let events = s.on_message(seeder, bad, &mut rng);
        assert!(events.contains(&SwarmEvent::CorruptPiece(seeder, piece)));
        assert!(!s.mine().has(piece), "corrupt piece must be discarded");
        // The piece is requestable again (possibly from the same peer).
        let rerequested = events.iter().any(
            |e| matches!(e, SwarmEvent::Send(_, SwarmMsg::Request { piece: p }) if *p == piece),
        ) || s
            .pump_all(&mut rng)
            .iter()
            .any(|e| matches!(e, SwarmEvent::Send(_, SwarmMsg::Request { .. })));
        assert!(rerequested);
        let (_, ok, corrupt) = s.remote_stats().next().unwrap();
        assert_eq!((ok, corrupt), (0, 1));
    }

    #[test]
    fn busy_peer_releases_request_no_choke_retaliation() {
        let m = manifest(2);
        let mut s = SwarmSession::new(m, PieceMap::empty(2));
        let mut rng = DetRng::seeded(3);
        let a = Guid(1);
        let b = Guid(2);
        s.on_peer_joined(a, PieceMap::full(2), &mut rng);
        s.on_peer_joined(b, PieceMap::full(2), &mut rng);
        // Peer A says Busy: its in-flight piece returns to the pool and can
        // be requested from B.
        s.on_message(a, SwarmMsg::Busy, &mut rng);
        let events = s.pump_all(&mut rng);
        assert!(
            events
                .iter()
                .any(|e| matches!(e, SwarmEvent::Send(g, SwarmMsg::Request { .. }) if *g == a)),
            "no retaliation: the busy peer may be asked again later"
        );
    }

    #[test]
    fn have_announcements_update_availability_and_trigger_requests() {
        let m = manifest(2);
        let mut s = SwarmSession::new(m, PieceMap::empty(2));
        let mut rng = DetRng::seeded(4);
        let a = Guid(1);
        // A has nothing yet.
        let events = s.on_peer_joined(a, PieceMap::empty(2), &mut rng);
        assert!(events.is_empty(), "nothing to request yet");
        // A announces piece 1.
        let events = s.on_message(a, SwarmMsg::Have { piece: 1 }, &mut rng);
        assert!(events
            .iter()
            .any(|e| matches!(e, SwarmEvent::Send(_, SwarmMsg::Request { piece: 1 }))));
    }

    #[test]
    fn peer_departure_frees_inflight() {
        let m = manifest(1);
        let mut s = SwarmSession::new(m, PieceMap::empty(1));
        let mut rng = DetRng::seeded(5);
        let a = Guid(1);
        let b = Guid(2);
        s.on_peer_joined(a, PieceMap::full(1), &mut rng);
        // Piece 0 is in flight to A; B joins and has nothing to do.
        assert!(s.on_peer_joined(b, PieceMap::full(1), &mut rng).is_empty());
        s.on_peer_left(a);
        // Now B can pick it up.
        let events = s.pump_all(&mut rng);
        assert!(events
            .iter()
            .any(|e| matches!(e, SwarmEvent::Send(g, SwarmMsg::Request { piece: 0 }) if *g == b)));
    }

    #[test]
    fn resume_from_partial_map_only_requests_missing() {
        let m = manifest(3);
        let mut mine = PieceMap::empty(3);
        mine.set(0);
        mine.set(2);
        let mut s = SwarmSession::new(m.clone(), mine);
        let mut rng = DetRng::seeded(6);
        let events = s.on_peer_joined(Guid(1), PieceMap::full(3), &mut rng);
        match &events[0] {
            SwarmEvent::Send(_, SwarmMsg::Request { piece }) => assert_eq!(*piece, 1),
            other => panic!("{other:?}"),
        }
        let events = s.on_message(Guid(1), good_piece(&m, 1), &mut rng);
        assert!(events.contains(&SwarmEvent::Completed));
    }
}
