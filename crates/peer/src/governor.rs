//! Upload governance.
//!
//! §3.4: "only a globally configurable limit on the total number of upload
//! connections a peer allows". §3.9: "Uploads are rate-limited, and peers
//! upload each object at most a limited number of times. Finally, peers
//! monitor the utilization of the local network connections and throttle or
//! pause uploads when the connections are used by other applications."

use netsession_core::error::{Error, Result};
use netsession_core::id::{Guid, ObjectId};
use netsession_core::policy::TransferConfig;
use netsession_core::units::Bandwidth;
use std::collections::{HashMap, HashSet};

/// The client-side upload governor.
#[derive(Clone, Debug)]
pub struct UploadGovernor {
    /// Active configuration (pushed by the control plane, §3.4).
    pub config: TransferConfig,
    /// Whether uploads are enabled at all (mirrors preferences).
    uploads_enabled: bool,
    /// Whether the user's own traffic is currently using the link.
    link_busy: bool,
    active: HashSet<(Guid, ObjectId)>,
    completed_uploads: HashMap<ObjectId, u32>,
}

impl UploadGovernor {
    /// Fresh governor.
    pub fn new(config: TransferConfig, uploads_enabled: bool) -> Self {
        UploadGovernor {
            config,
            uploads_enabled,
            link_busy: false,
            active: HashSet::new(),
            completed_uploads: HashMap::new(),
        }
    }

    /// Mirror a preferences change.
    pub fn set_uploads_enabled(&mut self, enabled: bool) {
        self.uploads_enabled = enabled;
        if !enabled {
            self.active.clear();
        }
    }

    /// The user's applications started/stopped using the link (§3.9
    /// back-off).
    pub fn set_link_busy(&mut self, busy: bool) {
        self.link_busy = busy;
    }

    /// Whether the link is currently busy with user traffic.
    pub fn link_busy(&self) -> bool {
        self.link_busy
    }

    /// Ask to start uploading `object` to `to`. Enforces the enable switch,
    /// the global connection limit, and the per-object upload cap.
    pub fn try_start(
        &mut self,
        to: Guid,
        object: ObjectId,
        per_object_cap: Option<u32>,
    ) -> Result<()> {
        if !self.uploads_enabled {
            return Err(Error::PolicyDenied("uploads disabled by user".into()));
        }
        if self.active.len() >= self.config.max_upload_connections {
            return Err(Error::LimitExceeded(format!(
                "at the global limit of {} upload connections",
                self.config.max_upload_connections
            )));
        }
        if let Some(cap) = per_object_cap {
            if self.completed_uploads.get(&object).copied().unwrap_or(0) >= cap {
                return Err(Error::LimitExceeded(format!(
                    "object {object} already uploaded {cap} times"
                )));
            }
        }
        if !self.active.insert((to, object)) {
            return Err(Error::InvalidState(format!(
                "already uploading {object} to {to}"
            )));
        }
        Ok(())
    }

    /// An upload connection closed. `completed` uploads count against the
    /// per-object cap; aborted ones do not. A finish with no matching
    /// start is ignored (defensive: double-finish must not inflate the
    /// completion counter).
    pub fn finish(&mut self, to: Guid, object: ObjectId, completed: bool) {
        let was_active = self.active.remove(&(to, object));
        if completed && was_active {
            *self.completed_uploads.entry(object).or_insert(0) += 1;
        }
    }

    /// Number of active upload connections.
    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// Completed uploads of an object so far.
    pub fn uploads_of(&self, object: ObjectId) -> u32 {
        self.completed_uploads.get(&object).copied().unwrap_or(0)
    }

    /// The current aggregate upload rate cap for a peer with `upstream`
    /// capacity: the configured fraction, squeezed further when the link is
    /// busy (§3.9: "throttle or pause uploads").
    pub fn rate_cap(&self, upstream: Bandwidth) -> Bandwidth {
        if !self.uploads_enabled {
            return Bandwidth::ZERO;
        }
        self.config.upload_cap(upstream, self.link_busy)
    }

    /// The per-connection ceiling: the aggregate cap divided across active
    /// connections (equal split; max-min refinement happens in the network).
    pub fn per_connection_cap(&self, upstream: Bandwidth) -> Bandwidth {
        let n = self.active.len().max(1);
        Bandwidth::from_bytes_per_sec(self.rate_cap(upstream).bytes_per_sec() / n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn governor(max_conns: usize) -> UploadGovernor {
        UploadGovernor::new(
            TransferConfig {
                max_upload_connections: max_conns,
                ..TransferConfig::default()
            },
            true,
        )
    }

    #[test]
    fn global_connection_limit_enforced() {
        let mut g = governor(2);
        g.try_start(Guid(1), ObjectId(1), None).unwrap();
        g.try_start(Guid(2), ObjectId(1), None).unwrap();
        assert!(matches!(
            g.try_start(Guid(3), ObjectId(1), None),
            Err(Error::LimitExceeded(_))
        ));
        g.finish(Guid(1), ObjectId(1), true);
        g.try_start(Guid(3), ObjectId(1), None).unwrap();
        assert_eq!(g.active_count(), 2);
    }

    #[test]
    fn per_object_cap_counts_only_completed() {
        let mut g = governor(10);
        for i in 0..3 {
            g.try_start(Guid(i), ObjectId(1), Some(2)).unwrap();
            g.finish(Guid(i), ObjectId(1), i != 0); // first one aborted
        }
        assert_eq!(g.uploads_of(ObjectId(1)), 2);
        assert!(matches!(
            g.try_start(Guid(9), ObjectId(1), Some(2)),
            Err(Error::LimitExceeded(_))
        ));
        // A different object is unaffected.
        g.try_start(Guid(9), ObjectId(2), Some(2)).unwrap();
    }

    #[test]
    fn disabled_uploads_refuse_and_clear() {
        let mut g = governor(10);
        g.try_start(Guid(1), ObjectId(1), None).unwrap();
        g.set_uploads_enabled(false);
        assert_eq!(g.active_count(), 0, "active uploads dropped");
        assert!(matches!(
            g.try_start(Guid(2), ObjectId(1), None),
            Err(Error::PolicyDenied(_))
        ));
        assert_eq!(g.rate_cap(Bandwidth::from_mbps(10.0)), Bandwidth::ZERO);
    }

    #[test]
    fn duplicate_connection_rejected() {
        let mut g = governor(10);
        g.try_start(Guid(1), ObjectId(1), None).unwrap();
        assert!(matches!(
            g.try_start(Guid(1), ObjectId(1), None),
            Err(Error::InvalidState(_))
        ));
    }

    #[test]
    fn busy_link_throttles_rate() {
        let mut g = governor(10);
        let up = Bandwidth::from_mbps(1.0);
        let idle = g.rate_cap(up);
        g.set_link_busy(true);
        let busy = g.rate_cap(up);
        assert!(busy.as_mbps() < idle.as_mbps() / 2.0);
    }

    #[test]
    fn per_connection_cap_splits_aggregate() {
        let mut g = governor(10);
        let up = Bandwidth::from_mbps(8.0);
        let solo = g.per_connection_cap(up);
        g.try_start(Guid(1), ObjectId(1), None).unwrap();
        g.try_start(Guid(2), ObjectId(2), None).unwrap();
        let split = g.per_connection_cap(up);
        assert!((solo.as_mbps() / split.as_mbps() - 2.0).abs() < 1e-9);
    }
}
