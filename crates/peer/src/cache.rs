//! Local object cache.
//!
//! "Once a file has been downloaded, the peer keeps it in a local cache for
//! a certain amount of time and informs the control plane that it is
//! willing to upload this file to other peers (if uploading is enabled)"
//! (§5.2). The cache also backs pause/resume: partially downloaded piece
//! maps persist so an aborted download can continue where it left off
//! (§3.3). A peer "does not proactively download content; it only shares
//! objects that the corresponding user has previously downloaded" (§3.9).

use netsession_core::id::{ObjectId, VersionId};
use netsession_core::piece::PieceMap;
use netsession_core::time::{SimDuration, SimTime};
use std::collections::HashMap;

/// One cached object (complete or partial).
#[derive(Clone, Debug)]
pub struct CacheEntry {
    /// The cached version.
    pub version: VersionId,
    /// Which pieces are present and verified.
    pub pieces: PieceMap,
    /// When the download completed, if it did.
    pub completed_at: Option<SimTime>,
    /// Last time the entry was used (download progress or upload served).
    pub last_touch: SimTime,
}

impl CacheEntry {
    /// Whether the object is complete and thus shareable.
    pub fn is_complete(&self) -> bool {
        self.pieces.is_complete()
    }
}

/// The per-peer cache.
#[derive(Clone, Debug)]
pub struct ObjectCache {
    entries: HashMap<ObjectId, CacheEntry>,
    /// How long completed entries stay shareable.
    pub ttl: SimDuration,
}

impl ObjectCache {
    /// Empty cache with a TTL.
    pub fn new(ttl: SimDuration) -> Self {
        ObjectCache {
            entries: HashMap::new(),
            ttl,
        }
    }

    /// Begin (or resume) caching a version with `pieces` pieces. If a
    /// *different* version of the same object is cached, it is discarded —
    /// versions must never mix (§3.5).
    pub fn open(&mut self, version: VersionId, piece_count: u32, now: SimTime) -> &mut CacheEntry {
        let entry = self.entries.entry(version.object);
        match entry {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                if e.get().version != version {
                    e.insert(CacheEntry {
                        version,
                        pieces: PieceMap::empty(piece_count),
                        completed_at: None,
                        last_touch: now,
                    });
                }
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(CacheEntry {
                    version,
                    pieces: PieceMap::empty(piece_count),
                    completed_at: None,
                    last_touch: now,
                });
            }
        }
        self.entries.get_mut(&version.object).unwrap()
    }

    /// Record a verified piece. Returns `true` when this completes the
    /// object.
    pub fn add_piece(&mut self, version: VersionId, piece: u32, now: SimTime) -> bool {
        let Some(e) = self.entries.get_mut(&version.object) else {
            return false;
        };
        if e.version != version {
            return false;
        }
        e.pieces.set(piece);
        e.last_touch = now;
        if e.pieces.is_complete() && e.completed_at.is_none() {
            e.completed_at = Some(now);
            true
        } else {
            false
        }
    }

    /// Mark a whole object complete at once (fluid simulation path).
    pub fn complete(&mut self, version: VersionId, piece_count: u32, now: SimTime) {
        self.entries.insert(
            version.object,
            CacheEntry {
                version,
                pieces: PieceMap::full(piece_count),
                completed_at: Some(now),
                last_touch: now,
            },
        );
    }

    /// Look up an entry.
    pub fn get(&self, object: ObjectId) -> Option<&CacheEntry> {
        self.entries.get(&object)
    }

    /// Touch an entry (serving an upload refreshes the TTL).
    pub fn touch(&mut self, object: ObjectId, now: SimTime) {
        if let Some(e) = self.entries.get_mut(&object) {
            e.last_touch = now;
        }
    }

    /// Remove one object (user cleared it / disk pressure).
    pub fn remove(&mut self, object: ObjectId) -> Option<CacheEntry> {
        self.entries.remove(&object)
    }

    /// All complete, unexpired versions — what a RE-ADD response lists and
    /// what gets registered with the control plane.
    pub fn shareable(&self, now: SimTime) -> Vec<VersionId> {
        self.entries
            .values()
            .filter(|e| e.is_complete() && now.since(e.last_touch) <= self.ttl)
            .map(|e| e.version)
            .collect()
    }

    /// Drop expired completed entries; returns the versions to unregister.
    pub fn evict_expired(&mut self, now: SimTime) -> Vec<VersionId> {
        let ttl = self.ttl;
        let expired: Vec<ObjectId> = self
            .entries
            .iter()
            .filter(|(_, e)| e.is_complete() && now.since(e.last_touch) > ttl)
            .map(|(o, _)| *o)
            .collect();
        expired
            .into_iter()
            .filter_map(|o| self.entries.remove(&o).map(|e| e.version))
            .collect()
    }

    /// Number of cached objects.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsession_core::id::ObjectId;

    fn ver(o: u64, v: u32) -> VersionId {
        VersionId {
            object: ObjectId(o),
            version: v,
        }
    }

    #[test]
    fn open_add_complete_cycle() {
        let mut c = ObjectCache::new(SimDuration::from_hours(24));
        c.open(ver(1, 1), 3, SimTime(0));
        assert!(!c.add_piece(ver(1, 1), 0, SimTime(1)));
        assert!(!c.add_piece(ver(1, 1), 1, SimTime(2)));
        assert!(
            c.add_piece(ver(1, 1), 2, SimTime(3)),
            "third piece completes"
        );
        let e = c.get(ObjectId(1)).unwrap();
        assert!(e.is_complete());
        assert_eq!(e.completed_at, Some(SimTime(3)));
    }

    #[test]
    fn version_bump_discards_stale_partial() {
        let mut c = ObjectCache::new(SimDuration::from_hours(24));
        c.open(ver(1, 1), 3, SimTime(0));
        c.add_piece(ver(1, 1), 0, SimTime(1));
        // A new version arrives: the old pieces must not carry over.
        let e = c.open(ver(1, 2), 4, SimTime(2));
        assert_eq!(e.pieces.have_count(), 0);
        assert_eq!(e.pieces.len(), 4);
        // Pieces for the stale version are rejected.
        assert!(!c.add_piece(ver(1, 1), 1, SimTime(3)));
    }

    #[test]
    fn resume_keeps_partial_progress() {
        let mut c = ObjectCache::new(SimDuration::from_hours(24));
        c.open(ver(1, 1), 3, SimTime(0));
        c.add_piece(ver(1, 1), 0, SimTime(1));
        // Re-opening the same version (resume after pause) keeps pieces.
        let e = c.open(ver(1, 1), 3, SimTime(10));
        assert_eq!(e.pieces.have_count(), 1);
    }

    #[test]
    fn shareable_lists_only_complete_unexpired() {
        let mut c = ObjectCache::new(SimDuration::from_hours(10));
        c.complete(ver(1, 1), 2, SimTime::ZERO);
        c.open(ver(2, 1), 2, SimTime::ZERO); // partial
        let now = SimTime::ZERO + SimDuration::from_hours(5);
        assert_eq!(c.shareable(now), vec![ver(1, 1)]);
        let later = SimTime::ZERO + SimDuration::from_hours(11);
        assert!(c.shareable(later).is_empty(), "TTL expired");
    }

    #[test]
    fn touch_refreshes_ttl() {
        let mut c = ObjectCache::new(SimDuration::from_hours(10));
        c.complete(ver(1, 1), 2, SimTime::ZERO);
        c.touch(ObjectId(1), SimTime::ZERO + SimDuration::from_hours(8));
        let now = SimTime::ZERO + SimDuration::from_hours(15);
        assert_eq!(c.shareable(now), vec![ver(1, 1)], "touch extended life");
    }

    #[test]
    fn eviction_returns_versions_to_unregister() {
        let mut c = ObjectCache::new(SimDuration::from_hours(1));
        c.complete(ver(1, 1), 2, SimTime::ZERO);
        c.complete(ver(2, 1), 2, SimTime::ZERO);
        let evicted = c.evict_expired(SimTime::ZERO + SimDuration::from_hours(2));
        assert_eq!(evicted.len(), 2);
        assert!(c.is_empty());
    }

    #[test]
    fn remove_is_explicit_eviction() {
        let mut c = ObjectCache::new(SimDuration::from_hours(1));
        c.complete(ver(1, 1), 2, SimTime::ZERO);
        assert!(c.remove(ObjectId(1)).is_some());
        assert!(c.remove(ObjectId(1)).is_none());
    }
}
