//! Video-streaming delivery mode.
//!
//! "NetSession also supports video streaming, but it currently does not
//! serve much video traffic because of the requirement to install client
//! software" (§3.4). Streaming changes the piece-selection discipline:
//! instead of rarest-first, the client needs pieces *in playback order*,
//! with a small look-ahead window it may fill opportunistically from
//! peers; whatever the window cannot supply in time must come from the
//! edge, or playback stalls.
//!
//! [`StreamBuffer`] is the client-side model: a playhead, a look-ahead
//! window, startup buffering, and rebuffering accounting — the QoS metrics
//! a streaming evaluation would report.

use netsession_core::piece::{PieceIndex, PieceMap};
use netsession_core::time::{SimDuration, SimTime};

/// Playback state of a streaming session.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlaybackState {
    /// Filling the startup buffer; nothing rendered yet.
    Startup,
    /// Rendering.
    Playing,
    /// Stalled mid-stream, waiting for the next piece.
    Rebuffering,
    /// Finished.
    Done,
}

/// Client-side streaming buffer over a piece map.
#[derive(Clone, Debug)]
pub struct StreamBuffer {
    have: PieceMap,
    playhead: PieceIndex,
    /// Pieces of look-ahead the picker may fetch out of order.
    pub window: u32,
    /// Pieces that must be buffered before playback starts.
    pub startup_pieces: u32,
    /// Seconds of media per piece.
    pub piece_duration: SimDuration,
    state: PlaybackState,
    /// Media time already rendered within the playhead piece.
    rendered_in_piece: SimDuration,
    startup_delay: Option<SimDuration>,
    started_at: Option<SimTime>,
    first_request_at: Option<SimTime>,
    rebuffer_events: u32,
    rebuffer_time: SimDuration,
    stall_since: Option<SimTime>,
}

impl StreamBuffer {
    /// A fresh session over `pieces` pieces.
    pub fn new(pieces: u32, window: u32, startup_pieces: u32, piece_duration: SimDuration) -> Self {
        StreamBuffer {
            have: PieceMap::empty(pieces),
            playhead: 0,
            window: window.max(1),
            startup_pieces: startup_pieces.max(1),
            piece_duration,
            state: PlaybackState::Startup,
            rendered_in_piece: SimDuration::ZERO,
            startup_delay: None,
            started_at: None,
            first_request_at: None,
            rebuffer_events: 0,
            rebuffer_time: SimDuration::ZERO,
            stall_since: None,
        }
    }

    /// Current playback state.
    pub fn state(&self) -> PlaybackState {
        self.state
    }

    /// The current playhead piece.
    pub fn playhead(&self) -> PieceIndex {
        self.playhead
    }

    /// The piece the client should request next: the first missing piece
    /// within the look-ahead window (in order — streaming has no use for
    /// rarest-first).
    pub fn next_wanted(&self) -> Option<PieceIndex> {
        let end = (self.playhead + self.window).min(self.have.len());
        (self.playhead..end).find(|p| !self.have.has(*p))
    }

    /// The session issues its first request at `now` (starts the startup
    /// clock).
    pub fn mark_started(&mut self, now: SimTime) {
        if self.first_request_at.is_none() {
            self.first_request_at = Some(now);
        }
    }

    /// A verified piece arrived at `now`.
    pub fn on_piece(&mut self, piece: PieceIndex, now: SimTime) {
        self.have.set(piece);
        match self.state {
            PlaybackState::Startup => {
                // Start once the first `startup_pieces` are contiguous.
                let buffered = (self.playhead
                    ..(self.playhead + self.startup_pieces).min(self.have.len()))
                    .all(|p| self.have.has(p));
                if buffered {
                    self.state = PlaybackState::Playing;
                    self.started_at = Some(now);
                    self.startup_delay = Some(now.since(self.first_request_at.unwrap_or(now)));
                }
            }
            PlaybackState::Rebuffering if self.have.has(self.playhead) => {
                self.state = PlaybackState::Playing;
                if let Some(since) = self.stall_since.take() {
                    self.rebuffer_time += now.since(since);
                }
            }
            _ => {}
        }
    }

    /// Advance playback by `dt` of wall time ending at `now`. Returns the
    /// new state.
    pub fn advance(&mut self, dt: SimDuration, now: SimTime) -> PlaybackState {
        if self.state != PlaybackState::Playing {
            return self.state;
        }
        let mut remaining = dt;
        loop {
            if self.playhead >= self.have.len() {
                self.state = PlaybackState::Done;
                break;
            }
            // A gap at the playhead stalls playback immediately — even at
            // an exact piece boundary (the renderer has nothing to show).
            if !self.have.has(self.playhead) {
                self.state = PlaybackState::Rebuffering;
                self.rebuffer_events += 1;
                self.stall_since = Some(now);
                break;
            }
            if remaining == SimDuration::ZERO {
                break;
            }
            let left_in_piece = SimDuration(self.piece_duration.0 - self.rendered_in_piece.0);
            if remaining.0 >= left_in_piece.0 {
                remaining = SimDuration(remaining.0 - left_in_piece.0);
                self.playhead += 1;
                self.rendered_in_piece = SimDuration::ZERO;
            } else {
                self.rendered_in_piece += remaining;
                remaining = SimDuration::ZERO;
            }
        }
        self.state
    }

    /// Startup delay, once playback began.
    pub fn startup_delay(&self) -> Option<SimDuration> {
        self.startup_delay
    }

    /// Number of mid-stream stalls.
    pub fn rebuffer_events(&self) -> u32 {
        self.rebuffer_events
    }

    /// Total stalled time.
    pub fn rebuffer_time(&self) -> SimDuration {
        self.rebuffer_time
    }

    /// Fraction of the object buffered.
    pub fn buffered_fraction(&self) -> f64 {
        self.have.fraction()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    fn buffer() -> StreamBuffer {
        // 10 pieces of 4s video, 3-piece window, 2-piece startup buffer.
        StreamBuffer::new(10, 3, 2, secs(4))
    }

    #[test]
    fn startup_requires_contiguous_buffer() {
        let mut b = buffer();
        b.mark_started(SimTime(0));
        assert_eq!(b.state(), PlaybackState::Startup);
        b.on_piece(1, SimTime(1_000_000));
        assert_eq!(b.state(), PlaybackState::Startup, "piece 0 still missing");
        b.on_piece(0, SimTime(2_000_000));
        assert_eq!(b.state(), PlaybackState::Playing);
        assert_eq!(b.startup_delay(), Some(SimDuration(2_000_000)));
    }

    #[test]
    fn next_wanted_is_in_order_within_window() {
        let mut b = buffer();
        assert_eq!(b.next_wanted(), Some(0));
        b.on_piece(0, SimTime(0));
        assert_eq!(b.next_wanted(), Some(1));
        b.on_piece(2, SimTime(0)); // out-of-order arrival from a peer
        assert_eq!(b.next_wanted(), Some(1));
        b.on_piece(1, SimTime(0));
        // Window is playhead..playhead+3 = 0..3, all held → nothing wanted
        // until the playhead advances.
        assert_eq!(b.next_wanted(), None);
    }

    #[test]
    fn playback_advances_and_rebuffers_at_gap() {
        let mut b = buffer();
        b.mark_started(SimTime(0));
        b.on_piece(0, SimTime(0));
        b.on_piece(1, SimTime(0));
        assert_eq!(b.state(), PlaybackState::Playing);
        // Play 8 s: consumes pieces 0 and 1, hits missing piece 2.
        let state = b.advance(secs(8), SimTime(8_000_000));
        assert_eq!(state, PlaybackState::Rebuffering);
        assert_eq!(b.rebuffer_events(), 1);
        assert_eq!(b.playhead(), 2);
        // Piece 2 arrives 3 s later: playback resumes, stall accounted.
        b.on_piece(2, SimTime(11_000_000));
        assert_eq!(b.state(), PlaybackState::Playing);
        assert_eq!(b.rebuffer_time(), secs(3));
    }

    #[test]
    fn smooth_delivery_never_rebuffers() {
        let mut b = buffer();
        b.mark_started(SimTime(0));
        for p in 0..10 {
            b.on_piece(p, SimTime(p as u64 * 100_000));
        }
        let state = b.advance(secs(40), SimTime(40_000_000));
        assert_eq!(state, PlaybackState::Done);
        assert_eq!(b.rebuffer_events(), 0);
        assert_eq!(b.buffered_fraction(), 1.0);
    }

    #[test]
    fn partial_advance_within_a_piece() {
        let mut b = buffer();
        b.mark_started(SimTime(0));
        b.on_piece(0, SimTime(0));
        b.on_piece(1, SimTime(0));
        assert_eq!(
            b.advance(secs(2), SimTime(2_000_000)),
            PlaybackState::Playing
        );
        assert_eq!(b.playhead(), 0, "still inside piece 0");
        assert_eq!(
            b.advance(secs(2), SimTime(4_000_000)),
            PlaybackState::Playing
        );
        assert_eq!(b.playhead(), 1);
    }

    #[test]
    fn window_limits_lookahead() {
        let b = StreamBuffer::new(100, 5, 2, secs(4));
        assert_eq!(b.next_wanted(), Some(0));
        // Nothing outside 0..5 is ever requested at playhead 0.
        let mut b2 = b.clone();
        for p in 0..5 {
            b2.on_piece(p, SimTime(0));
        }
        assert_eq!(b2.next_wanted(), None);
    }
}
