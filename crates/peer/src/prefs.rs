//! User preferences.
//!
//! "NetSession Interface users have the option to turn off peer content
//! uploads permanently or temporarily in the NetSession application
//! preferences, without adverse effects on their download performance"
//! (§3.4). The change history feeds the Table-3 analysis; the status
//! surface mirrors the control-panel / command-line tools of §3.9.

use netsession_core::time::SimTime;

/// Client preferences plus their change history.
#[derive(Clone, Debug)]
pub struct Preferences {
    uploads_enabled: bool,
    /// The initial setting the binary shipped with (Table 4).
    initial_uploads_enabled: bool,
    /// (when, new value) for every user change.
    changes: Vec<(SimTime, bool)>,
}

impl Preferences {
    /// Fresh install with the provider-chosen default (§5.1: "the
    /// NetSession binary is available in two versions").
    pub fn with_default(uploads_enabled: bool) -> Self {
        Preferences {
            uploads_enabled,
            initial_uploads_enabled: uploads_enabled,
            changes: Vec::new(),
        }
    }

    /// Whether content uploads are currently enabled.
    pub fn uploads_enabled(&self) -> bool {
        self.uploads_enabled
    }

    /// The setting at install time.
    pub fn initial_uploads_enabled(&self) -> bool {
        self.initial_uploads_enabled
    }

    /// The user flips the setting. No-op flips (setting the current value)
    /// are not recorded as changes.
    pub fn set_uploads(&mut self, now: SimTime, enabled: bool) {
        if enabled != self.uploads_enabled {
            self.uploads_enabled = enabled;
            self.changes.push((now, enabled));
        }
    }

    /// Number of recorded changes (Table 3's columns).
    pub fn change_count(&self) -> usize {
        self.changes.len()
    }

    /// The change history.
    pub fn changes(&self) -> &[(SimTime, bool)] {
        &self.changes
    }

    /// The control-panel status line (§3.9: tools "enable users to
    /// determine what the software is doing").
    pub fn status_line(&self, cached_objects: usize, active_downloads: usize) -> String {
        format!(
            "uploads: {} | cached objects: {} | active downloads: {}",
            if self.uploads_enabled { "on" } else { "off" },
            cached_objects,
            active_downloads
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_recorded() {
        let p = Preferences::with_default(true);
        assert!(p.uploads_enabled());
        assert!(p.initial_uploads_enabled());
        assert_eq!(p.change_count(), 0);
    }

    #[test]
    fn changes_are_recorded_noop_flips_ignored() {
        let mut p = Preferences::with_default(false);
        p.set_uploads(SimTime(5), false); // no-op
        assert_eq!(p.change_count(), 0);
        p.set_uploads(SimTime(10), true);
        p.set_uploads(SimTime(20), false);
        assert_eq!(p.change_count(), 2);
        assert!(!p.uploads_enabled());
        assert!(!p.initial_uploads_enabled());
        assert_eq!(p.changes()[0], (SimTime(10), true));
    }

    #[test]
    fn status_line_mentions_key_facts() {
        let p = Preferences::with_default(true);
        let s = p.status_line(3, 1);
        assert!(s.contains("uploads: on"));
        assert!(s.contains("cached objects: 3"));
        assert!(s.contains("active downloads: 1"));
    }
}
