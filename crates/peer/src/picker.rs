//! Piece selection.
//!
//! NetSession downloads from the edge and from peers *in parallel* (§3.3).
//! The picker keeps the two source kinds from duplicating work:
//!
//! * peer connections use **rarest-first** among the pieces the remote peer
//!   has and we lack (keeping swarm piece diversity high, as in
//!   BitTorrent),
//! * the always-on edge connection uses an **in-order cursor** (the edge
//!   has everything, so it should fill whatever the swarm doesn't),
//! * a piece is requested from at most one source at a time; failed or
//!   cancelled requests return to the pool.

use netsession_core::piece::{PieceIndex, PieceMap};
use netsession_core::rng::DetRng;
use std::collections::HashSet;

/// Piece picker for one in-progress download.
#[derive(Clone, Debug)]
pub struct PiecePicker {
    /// How many connected remote peers have each piece.
    availability: Vec<u32>,
    /// Pieces currently requested from some source.
    in_flight: HashSet<PieceIndex>,
    /// The edge cursor: next index the in-order scan starts from.
    edge_cursor: PieceIndex,
}

impl PiecePicker {
    /// Picker over `pieces` pieces.
    pub fn new(pieces: u32) -> Self {
        PiecePicker {
            availability: vec![0; pieces as usize],
            in_flight: HashSet::new(),
            edge_cursor: 0,
        }
    }

    /// A remote peer joined with this have-map.
    pub fn peer_joined(&mut self, map: &PieceMap) {
        for p in map.held() {
            self.availability[p as usize] += 1;
        }
    }

    /// A remote peer left.
    pub fn peer_left(&mut self, map: &PieceMap) {
        for p in map.held() {
            let a = &mut self.availability[p as usize];
            *a = a.saturating_sub(1);
        }
    }

    /// A connected peer announced a new piece.
    pub fn have_announced(&mut self, piece: PieceIndex) {
        self.availability[piece as usize] += 1;
    }

    /// Choose the next piece to request from a peer holding `theirs`,
    /// given we hold `mine`: rarest-first, random tie-break, skipping
    /// in-flight pieces. Marks the piece in flight.
    pub fn next_for_peer(
        &mut self,
        mine: &PieceMap,
        theirs: &PieceMap,
        rng: &mut DetRng,
    ) -> Option<PieceIndex> {
        let mut best: Option<(u32, PieceIndex)> = None;
        let mut ties = 0u32;
        for p in theirs.held() {
            if mine.has(p) || self.in_flight.contains(&p) {
                continue;
            }
            let avail = self.availability[p as usize];
            match best {
                None => {
                    best = Some((avail, p));
                    ties = 1;
                }
                Some((b, _)) if avail < b => {
                    best = Some((avail, p));
                    ties = 1;
                }
                Some((b, _)) if avail == b => {
                    // Reservoir-sample among ties for an unbiased pick.
                    ties += 1;
                    if rng.below(ties as u64) == 0 {
                        best = Some((avail, p));
                    }
                }
                _ => {}
            }
        }
        let (_, piece) = best?;
        self.in_flight.insert(piece);
        Some(piece)
    }

    /// Choose the next piece to request from the edge: in-order from the
    /// cursor, skipping held and in-flight pieces. Marks it in flight.
    pub fn next_for_edge(&mut self, mine: &PieceMap) -> Option<PieceIndex> {
        let n = mine.len();
        if n == 0 {
            return None;
        }
        for k in 0..n {
            let p = (self.edge_cursor + k) % n;
            if !mine.has(p) && !self.in_flight.contains(&p) {
                self.in_flight.insert(p);
                self.edge_cursor = (p + 1) % n;
                return Some(p);
            }
        }
        None
    }

    /// A request completed (successfully or not): the piece leaves the
    /// in-flight set. On failure it becomes requestable again.
    pub fn request_finished(&mut self, piece: PieceIndex) {
        self.in_flight.remove(&piece);
    }

    /// Number of requests in flight.
    pub fn in_flight_count(&self) -> usize {
        self.in_flight.len()
    }

    /// Availability of a piece among connected peers.
    pub fn availability(&self, piece: PieceIndex) -> u32 {
        self.availability[piece as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map_with(pieces: u32, held: &[u32]) -> PieceMap {
        let mut m = PieceMap::empty(pieces);
        for p in held {
            m.set(*p);
        }
        m
    }

    #[test]
    fn rarest_first_prefers_low_availability() {
        let mut picker = PiecePicker::new(4);
        // Piece 3 is on one peer; pieces 0-2 on three peers.
        picker.peer_joined(&map_with(4, &[0, 1, 2, 3]));
        picker.peer_joined(&map_with(4, &[0, 1, 2]));
        picker.peer_joined(&map_with(4, &[0, 1, 2]));
        let mine = PieceMap::empty(4);
        let theirs = map_with(4, &[0, 1, 2, 3]);
        let mut rng = DetRng::seeded(1);
        let pick = picker.next_for_peer(&mine, &theirs, &mut rng);
        assert_eq!(pick, Some(3), "rarest piece must be chosen");
    }

    #[test]
    fn never_picks_held_or_inflight() {
        let mut picker = PiecePicker::new(3);
        picker.peer_joined(&map_with(3, &[0, 1, 2]));
        let mine = map_with(3, &[0]);
        let theirs = map_with(3, &[0, 1, 2]);
        let mut rng = DetRng::seeded(2);
        let first = picker.next_for_peer(&mine, &theirs, &mut rng).unwrap();
        let second = picker.next_for_peer(&mine, &theirs, &mut rng).unwrap();
        assert_ne!(first, second);
        assert!(first != 0 && second != 0);
        assert_eq!(picker.next_for_peer(&mine, &theirs, &mut rng), None);
    }

    #[test]
    fn finished_requests_become_requestable_again() {
        let mut picker = PiecePicker::new(2);
        picker.peer_joined(&map_with(2, &[0, 1]));
        let mine = PieceMap::empty(2);
        let theirs = map_with(2, &[0]);
        let mut rng = DetRng::seeded(3);
        let p = picker.next_for_peer(&mine, &theirs, &mut rng).unwrap();
        assert_eq!(picker.next_for_peer(&mine, &theirs, &mut rng), None);
        picker.request_finished(p);
        assert_eq!(picker.next_for_peer(&mine, &theirs, &mut rng), Some(p));
    }

    #[test]
    fn edge_cursor_walks_in_order_and_skips() {
        let mut picker = PiecePicker::new(4);
        let mine = map_with(4, &[1]);
        assert_eq!(picker.next_for_edge(&mine), Some(0));
        assert_eq!(picker.next_for_edge(&mine), Some(2), "skips held piece 1");
        assert_eq!(picker.next_for_edge(&mine), Some(3));
        assert_eq!(picker.next_for_edge(&mine), None, "all held or in flight");
        picker.request_finished(2);
        assert_eq!(picker.next_for_edge(&mine), Some(2));
    }

    #[test]
    fn availability_tracks_joins_leaves_announcements() {
        let mut picker = PiecePicker::new(2);
        let m = map_with(2, &[0]);
        picker.peer_joined(&m);
        picker.peer_joined(&m);
        assert_eq!(picker.availability(0), 2);
        picker.have_announced(1);
        assert_eq!(picker.availability(1), 1);
        picker.peer_left(&m);
        assert_eq!(picker.availability(0), 1);
        // Underflow-safe.
        picker.peer_left(&m);
        picker.peer_left(&m);
        assert_eq!(picker.availability(0), 0);
    }

    #[test]
    fn tie_break_is_not_always_the_same_piece() {
        let mut seen = HashSet::new();
        for seed in 0..20 {
            let mut picker = PiecePicker::new(8);
            picker.peer_joined(&map_with(8, &[0, 1, 2, 3, 4, 5, 6, 7]));
            let mine = PieceMap::empty(8);
            let theirs = map_with(8, &[0, 1, 2, 3, 4, 5, 6, 7]);
            let mut rng = DetRng::seeded(seed);
            seen.insert(picker.next_for_peer(&mine, &theirs, &mut rng).unwrap());
        }
        assert!(seen.len() > 2, "tie-break must randomize (saw {seen:?})");
    }
}
