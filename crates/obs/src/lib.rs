//! # netsession-obs
//!
//! Observability substrate for the NetSession reproduction: the paper is a
//! *measurement study* (4.15 billion log entries behind its tables and
//! figures), so every layer of this codebase — the discrete-event kernel,
//! the flow network, the control plane, the edge tier, the peers, and the
//! live socket runtime — reports into the instruments defined here.
//!
//! The crate is dependency-free and fully offline-friendly. It offers:
//!
//! - [`MetricsRegistry`]: a named registry of atomic [`Counter`]s,
//!   [`Gauge`]s, and log-bucketed [`Histogram`]s with p50/p90/p99
//!   quantile queries;
//! - a bounded structured-event ring ([`Event`], via
//!   [`MetricsRegistry::record_event`]);
//! - a deterministic JSON snapshot exporter
//!   ([`MetricsRegistry::snapshot_json`]);
//! - a causal trace layer ([`TraceSink`]: [`TraceId`]/[`SpanId`] spans
//!   with parent links and typed attributes, deterministic 1-in-N trace
//!   sampling, and a Chrome-trace/Perfetto JSON exporter) for
//!   per-download lifecycle stories;
//! - a minimal JSON reader ([`json::parse`]) so tools can load those
//!   artifacts back without external crates;
//! - a Prometheus-style text exposition ([`render_prometheus`]) with a
//!   matching scrape-side parser ([`parse_prometheus`]), both operating
//!   on plain-value [`RegistrySnapshot`]s;
//! - a deterministic [`AlertEngine`]: declarative threshold /
//!   rate-of-change / absence rules evaluated against a stream of
//!   snapshots, usable over virtual sim time and live wall time alike.
//!
//! ## Passive by construction
//!
//! Instrument handles are cheap `Arc`s around atomics. Components hold
//! *detached* handles by default — recording into a detached instrument
//! is a few atomic ops and observes nothing — and the same component can
//! be attached to a registry when a caller wants telemetry. Nothing in
//! the instrumented code paths branches on whether metrics are attached,
//! so a same-seed simulation produces byte-identical experiment output
//! with metrics on or off.
//!
//! ## Determinism and the volatile section
//!
//! Wall-clock measurements (e.g. per-event handling time) can never be
//! identical across runs. Such instruments must be registered through the
//! `volatile_*` constructors: they are excluded from
//! [`MetricsRegistry::snapshot_json`] (which two same-seed runs must
//! reproduce byte-for-byte) and appear only in
//! [`MetricsRegistry::full_snapshot_json`].
//!
//! ## Example
//!
//! ```
//! use netsession_obs::MetricsRegistry;
//!
//! let reg = MetricsRegistry::new();
//! let served = reg.counter("edge.bytes_served");
//! let depth = reg.gauge("sim.queue_depth");
//! let sizes = reg.histogram("peer.download_bytes");
//!
//! served.add(4096);
//! depth.set(3);
//! for size in [1_000u64, 2_000, 4_000, 1 << 20] {
//!     sizes.record(size);
//! }
//!
//! assert_eq!(served.get(), 4096);
//! assert_eq!(sizes.count(), 4);
//! assert!(sizes.p50() <= sizes.p99());
//!
//! reg.record_event(7, "edge", "grant", "guid=42");
//! let json = reg.snapshot_json();
//! assert!(json.contains("\"edge.bytes_served\": 4096"));
//! assert!(json.contains("\"kind\": \"grant\""));
//! // Deterministic: snapshotting again yields the same bytes.
//! assert_eq!(json, reg.snapshot_json());
//! ```
//!
//! Detached use (what library code does by default):
//!
//! ```
//! use netsession_obs::Counter;
//!
//! let c = Counter::detached();
//! c.incr(); // harmless: counts into an Arc nobody snapshots
//! assert_eq!(c.get(), 1);
//! ```

mod alert;
mod events;
pub mod expo;
mod instruments;
pub mod json;
pub mod profile;
mod registry;
pub mod timeseries;
mod trace;

pub use alert::{AlertEngine, AlertEvent, AlertRule, RuleKind};
pub use events::{Event, EventRing, DEFAULT_EVENT_CAPACITY};
pub use expo::{parse_prometheus, render_prometheus};
pub use instruments::{Counter, Gauge, Histogram};
pub use profile::{
    ExecProfile, ImbalanceStats, ProfileSink, ShardExec, ShardProfiler, ShardTimings, WindowRecord,
    WindowTiming,
};
pub use registry::{HistogramSnapshot, MetricsRegistry, RegistrySnapshot, EVENTS_DROPPED_COUNTER};
pub use timeseries::{
    merge_shards, MergedMetric, MergedSeries, SeriesKind, SeriesSpec, ShardSeries,
};
pub use trace::{AttrValue, Span, SpanId, TraceCtx, TraceId, TraceSink};
