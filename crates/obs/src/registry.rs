//! The named-instrument registry and JSON snapshot exporter.

use crate::events::{Event, EventRing};
use crate::instruments::{Counter, Gauge, Histogram};
use crate::json::{push_key, push_str_literal};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Name under which the event ring's eviction count surfaces in
/// snapshots and scrapes. The ring drops its oldest entries silently
/// when full; this synthetic counter makes the loss observable (and
/// alertable) instead of invisible.
pub const EVENTS_DROPPED_COUNTER: &str = "obs.events.dropped";

/// Point-in-time values of one histogram.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of recorded samples.
    pub sum: u64,
    /// Smallest recorded sample (0 when empty).
    pub min: u64,
    /// Largest recorded sample (0 when empty).
    pub max: u64,
    /// Median estimate.
    pub p50: u64,
    /// 90th-percentile estimate.
    pub p90: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
}

impl HistogramSnapshot {
    fn of(h: &Histogram) -> HistogramSnapshot {
        let (p50, p90, p99) = h.quantiles3(0.50, 0.90, 0.99);
        HistogramSnapshot {
            count: h.count(),
            sum: h.sum(),
            min: h.min(),
            max: h.max(),
            p50,
            p90,
            p99,
        }
    }
}

/// A point-in-time copy of the registry's deterministic instruments:
/// plain values, detached from the live atomics. This is the unit the
/// text exposition renders, scrapers ship across the network, and the
/// [`crate::AlertEngine`] evaluates rules against.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RegistrySnapshot {
    /// Counter values by name (includes [`EVENTS_DROPPED_COUNTER`]).
    pub counters: BTreeMap<String, u64>,
    /// Gauge levels by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl RegistrySnapshot {
    /// Counter value, 0 when the counter does not exist.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge level, 0 when the gauge does not exist.
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Merge `other` into this snapshot the way a fleet aggregator
    /// wants it: counters and gauges add, histogram counts and sums
    /// add, min/max widen, and quantiles keep the pessimistic (larger)
    /// estimate.
    pub fn merge(&mut self, other: &RegistrySnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            *self.gauges.entry(k.clone()).or_insert(0) += v;
        }
        for (k, h) in &other.histograms {
            let e = self.histograms.entry(k.clone()).or_default();
            let min = if e.count == 0 {
                h.min
            } else if h.count == 0 {
                e.min
            } else {
                e.min.min(h.min)
            };
            e.count += h.count;
            e.sum += h.sum;
            e.min = min;
            e.max = e.max.max(h.max);
            e.p50 = e.p50.max(h.p50);
            e.p90 = e.p90.max(h.p90);
            e.p99 = e.p99.max(h.p99);
        }
    }
}

#[derive(Default)]
struct Inner {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
    // Wall-clock-dependent instruments: excluded from the deterministic
    // snapshot, present only in `full_snapshot_json`.
    volatile_counters: Mutex<BTreeMap<String, Counter>>,
    volatile_histograms: Mutex<BTreeMap<String, Histogram>>,
    events: EventRing,
}

/// A registry of named instruments plus a structured-event ring.
///
/// Cloning is cheap and shares the underlying store, so one registry can
/// be threaded through every layer of a simulation or live deployment.
/// Requesting an instrument name twice returns handles to the same
/// underlying atomic.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("counters", &self.inner.counters.lock().unwrap().len())
            .field("gauges", &self.inner.gauges.lock().unwrap().len())
            .field("histograms", &self.inner.histograms.lock().unwrap().len())
            .field("events", &self.inner.events.len())
            .finish()
    }
}

impl MetricsRegistry {
    /// Fresh, empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// A registry whose event ring holds at most `capacity` events
    /// (0 disables event recording entirely — see
    /// [`MetricsRegistry::record_event_with`]).
    pub fn with_event_capacity(capacity: usize) -> MetricsRegistry {
        MetricsRegistry {
            inner: Arc::new(Inner {
                events: EventRing::with_capacity(capacity),
                ..Inner::default()
            }),
        }
    }

    /// Get or create the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        self.inner
            .counters
            .lock()
            .unwrap()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.inner
            .gauges
            .lock()
            .unwrap()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Get or create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.inner
            .histograms
            .lock()
            .unwrap()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Get or create a counter whose value depends on wall-clock timing
    /// (kept out of the deterministic snapshot).
    pub fn volatile_counter(&self, name: &str) -> Counter {
        self.inner
            .volatile_counters
            .lock()
            .unwrap()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Get or create a histogram of wall-clock measurements (kept out of
    /// the deterministic snapshot).
    pub fn volatile_histogram(&self, name: &str) -> Histogram {
        self.inner
            .volatile_histograms
            .lock()
            .unwrap()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// The shared event ring.
    pub fn events(&self) -> EventRing {
        self.inner.events.clone()
    }

    /// Record one structured event.
    ///
    /// Prefer [`MetricsRegistry::record_event_with`] on hot paths where
    /// the detail string is formatted: this variant forces the caller to
    /// build `detail` even when the ring is disabled.
    pub fn record_event(&self, t: u64, component: &str, kind: &str, detail: impl Into<String>) {
        if !self.inner.events.accepts() {
            return;
        }
        self.inner.events.push(Event {
            t,
            component: component.to_string(),
            kind: kind.to_string(),
            detail: detail.into(),
        });
    }

    /// Record one structured event with a lazily built detail string:
    /// `detail` runs only when the event ring actually keeps events, so
    /// recording against a disabled ring costs a plain field read and no
    /// allocation.
    pub fn record_event_with(
        &self,
        t: u64,
        component: &str,
        kind: &str,
        detail: impl FnOnce() -> String,
    ) {
        if !self.inner.events.accepts() {
            return;
        }
        self.inner.events.push(Event {
            t,
            component: component.to_string(),
            kind: kind.to_string(),
            detail: detail(),
        });
    }

    /// A point-in-time copy of the deterministic instruments (counters,
    /// gauges, histogram summaries) as plain values. The event-ring
    /// eviction count is included as the [`EVENTS_DROPPED_COUNTER`]
    /// counter. Volatile (wall-clock) instruments are excluded, so the
    /// scrape of a same-seed deterministic run is itself deterministic.
    pub fn scrape(&self) -> RegistrySnapshot {
        let mut counters: BTreeMap<String, u64> = self
            .inner
            .counters
            .lock()
            .unwrap()
            .iter()
            .map(|(k, c)| (k.clone(), c.get()))
            .collect();
        *counters
            .entry(EVENTS_DROPPED_COUNTER.to_string())
            .or_insert(0) += self.inner.events.dropped();
        RegistrySnapshot {
            counters,
            gauges: self
                .inner
                .gauges
                .lock()
                .unwrap()
                .iter()
                .map(|(k, g)| (k.clone(), g.get()))
                .collect(),
            histograms: self
                .inner
                .histograms
                .lock()
                .unwrap()
                .iter()
                .map(|(k, h)| (k.clone(), HistogramSnapshot::of(h)))
                .collect(),
        }
    }

    /// Refresh `snap` in place from the current instrument values:
    /// behaviourally identical to `*snap = self.scrape()`, but reusing the
    /// snapshot's allocations. Intended for periodic scrape loops (the
    /// simulated alert engine takes ~43k scrapes per month-long run);
    /// in steady state no allocation happens at all.
    ///
    /// The buffer must be dedicated to this registry (instrument names are
    /// only ever added to a registry, so a buffer refreshed against the
    /// same registry always holds a subset of its names; a buffer from a
    /// *different* registry may keep stale entries).
    pub fn scrape_into(&self, snap: &mut RegistrySnapshot) {
        self.scrape_scalars_into(snap);
        {
            let histograms = self.inner.histograms.lock().unwrap();
            if snap.histograms.len() != histograms.len() {
                snap.histograms.clear();
            }
            for (k, h) in histograms.iter() {
                match snap.histograms.get_mut(k) {
                    Some(v) => *v = HistogramSnapshot::of(h),
                    None => {
                        snap.histograms.insert(k.clone(), HistogramSnapshot::of(h));
                    }
                }
            }
        }
    }

    /// Refresh only `snap.counters` and `snap.gauges` from the current
    /// instrument values; `snap.histograms` is left untouched. Counter and
    /// gauge values match what [`RegistryHandle::scrape`] would report.
    ///
    /// This is the scrape the simulated alert loop takes tens of thousands
    /// of times per run: every [`crate::AlertEngine`] rule kind reads only
    /// counters and gauges (pinned by a test in `alert.rs`), so summarizing
    /// every histogram on each observation is pure overhead. In steady
    /// state (no instruments registered since the last refresh) both maps
    /// are updated by a single allocation-free in-order walk.
    pub fn scrape_scalars_into(&self, snap: &mut RegistrySnapshot) {
        {
            let counters = self.inner.counters.lock().unwrap();
            let expected =
                counters.len() + usize::from(!counters.contains_key(EVENTS_DROPPED_COUNTER));
            if snap.counters.len() != expected {
                snap.counters.clear();
            }
            // Fast path: the snapshot already holds exactly the registry's
            // names plus the synthetic drop counter. Both BTreeMaps iterate
            // in sorted order, so a lockstep walk (skipping the synthetic
            // key, which the registry may not have) replaces a per-key map
            // lookup with one comparison per instrument.
            let mut aligned = snap.counters.len() == expected;
            if aligned {
                let mut live = counters.iter();
                let mut cur = live.next();
                for (k, v) in snap.counters.iter_mut() {
                    match cur {
                        Some((lk, c)) if lk == k => {
                            *v = c.get();
                            cur = live.next();
                        }
                        _ if k == EVENTS_DROPPED_COUNTER => {}
                        _ => {
                            aligned = false;
                            break;
                        }
                    }
                }
                aligned &= cur.is_none();
            }
            if !aligned {
                for (k, c) in counters.iter() {
                    match snap.counters.get_mut(k) {
                        Some(v) => *v = c.get(),
                        None => {
                            snap.counters.insert(k.clone(), c.get());
                        }
                    }
                }
            }
            let dropped = self.inner.events.dropped();
            match snap.counters.get_mut(EVENTS_DROPPED_COUNTER) {
                // A real counter named like the synthetic one: scrape()
                // adds the drop count on top of its value (already copied
                // above).
                Some(v) if counters.contains_key(EVENTS_DROPPED_COUNTER) => *v += dropped,
                Some(v) => *v = dropped,
                None => {
                    snap.counters
                        .insert(EVENTS_DROPPED_COUNTER.to_string(), dropped);
                }
            }
        }
        {
            let gauges = self.inner.gauges.lock().unwrap();
            if snap.gauges.len() != gauges.len() {
                snap.gauges.clear();
            }
            let mut aligned = snap.gauges.len() == gauges.len();
            if aligned {
                for ((k, v), (lk, g)) in snap.gauges.iter_mut().zip(gauges.iter()) {
                    if k != lk {
                        aligned = false;
                        break;
                    }
                    *v = g.get();
                }
            }
            if !aligned {
                for (k, g) in gauges.iter() {
                    match snap.gauges.get_mut(k) {
                        Some(v) => *v = g.get(),
                        None => {
                            snap.gauges.insert(k.clone(), g.get());
                        }
                    }
                }
            }
        }
    }

    /// Deterministic JSON snapshot: counters, gauges, histograms (with
    /// quantile estimates), and the buffered events. Two same-seed runs
    /// of a deterministic program produce byte-identical output here.
    pub fn snapshot_json(&self) -> String {
        self.render(false)
    }

    /// Full JSON snapshot including the volatile (wall-clock) section.
    pub fn full_snapshot_json(&self) -> String {
        self.render(true)
    }

    fn render(&self, include_volatile: bool) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n");

        push_key(&mut out, 2, "counters");
        {
            // The event ring's eviction count rides along as a synthetic
            // counter so snapshots always reveal when events were lost.
            let counters = self.inner.counters.lock().unwrap();
            let mut values: BTreeMap<&str, u64> = counters
                .iter()
                .map(|(k, c)| (k.as_str(), c.get()))
                .collect();
            *values.entry(EVENTS_DROPPED_COUNTER).or_insert(0) += self.inner.events.dropped();
            render_map(&mut out, 2, values.iter(), |out, v| {
                out.push_str(&v.to_string())
            });
        }
        out.push_str(",\n");

        push_key(&mut out, 2, "gauges");
        {
            let gauges = self.inner.gauges.lock().unwrap();
            render_map(&mut out, 2, gauges.iter(), |out, g| {
                out.push_str(&g.get().to_string())
            });
        }
        out.push_str(",\n");

        push_key(&mut out, 2, "histograms");
        render_histograms(&mut out, 2, &self.inner.histograms.lock().unwrap());
        out.push_str(",\n");

        push_key(&mut out, 2, "events");
        self.render_events(&mut out);

        if include_volatile {
            out.push_str(",\n");
            push_key(&mut out, 2, "volatile");
            out.push_str("{\n");
            push_key(&mut out, 4, "counters");
            render_counters(&mut out, 4, &self.inner.volatile_counters.lock().unwrap());
            out.push_str(",\n");
            push_key(&mut out, 4, "histograms");
            render_histograms(&mut out, 4, &self.inner.volatile_histograms.lock().unwrap());
            out.push_str("\n  }");
        }
        out.push_str("\n}\n");
        out
    }

    fn render_events(&self, out: &mut String) {
        let events = self.inner.events.events();
        if events.is_empty() {
            out.push_str("[]");
            return;
        }
        out.push_str("[\n");
        for (i, e) in events.iter().enumerate() {
            out.push_str("    { \"t\": ");
            out.push_str(&e.t.to_string());
            out.push_str(", \"component\": ");
            push_str_literal(out, &e.component);
            out.push_str(", \"kind\": ");
            push_str_literal(out, &e.kind);
            out.push_str(", \"detail\": ");
            push_str_literal(out, &e.detail);
            out.push_str(" }");
            if i + 1 < events.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]");
    }
}

fn render_counters(out: &mut String, indent: usize, counters: &BTreeMap<String, Counter>) {
    render_map(out, indent, counters.iter(), |out, c| {
        out.push_str(&c.get().to_string())
    });
}

fn render_histograms(out: &mut String, indent: usize, histograms: &BTreeMap<String, Histogram>) {
    render_map(out, indent, histograms.iter(), |out, h| {
        out.push_str(&format!(
            "{{ \"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {} }}",
            h.count(),
            h.sum(),
            h.min(),
            h.max(),
            h.p50(),
            h.p90(),
            h.p99()
        ))
    });
}

fn render_map<'a, K: AsRef<str>, V: 'a>(
    out: &mut String,
    indent: usize,
    entries: impl ExactSizeIterator<Item = (K, &'a V)>,
    mut value: impl FnMut(&mut String, &V),
) {
    if entries.len() == 0 {
        out.push_str("{}");
        return;
    }
    out.push_str("{\n");
    let len = entries.len();
    for (i, (k, v)) in entries.enumerate() {
        push_key(out, indent + 2, k.as_ref());
        value(out, v);
        if i + 1 < len {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str(&" ".repeat(indent));
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_shares_instrument() {
        let reg = MetricsRegistry::new();
        reg.counter("x").add(3);
        reg.counter("x").add(4);
        assert_eq!(reg.counter("x").get(), 7);
    }

    #[test]
    fn snapshot_is_deterministic_and_ordered() {
        let build = || {
            let reg = MetricsRegistry::new();
            reg.counter("b.second").add(2);
            reg.counter("a.first").add(1);
            reg.gauge("depth").set(-4);
            reg.histogram("h").record(100);
            reg.record_event(1, "comp", "kind", "detail with \"quotes\"");
            reg
        };
        let a = build().snapshot_json();
        let b = build().snapshot_json();
        assert_eq!(a, b);
        // BTreeMap ordering: a.first renders before b.second.
        assert!(a.find("a.first").unwrap() < a.find("b.second").unwrap());
    }

    #[test]
    fn volatile_section_only_in_full_snapshot() {
        let reg = MetricsRegistry::new();
        reg.counter("det").incr();
        reg.volatile_histogram("timing_ns").record(12345);
        let det = reg.snapshot_json();
        assert!(!det.contains("timing_ns"));
        assert!(!det.contains("volatile"));
        let full = reg.full_snapshot_json();
        assert!(full.contains("timing_ns"));
        assert!(full.contains("\"volatile\""));
    }

    #[test]
    fn empty_registry_renders_valid_shape() {
        let json = MetricsRegistry::new().snapshot_json();
        // Even an empty registry reports the (zero) event-drop count.
        assert!(json.contains("\"obs.events.dropped\": 0"));
        assert!(json.contains("\"events\": []"));
    }

    #[test]
    fn event_ring_drops_surface_in_snapshots() {
        let reg = MetricsRegistry::with_event_capacity(2);
        for t in 0..5 {
            reg.record_event(t, "comp", "tick", "");
        }
        // 5 pushed into a 2-slot ring: 3 evicted.
        assert!(reg.snapshot_json().contains("\"obs.events.dropped\": 3"));
        assert!(reg
            .full_snapshot_json()
            .contains("\"obs.events.dropped\": 3"));
        assert_eq!(reg.scrape().counter(EVENTS_DROPPED_COUNTER), 3);
    }

    #[test]
    fn scrape_copies_instrument_values() {
        let reg = MetricsRegistry::new();
        reg.counter("c").add(7);
        reg.gauge("g").set(-4);
        let h = reg.histogram("h");
        h.record(10);
        h.record(30);
        reg.volatile_counter("wall").incr();
        let snap = reg.scrape();
        assert_eq!(snap.counter("c"), 7);
        assert_eq!(snap.gauge("g"), -4);
        assert_eq!(snap.counter("missing"), 0);
        assert_eq!(snap.gauge("missing"), 0);
        let hs = snap.histograms.get("h").unwrap();
        assert_eq!(hs.count, 2);
        assert_eq!(hs.sum, 40);
        assert_eq!(hs.min, 10);
        assert_eq!(hs.max, 30);
        assert!(hs.p50 <= hs.p99);
        // Volatile instruments stay out of the deterministic scrape.
        assert_eq!(snap.counter("wall"), 0);
    }

    #[test]
    fn scrape_into_matches_scrape() {
        let reg = MetricsRegistry::with_event_capacity(2);
        reg.counter("c").add(7);
        reg.gauge("g").set(-4);
        reg.histogram("h").record(10);
        let mut buf = RegistrySnapshot::default();
        reg.scrape_into(&mut buf);
        assert_eq!(buf, reg.scrape());
        // Mutate values, add brand-new instruments, and overflow the event
        // ring; the in-place refresh must track all of it.
        reg.counter("c").add(1);
        reg.counter("c2").incr();
        reg.gauge("g").set(9);
        reg.histogram("h").record(90);
        reg.histogram("h2").record(5);
        for t in 0..5 {
            reg.record_event(t, "x", "y", "");
        }
        reg.scrape_into(&mut buf);
        assert_eq!(buf, reg.scrape());
        // Steady state: another refresh with nothing new stays equal.
        reg.counter("c").add(2);
        reg.scrape_into(&mut buf);
        assert_eq!(buf, reg.scrape());
    }

    #[test]
    fn scrape_scalars_into_matches_scrape_except_histograms() {
        let reg = MetricsRegistry::with_event_capacity(2);
        reg.counter("c").add(7);
        reg.gauge("g").set(-4);
        reg.histogram("h").record(10);
        let mut buf = RegistrySnapshot::default();
        reg.scrape_scalars_into(&mut buf);
        let mut want = reg.scrape();
        want.histograms.clear();
        assert_eq!(buf, want);
        // New instruments force the realignment path; values still match.
        reg.counter("a_first").incr(); // sorts before "c"
        reg.counter("z_last").add(3);
        reg.gauge("g2").set(11);
        reg.histogram("h").record(99); // must NOT appear in the buffer
        for t in 0..5 {
            reg.record_event(t, "x", "y", "");
        }
        reg.scrape_scalars_into(&mut buf);
        let mut want = reg.scrape();
        want.histograms.clear();
        assert_eq!(buf, want);
        // Steady state takes the aligned in-order walk.
        reg.counter("c").add(2);
        reg.gauge("g").set(1);
        reg.scrape_scalars_into(&mut buf);
        let mut want = reg.scrape();
        want.histograms.clear();
        assert_eq!(buf, want);
        assert!(buf.histograms.is_empty());
    }

    #[test]
    fn snapshot_merge_aggregates() {
        let a = MetricsRegistry::new();
        a.counter("c").add(2);
        a.gauge("g").set(1);
        a.histogram("h").record(4);
        let b = MetricsRegistry::new();
        b.counter("c").add(3);
        b.gauge("g").set(5);
        b.histogram("h").record(100);
        let mut fleet = a.scrape();
        fleet.merge(&b.scrape());
        assert_eq!(fleet.counter("c"), 5);
        assert_eq!(fleet.gauge("g"), 6);
        let h = fleet.histograms.get("h").unwrap();
        assert_eq!((h.count, h.sum, h.min, h.max), (2, 104, 4, 100));
    }
}
