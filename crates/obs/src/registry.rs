//! The named-instrument registry and JSON snapshot exporter.

use crate::events::{Event, EventRing};
use crate::instruments::{Counter, Gauge, Histogram};
use crate::json::{push_key, push_str_literal};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

#[derive(Default)]
struct Inner {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
    // Wall-clock-dependent instruments: excluded from the deterministic
    // snapshot, present only in `full_snapshot_json`.
    volatile_counters: Mutex<BTreeMap<String, Counter>>,
    volatile_histograms: Mutex<BTreeMap<String, Histogram>>,
    events: EventRing,
}

/// A registry of named instruments plus a structured-event ring.
///
/// Cloning is cheap and shares the underlying store, so one registry can
/// be threaded through every layer of a simulation or live deployment.
/// Requesting an instrument name twice returns handles to the same
/// underlying atomic.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("counters", &self.inner.counters.lock().unwrap().len())
            .field("gauges", &self.inner.gauges.lock().unwrap().len())
            .field("histograms", &self.inner.histograms.lock().unwrap().len())
            .field("events", &self.inner.events.len())
            .finish()
    }
}

impl MetricsRegistry {
    /// Fresh, empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// A registry whose event ring holds at most `capacity` events
    /// (0 disables event recording entirely — see
    /// [`MetricsRegistry::record_event_with`]).
    pub fn with_event_capacity(capacity: usize) -> MetricsRegistry {
        MetricsRegistry {
            inner: Arc::new(Inner {
                events: EventRing::with_capacity(capacity),
                ..Inner::default()
            }),
        }
    }

    /// Get or create the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        self.inner
            .counters
            .lock()
            .unwrap()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.inner
            .gauges
            .lock()
            .unwrap()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Get or create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.inner
            .histograms
            .lock()
            .unwrap()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Get or create a counter whose value depends on wall-clock timing
    /// (kept out of the deterministic snapshot).
    pub fn volatile_counter(&self, name: &str) -> Counter {
        self.inner
            .volatile_counters
            .lock()
            .unwrap()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Get or create a histogram of wall-clock measurements (kept out of
    /// the deterministic snapshot).
    pub fn volatile_histogram(&self, name: &str) -> Histogram {
        self.inner
            .volatile_histograms
            .lock()
            .unwrap()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// The shared event ring.
    pub fn events(&self) -> EventRing {
        self.inner.events.clone()
    }

    /// Record one structured event.
    ///
    /// Prefer [`MetricsRegistry::record_event_with`] on hot paths where
    /// the detail string is formatted: this variant forces the caller to
    /// build `detail` even when the ring is disabled.
    pub fn record_event(&self, t: u64, component: &str, kind: &str, detail: impl Into<String>) {
        if !self.inner.events.accepts() {
            return;
        }
        self.inner.events.push(Event {
            t,
            component: component.to_string(),
            kind: kind.to_string(),
            detail: detail.into(),
        });
    }

    /// Record one structured event with a lazily built detail string:
    /// `detail` runs only when the event ring actually keeps events, so
    /// recording against a disabled ring costs a plain field read and no
    /// allocation.
    pub fn record_event_with(
        &self,
        t: u64,
        component: &str,
        kind: &str,
        detail: impl FnOnce() -> String,
    ) {
        if !self.inner.events.accepts() {
            return;
        }
        self.inner.events.push(Event {
            t,
            component: component.to_string(),
            kind: kind.to_string(),
            detail: detail(),
        });
    }

    /// Deterministic JSON snapshot: counters, gauges, histograms (with
    /// quantile estimates), and the buffered events. Two same-seed runs
    /// of a deterministic program produce byte-identical output here.
    pub fn snapshot_json(&self) -> String {
        self.render(false)
    }

    /// Full JSON snapshot including the volatile (wall-clock) section.
    pub fn full_snapshot_json(&self) -> String {
        self.render(true)
    }

    fn render(&self, include_volatile: bool) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n");

        push_key(&mut out, 2, "counters");
        render_counters(&mut out, 2, &self.inner.counters.lock().unwrap());
        out.push_str(",\n");

        push_key(&mut out, 2, "gauges");
        {
            let gauges = self.inner.gauges.lock().unwrap();
            render_map(&mut out, 2, gauges.iter(), |out, g| {
                out.push_str(&g.get().to_string())
            });
        }
        out.push_str(",\n");

        push_key(&mut out, 2, "histograms");
        render_histograms(&mut out, 2, &self.inner.histograms.lock().unwrap());
        out.push_str(",\n");

        push_key(&mut out, 2, "events");
        self.render_events(&mut out);

        if include_volatile {
            out.push_str(",\n");
            push_key(&mut out, 2, "volatile");
            out.push_str("{\n");
            push_key(&mut out, 4, "counters");
            render_counters(&mut out, 4, &self.inner.volatile_counters.lock().unwrap());
            out.push_str(",\n");
            push_key(&mut out, 4, "histograms");
            render_histograms(&mut out, 4, &self.inner.volatile_histograms.lock().unwrap());
            out.push_str("\n  }");
        }
        out.push_str("\n}\n");
        out
    }

    fn render_events(&self, out: &mut String) {
        let events = self.inner.events.events();
        if events.is_empty() {
            out.push_str("[]");
            return;
        }
        out.push_str("[\n");
        for (i, e) in events.iter().enumerate() {
            out.push_str("    { \"t\": ");
            out.push_str(&e.t.to_string());
            out.push_str(", \"component\": ");
            push_str_literal(out, &e.component);
            out.push_str(", \"kind\": ");
            push_str_literal(out, &e.kind);
            out.push_str(", \"detail\": ");
            push_str_literal(out, &e.detail);
            out.push_str(" }");
            if i + 1 < events.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]");
    }
}

fn render_counters(out: &mut String, indent: usize, counters: &BTreeMap<String, Counter>) {
    render_map(out, indent, counters.iter(), |out, c| {
        out.push_str(&c.get().to_string())
    });
}

fn render_histograms(out: &mut String, indent: usize, histograms: &BTreeMap<String, Histogram>) {
    render_map(out, indent, histograms.iter(), |out, h| {
        out.push_str(&format!(
            "{{ \"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {} }}",
            h.count(),
            h.sum(),
            h.min(),
            h.max(),
            h.p50(),
            h.p90(),
            h.p99()
        ))
    });
}

fn render_map<'a, V: 'a>(
    out: &mut String,
    indent: usize,
    entries: impl ExactSizeIterator<Item = (&'a String, &'a V)>,
    mut value: impl FnMut(&mut String, &V),
) {
    if entries.len() == 0 {
        out.push_str("{}");
        return;
    }
    out.push_str("{\n");
    let len = entries.len();
    for (i, (k, v)) in entries.enumerate() {
        push_key(out, indent + 2, k);
        value(out, v);
        if i + 1 < len {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str(&" ".repeat(indent));
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_shares_instrument() {
        let reg = MetricsRegistry::new();
        reg.counter("x").add(3);
        reg.counter("x").add(4);
        assert_eq!(reg.counter("x").get(), 7);
    }

    #[test]
    fn snapshot_is_deterministic_and_ordered() {
        let build = || {
            let reg = MetricsRegistry::new();
            reg.counter("b.second").add(2);
            reg.counter("a.first").add(1);
            reg.gauge("depth").set(-4);
            reg.histogram("h").record(100);
            reg.record_event(1, "comp", "kind", "detail with \"quotes\"");
            reg
        };
        let a = build().snapshot_json();
        let b = build().snapshot_json();
        assert_eq!(a, b);
        // BTreeMap ordering: a.first renders before b.second.
        assert!(a.find("a.first").unwrap() < a.find("b.second").unwrap());
    }

    #[test]
    fn volatile_section_only_in_full_snapshot() {
        let reg = MetricsRegistry::new();
        reg.counter("det").incr();
        reg.volatile_histogram("timing_ns").record(12345);
        let det = reg.snapshot_json();
        assert!(!det.contains("timing_ns"));
        assert!(!det.contains("volatile"));
        let full = reg.full_snapshot_json();
        assert!(full.contains("timing_ns"));
        assert!(full.contains("\"volatile\""));
    }

    #[test]
    fn empty_registry_renders_valid_shape() {
        let json = MetricsRegistry::new().snapshot_json();
        assert!(json.contains("\"counters\": {}"));
        assert!(json.contains("\"events\": []"));
    }
}
