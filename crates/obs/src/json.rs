//! Tiny hand-rolled JSON writer (no external serialization crates).

/// Append a JSON string literal (with escaping) to `out`.
pub(crate) fn push_str_literal(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Writes `"key": ` with indentation.
pub(crate) fn push_key(out: &mut String, indent: usize, key: &str) {
    out.push_str(&" ".repeat(indent));
    push_str_literal(out, key);
    out.push_str(": ");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        let mut out = String::new();
        push_str_literal(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }
}
