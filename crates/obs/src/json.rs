//! Tiny hand-rolled JSON writer and reader (no external serialization
//! crates). The writer backs the metrics snapshots and the trace
//! exporter; the reader exists so tools like `trace-explain` can load
//! those artifacts back without external dependencies.

use std::fmt;

/// Append a JSON string literal (with escaping) to `out`.
pub fn push_str_literal(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Writes `"key": ` with indentation.
pub(crate) fn push_key(out: &mut String, indent: usize, key: &str) {
    out.push_str(&" ".repeat(indent));
    push_str_literal(out, key);
    out.push_str(": ");
}

/// A parsed JSON value. Numbers are kept as `f64` — every quantity this
/// repo writes (micros, byte counts, span counts) fits in the 53-bit
/// mantissa; 64-bit IDs are serialized as hex *strings* precisely so
/// they survive this round trip.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object; insertion order preserved.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member lookup on objects (first match).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// This value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as an f64, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// This value as a non-negative integer, if it is a whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// This value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// A parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> JsonError {
        JsonError { at: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, msg: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{', "expected '{'")?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after object key")?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: \uD800-\uDBFF must be
                            // followed by a low surrogate.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u', "expected low surrogate")?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(c).ok_or_else(|| self.err("bad code point"))?
                                } else {
                                    return Err(self.err("unpaired surrogate"));
                                }
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("bad code point"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        let mut out = String::new();
        push_str_literal(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn parse_round_trips_escapes() {
        let original = "quote \" backslash \\ newline \n tab \t bell \u{7} émoji 🦀";
        let mut doc = String::from("{\"k\": ");
        push_str_literal(&mut doc, original);
        doc.push('}');
        let parsed = parse(&doc).unwrap();
        assert_eq!(parsed.get("k").unwrap().as_str(), Some(original));
    }

    #[test]
    fn parse_basic_document() {
        let v = parse("{\"a\": [1, 2.5, -3], \"b\": {\"c\": true, \"d\": null}}").unwrap();
        let a = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(a[0].as_u64(), Some(1));
        assert_eq!(a[1].as_f64(), Some(2.5));
        assert_eq!(a[2].as_f64(), Some(-3.0));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&JsonValue::Null));
    }

    #[test]
    fn parse_surrogate_pair() {
        let v = parse("\"\\ud83e\\udd80\"").unwrap();
        assert_eq!(v.as_str(), Some("🦀"));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("nul").is_err());
    }
}
