//! The atomic instruments: counters, gauges, and log-bucketed histograms.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// Monotonically increasing event count.
///
/// Cloning shares the underlying atomic; recording is one relaxed
/// `fetch_add`, so counters are safe to touch on hot paths.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter not registered anywhere (recording is a no-op as far as
    /// any snapshot is concerned).
    pub fn detached() -> Counter {
        Counter::default()
    }

    /// Add one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous signed level (queue depth, open connections, …).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A gauge not registered anywhere.
    pub fn detached() -> Gauge {
        Gauge::default()
    }

    /// Overwrite the level.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Move the level up.
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Move the level down.
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: one for zero plus one per bit length.
const BUCKETS: usize = 65;

#[derive(Debug)]
pub(crate) struct HistogramInner {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

/// A histogram over `u64` samples with logarithmic (power-of-two)
/// buckets: bucket 0 holds zeros, bucket `b` holds values with bit
/// length `b`, i.e. `2^(b-1) ..= 2^b - 1`.
///
/// Quantiles are estimated by walking the cumulative bucket counts and
/// reporting the chosen bucket's upper bound clamped into the observed
/// `[min, max]` range — exact for single-bucket populations (including
/// the single-sample, all-zero, and all-`u64::MAX` edge cases) and at
/// worst one power of two off otherwise.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramInner>);

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram(Arc::new(HistogramInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }))
    }
}

impl Histogram {
    /// A histogram not registered anywhere.
    pub fn detached() -> Histogram {
        Histogram::default()
    }

    /// Index of the bucket `v` falls into.
    fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Upper bound (inclusive) of bucket `b`.
    fn bucket_upper(b: usize) -> u64 {
        if b == 0 {
            0
        } else if b >= 64 {
            u64::MAX
        } else {
            (1u64 << b) - 1
        }
    }

    /// Record one sample.
    pub fn record(&self, v: u64) {
        let inner = &self.0;
        inner.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(v, Ordering::Relaxed);
        inner.min.fetch_min(v, Ordering::Relaxed);
        inner.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count() == 0 {
            0
        } else {
            self.0.min.load(Ordering::Relaxed)
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.0.max.load(Ordering::Relaxed)
    }

    /// Estimate the `q`-quantile (`0.0 ..= 1.0`) of the recorded samples.
    /// Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the sample we want, 1-based; q=0 maps to the first.
        let rank = ((q * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for b in 0..BUCKETS {
            seen += self.0.buckets[b].load(Ordering::Relaxed);
            if seen >= rank {
                return Self::bucket_upper(b).clamp(self.min(), self.max());
            }
        }
        self.max()
    }

    /// Three quantile estimates from one cumulative bucket walk — exactly
    /// the values three separate [`Histogram::quantile`] calls would
    /// return, at a third of the atomic-load traffic. Scrape loops call
    /// this tens of thousands of times per simulated run.
    pub fn quantiles3(&self, q1: f64, q2: f64, q3: f64) -> (u64, u64, u64) {
        let total = self.count();
        if total == 0 {
            return (0, 0, 0);
        }
        let rank = |q: f64| ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let ranks = [rank(q1), rank(q2), rank(q3)];
        let (min, max) = (self.min(), self.max());
        let mut out = [self.max(); 3];
        let mut found = [false; 3];
        let mut seen = 0u64;
        'walk: for b in 0..BUCKETS {
            seen += self.0.buckets[b].load(Ordering::Relaxed);
            for i in 0..3 {
                if !found[i] && seen >= ranks[i] {
                    out[i] = Self::bucket_upper(b).clamp(min, max);
                    found[i] = true;
                }
            }
            if found == [true; 3] {
                break 'walk;
            }
        }
        (out[0], out[1], out[2])
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::detached();
        c.incr();
        c.add(9);
        assert_eq!(c.get(), 10);
        let g = Gauge::detached();
        g.set(5);
        g.add(2);
        g.sub(10);
        assert_eq!(g.get(), -3);
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        assert_eq!(Histogram::bucket_upper(64), u64::MAX);
    }

    #[test]
    fn quantiles3_matches_separate_calls() {
        let h = Histogram::detached();
        assert_eq!(h.quantiles3(0.5, 0.9, 0.99), (0, 0, 0));
        let mut x = 1u64;
        for _ in 0..500 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record(x >> 40);
        }
        assert_eq!(
            h.quantiles3(0.50, 0.90, 0.99),
            (h.quantile(0.50), h.quantile(0.90), h.quantile(0.99))
        );
        assert_eq!(
            h.quantiles3(0.0, 0.5, 1.0),
            (h.quantile(0.0), h.quantile(0.5), h.quantile(1.0))
        );
    }

    #[test]
    fn quantiles_of_uniform_range() {
        let h = Histogram::detached();
        for v in 1..=1000u64 {
            h.record(v);
        }
        // Log buckets are coarse: the estimate may be up to one
        // power of two above the true quantile.
        let p50 = h.p50();
        assert!((500..=1023).contains(&p50), "p50 = {p50}");
        let p99 = h.p99();
        assert!((990..=1000).contains(&p99), "p99 = {p99}");
        assert!(h.p50() <= h.p90() && h.p90() <= h.p99());
    }
}
