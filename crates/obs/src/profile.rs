//! Shard-layer execution profiler.
//!
//! The sharded runner (`netsession-sim::shard`) executes virtual time in
//! fixed windows with a barrier between them; until this module it reported
//! four lifetime counters per shard and nothing else. The profiler splits
//! what a window execution can tell us into two **strictly separated
//! channels**:
//!
//! * **Deterministic execution telemetry** — one [`WindowRecord`] per
//!   shard per barrier: events processed, queue depth at the barrier,
//!   cross-shard mail received this window and sent per destination shard.
//!   These are pure functions of the program and seed, so the stream is
//!   byte-identical across runs *and across thread schedules* — the
//!   sequential oracle and the parallel runner must produce the same
//!   bytes, and `scripts/check.sh` diffs them. Records flow through a
//!   [`ProfileSink`] the moment the barrier closes, so paper-scale runs
//!   keep O(shards²) state, not O(windows): the standard consumers are
//!   the [`ExecProfile`] accumulator (load-imbalance report) and a
//!   running SHA-256 digest (`netsession_logs::sink::ProfileDigest`,
//!   hashing [`encode_window`]'s canonical bytes like every other record
//!   stream).
//!
//! * **Volatile timing telemetry** — [`ShardTimings`]: per-window,
//!   per-shard busy wall time, barrier-wait time, and barrier merge time,
//!   measured with monotonic clocks by the runner. Wall clocks can never
//!   be identical across runs, so this channel **never touches
//!   deterministic output**: it is excluded from the deterministic report
//!   and JSON section by construction and surfaces only in the volatile
//!   sidecar section and the Perfetto timeline export
//!   ([`ShardTimings::export_chrome_json`]).
//!
//! The consumer-facing summary is [`ImbalanceStats`]: per-shard event /
//! mail shares, max-over-mean skew, and a **critical-path speedup
//! ceiling** — with per-window telemetry the best any parallel schedule
//! can do is `total_events / Σ_w max_k events(w, k)`, because the slowest
//! shard of each window is on every schedule's critical path. The same
//! fold also predicts the ceiling after splitting the busiest shard in
//! two, which is the number ROADMAP item 1 needs for the Europe rebalance.

use crate::json::{parse, push_str_literal, JsonValue};

/// One shard's deterministic execution record for one window.
///
/// Borrowed view: the profiler assembles it per shard at the barrier and
/// hands it to every sink; sinks that need to keep data copy what they
/// aggregate.
#[derive(Clone, Copy, Debug)]
pub struct WindowRecord<'a> {
    /// Barrier ordinal, 0-based, strictly increasing.
    pub window: u64,
    /// Start of the window on the global grid, in virtual µs.
    pub window_start_us: u64,
    /// Shard index.
    pub shard: u32,
    /// Events this shard handled inside the window (0 = idle).
    pub events: u64,
    /// Events left in the shard's queue when the barrier closed.
    pub queue_depth: u64,
    /// Cross-shard messages delivered into this shard at the window open.
    pub mail_recv: u64,
    /// Cross-shard messages sent this window, per destination shard
    /// (length = shard count).
    pub mail_sent: &'a [u64],
}

/// Canonical byte encoding of a [`WindowRecord`]: fixed-width
/// little-endian fields in declaration order, then the `mail_sent` row.
/// Two runs produce the same digest over these bytes iff they emitted
/// bit-identical records in the same order — the byte-identity obligation
/// the determinism gate checks.
pub fn encode_window(r: &WindowRecord<'_>, out: &mut Vec<u8>) {
    out.extend_from_slice(&r.window.to_le_bytes());
    out.extend_from_slice(&r.window_start_us.to_le_bytes());
    out.extend_from_slice(&r.shard.to_le_bytes());
    out.extend_from_slice(&r.events.to_le_bytes());
    out.extend_from_slice(&r.queue_depth.to_le_bytes());
    out.extend_from_slice(&r.mail_recv.to_le_bytes());
    out.extend_from_slice(&(r.mail_sent.len() as u32).to_le_bytes());
    for &m in r.mail_sent {
        out.extend_from_slice(&m.to_le_bytes());
    }
}

/// Receives deterministic execution records as each barrier closes, in
/// canonical order (window-major, shard index within a window).
pub trait ProfileSink: Send {
    /// One shard's record for one window.
    fn on_window(&mut self, r: &WindowRecord<'_>);

    /// Compact fingerprint of everything consumed so far (e.g. a running
    /// hash), `None` when the sink has no notion of one.
    fn fingerprint(&self) -> Option<String> {
        None
    }
}

/// Per-shard lifetime aggregates of the deterministic channel.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardExec {
    /// Events handled.
    pub events: u64,
    /// Windows in which the shard handled at least one event.
    pub windows_occupied: u64,
    /// Cross-shard messages sent.
    pub mail_sent: u64,
    /// Cross-shard messages received.
    pub mail_recv: u64,
    /// Largest barrier queue depth observed.
    pub max_queue_depth: u64,
}

/// O(shards²) accumulator over the deterministic channel: per-shard
/// totals, the shard→shard mail matrix, and the running critical-path
/// folds. Everything in here is integer state derived from deterministic
/// records, so two runs of the same program — sequential or parallel —
/// produce `==` profiles (asserted by the scaled-determinism tests).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExecProfile {
    per_shard: Vec<ShardExec>,
    /// Row-major `[src * n + dst]` cross-shard message counts.
    mail_matrix: Vec<u64>,
    windows: u64,
    total_events: u64,
    /// Σ over closed windows of the busiest shard's events.
    crit_events: u64,
    /// Σ over closed windows of `max(ceil(busiest/2), second-busiest)` —
    /// the critical path if the busiest shard of every window were split
    /// perfectly in two.
    crit_split_events: u64,
    // Fold state for the window currently streaming in.
    cur_window: u64,
    cur_open: bool,
    cur_max: u64,
    cur_second: u64,
}

impl ExecProfile {
    /// Fresh, empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure_shards(&mut self, n: usize) {
        if self.per_shard.len() < n {
            self.per_shard.resize(n, ShardExec::default());
            let mut m = vec![0u64; n * n];
            for (src, row) in self
                .mail_matrix
                .chunks(self.per_shard.len().max(1))
                .enumerate()
            {
                m[src * n..src * n + row.len()].copy_from_slice(row);
            }
            self.mail_matrix = m;
        }
    }

    fn fold_window(&mut self) {
        if self.cur_open {
            self.crit_events += self.cur_max;
            self.crit_split_events += self.cur_max.div_ceil(2).max(self.cur_second);
            self.cur_open = false;
        }
    }

    /// Finished summary. Folds the in-flight window into the critical
    /// path, so it can be taken at any barrier (the profile itself is
    /// left untouched).
    pub fn stats(&self) -> ImbalanceStats {
        let mut done = self.clone();
        done.fold_window();
        ImbalanceStats {
            shards: done.per_shard.len(),
            windows: done.windows,
            events: done.total_events,
            crit_events: done.crit_events,
            crit_split_events: done.crit_split_events,
            per_shard: done.per_shard,
            mail_matrix: done.mail_matrix,
        }
    }
}

impl ProfileSink for ExecProfile {
    fn on_window(&mut self, r: &WindowRecord<'_>) {
        let n = r.mail_sent.len();
        self.ensure_shards(n);
        if self.cur_open && r.window != self.cur_window {
            self.fold_window();
        }
        if !self.cur_open {
            self.cur_open = true;
            self.cur_window = r.window;
            self.cur_max = 0;
            self.cur_second = 0;
            self.windows += 1;
        }
        let k = r.shard as usize;
        let s = &mut self.per_shard[k];
        s.events += r.events;
        s.windows_occupied += u64::from(r.events > 0);
        s.mail_recv += r.mail_recv;
        s.max_queue_depth = s.max_queue_depth.max(r.queue_depth);
        let mut sent = 0;
        for (dst, &m) in r.mail_sent.iter().enumerate() {
            sent += m;
            self.mail_matrix[k * n + dst] += m;
        }
        s.mail_sent += sent;
        self.total_events += r.events;
        if r.events >= self.cur_max {
            self.cur_second = self.cur_max;
            self.cur_max = r.events;
        } else if r.events > self.cur_second {
            self.cur_second = r.events;
        }
    }
}

/// The load-imbalance summary: shares, skew, and critical-path speedup
/// ceilings, all derived from deterministic integers (the float ratios
/// and their formatting are therefore run-invariant too).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ImbalanceStats {
    /// Shard count.
    pub shards: usize,
    /// Barriers crossed.
    pub windows: u64,
    /// Total events across shards.
    pub events: u64,
    /// Critical path in events: Σ over windows of the busiest shard.
    pub crit_events: u64,
    /// Critical path after splitting the busiest shard of every window.
    pub crit_split_events: u64,
    /// Per-shard aggregates.
    pub per_shard: Vec<ShardExec>,
    /// Row-major `[src * shards + dst]` mail counts.
    pub mail_matrix: Vec<u64>,
}

impl ImbalanceStats {
    /// Upper bound on parallel speedup implied by per-window load
    /// imbalance alone: `events / crit_events`. No schedule on any
    /// number of cores can beat it, because every window must wait for
    /// its slowest shard.
    pub fn speedup_ceiling(&self) -> f64 {
        if self.crit_events == 0 {
            1.0
        } else {
            self.events as f64 / self.crit_events as f64
        }
    }

    /// The ceiling if the busiest shard of every window were split in
    /// two — the predicted gain from rebalancing (e.g. splitting the
    /// Europe shard).
    pub fn split_busiest_ceiling(&self) -> f64 {
        if self.crit_split_events == 0 {
            1.0
        } else {
            self.events as f64 / self.crit_split_events as f64
        }
    }

    /// Max-over-mean event skew across shards (1.0 = perfectly even).
    pub fn skew(&self) -> f64 {
        let max = self.per_shard.iter().map(|s| s.events).max().unwrap_or(0);
        if self.events == 0 || self.shards == 0 {
            return 0.0;
        }
        max as f64 / (self.events as f64 / self.shards as f64)
    }

    /// A shard's share of all events.
    pub fn event_share(&self, shard: usize) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.per_shard[shard].events as f64 / self.events as f64
        }
    }

    /// Index of the shard with the most events (lowest index wins ties —
    /// deterministic).
    pub fn busiest(&self) -> usize {
        self.per_shard
            .iter()
            .enumerate()
            .max_by_key(|(k, s)| (s.events, std::cmp::Reverse(*k)))
            .map_or(0, |(k, _)| k)
    }

    /// Index of the shard with the fewest events (lowest index wins ties).
    pub fn lightest(&self) -> usize {
        self.per_shard
            .iter()
            .enumerate()
            .min_by_key(|(k, s)| (s.events, *k))
            .map_or(0, |(k, _)| k)
    }

    /// Deterministic multi-line report. `labels[k]` names shard `k`
    /// (e.g. its region block), `peers[k]` its resident population; both
    /// must have one entry per shard. Safe to print on byte-diffed
    /// stdout: everything here derives from the deterministic channel.
    pub fn render_report(&self, labels: &[String], peers: &[u64]) -> String {
        use std::fmt::Write;
        assert_eq!(labels.len(), self.shards, "one label per shard");
        assert_eq!(peers.len(), self.shards, "one peer count per shard");
        let mut s = String::new();
        let _ = writeln!(
            s,
            "shard_profile: shards={} windows={} events={} skew={:.2} \
             ceiling={:.2}x split_busiest={:.2}x",
            self.shards,
            self.windows,
            self.events,
            self.skew(),
            self.speedup_ceiling(),
            self.split_busiest_ceiling(),
        );
        // One-line balance summary: the per-shard table below grows with
        // K (sub-region sharding goes well past 9), so name the extremes
        // up front.
        if self.shards > 1 {
            let (b, l) = (self.busiest(), self.lightest());
            let _ = writeln!(
                s,
                "  balance: busiest=shard {b} [{}] {:.1}% lightest=shard {l} [{}] {:.1}%",
                labels[b],
                self.event_share(b) * 100.0,
                labels[l],
                self.event_share(l) * 100.0,
            );
        }
        for (k, sh) in self.per_shard.iter().enumerate() {
            let occ = if self.windows == 0 {
                0.0
            } else {
                sh.windows_occupied as f64 / self.windows as f64 * 100.0
            };
            let _ = writeln!(
                s,
                "  shard {k} [{}]: peers={} events={} share={:.1}% occ={:.1}% \
                 mail_out={} mail_in={} depth_max={}",
                labels[k],
                peers[k],
                sh.events,
                self.event_share(k) * 100.0,
                occ,
                sh.mail_sent,
                sh.mail_recv,
                sh.max_queue_depth,
            );
        }
        let _ = writeln!(
            s,
            "  critical_path: {} of {} events ({:.1}% of sequential work is on the barrier floor)",
            self.crit_events,
            self.events,
            if self.events == 0 {
                0.0
            } else {
                self.crit_events as f64 / self.events as f64 * 100.0
            }
        );
        s
    }

    /// The deterministic half of `scale.profile.json`: a self-contained
    /// JSON object (no volatile timings by construction — this is the
    /// byte string the determinism gate diffs across runs and modes).
    /// `stream` is the deterministic record stream's fingerprint when a
    /// digest sink rode along.
    pub fn to_json(&self, labels: &[String], peers: &[u64], stream: Option<&str>) -> String {
        use std::fmt::Write;
        assert_eq!(labels.len(), self.shards, "one label per shard");
        assert_eq!(peers.len(), self.shards, "one peer count per shard");
        let mut j = String::from("{\n");
        let _ = writeln!(j, "    \"shards\": {},", self.shards);
        let _ = writeln!(j, "    \"windows\": {},", self.windows);
        let _ = writeln!(j, "    \"events\": {},", self.events);
        let _ = writeln!(j, "    \"critical_path_events\": {},", self.crit_events);
        let _ = writeln!(
            j,
            "    \"critical_path_split_events\": {},",
            self.crit_split_events
        );
        let _ = writeln!(j, "    \"speedup_ceiling\": {:.4},", self.speedup_ceiling());
        let _ = writeln!(
            j,
            "    \"split_busiest_ceiling\": {:.4},",
            self.split_busiest_ceiling()
        );
        let _ = writeln!(j, "    \"skew\": {:.4},", self.skew());
        if let Some(fp) = stream {
            j.push_str("    \"stream\": ");
            push_str_literal(&mut j, fp);
            j.push_str(",\n");
        }
        j.push_str("    \"per_shard\": [\n");
        for (k, sh) in self.per_shard.iter().enumerate() {
            j.push_str("      { \"shard\": ");
            let _ = write!(j, "{k}, \"regions\": ");
            push_str_literal(&mut j, &labels[k]);
            let _ = write!(
                j,
                ", \"peers\": {}, \"events\": {}, \"share_pct\": {:.2}, \
                 \"windows_occupied\": {}, \"mail_sent\": {}, \"mail_recv\": {}, \
                 \"max_queue_depth\": {} }}",
                peers[k],
                sh.events,
                self.event_share(k) * 100.0,
                sh.windows_occupied,
                sh.mail_sent,
                sh.mail_recv,
                sh.max_queue_depth
            );
            j.push_str(if k + 1 < self.shards { ",\n" } else { "\n" });
        }
        j.push_str("    ],\n");
        j.push_str("    \"mail_matrix\": [");
        for src in 0..self.shards {
            j.push('[');
            for dst in 0..self.shards {
                let _ = write!(j, "{}", self.mail_matrix[src * self.shards + dst]);
                if dst + 1 < self.shards {
                    j.push_str(", ");
                }
            }
            j.push(']');
            if src + 1 < self.shards {
                j.push_str(", ");
            }
        }
        j.push_str("]\n  }");
        j
    }

    /// Parse a JSON object produced by [`ImbalanceStats::to_json`] back
    /// into numbers (round-trip used by tests and the schema lint).
    pub fn parse_json(text: &str) -> Result<JsonValue, String> {
        let v = parse(text).map_err(|e| format!("{e}"))?;
        for key in [
            "shards",
            "windows",
            "events",
            "critical_path_events",
            "speedup_ceiling",
            "split_busiest_ceiling",
            "skew",
        ] {
            if v.get(key).and_then(|x| x.as_f64()).is_none() {
                return Err(format!("deterministic profile: missing number {key}"));
            }
        }
        match v.get("per_shard").and_then(|x| x.as_arr()) {
            Some(arr) if !arr.is_empty() => {}
            _ => return Err("deterministic profile: per_shard missing or empty".into()),
        }
        Ok(v)
    }
}

/// Volatile wall-clock timings for one window: when each shard started,
/// how long it computed, how long it sat at the barrier, and how long the
/// coordinator spent delivering and routing mail. All offsets are
/// nanoseconds from the run's start on the host's monotonic clock.
#[derive(Clone, Debug, Default)]
pub struct WindowTiming {
    /// Offset of the window's processing start.
    pub start_ns: u64,
    /// Per-shard busy start offsets (0 for idle shards).
    pub busy_start_ns: Vec<u64>,
    /// Per-shard busy wall time (0 for idle shards).
    pub busy_ns: Vec<u64>,
    /// Per-shard barrier wait (parallel mode: last-finisher minus own
    /// finish; always 0 in sequential mode).
    pub wait_ns: Vec<u64>,
    /// Coordinator time spent in mail delivery + routing at this barrier.
    pub merge_ns: u64,
}

/// The volatile timing channel: per-window [`WindowTiming`]s plus the
/// Perfetto exporter. Never feeds deterministic output.
#[derive(Clone, Debug, Default)]
pub struct ShardTimings {
    n_shards: usize,
    windows: Vec<WindowTiming>,
}

impl ShardTimings {
    /// Shard count (0 before the first window).
    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// All recorded windows, in order.
    pub fn windows(&self) -> &[WindowTiming] {
        &self.windows
    }

    /// Record one window's timings.
    pub fn push(&mut self, t: WindowTiming) {
        debug_assert_eq!(t.busy_ns.len(), t.wait_ns.len());
        self.n_shards = self.n_shards.max(t.busy_ns.len());
        self.windows.push(t);
    }

    /// Total busy wall time of shard `k`.
    pub fn busy_total_ns(&self, k: usize) -> u64 {
        self.windows
            .iter()
            .map(|w| w.busy_ns.get(k).copied().unwrap_or(0))
            .sum()
    }

    /// Total barrier wait of shard `k`.
    pub fn wait_total_ns(&self, k: usize) -> u64 {
        self.windows
            .iter()
            .map(|w| w.wait_ns.get(k).copied().unwrap_or(0))
            .sum()
    }

    /// Total coordinator merge time.
    pub fn merge_total_ns(&self) -> u64 {
        self.windows.iter().map(|w| w.merge_ns).sum()
    }

    /// Busy time summed over every shard and window.
    pub fn busy_sum_ns(&self) -> u64 {
        (0..self.n_shards).map(|k| self.busy_total_ns(k)).sum()
    }

    /// Wall-clock critical path: Σ over windows of the slowest shard's
    /// busy time. A parallel execution cannot finish the windows faster
    /// than this (plus barrier overhead).
    pub fn wall_critical_path_ns(&self) -> u64 {
        self.windows
            .iter()
            .map(|w| w.busy_ns.iter().copied().max().unwrap_or(0))
            .sum()
    }

    /// Measured-wall speedup ceiling: total busy work over its critical
    /// path. The volatile sibling of
    /// [`ImbalanceStats::speedup_ceiling`].
    pub fn wall_speedup_ceiling(&self) -> f64 {
        let crit = self.wall_critical_path_ns();
        if crit == 0 {
            1.0
        } else {
            self.busy_sum_ns() as f64 / crit as f64
        }
    }

    /// Export the timeline as Chrome trace-event JSON (loadable in
    /// Perfetto / `chrome://tracing`, same flavour as the PR 3 download
    /// traces): one process row per shard with `busy` then `wait` slices
    /// per window, plus a `barrier` row with the coordinator's `merge`
    /// slices. Perfetto colors slices by name, so the three phases are
    /// visually distinct. When the run has more than `max_buckets`
    /// windows, adjacent windows are coalesced (durations summed, slice
    /// named `busy xN`) to bound the export size.
    pub fn export_chrome_json(&self, max_buckets: usize) -> String {
        use std::fmt::Write;
        let group = if max_buckets == 0 {
            1
        } else {
            self.windows.len().div_ceil(max_buckets).max(1)
        };
        let mut out = String::from("{\"displayTimeUnit\":\"ms\"");
        out.push_str(",\"traceEvents\":[");
        let mut first = true;
        let meta = |out: &mut String, pid: usize, name: &str, first: &mut bool| {
            if !*first {
                out.push(',');
            }
            *first = false;
            let _ = write!(
                out,
                "\n{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\"args\":{{\"name\":"
            );
            push_str_literal(out, name);
            out.push_str("}}");
        };
        for k in 0..self.n_shards {
            meta(&mut out, k, &format!("shard {k}"), &mut first);
        }
        meta(&mut out, self.n_shards, "barrier", &mut first);
        let suffix = if group > 1 {
            format!(" x{group}")
        } else {
            String::new()
        };
        let emit = |out: &mut String, pid: usize, ts_ns: u64, dur_ns: u64, name: &str| {
            if dur_ns == 0 {
                return;
            }
            let _ = write!(
                out,
                ",\n{{\"ph\":\"X\",\"pid\":{pid},\"tid\":0,\"ts\":{},\"dur\":{},\"name\":",
                ts_ns / 1_000,
                (dur_ns / 1_000).max(1)
            );
            push_str_literal(out, name);
            out.push('}');
        };
        for bucket in self.windows.chunks(group) {
            let start = bucket[0].start_ns;
            for k in 0..self.n_shards {
                let busy_start = bucket
                    .iter()
                    .map(|w| w.busy_start_ns.get(k).copied().unwrap_or(0))
                    .find(|&s| s > 0)
                    .unwrap_or(start);
                let busy: u64 = bucket
                    .iter()
                    .map(|w| w.busy_ns.get(k).copied().unwrap_or(0))
                    .sum();
                let wait: u64 = bucket
                    .iter()
                    .map(|w| w.wait_ns.get(k).copied().unwrap_or(0))
                    .sum();
                emit(&mut out, k, busy_start, busy, &format!("busy{suffix}"));
                emit(
                    &mut out,
                    k,
                    busy_start + busy,
                    wait,
                    &format!("wait{suffix}"),
                );
            }
            let merge: u64 = bucket.iter().map(|w| w.merge_ns).sum();
            emit(
                &mut out,
                self.n_shards,
                start,
                merge,
                &format!("merge{suffix}"),
            );
        }
        out.push_str("\n]}\n");
        out
    }
}

/// The handle the sharded runner drives: owns the always-on
/// [`ExecProfile`] accumulator, the volatile [`ShardTimings`], and an
/// optional extra deterministic sink (typically the SHA-256 stream
/// digest). Attach with `ShardRunner::attach_profiler`, retrieve with
/// `ShardRunner::take_profiler`.
#[derive(Default)]
pub struct ShardProfiler {
    exec: ExecProfile,
    timings: ShardTimings,
    sink: Option<Box<dyn ProfileSink>>,
    n_shards: usize,
    window_index: u64,
}

impl ShardProfiler {
    /// Profiler with the built-in accumulator only.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an extra deterministic sink (e.g. a stream digest). The sink
    /// sees every record the accumulator sees, in the same order.
    pub fn with_sink(mut self, sink: Box<dyn ProfileSink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// The deterministic accumulator.
    pub fn exec(&self) -> &ExecProfile {
        &self.exec
    }

    /// The volatile timing channel.
    pub fn timings(&self) -> &ShardTimings {
        &self.timings
    }

    /// The extra sink's stream fingerprint, when one is attached and
    /// keeps one.
    pub fn stream_fingerprint(&self) -> Option<String> {
        self.sink.as_ref().and_then(|s| s.fingerprint())
    }

    // -- runner-facing hooks ---------------------------------------------

    /// Called by the runner before its first window. Repeated calls with
    /// the same shard count continue accumulation.
    pub fn begin_run(&mut self, n_shards: usize) {
        assert!(
            self.n_shards == 0 || self.n_shards == n_shards,
            "profiler reused across runs with different shard counts"
        );
        self.n_shards = n_shards;
    }

    /// Deterministic channel: one barrier's worth of per-shard data.
    /// `mail_sent` is the row-major `[src * n + dst]` matrix for this
    /// window. Emits records in shard-index order regardless of how the
    /// window was scheduled.
    pub fn record_window(
        &mut self,
        window_start_us: u64,
        events: &[u64],
        queue_depth: &[u64],
        mail_recv: &[u64],
        mail_sent: &[u64],
    ) {
        let n = self.n_shards;
        debug_assert_eq!(events.len(), n);
        debug_assert_eq!(mail_sent.len(), n * n);
        for k in 0..n {
            let rec = WindowRecord {
                window: self.window_index,
                window_start_us,
                shard: k as u32,
                events: events[k],
                queue_depth: queue_depth[k],
                mail_recv: mail_recv[k],
                mail_sent: &mail_sent[k * n..(k + 1) * n],
            };
            self.exec.on_window(&rec);
            if let Some(sink) = &mut self.sink {
                sink.on_window(&rec);
            }
        }
        self.window_index += 1;
    }

    /// Volatile channel: the same barrier's wall-clock measurements.
    /// Strictly separated from the deterministic channel — nothing
    /// recorded here can reach deterministic output.
    pub fn record_window_timing(&mut self, t: WindowTiming) {
        self.timings.push(t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(p: &mut ExecProfile, window: u64, events: [u64; 2], sent: [[u64; 2]; 2]) {
        for k in 0..2u32 {
            p.on_window(&WindowRecord {
                window,
                window_start_us: window * 1_000,
                shard: k,
                events: events[k as usize],
                queue_depth: 5 + k as u64,
                mail_recv: 1,
                mail_sent: &sent[k as usize],
            });
        }
    }

    #[test]
    fn critical_path_and_ceiling() {
        let mut p = ExecProfile::new();
        feed(&mut p, 0, [10, 2], [[0, 1], [0, 0]]);
        feed(&mut p, 1, [8, 8], [[0, 0], [2, 0]]);
        let s = p.stats();
        assert_eq!(s.windows, 2);
        assert_eq!(s.events, 28);
        // Window 0 critical shard does 10, window 1 does 8.
        assert_eq!(s.crit_events, 18);
        // Splitting the busiest: max(5, 2) + max(4, 8) = 13.
        assert_eq!(s.crit_split_events, 13);
        assert!((s.speedup_ceiling() - 28.0 / 18.0).abs() < 1e-12);
        assert!((s.split_busiest_ceiling() - 28.0 / 13.0).abs() < 1e-12);
        // Shares and mail totals.
        assert_eq!(s.per_shard[0].events, 18);
        assert_eq!(s.per_shard[0].mail_sent, 1);
        assert_eq!(s.per_shard[1].mail_sent, 2);
        assert_eq!(s.mail_matrix, vec![0, 1, 2, 0]);
        // Skew: max 18 over mean 14.
        assert!((s.skew() - 18.0 / 14.0).abs() < 1e-12);
    }

    #[test]
    fn stats_fold_is_idempotent_and_nondestructive() {
        let mut p = ExecProfile::new();
        feed(&mut p, 0, [4, 6], [[0, 0], [0, 0]]);
        let a = p.stats();
        let b = p.stats();
        assert_eq!(a, b);
        // The profile keeps accepting records after a stats() call.
        feed(&mut p, 1, [1, 1], [[0, 0], [0, 0]]);
        assert_eq!(p.stats().windows, 2);
    }

    #[test]
    fn encode_window_is_stable() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        let rec = WindowRecord {
            window: 3,
            window_start_us: 600,
            shard: 1,
            events: 42,
            queue_depth: 7,
            mail_recv: 2,
            mail_sent: &[0, 9],
        };
        encode_window(&rec, &mut a);
        encode_window(&rec, &mut b);
        assert_eq!(a, b);
        assert_eq!(a.len(), 8 + 8 + 4 + 8 + 8 + 8 + 4 + 16);
        let other = WindowRecord { events: 43, ..rec };
        let mut c = Vec::new();
        encode_window(&other, &mut c);
        assert_ne!(a, c);
    }

    #[test]
    fn report_and_json_round_trip() {
        let mut p = ExecProfile::new();
        feed(&mut p, 0, [10, 2], [[0, 1], [0, 0]]);
        feed(&mut p, 1, [8, 8], [[0, 0], [2, 0]]);
        let s = p.stats();
        let labels = vec!["left".to_string(), "right".to_string()];
        let peers = vec![700u64, 300];
        let report = s.render_report(&labels, &peers);
        assert!(report.contains("shard 0 [left]: peers=700 events=18"));
        assert!(report.contains("critical_path: 18 of 28"));
        let json = s.to_json(&labels, &peers, Some("deadbeefx4"));
        let v = ImbalanceStats::parse_json(&json).expect("round-trip");
        assert_eq!(v.get("events").and_then(|x| x.as_u64()), Some(28));
        assert_eq!(
            v.get("critical_path_events").and_then(|x| x.as_u64()),
            Some(18)
        );
        assert_eq!(v.get("stream").and_then(|x| x.as_str()), Some("deadbeefx4"));
        let per = v.get("per_shard").and_then(|x| x.as_arr()).unwrap();
        assert_eq!(per.len(), 2);
        assert_eq!(per[0].get("peers").and_then(|x| x.as_u64()), Some(700));
    }

    #[test]
    fn profiler_streams_to_extra_sink_in_canonical_order() {
        struct Collect(Vec<(u64, u32, u64)>);
        impl ProfileSink for Collect {
            fn on_window(&mut self, r: &WindowRecord<'_>) {
                self.0.push((r.window, r.shard, r.events));
            }
            fn fingerprint(&self) -> Option<String> {
                Some(format!("n={}", self.0.len()))
            }
        }
        let mut p = ShardProfiler::new().with_sink(Box::new(Collect(Vec::new())));
        p.begin_run(2);
        p.record_window(0, &[3, 1], &[0, 0], &[0, 0], &[0, 1, 0, 0]);
        p.record_window(600, &[2, 5], &[4, 4], &[0, 1], &[0, 0, 0, 0]);
        assert_eq!(p.stream_fingerprint().as_deref(), Some("n=4"));
        assert_eq!(p.exec().stats().events, 11);
        assert_eq!(p.exec().stats().crit_events, 3 + 5);
    }

    #[test]
    fn timings_stay_volatile_and_export_chrome_json() {
        let mut t = ShardTimings::default();
        t.push(WindowTiming {
            start_ns: 0,
            busy_start_ns: vec![1_000, 2_000],
            busy_ns: vec![10_000, 4_000],
            wait_ns: vec![0, 6_000],
            merge_ns: 1_500,
        });
        t.push(WindowTiming {
            start_ns: 20_000,
            busy_start_ns: vec![21_000, 21_500],
            busy_ns: vec![3_000, 9_000],
            wait_ns: vec![6_000, 0],
            merge_ns: 500,
        });
        assert_eq!(t.busy_total_ns(0), 13_000);
        assert_eq!(t.wait_total_ns(1), 6_000);
        assert_eq!(t.merge_total_ns(), 2_000);
        assert_eq!(t.wall_critical_path_ns(), 19_000);
        assert!((t.wall_speedup_ceiling() - 26_000.0 / 19_000.0).abs() < 1e-12);
        let json = t.export_chrome_json(512);
        assert!(json.contains("\"name\":\"shard 0\""));
        assert!(json.contains("\"name\":\"barrier\""));
        assert!(json.contains("\"busy\""));
        assert!(json.contains("\"wait\""));
        assert!(json.contains("\"merge\""));
        // Valid JSON per the in-tree parser.
        crate::json::parse(&json).expect("chrome export parses");
        // Bucketing caps the slice count and tags coalesced names.
        let mut big = ShardTimings::default();
        for w in 0..100 {
            big.push(WindowTiming {
                start_ns: w * 1_000,
                busy_start_ns: vec![w * 1_000],
                busy_ns: vec![500],
                wait_ns: vec![0],
                merge_ns: 10,
            });
        }
        let bucketed = big.export_chrome_json(10);
        assert!(bucketed.contains("busy x10"));
        assert!(bucketed.matches("\"ph\":\"X\"").count() <= 25);
    }
}
