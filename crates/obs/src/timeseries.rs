//! Deterministic sharded time-series telemetry.
//!
//! The paper's operational story (§3.6/§3.8 and the diurnal Fig. 2 family)
//! is *temporal*: load, fault impact, and recovery are curves over hours,
//! not end-of-run totals. This module is the substrate that turns the
//! sharded runner's event stream into fixed-interval windowed series —
//! counter deltas, sampled levels, and degradation flags keyed by
//! `(metric, group)` — with the same determinism bar as the rest of the
//! scaled path:
//!
//! - **per-shard accumulation** ([`ShardSeries`]): every value is recorded
//!   at its *content time* (the virtual time the underlying event is keyed
//!   to, carried across shard boundaries when needed), never at processing
//!   time, so a shard's series is a pure function of its peer block;
//! - **canonical merge** ([`merge_shards`]): parts are folded in shard
//!   index order with a commutative combine per metric kind (sum for
//!   counters/levels, bitwise OR for flags), so the merged result is
//!   byte-identical between the sequential oracle and the threaded run
//!   and — for metrics flagged `k_invariant` — invariant in the shard
//!   count;
//! - **virtual-time alert replay** ([`MergedSeries::replay`]): the merged
//!   series is fed window-by-window into the PR 5 [`AlertEngine`] as
//!   cumulative-counter / gauge snapshots, so the same declarative rules
//!   that watch the live fleet detect fault classes in a month-long
//!   simulation after the fact.
//!
//! Resident memory is O(windows · groups · metrics) per shard — a few
//! hundred KiB for a 744-hour month at nine regions — independent of the
//! event count.
//!
//! ## Window semantics
//!
//! The timeline is cut into fixed windows of `interval_us`; window `w`
//! covers `[w·I, (w+1)·I)` and is *sampled at its close* `(w+1)·I`.
//!
//! - A **counter** delta at time `t` lands in the window containing `t`.
//! - A **level** (gauge) delta effective from time `t` is visible at every
//!   window close `≥ t`: the merged series reports the level *as sampled
//!   at each close*.
//! - A **flags** interval `[from, until)` marks every window whose close
//!   falls inside it (state active at the sampling instant).

use crate::alert::{AlertEngine, AlertEvent, AlertRule};
use crate::json::{parse, push_str_literal, JsonValue};
use crate::registry::RegistrySnapshot;

/// How a metric accumulates within a window and combines across shards.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SeriesKind {
    /// Per-window delta; shards sum. Rendered as the delta per window.
    Counter,
    /// Running level sampled at each window close; per-window *net
    /// deltas* are recorded and shards sum, then the merge prefix-sums
    /// into the sampled level (e.g. concurrently-online peers).
    Level,
    /// Bitmask sampled at each window close; shards OR (e.g. which
    /// subsystems are fault-degraded).
    Flags,
}

impl SeriesKind {
    /// Stable lowercase tag used in the JSON schema.
    pub fn tag(self) -> &'static str {
        match self {
            SeriesKind::Counter => "counter",
            SeriesKind::Level => "level",
            SeriesKind::Flags => "flags",
        }
    }

    fn from_tag(tag: &str) -> Option<SeriesKind> {
        match tag {
            "counter" => Some(SeriesKind::Counter),
            "level" => Some(SeriesKind::Level),
            "flags" => Some(SeriesKind::Flags),
            _ => None,
        }
    }
}

/// Static description of one tracked metric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SeriesSpec {
    /// Metric name; alert rules join on this (snapshot key in replay).
    pub name: &'static str,
    /// Accumulation/merge semantics.
    pub kind: SeriesKind,
    /// Whether the merged per-group series is invariant in the shard
    /// count. Anything recorded at content time is; shard-topology
    /// metrics (cross-shard mail) are not and must be flagged so the
    /// K-invariance gate knows to skip them.
    pub k_invariant: bool,
}

impl SeriesSpec {
    /// A K-invariant counter.
    pub const fn counter(name: &'static str) -> SeriesSpec {
        SeriesSpec {
            name,
            kind: SeriesKind::Counter,
            k_invariant: true,
        }
    }

    /// A counter that legitimately depends on the shard topology.
    pub const fn counter_k_variant(name: &'static str) -> SeriesSpec {
        SeriesSpec {
            name,
            kind: SeriesKind::Counter,
            k_invariant: false,
        }
    }

    /// A K-invariant sampled level.
    pub const fn level(name: &'static str) -> SeriesSpec {
        SeriesSpec {
            name,
            kind: SeriesKind::Level,
            k_invariant: true,
        }
    }

    /// A K-invariant sampled bitmask.
    pub const fn flags(name: &'static str) -> SeriesSpec {
        SeriesSpec {
            name,
            kind: SeriesKind::Flags,
            k_invariant: true,
        }
    }
}

/// One shard's accumulator: dense per-window values per `(metric, group)`,
/// grown on first touch. All mutation is content-time-keyed; there is no
/// notion of "current window", so late-arriving contributions (cross-shard
/// mail carrying its origin timestamp) land in the right window for free.
#[derive(Clone, Debug)]
pub struct ShardSeries {
    specs: &'static [SeriesSpec],
    groups: usize,
    interval_us: u64,
    /// `data[m * groups + g][w]` — dense, independently grown rows.
    data: Vec<Vec<i64>>,
}

impl ShardSeries {
    /// New empty accumulator over `groups` groups.
    pub fn new(specs: &'static [SeriesSpec], groups: usize, interval_us: u64) -> ShardSeries {
        assert!(interval_us > 0, "interval must be positive");
        assert!(groups > 0, "at least one group");
        ShardSeries {
            specs,
            groups,
            interval_us,
            data: vec![Vec::new(); specs.len() * groups],
        }
    }

    /// The window containing instant `t` (counter semantics).
    #[inline]
    pub fn window_of(&self, t_us: u64) -> u64 {
        t_us / self.interval_us
    }

    /// The first window whose *close* observes an instant `t`: level and
    /// flag changes at `t` become visible at close `(w+1)·I ≥ t`.
    #[inline]
    pub fn close_window_of(&self, t_us: u64) -> u64 {
        t_us.div_ceil(self.interval_us).saturating_sub(1)
    }

    #[inline]
    fn row(&mut self, metric: usize, group: usize, window: u64) -> &mut i64 {
        debug_assert!(group < self.groups);
        let row = &mut self.data[metric * self.groups + group];
        let w = window as usize;
        if row.len() <= w {
            row.resize(w + 1, 0);
        }
        &mut row[w]
    }

    /// Add a counter delta at content time `t_us`.
    #[inline]
    pub fn add(&mut self, metric: usize, group: usize, t_us: u64, delta: i64) {
        debug_assert_eq!(self.specs[metric].kind, SeriesKind::Counter);
        let w = self.window_of(t_us);
        *self.row(metric, group, w) += delta;
    }

    /// Shift a level by `delta`, effective at every window close `≥ t_us`.
    /// Pair `+1` at a session start with `-1` at its (current) end time;
    /// to *move* an end, cancel the old `-1` and place a new one.
    #[inline]
    pub fn level_shift(&mut self, metric: usize, group: usize, t_us: u64, delta: i64) {
        debug_assert_eq!(self.specs[metric].kind, SeriesKind::Level);
        let w = self.close_window_of(t_us);
        *self.row(metric, group, w) += delta;
    }

    /// OR `bits` into every window whose close instant lies in
    /// `[from_us, until_us)` (the span the flagged state is active).
    pub fn flag_span(
        &mut self,
        metric: usize,
        group: usize,
        from_us: u64,
        until_us: u64,
        bits: i64,
    ) {
        debug_assert_eq!(self.specs[metric].kind, SeriesKind::Flags);
        if until_us <= from_us {
            return;
        }
        let w0 = self.close_window_of(from_us);
        // Largest w with (w+1)·I < until  ⇔  w ≤ ceil(until/I) − 2.
        let hi = until_us.div_ceil(self.interval_us);
        if hi < 2 {
            return;
        }
        let w1 = hi - 2;
        if w1 < w0 {
            return;
        }
        for w in w0..=w1 {
            *self.row(metric, group, w) |= bits;
        }
    }

    /// Last window index touched by any metric flagged `k_invariant`
    /// (plus one = series length). The merge horizon is the max of this
    /// over shards, which keeps the merged length itself K-invariant.
    fn invariant_horizon(&self) -> usize {
        let mut h = 0usize;
        for (m, spec) in self.specs.iter().enumerate() {
            if !spec.k_invariant {
                continue;
            }
            for g in 0..self.groups {
                h = h.max(self.data[m * self.groups + g].len());
            }
        }
        h
    }
}

/// One merged metric: name, semantics, and a dense `values[group][window]`
/// matrix. For [`SeriesKind::Counter`] the values are per-window deltas;
/// for [`SeriesKind::Level`] and [`SeriesKind::Flags`] they are the value
/// *as sampled at each window close*.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MergedMetric {
    /// Metric name (alert rules join on this).
    pub name: String,
    /// Accumulation semantics.
    pub kind: SeriesKind,
    /// Whether the per-group series is shard-count-invariant.
    pub k_invariant: bool,
    /// `values[group][window]`, dense over `0..windows`.
    pub values: Vec<Vec<i64>>,
}

impl MergedMetric {
    /// Sum of a group's per-window deltas (counters only; for levels and
    /// flags a run total is meaningless).
    pub fn group_total(&self, group: usize) -> i64 {
        self.values[group].iter().sum()
    }

    /// Per-window values summed (counter/level) or OR'd (flags) across
    /// all groups — the fleet-wide view of the metric.
    pub fn global(&self) -> Vec<i64> {
        let windows = self.values.first().map_or(0, Vec::len);
        let mut out = vec![0i64; windows];
        for row in &self.values {
            for (o, v) in out.iter_mut().zip(row) {
                match self.kind {
                    SeriesKind::Flags => *o |= v,
                    _ => *o += v,
                }
            }
        }
        out
    }
}

/// The merged, canonical-order result of a sharded run: what the sidecar
/// serializes, the gates byte-diff, and the alert replay consumes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MergedSeries {
    /// Window length in virtual µs.
    pub interval_us: u64,
    /// Number of windows (the K-invariant horizon: last window touched by
    /// any `k_invariant` metric across all shards).
    pub windows: u32,
    /// Group labels (regions), index-aligned with every metric's rows.
    pub groups: Vec<String>,
    /// Metrics in spec order.
    pub metrics: Vec<MergedMetric>,
}

/// Fold per-shard accumulators — **in canonical shard index order** — into
/// one [`MergedSeries`]. Counters and level deltas sum, flags OR; levels
/// are then prefix-summed into sampled values. The horizon is the maximum
/// `k_invariant` extent over shards, so contributions from K-dependent
/// metrics beyond it (cross-shard mail delivered at a barrier after the
/// last content event) are deterministically truncated.
pub fn merge_shards(parts: &[ShardSeries], group_labels: &[String]) -> MergedSeries {
    let first = parts.first().expect("at least one shard");
    let specs = first.specs;
    let groups = first.groups;
    let interval_us = first.interval_us;
    assert_eq!(groups, group_labels.len(), "label per group");
    for p in parts {
        assert!(std::ptr::eq(p.specs, specs) && p.groups == groups && p.interval_us == interval_us);
    }
    let windows = parts
        .iter()
        .map(|p| p.invariant_horizon())
        .max()
        .unwrap_or(0);
    let metrics = specs
        .iter()
        .enumerate()
        .map(|(m, spec)| {
            let mut values = vec![vec![0i64; windows]; groups];
            for part in parts {
                for (g, out) in values.iter_mut().enumerate() {
                    let row = &part.data[m * groups + g];
                    for (w, &v) in row.iter().enumerate().take(windows) {
                        match spec.kind {
                            SeriesKind::Flags => out[w] |= v,
                            _ => out[w] += v,
                        }
                    }
                }
            }
            if spec.kind == SeriesKind::Level {
                for row in &mut values {
                    let mut acc = 0i64;
                    for v in row.iter_mut() {
                        acc += *v;
                        *v = acc;
                    }
                }
            }
            MergedMetric {
                name: spec.name.to_string(),
                kind: spec.kind,
                k_invariant: spec.k_invariant,
                values,
            }
        })
        .collect();
    MergedSeries {
        interval_us,
        windows: windows as u32,
        groups: group_labels.to_vec(),
        metrics,
    }
}

impl MergedSeries {
    /// Look a metric up by name.
    pub fn metric(&self, name: &str) -> Option<&MergedMetric> {
        self.metrics.iter().find(|m| m.name == name)
    }

    /// Canonical byte encoding (fixed-width little-endian, declaration
    /// order) — the input to stream fingerprints. Two runs produce the
    /// same bytes iff they merged bit-identical series.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.interval_us.to_le_bytes());
        out.extend_from_slice(&self.windows.to_le_bytes());
        out.extend_from_slice(&(self.groups.len() as u32).to_le_bytes());
        for g in &self.groups {
            out.extend_from_slice(&(g.len() as u32).to_le_bytes());
            out.extend_from_slice(g.as_bytes());
        }
        out.extend_from_slice(&(self.metrics.len() as u32).to_le_bytes());
        for m in &self.metrics {
            out.extend_from_slice(&(m.name.len() as u32).to_le_bytes());
            out.extend_from_slice(m.name.as_bytes());
            out.push(match m.kind {
                SeriesKind::Counter => 0,
                SeriesKind::Level => 1,
                SeriesKind::Flags => 2,
            });
            out.push(m.k_invariant as u8);
            for row in &m.values {
                for v in row {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
        }
        out
    }

    /// Perfetto/Chrome counter-track events for this series: a fragment
    /// of `traceEvents` entries (each prefixed `,\n`, no brackets) to
    /// splice into an existing export before its closing `]`. One
    /// `"ph":"C"` event per coalesced window bucket per metric on the
    /// given `pid`, with one `args` entry per group; `ts` is *virtual*
    /// µs — the slice tracks run on wall time, but counters get their own
    /// process so the two time bases never share a track. Buckets
    /// coalesce `ceil(windows / max_buckets)` windows — counters sum,
    /// levels keep the bucket's last sample, flags OR — and coalesced
    /// names carry the same ` xN` suffix as the profiler's slices.
    /// All-zero buckets are skipped.
    pub fn chrome_counter_events(&self, pid: usize, max_buckets: usize) -> String {
        use std::fmt::Write;
        let windows = self.windows as usize;
        let mut out = String::new();
        if windows == 0 || self.groups.is_empty() {
            return out;
        }
        let group = if max_buckets == 0 {
            1
        } else {
            windows.div_ceil(max_buckets).max(1)
        };
        out.push_str(",\n{\"ph\":\"M\",\"pid\":");
        let _ = write!(out, "{pid}");
        out.push_str(",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":");
        push_str_literal(&mut out, "timeseries (virtual time)");
        out.push_str("}}");
        let suffix = if group > 1 {
            format!(" x{group}")
        } else {
            String::new()
        };
        for m in &self.metrics {
            let mut b0 = 0usize;
            while b0 < windows {
                let b1 = (b0 + group).min(windows);
                let mut vals = vec![0i64; self.groups.len()];
                for (g, val) in vals.iter_mut().enumerate() {
                    let row = &m.values[g];
                    *val = match m.kind {
                        SeriesKind::Counter => row[b0..b1].iter().sum(),
                        SeriesKind::Level => row[b1 - 1],
                        SeriesKind::Flags => row[b0..b1].iter().fold(0, |a, v| a | v),
                    };
                }
                if vals.iter().any(|&v| v != 0) {
                    let _ = write!(
                        out,
                        ",\n{{\"ph\":\"C\",\"pid\":{pid},\"tid\":0,\"ts\":{},\"name\":",
                        b0 as u64 * self.interval_us
                    );
                    push_str_literal(&mut out, &format!("{}{}", m.name, suffix));
                    out.push_str(",\"args\":{");
                    for (g, label) in self.groups.iter().enumerate() {
                        if g > 0 {
                            out.push(',');
                        }
                        push_str_literal(&mut out, label);
                        let _ = write!(out, ":{}", vals[g]);
                    }
                    out.push_str("}}");
                }
                b0 = b1;
            }
        }
        out
    }

    /// Replay the merged series through an [`AlertEngine`] in virtual
    /// time: one observation per window, at its close instant. Counters
    /// are presented cumulatively (Prometheus semantics — the engine
    /// measures `increase()` over its own trailing window); levels and
    /// flags are presented as gauges. `group` restricts the view to one
    /// group; `None` evaluates the fleet-wide aggregate.
    pub fn replay(&self, rules: Vec<AlertRule>, group: Option<usize>) -> Vec<AlertEvent> {
        let mut engine = AlertEngine::new(rules);
        let mut cum: Vec<i64> = vec![0; self.metrics.len()];
        let mut snap = RegistrySnapshot::default();
        for w in 0..self.windows as usize {
            for (m, metric) in self.metrics.iter().enumerate() {
                let v = match group {
                    Some(g) => metric.values[g][w],
                    None => match metric.kind {
                        SeriesKind::Flags => {
                            metric.values.iter().fold(0i64, |acc, row| acc | row[w])
                        }
                        _ => metric.values.iter().map(|row| row[w]).sum(),
                    },
                };
                match metric.kind {
                    SeriesKind::Counter => {
                        cum[m] += v;
                        snap.counters
                            .insert(metric.name.clone(), cum[m].max(0) as u64);
                    }
                    SeriesKind::Level | SeriesKind::Flags => {
                        snap.gauges.insert(metric.name.clone(), v);
                    }
                }
            }
            let close_us = (w as u64 + 1) * self.interval_us;
            engine.observe(close_us, &snap);
        }
        engine.log().to_vec()
    }

    /// Render the series object of the `netsession-timeseries/1` schema
    /// (the caller wraps it with the schema tag and the alert log).
    /// Zero runs of each row are trimmed to a `start` offset plus a dense
    /// `values` array, keeping the committed month-scale sidecar compact.
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\n    \"interval_us\": {},\n    \"windows\": {},\n    \"groups\": [",
            self.interval_us, self.windows
        );
        for (i, g) in self.groups.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            push_str_literal(&mut s, g);
        }
        s.push_str("],\n    \"metrics\": [");
        for (mi, m) in self.metrics.iter().enumerate() {
            if mi > 0 {
                s.push(',');
            }
            s.push_str("\n      {\"name\": ");
            push_str_literal(&mut s, &m.name);
            let _ = write!(
                s,
                ", \"kind\": \"{}\", \"k_invariant\": {}, \"series\": [",
                m.kind.tag(),
                m.k_invariant
            );
            let mut first = true;
            for (g, row) in m.values.iter().enumerate() {
                let Some(lo) = row.iter().position(|&v| v != 0) else {
                    continue;
                };
                let hi = row.iter().rposition(|&v| v != 0).expect("nonzero exists");
                if !first {
                    s.push(',');
                }
                first = false;
                let _ = write!(
                    s,
                    "\n        {{\"group\": {g}, \"start\": {lo}, \"values\": ["
                );
                for (i, v) in row[lo..=hi].iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    let _ = write!(s, "{v}");
                }
                s.push_str("]}");
            }
            if !first {
                s.push_str("\n      ");
            }
            s.push_str("]}");
        }
        s.push_str("\n    ]\n  }");
        s
    }

    /// Parse a series object produced by [`MergedSeries::to_json`].
    pub fn parse_json(text: &str) -> Result<MergedSeries, String> {
        let doc = parse(text).map_err(|e| format!("json: {} at byte {}", e.msg, e.at))?;
        Self::from_value(&doc)
    }

    /// Parse from an already-parsed [`JsonValue`] (e.g. a field of the
    /// sidecar document).
    pub fn from_value(doc: &JsonValue) -> Result<MergedSeries, String> {
        let num = |k: &str| -> Result<u64, String> {
            doc.get(k)
                .and_then(|v| v.as_u64())
                .ok_or(format!("missing number {k}"))
        };
        let interval_us = num("interval_us")?;
        let windows = num("windows")? as u32;
        let groups: Vec<String> = doc
            .get("groups")
            .and_then(|v| v.as_arr())
            .ok_or("missing groups")?
            .iter()
            .map(|g| {
                g.as_str()
                    .map(str::to_string)
                    .ok_or("group not a string".to_string())
            })
            .collect::<Result<_, _>>()?;
        let mut metrics = Vec::new();
        for m in doc
            .get("metrics")
            .and_then(|v| v.as_arr())
            .ok_or("missing metrics")?
        {
            let name = m
                .get("name")
                .and_then(|v| v.as_str())
                .ok_or("metric missing name")?
                .to_string();
            let kind = m
                .get("kind")
                .and_then(|v| v.as_str())
                .and_then(SeriesKind::from_tag)
                .ok_or(format!("metric {name}: bad kind"))?;
            let k_invariant = m
                .get("k_invariant")
                .and_then(|v| v.as_bool())
                .ok_or(format!("metric {name}: missing k_invariant"))?;
            let mut values = vec![vec![0i64; windows as usize]; groups.len()];
            for row in m
                .get("series")
                .and_then(|v| v.as_arr())
                .ok_or("missing series")?
            {
                let g = row
                    .get("group")
                    .and_then(|v| v.as_u64())
                    .ok_or("row missing group")? as usize;
                let start = row
                    .get("start")
                    .and_then(|v| v.as_u64())
                    .ok_or("row missing start")? as usize;
                let vals = row
                    .get("values")
                    .and_then(|v| v.as_arr())
                    .ok_or("row missing values")?;
                if g >= groups.len() {
                    return Err(format!("metric {name}: group {g} out of range"));
                }
                if start + vals.len() > windows as usize {
                    return Err(format!("metric {name}: group {g} row exceeds windows"));
                }
                for (i, v) in vals.iter().enumerate() {
                    values[g][start + i] = v.as_f64().ok_or("value not a number")? as i64;
                }
            }
            metrics.push(MergedMetric {
                name,
                kind,
                k_invariant,
                values,
            });
        }
        Ok(MergedSeries {
            interval_us,
            windows,
            groups,
            metrics,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alert::RuleKind;

    const HOUR: u64 = 3_600_000_000;

    const SPECS: &[SeriesSpec] = &[
        SeriesSpec::counter("t.count"),
        SeriesSpec::level("t.level"),
        SeriesSpec::flags("t.flags"),
        SeriesSpec::counter_k_variant("t.mail"),
    ];

    fn labels() -> Vec<String> {
        vec!["a".into(), "b".into()]
    }

    #[test]
    fn counter_deltas_land_in_their_content_window() {
        let mut s = ShardSeries::new(SPECS, 2, HOUR);
        s.add(0, 0, 0, 1);
        s.add(0, 0, HOUR - 1, 1);
        s.add(0, 0, HOUR, 5);
        s.add(0, 1, 3 * HOUR + 7, 2);
        let m = merge_shards(&[s], &labels());
        assert_eq!(m.windows, 4);
        let c = m.metric("t.count").unwrap();
        assert_eq!(c.values[0], vec![2, 5, 0, 0]);
        assert_eq!(c.values[1], vec![0, 0, 0, 2]);
        assert_eq!(c.group_total(0), 7);
    }

    #[test]
    fn level_is_sampled_at_window_closes() {
        let mut s = ShardSeries::new(SPECS, 2, HOUR);
        // Session [30min, 2h10min): online at closes of windows 0 and 1,
        // gone by the close of window 2.
        s.level_shift(1, 0, HOUR / 2, 1);
        s.level_shift(1, 0, 2 * HOUR + 600_000_000, -1);
        // Keep the horizon at 4 windows via the counter.
        s.add(0, 0, 3 * HOUR, 1);
        let m = merge_shards(&[s], &labels());
        assert_eq!(m.metric("t.level").unwrap().values[0], vec![1, 1, 0, 0]);
    }

    #[test]
    fn level_boundary_instants_follow_close_semantics() {
        let mut s = ShardSeries::new(SPECS, 2, HOUR);
        // Start exactly at a window close: visible at that close.
        s.level_shift(1, 0, HOUR, 1);
        // End exactly at a close: *not* online at that close (until is
        // exclusive).
        s.level_shift(1, 0, 3 * HOUR, -1);
        s.add(0, 0, 3 * HOUR, 1);
        let m = merge_shards(&[s], &labels());
        // Closes at 1h, 2h, 3h, 4h → online at 1h and 2h only.
        assert_eq!(m.metric("t.level").unwrap().values[0], vec![1, 1, 0, 0]);
    }

    #[test]
    fn flag_spans_mark_closes_inside_the_span() {
        let mut s = ShardSeries::new(SPECS, 2, HOUR);
        // Active [1.5h, 3h): closes 2h is inside; 3h is not (exclusive).
        s.flag_span(2, 1, HOUR + HOUR / 2, 3 * HOUR, 0b10);
        s.add(0, 0, 4 * HOUR, 1);
        let m = merge_shards(&[s], &labels());
        assert_eq!(m.metric("t.flags").unwrap().values[1], vec![0, 2, 0, 0, 0]);
    }

    #[test]
    fn merge_sums_counters_and_ors_flags_in_any_part_count() {
        let mut a = ShardSeries::new(SPECS, 2, HOUR);
        let mut b = ShardSeries::new(SPECS, 2, HOUR);
        a.add(0, 0, 10, 3);
        b.add(0, 0, 20, 4);
        a.flag_span(2, 0, 0, 2 * HOUR, 0b01);
        b.flag_span(2, 0, 0, 2 * HOUR, 0b10);
        a.level_shift(1, 0, 0, 2);
        b.level_shift(1, 0, HOUR + 1, 3);
        let m = merge_shards(&[a, b], &labels());
        let c = m.metric("t.count").unwrap();
        assert_eq!(c.values[0][0], 7);
        assert_eq!(m.metric("t.flags").unwrap().values[0][0], 0b11);
        assert_eq!(m.metric("t.level").unwrap().values[0], vec![2, 5]);
    }

    #[test]
    fn k_variant_metrics_do_not_extend_the_horizon() {
        let mut s = ShardSeries::new(SPECS, 2, HOUR);
        s.add(0, 0, HOUR, 1); // invariant horizon: 2 windows
        s.add(3, 0, 10 * HOUR, 9); // mail far beyond it
        let m = merge_shards(&[s], &labels());
        assert_eq!(m.windows, 2, "horizon set by k_invariant metrics only");
        assert_eq!(m.metric("t.mail").unwrap().values[0], vec![0, 0]);
    }

    #[test]
    fn encode_and_json_round_trip() {
        let mut a = ShardSeries::new(SPECS, 2, HOUR);
        a.add(0, 0, 10, 3);
        a.add(0, 1, 5 * HOUR, 2);
        a.level_shift(1, 0, 0, 4);
        a.flag_span(2, 1, HOUR, 4 * HOUR, 1);
        let m = merge_shards(&[a], &labels());
        let parsed = MergedSeries::parse_json(&m.to_json()).expect("round-trips");
        assert_eq!(parsed, m);
        assert_eq!(parsed.encode(), m.encode());
    }

    #[test]
    fn replay_detects_a_counter_burst_per_group_and_globally() {
        let mut s = ShardSeries::new(SPECS, 2, HOUR);
        s.add(0, 1, 5 * HOUR + 10, 3); // burst in group 1, window 5
        s.add(0, 0, 9 * HOUR, 0); // extend horizon quietly
        s.level_shift(1, 0, 9 * HOUR, 1);
        let m = merge_shards(&[s], &labels());
        let rule = || {
            vec![AlertRule::new(
                "burst",
                "t.count",
                RuleKind::RateAbove { delta: 1 },
                HOUR,
            )]
        };
        let global = m.replay(rule(), None);
        assert!(global.iter().any(|e| e.raised && e.rule == "burst"));
        // Raised at the close of window 5 = 6h of virtual time.
        assert_eq!(global.iter().find(|e| e.raised).unwrap().at_us, 6 * HOUR);
        let g1 = m.replay(rule(), Some(1));
        assert!(g1.iter().any(|e| e.raised));
        let g0 = m.replay(rule(), Some(0));
        assert!(g0.iter().all(|e| !e.raised), "quiet group stays quiet");
    }

    #[test]
    fn replay_clears_after_a_quiet_window() {
        let mut s = ShardSeries::new(SPECS, 1, HOUR);
        s.add(0, 0, HOUR, 5);
        s.add(0, 0, 8 * HOUR, 0); // horizon
        let m = merge_shards(&[s], &["a".to_string()]);
        let log = m.replay(
            vec![AlertRule::new(
                "burst",
                "t.count",
                RuleKind::RateAbove { delta: 1 },
                HOUR,
            )],
            None,
        );
        assert_eq!(log.len(), 2, "one raise, one clear: {log:?}");
        assert!(log[0].raised && !log[1].raised);
        assert!(log[1].at_us > log[0].at_us);
    }
}
