//! Prometheus-style text exposition of a [`RegistrySnapshot`], plus the
//! matching parser used by scrape clients (the live monitor server).
//!
//! The format follows the Prometheus text exposition conventions —
//! `# TYPE` comments, `{quantile="…"}` labels on summaries, `_sum` /
//! `_count` companions — with one deliberate deviation: metric names are
//! emitted **verbatim**, dots included (`hybrid.fault.cn_crashes`), so a
//! scrape round-trips to the exact registry names that alert rules and
//! the JSON snapshots use. A stock Prometheus server would need a
//! relabeling rule; our in-tree scraper does not.
//!
//! Summaries additionally expose `_min` / `_max` companions: the
//! histogram implementation tracks exact extremes, and scrape-side
//! rate/average math (`_sum` / `_count` deltas) plus a clamp to
//! `[min, max]` reproduces everything the JSON snapshot carries.

use crate::registry::{HistogramSnapshot, RegistrySnapshot};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Render a snapshot in the text exposition format. Deterministic:
/// names are sorted (BTreeMap order) and values are integers.
pub fn render_prometheus(snap: &RegistrySnapshot) -> String {
    let mut out = String::with_capacity(4096);
    for (name, v) in &snap.counters {
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {v}");
    }
    for (name, v) in &snap.gauges {
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {v}");
    }
    for (name, h) in &snap.histograms {
        let _ = writeln!(out, "# TYPE {name} summary");
        let _ = writeln!(out, "{name}{{quantile=\"0.5\"}} {}", h.p50);
        let _ = writeln!(out, "{name}{{quantile=\"0.9\"}} {}", h.p90);
        let _ = writeln!(out, "{name}{{quantile=\"0.99\"}} {}", h.p99);
        let _ = writeln!(out, "{name}_sum {}", h.sum);
        let _ = writeln!(out, "{name}_count {}", h.count);
        let _ = writeln!(out, "{name}_min {}", h.min);
        let _ = writeln!(out, "{name}_max {}", h.max);
    }
    out
}

/// Parse a text exposition back into a snapshot. Inverse of
/// [`render_prometheus`]: `parse_prometheus(&render_prometheus(s)) == s`.
pub fn parse_prometheus(text: &str) -> Result<RegistrySnapshot, String> {
    let mut counters: BTreeMap<String, u64> = BTreeMap::new();
    let mut gauges: BTreeMap<String, i64> = BTreeMap::new();
    let mut histograms: BTreeMap<String, HistogramSnapshot> = BTreeMap::new();
    // name -> declared kind ("counter" | "gauge" | "summary").
    let mut kinds: BTreeMap<String, &str> = BTreeMap::new();

    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let name = it.next().ok_or_else(|| bad(lineno, "TYPE without name"))?;
            let kind = match it.next() {
                Some("counter") => "counter",
                Some("gauge") => "gauge",
                Some("summary") => "summary",
                _ => return Err(bad(lineno, "unknown TYPE kind")),
            };
            kinds.insert(name.to_string(), kind);
            if kind == "summary" {
                histograms.entry(name.to_string()).or_default();
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or other comments.
        }
        let (name_part, value_part) = line
            .rsplit_once(' ')
            .ok_or_else(|| bad(lineno, "sample without value"))?;
        let name_part = name_part.trim();
        let value_part = value_part.trim();

        // Quantile sample: `name{quantile="0.5"} v`.
        if let Some((base, labels)) = name_part.split_once('{') {
            let labels = labels
                .strip_suffix('}')
                .ok_or_else(|| bad(lineno, "unterminated label set"))?;
            let q = labels
                .strip_prefix("quantile=\"")
                .and_then(|l| l.strip_suffix('"'))
                .ok_or_else(|| bad(lineno, "expected a quantile label"))?;
            let v: u64 = value_part
                .parse()
                .map_err(|_| bad(lineno, "bad quantile value"))?;
            let h = histograms.entry(base.to_string()).or_default();
            match q {
                "0.5" => h.p50 = v,
                "0.9" => h.p90 = v,
                "0.99" => h.p99 = v,
                _ => return Err(bad(lineno, "unsupported quantile")),
            }
            continue;
        }

        // Summary companion: `name_sum` / `_count` / `_min` / `_max`,
        // recognized only when `name` was declared a summary.
        let mut consumed = false;
        for (suffix, set) in [("_sum", 0usize), ("_count", 1), ("_min", 2), ("_max", 3)] {
            let Some(base) = name_part.strip_suffix(suffix) else {
                continue;
            };
            if kinds.get(base).copied() != Some("summary") {
                continue;
            }
            let v: u64 = value_part
                .parse()
                .map_err(|_| bad(lineno, "bad summary value"))?;
            let h = histograms.entry(base.to_string()).or_default();
            match set {
                0 => h.sum = v,
                1 => h.count = v,
                2 => h.min = v,
                _ => h.max = v,
            }
            consumed = true;
            break;
        }
        if consumed {
            continue;
        }

        match kinds.get(name_part).copied() {
            Some("gauge") => {
                let v: i64 = value_part
                    .parse()
                    .map_err(|_| bad(lineno, "bad gauge value"))?;
                gauges.insert(name_part.to_string(), v);
            }
            // Undeclared samples default to counters: a scraper should
            // keep working against a producer that skips TYPE lines.
            Some("counter") | None => {
                let v: u64 = value_part
                    .parse()
                    .map_err(|_| bad(lineno, "bad counter value"))?;
                counters.insert(name_part.to_string(), v);
            }
            Some(_) => return Err(bad(lineno, "sample for summary without labels")),
        }
    }
    Ok(RegistrySnapshot {
        counters,
        gauges,
        histograms,
    })
}

fn bad(lineno: usize, msg: &str) -> String {
    format!("line {}: {msg}", lineno + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRegistry;

    #[test]
    fn round_trips_counters_gauges_histograms() {
        let reg = MetricsRegistry::new();
        reg.counter("edge.bytes_served").add(4096);
        reg.counter("hybrid.fault.cn_crashes").add(2);
        reg.gauge("sim.queue_depth").set(-3);
        let h = reg.histogram("peer.download_bytes");
        for v in [1_000u64, 2_000, 4_000, 1 << 20] {
            h.record(v);
        }
        let snap = reg.scrape();
        let text = render_prometheus(&snap);
        let parsed = parse_prometheus(&text).unwrap();
        assert_eq!(parsed, snap);
    }

    #[test]
    fn histogram_sum_and_count_survive_the_exposition() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("h");
        h.record(10);
        h.record(30);
        let text = render_prometheus(&reg.scrape());
        assert!(text.contains("h_sum 40"));
        assert!(text.contains("h_count 2"));
        assert!(text.contains("h_min 10"));
        assert!(text.contains("h_max 30"));
        let parsed = parse_prometheus(&text).unwrap();
        let hs = parsed.histograms.get("h").unwrap();
        assert_eq!((hs.sum, hs.count, hs.min, hs.max), (40, 2, 10, 30));
        assert_eq!(hs.p50, h.p50());
    }

    #[test]
    fn exposition_is_deterministic_and_sorted() {
        let build = || {
            let reg = MetricsRegistry::new();
            reg.counter("b.second").incr();
            reg.counter("a.first").incr();
            reg.gauge("z").set(1);
            render_prometheus(&reg.scrape())
        };
        let a = build();
        assert_eq!(a, build());
        assert!(a.find("a.first").unwrap() < a.find("b.second").unwrap());
    }

    #[test]
    fn events_dropped_counter_is_exposed() {
        let reg = MetricsRegistry::with_event_capacity(1);
        reg.record_event(0, "c", "k", "");
        reg.record_event(1, "c", "k", "");
        let text = render_prometheus(&reg.scrape());
        assert!(text.contains("obs.events.dropped 1"));
    }

    #[test]
    fn untyped_samples_parse_as_counters() {
        let parsed = parse_prometheus("x 7\n").unwrap();
        assert_eq!(parsed.counter("x"), 7);
    }

    #[test]
    fn garbage_is_rejected_with_line_numbers() {
        assert!(parse_prometheus("x\n").unwrap_err().contains("line 1"));
        assert!(parse_prometheus("# TYPE x histogram\n").is_err());
        assert!(parse_prometheus("# TYPE g gauge\ng notanumber\n").is_err());
    }
}
