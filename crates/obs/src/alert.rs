//! Declarative alerting over registry snapshots.
//!
//! The paper's operational story (§3.8): "download and upload performance
//! is constantly monitored, and automated alerts are in place to notify
//! network engineers in case of large-scale problems". This module is
//! that mechanism, generalized: an [`AlertEngine`] holds a set of
//! [`AlertRule`]s and is fed a time-stamped [`RegistrySnapshot`] at each
//! evaluation point. Rules come in three shapes:
//!
//! - **threshold** ([`RuleKind::GaugeAbove`] / [`RuleKind::GaugeBelow`]):
//!   a gauge breaches a bound and stays breached for the rule's window
//!   (`window_us == 0` fires on the first breached observation);
//! - **rate-of-change** ([`RuleKind::RateAbove`]): a counter increases by
//!   at least `delta` within the trailing window — the problem-burst
//!   alert of `control/src/monitor.rs`, generalized to any counter;
//! - **absence** ([`RuleKind::Absent`]): a counter that should always be
//!   moving (heartbeats, scrape successes) shows no increase for a full
//!   window.
//!
//! The engine is deterministic by construction: evaluation depends only
//! on the observation timestamps and the snapshot values, never on wall
//! time, so the hybrid simulator can run the *same* engine over virtual
//! time and assert byte-identical alert logs across same-seed runs,
//! while the live monitor server feeds it wall-clock scrapes.
//!
//! Counter semantics follow Prometheus `increase()`: a counter observed
//! *below* its previous value is a process restart, and the new value
//! counts as growth from zero — a reset can therefore never fire a rate
//! rule by itself, only genuine increments can.

use crate::registry::RegistrySnapshot;
use std::collections::VecDeque;

/// What a rule watches for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RuleKind {
    /// Fires while the gauge is strictly above `limit` (threshold).
    GaugeAbove {
        /// Exclusive upper bound for healthy values.
        limit: i64,
    },
    /// Fires while the gauge is strictly below `limit` (threshold).
    GaugeBelow {
        /// Exclusive lower bound for healthy values.
        limit: i64,
    },
    /// Fires when the counter increases by at least `delta` within the
    /// trailing window (rate-of-change).
    RateAbove {
        /// Minimum increase that constitutes a burst.
        delta: u64,
    },
    /// Fires when the counter shows no increase for a full window
    /// (absence — heartbeats, liveness).
    Absent,
}

/// One declarative alert rule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AlertRule {
    /// Stable rule name; this is what raised/cleared events carry.
    pub name: String,
    /// Registry metric the rule evaluates (counter or gauge name).
    pub metric: String,
    /// The condition.
    pub kind: RuleKind,
    /// Evaluation window in microseconds. For gauge rules this is a
    /// *for*-duration (how long the breach must persist; 0 = fire at
    /// once); for rate and absence rules it is the measurement span and
    /// must be > 0.
    pub window_us: u64,
}

impl AlertRule {
    /// Convenience constructor.
    pub fn new(name: &str, metric: &str, kind: RuleKind, window_us: u64) -> AlertRule {
        AlertRule {
            name: name.to_string(),
            metric: metric.to_string(),
            kind,
            window_us,
        }
    }
}

/// A raise or clear transition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AlertEvent {
    /// Observation timestamp (micros — virtual or wall, the feeder's
    /// choice) at which the transition happened.
    pub at_us: u64,
    /// Name of the rule that transitioned.
    pub rule: String,
    /// `true` = raised, `false` = cleared.
    pub raised: bool,
    /// Deterministic human-readable description.
    pub message: String,
}

/// Per-rule evaluation state.
#[derive(Debug, Default)]
struct RuleState {
    /// (t, reset-adjusted cumulative value) samples covering the window,
    /// plus one baseline sample at-or-before the window's left edge.
    samples: VecDeque<(u64, u64)>,
    /// Last raw counter value, for reset detection.
    last_raw: u64,
    /// Sum of raw values lost to resets; `base + raw` is monotone.
    base: u64,
    /// First observation where the gauge was breached, if currently so.
    breach_since: Option<u64>,
    /// Last observation at which the counter increased (absence rules).
    last_increase_at: Option<u64>,
    /// Whether the alert is currently raised.
    raised: bool,
}

/// Evaluates a rule set against a stream of snapshots. See the module
/// docs for semantics.
#[derive(Debug)]
pub struct AlertEngine {
    rules: Vec<AlertRule>,
    states: Vec<RuleState>,
    log: Vec<AlertEvent>,
}

impl AlertEngine {
    /// Build an engine. Panics on rate/absence rules with a zero window
    /// (they could never measure an increase and would be silently
    /// inert — a configuration bug).
    pub fn new(rules: Vec<AlertRule>) -> AlertEngine {
        for r in &rules {
            if matches!(r.kind, RuleKind::RateAbove { .. } | RuleKind::Absent) {
                assert!(
                    r.window_us > 0,
                    "alert rule {:?}: rate/absence rules need window_us > 0",
                    r.name
                );
            }
        }
        let states = rules.iter().map(|_| RuleState::default()).collect();
        AlertEngine {
            rules,
            states,
            log: Vec::new(),
        }
    }

    /// The configured rules.
    pub fn rules(&self) -> &[AlertRule] {
        &self.rules
    }

    /// Names of currently raised alerts, in rule order.
    pub fn active(&self) -> Vec<&str> {
        self.rules
            .iter()
            .zip(&self.states)
            .filter(|(_, s)| s.raised)
            .map(|(r, _)| r.name.as_str())
            .collect()
    }

    /// Every raise/clear transition so far, in observation order.
    pub fn log(&self) -> &[AlertEvent] {
        &self.log
    }

    /// Feed one snapshot observed at `t_us` (must be non-decreasing
    /// across calls). Returns the transitions this observation caused;
    /// the same events are appended to [`AlertEngine::log`].
    pub fn observe(&mut self, t_us: u64, snap: &RegistrySnapshot) -> Vec<AlertEvent> {
        let mut out = Vec::new();
        for (rule, state) in self.rules.iter().zip(self.states.iter_mut()) {
            let transition = match rule.kind {
                RuleKind::GaugeAbove { limit } => {
                    let v = snap.gauge(&rule.metric);
                    eval_gauge(rule, state, t_us, v > limit, || {
                        format!("{} = {} above {}", rule.metric, v, limit)
                    })
                }
                RuleKind::GaugeBelow { limit } => {
                    let v = snap.gauge(&rule.metric);
                    eval_gauge(rule, state, t_us, v < limit, || {
                        format!("{} = {} below {}", rule.metric, v, limit)
                    })
                }
                RuleKind::RateAbove { delta } => {
                    let adj = state.advance_counter(snap.counter(&rule.metric));
                    state.samples.push_back((t_us, adj));
                    // Keep one baseline sample at-or-before the window's
                    // left edge; a predecessor is redundant only once its
                    // successor is strictly inside the horizon, so growth
                    // between same-timestamp observations is never lost.
                    let horizon = t_us.saturating_sub(rule.window_us);
                    while state.samples.len() >= 2 && state.samples[1].0 < horizon {
                        state.samples.pop_front();
                    }
                    let grew = adj - state.samples.front().map_or(adj, |s| s.1);
                    let breached = grew >= delta;
                    match (breached, state.raised) {
                        (true, false) => {
                            state.raised = true;
                            Some(format!(
                                "{} rose {} within {}s (limit {})",
                                rule.metric,
                                grew,
                                rule.window_us / 1_000_000,
                                delta
                            ))
                        }
                        (false, true) => {
                            state.raised = false;
                            Some(String::new())
                        }
                        _ => None,
                    }
                }
                RuleKind::Absent => {
                    let prev = state.samples.back().map(|s| s.1);
                    let adj = state.advance_counter(snap.counter(&rule.metric));
                    state.samples.clear();
                    state.samples.push_back((t_us, adj));
                    let increased = prev.is_some_and(|p| adj > p);
                    if increased || state.last_increase_at.is_none() {
                        state.last_increase_at = Some(t_us);
                    }
                    let silent_for = t_us - state.last_increase_at.unwrap_or(t_us);
                    let breached = !increased && silent_for >= rule.window_us;
                    match (breached, state.raised) {
                        (true, false) => {
                            state.raised = true;
                            Some(format!(
                                "{} silent for {}s (window {}s)",
                                rule.metric,
                                silent_for / 1_000_000,
                                rule.window_us / 1_000_000
                            ))
                        }
                        (false, true) => {
                            state.raised = false;
                            Some(String::new())
                        }
                        _ => None,
                    }
                }
            };
            if let Some(message) = transition {
                let raised = state.raised;
                let event = AlertEvent {
                    at_us: t_us,
                    rule: rule.name.clone(),
                    raised,
                    message: if raised {
                        message
                    } else {
                        format!("{} back within limits", rule.metric)
                    },
                };
                self.log.push(event.clone());
                out.push(event);
            }
        }
        out
    }
}

impl RuleState {
    /// Fold a raw counter observation into the monotone adjusted value,
    /// absorbing resets (raw dropping) as growth-from-zero.
    fn advance_counter(&mut self, raw: u64) -> u64 {
        if raw < self.last_raw {
            self.base += self.last_raw;
        }
        self.last_raw = raw;
        self.base + raw
    }
}

/// Shared gauge evaluation: breach must persist for the rule's window.
fn eval_gauge(
    rule: &AlertRule,
    state: &mut RuleState,
    t_us: u64,
    breached: bool,
    describe: impl FnOnce() -> String,
) -> Option<String> {
    if breached {
        let since = *state.breach_since.get_or_insert(t_us);
        if !state.raised && t_us - since >= rule.window_us {
            state.raised = true;
            return Some(describe());
        }
    } else {
        state.breach_since = None;
        if state.raised {
            state.raised = false;
            return Some(String::new());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRegistry;

    const SEC: u64 = 1_000_000;

    fn snap(f: impl FnOnce(&MetricsRegistry)) -> RegistrySnapshot {
        let reg = MetricsRegistry::new();
        f(&reg);
        reg.scrape()
    }

    /// Every rule kind evaluates against counters and gauges only. Hot
    /// scrape loops rely on this to refresh snapshots with
    /// `scrape_scalars_into` (histograms left stale); a rule kind that
    /// reads `snap.histograms` must revisit those call sites first.
    #[test]
    fn rules_read_only_scalar_instruments() {
        let mut reg_snap = snap(|r| {
            r.counter("c").add(7);
            r.gauge("g").set(3);
            r.histogram("h").record(1);
        });
        // Wipe the histograms: no rule kind may notice.
        reg_snap.histograms.clear();
        let rules = vec![
            AlertRule::new("a", "g", RuleKind::GaugeAbove { limit: 1 }, 0),
            AlertRule::new("b", "g", RuleKind::GaugeBelow { limit: 10 }, 0),
            AlertRule::new("c", "c", RuleKind::RateAbove { delta: 1 }, 60 * SEC),
            AlertRule::new("d", "c", RuleKind::Absent, 60 * SEC),
        ];
        let mut e = AlertEngine::new(rules);
        // All four evaluate without consulting histograms (the gauge rules
        // raise, proving they really ran).
        let ev = e.observe(SEC, &reg_snap);
        assert_eq!(ev.len(), 2);
    }

    #[test]
    fn rate_burst_raises_then_quiet_period_clears() {
        let mut e = AlertEngine::new(vec![AlertRule::new(
            "burst",
            "problems",
            RuleKind::RateAbove { delta: 10 },
            60 * SEC,
        )]);
        // 5 in the first minute: quiet.
        let ev = e.observe(30 * SEC, &snap(|r| r.counter("problems").add(5)));
        assert!(ev.is_empty());
        // 12 more within the window: burst.
        let ev = e.observe(60 * SEC, &snap(|r| r.counter("problems").add(17)));
        assert_eq!(ev.len(), 1);
        assert!(ev[0].raised);
        assert_eq!(e.active(), vec!["burst"]);
        // No growth for a full window: the burst rolls out and clears.
        let ev = e.observe(121 * SEC, &snap(|r| r.counter("problems").add(17)));
        assert_eq!(ev.len(), 1);
        assert!(!ev[0].raised);
        assert!(e.active().is_empty());
        assert_eq!(e.log().len(), 2);
    }

    #[test]
    fn first_observation_of_a_large_counter_does_not_fire() {
        // Attaching to a registry with pre-existing counts measures an
        // empty window, not a burst.
        let mut e = AlertEngine::new(vec![AlertRule::new(
            "burst",
            "problems",
            RuleKind::RateAbove { delta: 10 },
            60 * SEC,
        )]);
        let ev = e.observe(0, &snap(|r| r.counter("problems").add(1_000_000)));
        assert!(ev.is_empty());
        assert!(e.active().is_empty());
    }

    #[test]
    fn counter_reset_counts_as_growth_from_zero() {
        let mut e = AlertEngine::new(vec![AlertRule::new(
            "burst",
            "problems",
            RuleKind::RateAbove { delta: 10 },
            60 * SEC,
        )]);
        e.observe(0, &snap(|r| r.counter("problems").add(500)));
        // Process restart: the counter comes back small. 4 < 10: quiet.
        let ev = e.observe(30 * SEC, &snap(|r| r.counter("problems").add(4)));
        assert!(ev.is_empty());
        // Another restart, this time growing past the threshold on its own.
        let ev = e.observe(60 * SEC, &snap(|r| r.counter("problems").add(11)));
        assert_eq!(ev.len(), 1);
        assert!(ev[0].raised);
    }

    #[test]
    fn merged_fleet_snapshots_absorb_a_shard_restart() {
        // Fleet views are built with RegistrySnapshot::merge over per-shard
        // scrapes, windowed at the observation cadence. When one shard
        // restarts between windows the *merged* counter can drop; the
        // engine must fold that into growth-from-zero (Prometheus
        // `increase()`): the loss never counts negative, and only the
        // post-restart increments can contribute to a burst.
        let mut e = AlertEngine::new(vec![AlertRule::new(
            "burst",
            "dl",
            RuleKind::RateAbove { delta: 100 },
            60 * SEC,
        )]);
        // Window 1: shard A has 500, shard B has 40.
        let mut w1 = snap(|r| {
            r.counter("dl").add(500);
        });
        w1.merge(&snap(|r| {
            r.counter("dl").add(40);
        }));
        assert_eq!(w1.counter("dl"), 540);
        assert!(e.observe(60 * SEC, &w1).is_empty(), "baseline never fires");
        // Window 2: shard A restarted (3 since boot), B grew to 44. The
        // merged counter *drops* 540 → 47; only the 47 counts as growth.
        let mut w2 = snap(|r| {
            r.counter("dl").add(3);
        });
        w2.merge(&snap(|r| {
            r.counter("dl").add(44);
        }));
        assert!(
            e.observe(120 * SEC, &w2).is_empty(),
            "a restart must not fire the rate rule"
        );
        // Window 3: genuine burst on top of the restart: merged reaches
        // 170, so adjusted growth in the trailing window passes 100.
        let mut w3 = snap(|r| {
            r.counter("dl").add(80);
        });
        w3.merge(&snap(|r| {
            r.counter("dl").add(90);
        }));
        let ev = e.observe(180 * SEC, &w3);
        assert!(ev.len() == 1 && ev[0].raised, "{ev:?}");
    }

    #[test]
    fn gauge_threshold_with_for_window() {
        let mut e = AlertEngine::new(vec![AlertRule::new(
            "deep-queue",
            "depth",
            RuleKind::GaugeAbove { limit: 100 },
            10 * SEC,
        )]);
        assert!(e
            .observe(0, &snap(|r| r.gauge("depth").set(500)))
            .is_empty());
        // Breach persisted 10s: fire.
        let ev = e.observe(10 * SEC, &snap(|r| r.gauge("depth").set(300)));
        assert!(ev.len() == 1 && ev[0].raised);
        // Recovery clears immediately.
        let ev = e.observe(11 * SEC, &snap(|r| r.gauge("depth").set(3)));
        assert!(ev.len() == 1 && !ev[0].raised);
        // A blip shorter than the window never fires.
        e.observe(20 * SEC, &snap(|r| r.gauge("depth").set(300)));
        assert!(e
            .observe(21 * SEC, &snap(|r| r.gauge("depth").set(0)))
            .is_empty());
    }

    #[test]
    fn gauge_below_with_zero_window_fires_at_once() {
        let mut e = AlertEngine::new(vec![AlertRule::new(
            "target-down",
            "up",
            RuleKind::GaugeBelow { limit: 1 },
            0,
        )]);
        // Missing gauge reads as 0: below 1, immediate raise.
        let ev = e.observe(0, &RegistrySnapshot::default());
        assert!(ev.len() == 1 && ev[0].raised);
        let ev = e.observe(SEC, &snap(|r| r.gauge("up").set(1)));
        assert!(ev.len() == 1 && !ev[0].raised);
    }

    #[test]
    fn absence_fires_after_a_silent_window_and_clears_on_life() {
        let mut e = AlertEngine::new(vec![AlertRule::new(
            "no-heartbeat",
            "beats",
            RuleKind::Absent,
            30 * SEC,
        )]);
        e.observe(0, &snap(|r| r.counter("beats").add(1)));
        e.observe(10 * SEC, &snap(|r| r.counter("beats").add(2)));
        assert!(e.active().is_empty());
        // Silent for 30s from the last increase.
        let ev = e.observe(40 * SEC, &snap(|r| r.counter("beats").add(2)));
        assert!(ev.len() == 1 && ev[0].raised);
        let ev = e.observe(50 * SEC, &snap(|r| r.counter("beats").add(3)));
        assert!(ev.len() == 1 && !ev[0].raised);
    }

    #[test]
    fn observations_with_no_rules_matching_metric_read_zero() {
        let mut e = AlertEngine::new(vec![AlertRule::new(
            "ghost",
            "never.written",
            RuleKind::RateAbove { delta: 1 },
            60 * SEC,
        )]);
        for i in 0..100 {
            assert!(e.observe(i * SEC, &RegistrySnapshot::default()).is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "window_us > 0")]
    fn zero_window_rate_rule_is_rejected() {
        AlertEngine::new(vec![AlertRule::new(
            "inert",
            "x",
            RuleKind::RateAbove { delta: 1 },
            0,
        )]);
    }
}
