//! Causal download-lifecycle tracing.
//!
//! The paper reconstructs *per-download stories* from raw logs: which
//! sources the control plane offered, whether NAT traversal succeeded,
//! when the edge backstop kicked in, and how the bytes split between
//! peers and infrastructure (§3–§5). Aggregate counters cannot answer
//! "why did *this* download fall back to the edge?", so this module adds
//! spans — named, categorised intervals with parent links, typed
//! attributes, and trace-scoped IDs — alongside the metrics.
//!
//! The design mirrors the metrics layer's rules:
//!
//! - **Passive by construction.** A [`TraceSink`] is either *detached*
//!   (every call is a no-op returning null IDs) or enabled; nothing in
//!   instrumented code branches on which, so tracing cannot change the
//!   behaviour of a same-seed simulation.
//! - **Deterministic.** Simulated components stamp spans with virtual
//!   sim time and draw IDs from a monotone per-sink counter, so two
//!   same-seed runs export byte-identical traces. The live runtime
//!   stamps wall-clock micros instead; such traces are inherently
//!   volatile and are excluded from determinism gates.
//! - **Sampled.** Tracing every download of a month-long run would dwarf
//!   the experiment output, so [`TraceSink::start_trace`] samples 1-in-N
//!   deterministically (the trace *counter* still advances for unsampled
//!   downloads, keeping IDs stable under different sampling rates).
//!
//! The exporter ([`TraceSink::export_chrome_json`]) writes the Chrome
//! trace-event JSON flavour that `chrome://tracing` and
//! [Perfetto](https://ui.perfetto.dev) load directly: one process row per
//! span category (control / edge / hybrid / peer / sim), one thread row
//! per trace, complete (`"ph": "X"`) events with micros timestamps.

use crate::json::push_str_literal;
use crate::registry::MetricsRegistry;
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};

/// Identifies one causal story (in this repo: one download). The high 16
/// bits carry the sink's process prefix so traces that cross process
/// boundaries in the live runtime never collide.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

/// Identifies one span within a sink. `SpanId(0)` is the null span:
/// ending it, attributing it, or parenting under it are all no-ops.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SpanId(pub u64);

impl TraceId {
    /// The null trace (unsampled or detached contexts carry it).
    pub const NONE: TraceId = TraceId(0);
}

impl SpanId {
    /// The null span.
    pub const NONE: SpanId = SpanId(0);

    /// Whether this is a real, recorded span.
    pub fn is_some(self) -> bool {
        self.0 != 0
    }
}

/// A typed attribute value. There is deliberately no float variant:
/// attributes feed byte-identical exports and float formatting is a
/// determinism hazard; callers scale to integer units instead.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AttrValue {
    /// Unsigned integer (bytes, counts, micros).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Boolean flag.
    Bool(bool),
    /// Short label; prefer `'static` labels over formatted strings on hot
    /// paths.
    Str(String),
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> AttrValue {
        AttrValue::U64(v)
    }
}
impl From<i64> for AttrValue {
    fn from(v: i64) -> AttrValue {
        AttrValue::I64(v)
    }
}
impl From<bool> for AttrValue {
    fn from(v: bool) -> AttrValue {
        AttrValue::Bool(v)
    }
}
impl From<&str> for AttrValue {
    fn from(v: &str) -> AttrValue {
        AttrValue::Str(v.to_string())
    }
}
impl From<String> for AttrValue {
    fn from(v: String) -> AttrValue {
        AttrValue::Str(v)
    }
}

/// One recorded span.
#[derive(Clone, Debug)]
pub struct Span {
    /// Trace this span belongs to.
    pub trace: TraceId,
    /// This span's ID.
    pub id: SpanId,
    /// Parent span within the same trace (`None` for roots and for spans
    /// whose parent lives in another process).
    pub parent: Option<SpanId>,
    /// Span name, e.g. `"download"` or `"connect_attempt"`.
    pub name: &'static str,
    /// Layer category, e.g. `"hybrid"`, `"control"`, `"edge"`, `"peer"`,
    /// `"sim"`. Categories become process rows in Perfetto.
    pub cat: &'static str,
    /// Start timestamp in micros (virtual sim time, or wall micros in the
    /// live runtime).
    pub start_us: u64,
    /// End timestamp; `None` while the span is open. Instant spans end at
    /// their start.
    pub end_us: Option<u64>,
    /// Ordered key/value attributes.
    pub attrs: Vec<(&'static str, AttrValue)>,
}

/// The trace context threaded through a call chain: which trace we are
/// in, the current parent span, and whether the trace is sampled.
/// `Copy`, 24 bytes — cheap to pass everywhere.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceCtx {
    /// Trace ID (null when unsampled/detached).
    pub trace: TraceId,
    /// Current span, used as parent for children.
    pub span: SpanId,
    /// Whether spans should be recorded for this context.
    pub sampled: bool,
}

impl TraceCtx {
    /// The null context: nothing is recorded under it.
    pub const NONE: TraceCtx = TraceCtx {
        trace: TraceId::NONE,
        span: SpanId::NONE,
        sampled: false,
    };

    /// The same trace with `span` as the new parent.
    pub fn child(self, span: SpanId) -> TraceCtx {
        TraceCtx { span, ..self }
    }
}

/// Spans are dropped (and counted) past this bound so a runaway producer
/// cannot exhaust memory; the exporter reports the drop count.
const MAX_SPANS: usize = 1 << 20;

struct SinkState {
    spans: Vec<Span>,
    /// Span ID → index into `spans`, for `end_span`/`add_attr`.
    open: HashMap<u64, usize>,
    next_span: u64,
    traces_started: u64,
    dropped: u64,
    metrics: Option<MetricsRegistry>,
}

struct SinkShared {
    /// Record every Nth trace (1 = all).
    sample_every: u64,
    /// Process prefix planted in the high 16 bits of generated IDs.
    id_prefix: u64,
    state: Mutex<SinkState>,
}

/// A collector of [`Span`]s with deterministic IDs, 1-in-N trace
/// sampling, and a Chrome-trace/Perfetto JSON exporter.
///
/// Cloning shares the underlying store (same contract as
/// [`MetricsRegistry`]). The detached sink records nothing and costs a
/// null check per call.
#[derive(Clone, Default)]
pub struct TraceSink {
    shared: Option<Arc<SinkShared>>,
}

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.shared {
            None => f.write_str("TraceSink(detached)"),
            Some(s) => {
                let st = s.state.lock().unwrap();
                f.debug_struct("TraceSink")
                    .field("sample_every", &s.sample_every)
                    .field("spans", &st.spans.len())
                    .field("traces_started", &st.traces_started)
                    .finish()
            }
        }
    }
}

impl TraceSink {
    /// The no-op sink every component holds by default.
    pub fn detached() -> TraceSink {
        TraceSink { shared: None }
    }

    /// An enabled sink sampling one trace in `sample_every` (clamped to
    /// ≥ 1).
    pub fn new(sample_every: u64) -> TraceSink {
        TraceSink {
            shared: Some(Arc::new(SinkShared {
                sample_every: sample_every.max(1),
                id_prefix: 0,
                state: Mutex::new(SinkState {
                    spans: Vec::new(),
                    open: HashMap::new(),
                    next_span: 0,
                    traces_started: 0,
                    dropped: 0,
                    metrics: None,
                }),
            })),
        }
    }

    /// Like [`TraceSink::new`] but planting `prefix` in the high 16 bits
    /// of every generated trace/span ID. Live-runtime processes use
    /// distinct prefixes so IDs stay unique across a deployment.
    pub fn with_id_prefix(sample_every: u64, prefix: u16) -> TraceSink {
        let mut sink = TraceSink::new(sample_every);
        if let Some(shared) = sink.shared.take() {
            // The sink was just created, so the Arc is unique.
            let Ok(mut shared) = Arc::try_unwrap(shared) else {
                unreachable!("fresh sink is unique");
            };
            shared.id_prefix = (prefix as u64) << 48;
            sink.shared = Some(Arc::new(shared));
        }
        sink
    }

    /// Whether this sink records anything at all.
    pub fn enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// Mirror span recording into `metrics`: each recorded span bumps
    /// `trace.spans.<cat>`, and traces bump `trace.started` /
    /// `trace.sampled`. This is what puts per-layer span counts into the
    /// metrics sidecars.
    pub fn attach_metrics(&self, metrics: &MetricsRegistry) {
        if let Some(shared) = &self.shared {
            shared.state.lock().unwrap().metrics = Some(metrics.clone());
        }
    }

    /// Begin a new trace with a root span `name` in `cat` at `start_us`.
    /// Deterministically samples 1-in-`sample_every`: unsampled traces
    /// still advance the trace counter but record nothing and return an
    /// unsampled context.
    pub fn start_trace(&self, name: &'static str, cat: &'static str, start_us: u64) -> TraceCtx {
        let Some(shared) = &self.shared else {
            return TraceCtx::NONE;
        };
        let mut st = shared.state.lock().unwrap();
        st.traces_started += 1;
        let n = st.traces_started;
        if let Some(m) = &st.metrics {
            m.counter("trace.started").incr();
        }
        if (n - 1) % shared.sample_every != 0 {
            return TraceCtx::NONE;
        }
        if let Some(m) = &st.metrics {
            m.counter("trace.sampled").incr();
        }
        let trace = TraceId(shared.id_prefix | n);
        let ctx = TraceCtx {
            trace,
            span: SpanId::NONE,
            sampled: true,
        };
        let root = record_span(shared, &mut st, ctx, name, cat, start_us);
        ctx.child(root)
    }

    /// Begin a trace that bypasses sampling — always recorded. For rare,
    /// high-signal lifecycles (fault injection and recovery) where 1-in-N
    /// download sampling would almost always discard the story. Advances
    /// the same trace counter as [`TraceSink::start_trace`], so the ids
    /// handed to subsequent traces do not depend on the sampling rate.
    pub fn start_trace_always(
        &self,
        name: &'static str,
        cat: &'static str,
        start_us: u64,
    ) -> TraceCtx {
        let Some(shared) = &self.shared else {
            return TraceCtx::NONE;
        };
        let mut st = shared.state.lock().unwrap();
        st.traces_started += 1;
        let n = st.traces_started;
        if let Some(m) = &st.metrics {
            m.counter("trace.started").incr();
            m.counter("trace.sampled").incr();
        }
        let trace = TraceId(shared.id_prefix | n);
        let ctx = TraceCtx {
            trace,
            span: SpanId::NONE,
            sampled: true,
        };
        let root = record_span(shared, &mut st, ctx, name, cat, start_us);
        ctx.child(root)
    }

    /// Adopt a trace/span pair received from another process (live
    /// runtime: the framing header carries them). The returned context is
    /// sampled — the sender only propagates sampled traces — and new
    /// spans parent under the *remote* span ID.
    pub fn join(&self, trace: TraceId, parent: SpanId) -> TraceCtx {
        if self.shared.is_none() || trace == TraceId::NONE {
            return TraceCtx::NONE;
        }
        TraceCtx {
            trace,
            span: parent,
            sampled: true,
        }
    }

    /// Open a child span under `ctx`. Returns [`SpanId::NONE`] (a no-op
    /// handle) for unsampled contexts.
    pub fn span(
        &self,
        ctx: TraceCtx,
        name: &'static str,
        cat: &'static str,
        start_us: u64,
    ) -> SpanId {
        let Some(shared) = &self.shared else {
            return SpanId::NONE;
        };
        if !ctx.sampled {
            return SpanId::NONE;
        }
        let mut st = shared.state.lock().unwrap();
        record_span(shared, &mut st, ctx, name, cat, start_us)
    }

    /// A zero-duration marker span under `ctx`.
    pub fn instant(
        &self,
        ctx: TraceCtx,
        name: &'static str,
        cat: &'static str,
        t_us: u64,
    ) -> SpanId {
        let id = self.span(ctx, name, cat, t_us);
        self.end_span(id, t_us);
        id
    }

    /// Close `span` at `end_us`. No-op for the null span or an already
    /// closed one.
    pub fn end_span(&self, span: SpanId, end_us: u64) {
        let Some(shared) = &self.shared else { return };
        if !span.is_some() {
            return;
        }
        let mut st = shared.state.lock().unwrap();
        if let Some(&idx) = st.open.get(&span.0) {
            let s = &mut st.spans[idx];
            if s.end_us.is_none() {
                s.end_us = Some(end_us.max(s.start_us));
            }
        }
    }

    /// Attach `key = value` to an open or closed span.
    pub fn add_attr(&self, span: SpanId, key: &'static str, value: impl Into<AttrValue>) {
        let Some(shared) = &self.shared else { return };
        if !span.is_some() {
            return;
        }
        let mut st = shared.state.lock().unwrap();
        if let Some(&idx) = st.open.get(&span.0) {
            st.spans[idx].attrs.push((key, value.into()));
        }
    }

    /// Number of traces begun (sampled or not).
    pub fn traces_started(&self) -> u64 {
        match &self.shared {
            None => 0,
            Some(s) => s.state.lock().unwrap().traces_started,
        }
    }

    /// Snapshot of all recorded spans, in recording order.
    pub fn spans(&self) -> Vec<Span> {
        match &self.shared {
            None => Vec::new(),
            Some(s) => s.state.lock().unwrap().spans.clone(),
        }
    }

    /// Recorded span counts per category — the per-layer summary the
    /// sidecars carry.
    pub fn span_counts_by_cat(&self) -> BTreeMap<&'static str, u64> {
        let mut counts = BTreeMap::new();
        if let Some(s) = &self.shared {
            for span in &s.state.lock().unwrap().spans {
                *counts.entry(span.cat).or_insert(0) += 1;
            }
        }
        counts
    }

    /// Export every recorded span as Chrome trace-event JSON (loadable in
    /// Perfetto / `chrome://tracing`). Deterministic: spans appear in
    /// recording order, categories map to process rows in sorted order,
    /// and each trace gets its own thread row. Open spans export with
    /// zero duration and `"unfinished": true`.
    pub fn export_chrome_json(&self) -> String {
        let (spans, dropped) = match &self.shared {
            None => (Vec::new(), 0),
            Some(s) => {
                let st = s.state.lock().unwrap();
                (st.spans.clone(), st.dropped)
            }
        };

        // Category → process ID, in sorted-category order.
        let mut cats: Vec<&'static str> = spans.iter().map(|s| s.cat).collect();
        cats.sort_unstable();
        cats.dedup();
        let pid_of: BTreeMap<&'static str, u64> = cats
            .iter()
            .enumerate()
            .map(|(i, c)| (*c, i as u64 + 1))
            .collect();

        let mut out = String::with_capacity(256 + spans.len() * 160);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"droppedSpans\":");
        out.push_str(&dropped.to_string());
        out.push_str(",\"traceEvents\":[");
        let mut first = true;
        for cat in &cats {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n{{\"ph\":\"M\",\"pid\":{},\"tid\":0,\"name\":\"process_name\",\"args\":{{\"name\":",
                pid_of[cat]
            ));
            push_str_literal(&mut out, cat);
            out.push_str("}}");
        }
        for s in &spans {
            if !first {
                out.push(',');
            }
            first = false;
            let dur = s.end_us.map(|e| e - s.start_us).unwrap_or(0);
            // Thread row = trace counter (prefix stripped): each download
            // gets its own lane inside the layer's process row.
            let tid = s.trace.0 & 0xffff_ffff_ffff;
            out.push_str(&format!(
                "\n{{\"ph\":\"X\",\"pid\":{},\"tid\":{},\"ts\":{},\"dur\":{},\"name\":",
                pid_of[s.cat], tid, s.start_us, dur
            ));
            push_str_literal(&mut out, s.name);
            out.push_str(",\"cat\":");
            push_str_literal(&mut out, s.cat);
            out.push_str(&format!(",\"args\":{{\"trace\":\"{:016x}\"", s.trace.0));
            out.push_str(&format!(",\"span\":\"{:016x}\"", s.id.0));
            if let Some(p) = s.parent {
                out.push_str(&format!(",\"parent\":\"{:016x}\"", p.0));
            }
            if s.end_us.is_none() {
                out.push_str(",\"unfinished\":true");
            }
            for (k, v) in &s.attrs {
                out.push(',');
                push_str_literal(&mut out, k);
                out.push(':');
                match v {
                    AttrValue::U64(n) => out.push_str(&n.to_string()),
                    AttrValue::I64(n) => out.push_str(&n.to_string()),
                    AttrValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
                    AttrValue::Str(t) => push_str_literal(&mut out, t),
                }
            }
            out.push_str("}}");
        }
        out.push_str("\n]}\n");
        out
    }
}

/// Record one span (caller holds the state lock).
fn record_span(
    shared: &SinkShared,
    st: &mut SinkState,
    ctx: TraceCtx,
    name: &'static str,
    cat: &'static str,
    start_us: u64,
) -> SpanId {
    if st.spans.len() >= MAX_SPANS {
        st.dropped += 1;
        return SpanId::NONE;
    }
    st.next_span += 1;
    let id = SpanId(shared.id_prefix | st.next_span);
    let parent = if ctx.span.is_some() {
        Some(ctx.span)
    } else {
        None
    };
    if let Some(m) = &st.metrics {
        m.counter(&format!("trace.spans.{cat}")).incr();
    }
    st.open.insert(id.0, st.spans.len());
    st.spans.push(Span {
        trace: ctx.trace,
        id,
        parent,
        name,
        cat,
        start_us,
        end_us: None,
        attrs: Vec::new(),
    });
    id
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detached_sink_is_inert() {
        let sink = TraceSink::detached();
        let ctx = sink.start_trace("download", "hybrid", 10);
        assert_eq!(ctx, TraceCtx::NONE);
        let span = sink.span(ctx, "child", "peer", 11);
        assert!(!span.is_some());
        sink.end_span(span, 12);
        sink.add_attr(span, "bytes", 4u64);
        assert!(sink.spans().is_empty());
        assert_eq!(sink.traces_started(), 0);
        assert!(sink.export_chrome_json().contains("\"traceEvents\":["));
    }

    #[test]
    fn sampling_records_one_in_n() {
        let sink = TraceSink::new(3);
        let sampled: Vec<bool> = (0..7)
            .map(|i| sink.start_trace("t", "hybrid", i).sampled)
            .collect();
        assert_eq!(sampled, [true, false, false, true, false, false, true]);
        assert_eq!(sink.traces_started(), 7);
        // Three roots recorded.
        assert_eq!(sink.spans().len(), 3);
    }

    #[test]
    fn forced_traces_bypass_sampling_but_share_the_counter() {
        let sink = TraceSink::new(3);
        // Sampled: trace 1. Unsampled: 2, 3.
        assert!(sink.start_trace("t", "hybrid", 0).sampled);
        assert!(!sink.start_trace("t", "hybrid", 1).sampled);
        // Forced trace is recorded even though counter 3 is off-cycle...
        let forced = sink.start_trace_always("fault_cn_crash", "fault", 2);
        assert!(forced.sampled);
        // ...and it advanced the shared counter, so the next regular
        // trace (number 4) lands on the 1-in-3 cycle.
        assert!(sink.start_trace("t", "hybrid", 3).sampled);
        assert_eq!(sink.traces_started(), 4);
        assert_eq!(sink.spans().len(), 3);
        // Detached sinks stay inert.
        assert_eq!(
            TraceSink::detached().start_trace_always("f", "fault", 0),
            TraceCtx::NONE
        );
    }

    #[test]
    fn spans_nest_and_close() {
        let sink = TraceSink::new(1);
        let root = sink.start_trace("download", "hybrid", 100);
        let q = sink.span(root, "query_peers", "control", 110);
        sink.add_attr(q, "offered", 5u64);
        sink.end_span(q, 150);
        sink.end_span(root.span, 400);
        let spans = sink.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "download");
        assert_eq!(spans[0].end_us, Some(400));
        assert_eq!(spans[1].parent, Some(spans[0].id));
        assert_eq!(spans[1].attrs, vec![("offered", AttrValue::U64(5))]);
        assert_eq!(spans[1].end_us, Some(150));
    }

    #[test]
    fn same_calls_export_identical_json() {
        let run = || {
            let sink = TraceSink::new(2);
            for i in 0..4u64 {
                let ctx = sink.start_trace("download", "hybrid", i * 1000);
                let c = sink.span(ctx, "connect_attempt", "peer", i * 1000 + 5);
                sink.add_attr(c, "nat", "direct");
                sink.end_span(c, i * 1000 + 9);
                sink.instant(ctx, "edge_fallback", "edge", i * 1000 + 10);
                sink.end_span(ctx.span, i * 1000 + 500);
            }
            sink.export_chrome_json()
        };
        let a = run();
        assert_eq!(a, run());
        assert!(a.contains("\"process_name\""));
        assert!(a.contains("\"edge_fallback\""));
    }

    #[test]
    fn id_prefix_lands_in_high_bits() {
        let sink = TraceSink::with_id_prefix(1, 7);
        let ctx = sink.start_trace("t", "net", 0);
        assert_eq!(ctx.trace.0 >> 48, 7);
        assert_eq!(ctx.span.0 >> 48, 7);
    }

    #[test]
    fn join_adopts_remote_ids() {
        let client = TraceSink::with_id_prefix(1, 1);
        let server = TraceSink::with_id_prefix(1, 2);
        let ctx = client.start_trace("download", "net", 0);
        let joined = server.join(ctx.trace, ctx.span);
        assert!(joined.sampled);
        let s = server.span(joined, "authorize", "edge", 5);
        server.end_span(s, 9);
        let spans = server.spans();
        assert_eq!(spans[0].trace, ctx.trace);
        assert_eq!(spans[0].parent, Some(ctx.span));
        // Server-generated span IDs carry the server prefix.
        assert_eq!(spans[0].id.0 >> 48, 2);
    }

    #[test]
    fn metrics_mirror_counts_by_cat() {
        let sink = TraceSink::new(1);
        let reg = MetricsRegistry::new();
        sink.attach_metrics(&reg);
        let ctx = sink.start_trace("download", "hybrid", 0);
        sink.instant(ctx, "attach", "sim", 1);
        sink.instant(ctx, "attach", "sim", 2);
        assert_eq!(reg.counter("trace.started").get(), 1);
        assert_eq!(reg.counter("trace.sampled").get(), 1);
        assert_eq!(reg.counter("trace.spans.hybrid").get(), 1);
        assert_eq!(reg.counter("trace.spans.sim").get(), 2);
        let counts = sink.span_counts_by_cat();
        assert_eq!(counts[&"sim"], 2);
    }

    #[test]
    fn unfinished_spans_export_flagged() {
        let sink = TraceSink::new(1);
        let ctx = sink.start_trace("download", "hybrid", 0);
        let _open = sink.span(ctx, "stuck", "peer", 3);
        let json = sink.export_chrome_json();
        assert!(json.contains("\"unfinished\":true"));
    }
}
