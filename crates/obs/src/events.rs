//! Bounded structured-event ring buffer.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// One structured event: a timestamp (simulation or wall micros — the
/// producer decides), the component that emitted it, an event kind, and a
/// free-form detail string.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Producer-defined timestamp.
    pub t: u64,
    /// Emitting component, e.g. `"control"` or `"edge"`.
    pub component: String,
    /// Event class, e.g. `"restart"` or `"denied"`.
    pub kind: String,
    /// Free-form detail.
    pub detail: String,
}

struct RingInner {
    /// Oldest-first buffer plus count of events dropped off the front.
    buf: VecDeque<Event>,
    dropped: u64,
}

/// A bounded ring of [`Event`]s: pushing beyond capacity drops the
/// oldest entries (and counts them), so long runs keep the tail of their
/// event history at a fixed memory cost.
///
/// Capacity 0 disables the ring entirely: [`EventRing::accepts`] returns
/// `false` and pushes are discarded without locking, which lets callers
/// skip building detail strings (see
/// [`crate::MetricsRegistry::record_event_with`]).
#[derive(Clone)]
pub struct EventRing {
    /// Fixed at construction; kept outside the mutex so `accepts` is a
    /// plain read.
    capacity: usize,
    inner: Arc<Mutex<RingInner>>,
}

/// Default event capacity; enough for the interesting tail of a month
/// simulation without holding the whole log.
pub const DEFAULT_EVENT_CAPACITY: usize = 1024;

impl Default for EventRing {
    fn default() -> EventRing {
        EventRing::with_capacity(DEFAULT_EVENT_CAPACITY)
    }
}

impl EventRing {
    /// A ring holding at most `capacity` events (0 = disabled).
    pub fn with_capacity(capacity: usize) -> EventRing {
        EventRing {
            capacity,
            inner: Arc::new(Mutex::new(RingInner {
                buf: VecDeque::with_capacity(capacity.min(DEFAULT_EVENT_CAPACITY)),
                dropped: 0,
            })),
        }
    }

    /// Whether pushed events are kept at all. `false` only for a
    /// zero-capacity (disabled) ring.
    pub fn accepts(&self) -> bool {
        self.capacity > 0
    }

    /// The fixed capacity this ring was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Append an event, evicting the oldest when full. Discards the
    /// event when the ring is disabled.
    pub fn push(&self, event: Event) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock().unwrap();
        if inner.buf.len() == self.capacity {
            inner.buf.pop_front();
            inner.dropped += 1;
        }
        inner.buf.push_back(event);
    }

    /// Events currently buffered, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.inner.lock().unwrap().buf.iter().cloned().collect()
    }

    /// Events evicted so far.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().unwrap().dropped
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().buf.len()
    }

    /// Whether no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64) -> Event {
        Event {
            t,
            component: "test".into(),
            kind: "tick".into(),
            detail: String::new(),
        }
    }

    #[test]
    fn ring_evicts_oldest() {
        let ring = EventRing::with_capacity(3);
        for t in 0..5 {
            ring.push(ev(t));
        }
        let got: Vec<u64> = ring.events().iter().map(|e| e.t).collect();
        assert_eq!(got, vec![2, 3, 4]);
        assert_eq!(ring.dropped(), 2);
    }

    #[test]
    fn empty_ring() {
        let ring = EventRing::default();
        assert!(ring.is_empty());
        assert!(ring.accepts());
        assert_eq!(ring.capacity(), DEFAULT_EVENT_CAPACITY);
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn zero_capacity_disables_recording() {
        let ring = EventRing::with_capacity(0);
        assert!(!ring.accepts());
        ring.push(ev(1));
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 0);
    }
}
