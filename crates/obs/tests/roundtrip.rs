//! Round-trip tests: everything the exporters write must parse back
//! with the in-crate JSON reader and mean the same thing — this is what
//! `trace-explain` and the sidecar tooling rely on.

use netsession_obs::json::{self, JsonValue};
use netsession_obs::{MetricsRegistry, TraceSink};

#[test]
fn string_escaping_survives_parse() {
    let nasty = [
        "plain",
        "quote\"inside",
        "back\\slash",
        "line\nbreak\r\ttab",
        "control\u{0}\u{1}\u{1f}chars",
        "non-ascii: héllo wörld",
        "emoji 🦀 and CJK 你好",
        "\\u0041 looks like an escape but is literal",
    ];
    for original in nasty {
        let mut doc = String::from("[");
        json::push_str_literal(&mut doc, original);
        doc.push(']');
        let parsed = json::parse(&doc).expect("exporter output must parse");
        assert_eq!(parsed.as_arr().unwrap()[0].as_str(), Some(original));
    }
}

#[test]
fn histogram_snapshot_round_trips() {
    let reg = MetricsRegistry::new();
    let h = reg.histogram("peer.download_bytes");
    for v in [100u64, 1_000, 10_000, 1 << 20] {
        h.record(v);
    }
    reg.counter("edge.bytes_served").add(12345);
    reg.record_event(42, "edge", "grant", "guid=\"7\"\nline2");

    let snap = reg.snapshot_json();
    let doc = json::parse(&snap).expect("snapshot_json must be valid JSON");

    let hist = doc
        .get("histograms")
        .and_then(|h| h.get("peer.download_bytes"))
        .expect("histogram present");
    assert_eq!(hist.get("count").unwrap().as_u64(), Some(4));
    assert_eq!(hist.get("sum").unwrap().as_u64(), Some(h.sum()));
    assert_eq!(hist.get("min").unwrap().as_u64(), Some(h.min()));
    assert_eq!(hist.get("max").unwrap().as_u64(), Some(h.max()));
    assert_eq!(hist.get("p50").unwrap().as_u64(), Some(h.p50()));

    let counters = doc.get("counters").unwrap();
    assert_eq!(
        counters.get("edge.bytes_served").unwrap().as_u64(),
        Some(12345)
    );

    let events = doc.get("events").unwrap().as_arr().unwrap();
    assert_eq!(events.len(), 1);
    assert_eq!(
        events[0].get("detail").unwrap().as_str(),
        Some("guid=\"7\"\nline2")
    );
}

#[test]
fn trace_export_round_trips() {
    let sink = TraceSink::new(1);
    let ctx = sink.start_trace("download", "hybrid", 1_000);
    let q = sink.span(ctx, "query_peers", "control", 1_010);
    sink.add_attr(q, "offered", 3u64);
    sink.add_attr(q, "label", "dn-\"primary\"");
    sink.end_span(q, 1_050);
    sink.instant(ctx, "edge_fallback", "edge", 1_060);
    sink.end_span(ctx.span, 9_999);

    let exported = sink.export_chrome_json();
    let doc = json::parse(&exported).expect("trace export must be valid JSON");
    assert_eq!(doc.get("droppedSpans").unwrap().as_u64(), Some(0));
    let events = doc.get("traceEvents").unwrap().as_arr().unwrap();

    // Metadata rows name one process per category, sorted.
    let meta_names: Vec<&str> = events
        .iter()
        .filter(|e| e.get("ph").unwrap().as_str() == Some("M"))
        .map(|e| {
            e.get("args")
                .unwrap()
                .get("name")
                .unwrap()
                .as_str()
                .unwrap()
        })
        .collect();
    assert_eq!(meta_names, ["control", "edge", "hybrid"]);

    let spans: Vec<&JsonValue> = events
        .iter()
        .filter(|e| e.get("ph").unwrap().as_str() == Some("X"))
        .collect();
    assert_eq!(spans.len(), 3);

    let root = spans
        .iter()
        .find(|s| s.get("name").unwrap().as_str() == Some("download"))
        .unwrap();
    assert_eq!(root.get("ts").unwrap().as_u64(), Some(1_000));
    assert_eq!(root.get("dur").unwrap().as_u64(), Some(8_999));

    let query = spans
        .iter()
        .find(|s| s.get("name").unwrap().as_str() == Some("query_peers"))
        .unwrap();
    let args = query.get("args").unwrap();
    assert_eq!(args.get("offered").unwrap().as_u64(), Some(3));
    assert_eq!(args.get("label").unwrap().as_str(), Some("dn-\"primary\""));
    // Child links to the root via the parent span ID.
    assert_eq!(
        args.get("parent").unwrap().as_str(),
        root.get("args").unwrap().get("span").unwrap().as_str()
    );
    // Same trace ID everywhere.
    let trace_of = |s: &JsonValue| {
        s.get("args")
            .unwrap()
            .get("trace")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string()
    };
    assert_eq!(trace_of(root), trace_of(query));
}

#[test]
fn full_snapshot_parses_too() {
    let reg = MetricsRegistry::new();
    reg.volatile_histogram("wall.tick_ns").record(125);
    reg.counter("det").incr();
    let doc = json::parse(&reg.full_snapshot_json()).unwrap();
    assert!(doc.get("volatile").unwrap().get("histograms").is_some());
}
