//! Histogram quantile edge cases the log-bucket scheme must get exactly
//! right: empty, all-zero, single-sample, and saturating (`u64::MAX`)
//! populations, plus snapshot determinism for the registry as a whole.

use netsession_obs::{Histogram, MetricsRegistry};

#[test]
fn empty_histogram_quantiles_are_zero() {
    let h = Histogram::detached();
    assert_eq!(h.count(), 0);
    assert_eq!(h.min(), 0);
    assert_eq!(h.max(), 0);
    assert_eq!(h.p50(), 0);
    assert_eq!(h.p90(), 0);
    assert_eq!(h.p99(), 0);
}

#[test]
fn all_zero_samples_quantiles_are_zero() {
    let h = Histogram::detached();
    for _ in 0..1000 {
        h.record(0);
    }
    assert_eq!(h.count(), 1000);
    assert_eq!(h.sum(), 0);
    assert_eq!((h.min(), h.max()), (0, 0));
    assert_eq!(h.p50(), 0);
    assert_eq!(h.p99(), 0);
}

#[test]
fn single_sample_is_every_quantile() {
    for v in [0u64, 1, 7, 1 << 20, u64::MAX] {
        let h = Histogram::detached();
        h.record(v);
        assert_eq!(h.count(), 1);
        assert_eq!(h.min(), v);
        assert_eq!(h.max(), v);
        // With one sample, every quantile is that sample exactly.
        assert_eq!(h.quantile(0.0), v, "q0 of single sample {v}");
        assert_eq!(h.p50(), v, "p50 of single sample {v}");
        assert_eq!(h.p99(), v, "p99 of single sample {v}");
        assert_eq!(h.quantile(1.0), v, "q1 of single sample {v}");
    }
}

#[test]
fn u64_max_samples_do_not_overflow_quantiles() {
    let h = Histogram::detached();
    for _ in 0..10 {
        h.record(u64::MAX);
    }
    assert_eq!(h.count(), 10);
    assert_eq!(h.min(), u64::MAX);
    assert_eq!(h.max(), u64::MAX);
    assert_eq!(h.p50(), u64::MAX);
    assert_eq!(h.p99(), u64::MAX);
    // sum wraps rather than panicking.
    let _ = h.sum();
}

#[test]
fn mixed_extremes_clamp_into_observed_range() {
    let h = Histogram::detached();
    h.record(0);
    h.record(u64::MAX);
    assert_eq!(h.min(), 0);
    assert_eq!(h.max(), u64::MAX);
    let p50 = h.p50();
    assert!(p50 == 0 || p50 == u64::MAX, "p50 = {p50}");
    assert_eq!(h.quantile(1.0), u64::MAX);
}

#[test]
fn out_of_range_quantile_requests_are_clamped() {
    let h = Histogram::detached();
    h.record(42);
    assert_eq!(h.quantile(-1.0), 42);
    assert_eq!(h.quantile(2.0), 42);
}

#[test]
fn identical_recordings_snapshot_identically() {
    let run = || {
        let reg = MetricsRegistry::new();
        reg.counter("a").add(3);
        reg.gauge("g").set(-7);
        let h = reg.histogram("h");
        for v in [0u64, 1, 5, u64::MAX] {
            h.record(v);
        }
        reg.record_event(12, "edge", "grant", "guid=9");
        // Volatile instruments must not leak into the deterministic view.
        reg.volatile_histogram("wallclock_ns").record(918273645);
        reg.snapshot_json()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b);
    assert!(!a.contains("wallclock_ns"));
}
