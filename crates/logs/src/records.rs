//! Log record types (§4.1).
//!
//! "When a peer downloads a file from NetSession, the CN records
//! information about the download, including the GUID of the peer, the
//! name and size of the file, the CP code …, the time the download started
//! and ended, and the number of bytes downloaded from the infrastructure
//! and from peers. … when a peer opens a connection to the control plane,
//! the CN records the peer's current IP address, its software version, and
//! whether or not uploads are enabled on that peer."

use netsession_core::id::{AsNumber, CpCode, Guid, ObjectId, SecondaryGuid};
use netsession_core::time::{SimDuration, SimTime};
use netsession_core::units::{Bandwidth, ByteCount};

/// The three outcomes the paper distinguishes (§5.2): "a download can
/// complete, it can fail, or it can be aborted/paused by the user and never
/// resumed."
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DownloadOutcome {
    /// Finished successfully.
    Completed,
    /// Failed; the flag says whether the cause was system-related (e.g.
    /// "too many corrupted content blocks") or environmental ("the user's
    /// disk is full").
    Failed {
        /// System-related vs. other causes (§5.2 splits 0.1 %/0.2 % vs
        /// the rest).
        system_related: bool,
    },
    /// Aborted or paused by the user and never resumed.
    Abandoned,
}

/// One download record.
#[derive(Clone, Debug)]
pub struct DownloadRecord {
    /// Downloading peer.
    pub guid: Guid,
    /// The object (file names are hashed in the real logs; object IDs here).
    pub object: ObjectId,
    /// Content-provider account.
    pub cp: CpCode,
    /// Object size.
    pub size: ByteCount,
    /// Whether the provider enabled p2p for this object.
    pub p2p_enabled: bool,
    /// Start time.
    pub started: SimTime,
    /// End time (completion, failure, or abandonment).
    pub ended: SimTime,
    /// Bytes from edge servers.
    pub bytes_infra: ByteCount,
    /// Bytes from peers.
    pub bytes_peers: ByteCount,
    /// Outcome.
    pub outcome: DownloadOutcome,
    /// How many peers the control plane initially returned (Fig 6 x-axis).
    pub initial_peers: u32,
    /// Requester's AS.
    pub asn: AsNumber,
    /// Requester's country (gazetteer index).
    pub country: u16,
    /// Requester's Table-2 region index.
    pub region: u8,
}

impl DownloadRecord {
    /// Total bytes received.
    pub fn total_bytes(&self) -> ByteCount {
        self.bytes_infra + self.bytes_peers
    }

    /// Peer efficiency of this download (§5.1).
    pub fn peer_efficiency(&self) -> f64 {
        let t = self.total_bytes().bytes();
        if t == 0 {
            0.0
        } else {
            self.bytes_peers.bytes() as f64 / t as f64
        }
    }

    /// Elapsed wall time.
    pub fn duration(&self) -> SimDuration {
        self.ended.since(self.started)
    }

    /// Mean download speed over the whole download (Fig 4's metric: "we
    /// then averaged the speed of each download across its entire length").
    pub fn mean_speed(&self) -> Bandwidth {
        self.total_bytes().rate_over(self.duration())
    }

    /// Fig 4's class: did at least half the bytes come from peers?
    pub fn is_mostly_p2p(&self) -> bool {
        self.peer_efficiency() >= 0.5
    }

    /// Fig 4's other class: everything from the edge.
    pub fn is_edge_only(&self) -> bool {
        self.bytes_peers == ByteCount::ZERO && self.bytes_infra.bytes() > 0
    }
}

/// One login record.
#[derive(Clone, Debug)]
pub struct LoginRecord {
    /// Login time.
    pub at: SimTime,
    /// The peer.
    pub guid: Guid,
    /// Its IP at login.
    pub ip: u32,
    /// The AS of that IP.
    pub asn: AsNumber,
    /// Country (gazetteer index).
    pub country: u16,
    /// Geolocation latitude.
    pub lat: f64,
    /// Geolocation longitude.
    pub lon: f64,
    /// Whether uploads are enabled at this login.
    pub uploads_enabled: bool,
    /// Client software version.
    pub software_version: u32,
    /// Last five secondary GUIDs, newest first (§6.2).
    pub secondary_guids: Vec<SecondaryGuid>,
}

/// One peer-to-peer byte flow, attributed to source and destination ASes —
/// the input to the §6.1 traffic-balance analysis ("a set of (N, AS1, AS2)
/// tuples, which describe a flow of N bytes from AS1 to AS2").
#[derive(Clone, Debug)]
pub struct TransferRecord {
    /// Uploading peer.
    pub from_guid: Guid,
    /// Downloading peer.
    pub to_guid: Guid,
    /// Uploader's AS.
    pub from_as: AsNumber,
    /// Downloader's AS.
    pub to_as: AsNumber,
    /// Uploader's country (gazetteer index).
    pub from_country: u16,
    /// Downloader's country.
    pub to_country: u16,
    /// Content bytes moved (headers/overhead excluded, as in §6.1).
    pub bytes: ByteCount,
    /// The object involved.
    pub object: ObjectId,
}

impl TransferRecord {
    /// Whether the flow stayed inside one AS (18 % of bytes in the paper).
    pub fn intra_as(&self) -> bool {
        self.from_as == self.to_as
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(infra: u64, peers: u64, dur_secs: u64) -> DownloadRecord {
        DownloadRecord {
            guid: Guid(1),
            object: ObjectId(2),
            cp: CpCode(3),
            size: ByteCount(infra + peers),
            p2p_enabled: true,
            started: SimTime(0),
            ended: SimTime(dur_secs * 1_000_000),
            bytes_infra: ByteCount(infra),
            bytes_peers: ByteCount(peers),
            outcome: DownloadOutcome::Completed,
            initial_peers: 10,
            asn: AsNumber(7018),
            country: 0,
            region: 0,
        }
    }

    #[test]
    fn efficiency_and_speed() {
        let r = record(250, 750, 10);
        assert!((r.peer_efficiency() - 0.75).abs() < 1e-9);
        assert_eq!(r.total_bytes(), ByteCount(1000));
        assert!((r.mean_speed().bytes_per_sec() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn fig4_classes() {
        assert!(record(0, 100, 1).is_mostly_p2p());
        assert!(record(49, 51, 1).is_mostly_p2p());
        assert!(!record(51, 49, 1).is_mostly_p2p());
        assert!(record(100, 0, 1).is_edge_only());
        assert!(!record(100, 1, 1).is_edge_only());
    }

    #[test]
    fn zero_byte_download_has_zero_efficiency() {
        let r = record(0, 0, 1);
        assert_eq!(r.peer_efficiency(), 0.0);
        assert!(
            !r.is_edge_only(),
            "needs actual bytes to count as edge-only"
        );
    }

    #[test]
    fn transfer_intra_as_detection() {
        let t = TransferRecord {
            from_guid: Guid(1),
            to_guid: Guid(2),
            from_as: AsNumber(10),
            to_as: AsNumber(10),
            from_country: 0,
            to_country: 1,
            bytes: ByteCount(5),
            object: ObjectId(1),
        };
        assert!(t.intra_as());
        let t2 = TransferRecord {
            to_as: AsNumber(11),
            ..t
        };
        assert!(!t2.intra_as());
    }
}
