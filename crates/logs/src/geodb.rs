//! EdgeScape-style geolocation database.
//!
//! "We also obtained geolocation data from Akamai's EdgeScape service about
//! each IP address that appears in the trace. This data includes an ISO
//! 3166 country code, the name of a city and state, a latitude/longitude
//! pair, a timezone, and a network provider name" (§4.1). The simulation
//! builds this database as it assigns IPs; the analytics only ever join on
//! it, as the authors did.

use netsession_core::fxhash::FxHashMap;
use netsession_core::id::AsNumber;

/// What EdgeScape knows about one IP.
#[derive(Clone, Debug, PartialEq)]
pub struct GeoInfo {
    /// ISO 3166 country code.
    pub country_code: String,
    /// City name.
    pub city: String,
    /// Latitude.
    pub lat: f64,
    /// Longitude.
    pub lon: f64,
    /// Timezone as GMT offset hours.
    pub tz_offset: i32,
    /// The AS announcing this IP.
    pub asn: AsNumber,
    /// Gazetteer country index (simulation-internal join key).
    pub country_idx: u16,
    /// Table-2 region index.
    pub region_idx: u8,
}

/// [`GeoInfo`] with borrowed strings: what a caller that already holds the
/// gazetteer's `&str` names passes to [`EdgeScapeDb::record`] so the
/// no-change fast path allocates nothing.
#[derive(Clone, Copy, Debug)]
pub struct GeoInfoRef<'a> {
    /// ISO 3166 country code.
    pub country_code: &'a str,
    /// City name.
    pub city: &'a str,
    /// Latitude.
    pub lat: f64,
    /// Longitude.
    pub lon: f64,
    /// Timezone as GMT offset hours.
    pub tz_offset: i32,
    /// The AS announcing this IP.
    pub asn: AsNumber,
    /// Gazetteer country index (simulation-internal join key).
    pub country_idx: u16,
    /// Table-2 region index.
    pub region_idx: u8,
}

impl GeoInfoRef<'_> {
    fn matches(&self, info: &GeoInfo) -> bool {
        self.country_code == info.country_code
            && self.city == info.city
            && self.lat == info.lat
            && self.lon == info.lon
            && self.tz_offset == info.tz_offset
            && self.asn == info.asn
            && self.country_idx == info.country_idx
            && self.region_idx == info.region_idx
    }

    fn owned(self) -> GeoInfo {
        GeoInfo {
            country_code: self.country_code.to_string(),
            city: self.city.to_string(),
            lat: self.lat,
            lon: self.lon,
            tz_offset: self.tz_offset,
            asn: self.asn,
            country_idx: self.country_idx,
            region_idx: self.region_idx,
        }
    }
}

/// IP → geolocation.
#[derive(Clone, Debug, Default)]
pub struct EdgeScapeDb {
    // FxHashMap: hot during login storms; every distinct_* accessor
    // sorts+dedups before counting, so iteration order never escapes.
    entries: FxHashMap<u32, GeoInfo>,
}

impl EdgeScapeDb {
    /// Empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an IP's geolocation (idempotent; last write wins, matching a
    /// geo DB refresh).
    pub fn insert(&mut self, ip: u32, info: GeoInfo) {
        self.entries.insert(ip, info);
    }

    /// Borrowed-field variant of [`EdgeScapeDb::insert`]: allocates the
    /// owned `GeoInfo` only when the IP is new or its entry actually
    /// changed. Login storms re-observe the same sites constantly — the
    /// common case is "already known, identical", which this makes
    /// allocation-free. Last write still wins, so the resulting database
    /// is identical to calling `insert` every time.
    pub fn record(&mut self, ip: u32, info: &GeoInfoRef<'_>) {
        match self.entries.get_mut(&ip) {
            Some(existing) if info.matches(existing) => {}
            Some(existing) => *existing = info.owned(),
            None => {
                self.entries.insert(ip, info.owned());
            }
        }
    }

    /// Look up an IP.
    pub fn lookup(&self, ip: u32) -> Option<&GeoInfo> {
        self.entries.get(&ip)
    }

    /// Number of distinct IPs known (Table 1's "Distinct IPs").
    pub fn distinct_ips(&self) -> usize {
        self.entries.len()
    }

    /// Number of distinct (lat, lon) locations (Table 1's "Distinct
    /// locations").
    pub fn distinct_locations(&self) -> usize {
        let mut locs: Vec<(u64, u64)> = self
            .entries
            .values()
            .map(|g| (g.lat.to_bits(), g.lon.to_bits()))
            .collect();
        locs.sort_unstable();
        locs.dedup();
        locs.len()
    }

    /// Number of distinct ASes observed.
    pub fn distinct_ases(&self) -> usize {
        let mut ases: Vec<u32> = self.entries.values().map(|g| g.asn.0).collect();
        ases.sort_unstable();
        ases.dedup();
        ases.len()
    }

    /// Number of distinct country codes observed.
    pub fn distinct_countries(&self) -> usize {
        let mut cc: Vec<&str> = self
            .entries
            .values()
            .map(|g| g.country_code.as_str())
            .collect();
        cc.sort_unstable();
        cc.dedup();
        cc.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(cc: &str, lat: f64, asn: u32) -> GeoInfo {
        GeoInfo {
            country_code: cc.into(),
            city: "X".into(),
            lat,
            lon: 1.0,
            tz_offset: 0,
            asn: AsNumber(asn),
            country_idx: 0,
            region_idx: 0,
        }
    }

    #[test]
    fn insert_lookup_roundtrip() {
        let mut db = EdgeScapeDb::new();
        db.insert(42, info("US", 40.0, 7018));
        assert_eq!(db.lookup(42).unwrap().country_code, "US");
        assert!(db.lookup(43).is_none());
    }

    #[test]
    fn distinct_counts() {
        let mut db = EdgeScapeDb::new();
        db.insert(1, info("US", 40.0, 100));
        db.insert(2, info("US", 40.0, 100));
        db.insert(3, info("DE", 52.0, 200));
        assert_eq!(db.distinct_ips(), 3);
        assert_eq!(db.distinct_locations(), 2);
        assert_eq!(db.distinct_ases(), 2);
        assert_eq!(db.distinct_countries(), 2);
    }

    #[test]
    fn reinsert_overwrites() {
        let mut db = EdgeScapeDb::new();
        db.insert(1, info("US", 40.0, 100));
        db.insert(1, info("CA", 43.0, 200));
        assert_eq!(db.lookup(1).unwrap().country_code, "CA");
        assert_eq!(db.distinct_ips(), 1);
    }
}
